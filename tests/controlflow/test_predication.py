"""Predication transforms: structure and end-to-end semantics."""

import pytest

from repro.controlflow import (
    flatten_cdfg,
    full_predication,
    partial_predication,
)
from repro.ir.cdfg import CFG
from repro.ir.dfg import DFG, Op
from repro.ir.interp import DFGInterpreter, evaluate


def make_ite_cdfg():
    """if (a > b) y = a - b; else y = b + 1;  out = y * 2"""
    cdfg = CFG("ite")
    entry = cdfg.add_block(label="entry")
    eb = cdfg.block(entry).body
    a = eb.input("a")
    b = eb.input("b")
    c = eb.add(Op.GT, a, b)
    eb.output(c, "cond")
    eb.output(a, "a")
    eb.output(b, "b")

    then = cdfg.add_block(label="then")
    tb = cdfg.block(then).body
    ta = tb.input("a")
    tbv = tb.input("b")
    tb.output(tb.add(Op.SUB, ta, tbv), "y")

    els = cdfg.add_block(label="else")
    ob = cdfg.block(els).body
    oa = ob.input("b")
    one = ob.const(1)
    ob.output(ob.add(Op.ADD, oa, one), "y")

    join = cdfg.add_block(label="join")
    jb = cdfg.block(join).body
    jy = jb.input("y")
    two = jb.const(2)
    jb.output(jb.add(Op.MUL, jy, two), "out")

    cdfg.set_branch(entry, "cond", then, els)
    cdfg.set_jump(then, join)
    cdfg.set_jump(els, join)
    cdfg.set_exit(join)
    cdfg.check()
    return cdfg


def ref(a, b):
    y = a - b if a > b else b + 1
    return y * 2


@pytest.mark.parametrize("transform", [partial_predication, full_predication])
def test_ite_semantics_preserved(transform):
    cdfg = make_ite_cdfg()
    dfg = transform(cdfg)
    dfg.check()
    A = [5, 1, 7, 3]
    B = [3, 9, 7, 0]
    out = evaluate(dfg, 4, {"a": A, "b": B})
    assert out["out"] == [ref(x, y) for x, y in zip(A, B)]


def test_partial_inserts_select():
    dfg = partial_predication(make_ite_cdfg())
    assert any(n.op is Op.SELECT for n in dfg.nodes())
    # No predicated nodes in partial predication.
    assert all(n.pred is None for n in dfg.nodes())


def test_full_predicates_arm_ops():
    dfg = full_predication(make_ite_cdfg())
    preds = [n for n in dfg.nodes() if n.pred is not None]
    assert len(preds) == 2  # SUB in then, ADD in else
    polarities = {n.pred for n in preds}
    assert polarities == {True, False}
    # Each predicated op has the extra predicate operand.
    for n in preds:
        assert dfg.operand(n.nid, n.op.arity) is not None


def test_full_predication_has_more_edges_than_partial():
    """The predicate network is full predication's routing cost."""
    cdfg = make_ite_cdfg()
    partial = partial_predication(cdfg)
    full = full_predication(cdfg)
    assert full.num_edges() > 0 and partial.num_edges() > 0
    # Predicate edges: one per predicated op.
    pred_edges = sum(1 for n in full.nodes() if n.pred is not None)
    assert pred_edges == 2


def make_store_cdfg():
    """if (x > 0) A[0] = x;  out = flag"""
    cdfg = CFG("store_ite")
    entry = cdfg.add_block(label="entry")
    eb = cdfg.block(entry).body
    x = eb.input("x")
    zero = eb.const(0)
    c = eb.add(Op.GT, x, zero)
    eb.output(c, "cond")
    eb.output(x, "x")

    then = cdfg.add_block(label="then")
    tb = cdfg.block(then).body
    tx = tb.input("x")
    z = tb.const(0)
    st = tb.add(Op.STORE, z, tx, array="A")
    tb.output(st, "stored")

    els = cdfg.add_block(label="else")
    ob = cdfg.block(els).body
    zz = ob.const(0)
    ob.output(zz, "stored")

    join = cdfg.add_block(label="join")
    jb = cdfg.block(join).body
    s = jb.input("stored")
    jb.output(s, "out")

    cdfg.set_branch(entry, "cond", then, els)
    cdfg.set_jump(then, join)
    cdfg.set_jump(els, join)
    cdfg.set_exit(join)
    cdfg.check()
    return cdfg


def test_partial_predication_guards_stores_via_load_select():
    dfg = partial_predication(make_store_cdfg())
    # The rewrite adds a LOAD next to the STORE.
    assert any(n.op is Op.LOAD for n in dfg.nodes())
    interp = DFGInterpreter(dfg, memory={"A": [99]})
    interp.run(1, {"x": [-5]})
    assert interp.memory["A"] == [99]  # untaken store writes old value
    interp2 = DFGInterpreter(dfg, memory={"A": [99]})
    interp2.run(1, {"x": [7]})
    assert interp2.memory["A"] == [7]


def test_full_predication_skips_disabled_store():
    dfg = full_predication(make_store_cdfg())
    # No extra LOAD needed.
    assert not any(n.op is Op.LOAD for n in dfg.nodes())
    interp = DFGInterpreter(dfg, memory={"A": [99]})
    interp.run(1, {"x": [-5]})
    assert interp.memory["A"] == [99]
    interp2 = DFGInterpreter(dfg, memory={"A": [99]})
    interp2.run(1, {"x": [7]})
    assert interp2.memory["A"] == [7]


def test_flatten_single_block():
    cdfg = CFG("straight")
    b = cdfg.add_block()
    body = cdfg.block(b).body
    x = body.input("x")
    body.output(body.add(Op.NEG, x), "y")
    cdfg.set_exit(b)
    dfg = flatten_cdfg(cdfg)
    assert evaluate(dfg, 1, {"x": [4]})["y"] == [-4]


def test_flatten_diamond_uses_partial_predication():
    dfg = flatten_cdfg(make_ite_cdfg())
    assert any(n.op is Op.SELECT for n in dfg.nodes())


def test_flatten_rejects_general_cfg():
    cdfg = CFG("loopy")
    a = cdfg.add_block()
    b = cdfg.add_block()
    c = cdfg.add_block()
    body = cdfg.block(a).body
    one = body.const(1)
    body.output(one, "c")
    cdfg.set_branch(a, "c", b, c)
    cdfg.set_exit(b)
    cdfg.set_exit(c)
    with pytest.raises(ValueError, match="neither"):
        flatten_cdfg(cdfg)


def test_predicated_dfg_is_mappable():
    from repro.api import map_dfg
    from repro.arch import presets

    dfg = full_predication(make_ite_cdfg())
    m = map_dfg(dfg, presets.simple_cgra(4, 4), mapper="list_sched")
    assert m.validate() == []
