"""Dual-issue, direct CDFG mapping, and hardware-loop model tests."""

import pytest

from repro.arch import presets
from repro.controlflow.direct_cdfg import map_direct
from repro.controlflow.dual_issue import dual_issue, map_dual_issue
from repro.controlflow.hwloops import (
    HW_LOOP_SETUP,
    SW_LOOP_OVERHEAD,
    loop_execution_cycles,
    loop_speedup,
)
from repro.controlflow.predication import partial_predication
from repro.api import map_dfg
from repro.ir import kernels

from tests.controlflow.test_predication import make_ite_cdfg


def test_dual_issue_pairs_opposite_arms():
    dfg, pairs = dual_issue(make_ite_cdfg())
    dfg.check()
    assert len(pairs) == 1  # one op per arm
    (pair,) = pairs
    a, b = tuple(pair)
    assert {dfg.node(a).op.value, dfg.node(b).op.value} == {"sub", "add"}


def test_dual_issue_mapping_shares_slot():
    cdfg = make_ite_cdfg()
    dfg, pairs = dual_issue(cdfg)
    cgra = presets.simple_cgra(4, 4)
    m = map_dual_issue(dfg, pairs, cgra)
    assert m.validate() == []
    # The paired ops share a (cell, slot).
    (pair,) = pairs
    a, b = tuple(pair)
    assert m.binding[a] == m.binding[b]
    assert m.schedule[a] % m.ii == m.schedule[b] % m.ii


def test_dual_issue_beats_partial_on_resources():
    """DISE's point: arms overlap, so fewer slots are consumed."""
    cdfg = make_ite_cdfg()
    cgra = presets.simple_cgra(4, 4)
    partial = map_dfg(partial_predication(cdfg), cgra,
                      mapper="list_sched")
    dfg, pairs = dual_issue(cdfg)
    dise = map_dual_issue(dfg, pairs, cgra)
    slots_partial = len(
        {(partial.binding[n], partial.schedule[n] % partial.ii)
         for n in partial.binding}
    )
    slots_dise = len(
        {(dise.binding[n], dise.schedule[n] % dise.ii)
         for n in dise.binding}
    )
    assert slots_dise < slots_partial


def test_validator_rejects_unauthorised_sharing():
    """coexec only waives conflicts for declared pairs."""
    cdfg = make_ite_cdfg()
    dfg, pairs = dual_issue(cdfg)
    cgra = presets.simple_cgra(4, 4)
    m = map_dual_issue(dfg, pairs, cgra)
    m.coexec = set()  # drop the waiver
    v = m.validate(raise_on_error=False)
    assert any("FU conflict" in s for s in v)


# ---------------------------------------------------------------------------
def test_direct_cdfg_mapping():
    cdfg = make_ite_cdfg()
    cgra = presets.simple_cgra(4, 4)
    d = map_direct(cdfg, cgra)
    assert d.validate() == []
    assert d.total_contexts <= cgra.n_contexts
    # Both paths traverse entry + one arm + join (+2 switches).
    t_true = d.path_cycles(True)
    t_false = d.path_cycles(False)
    assert t_true > 0 and t_false > 0
    exp = d.expected_cycles(0.5)
    assert min(t_true, t_false) <= exp <= max(t_true, t_false)


def test_direct_cdfg_skips_untaken_arm():
    """Direct mapping pays one arm; predication pays both."""
    cdfg = make_ite_cdfg()
    cgra = presets.simple_cgra(4, 4)
    d = map_direct(cdfg, cgra)
    then_b = next(
        b for b, lab in cdfg.successors(cdfg.entry) if lab is True
    )
    else_b = next(
        b for b, lab in cdfg.successors(cdfg.entry) if lab is False
    )
    both_arms = (
        d.blocks[then_b].schedule_length
        + d.blocks[else_b].schedule_length
    )
    assert d.path_cycles(True) < both_arms + d.path_cycles(False)


def test_direct_cdfg_context_overflow():
    cdfg = make_ite_cdfg()
    cgra = presets.simple_cgra(4, 4, n_contexts=2)
    with pytest.raises(ValueError, match="contexts"):
        map_direct(cdfg, cgra)


# ---------------------------------------------------------------------------
def test_hw_loop_cycle_model():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(kernels.dot_product(), cgra, mapper="list_sched")
    n = 100
    sw = loop_execution_cycles(m, n, hw_loop=False)
    hw = loop_execution_cycles(m, n, hw_loop=True)
    drain = m.schedule_length - m.ii
    assert sw == n * (m.ii + SW_LOOP_OVERHEAD) + drain
    assert hw == HW_LOOP_SETUP + n * m.ii + drain
    assert hw < sw


def test_hw_loop_speedup_grows_with_trip_count():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(kernels.dot_product(), cgra, mapper="list_sched")
    assert loop_speedup(m, 1000) > loop_speedup(m, 10) > 1.0


def test_hw_loop_default_follows_architecture():
    hycube = presets.hycube_like(4, 4)  # hw_loop=True
    m = map_dfg(kernels.dot_product(), hycube, mapper="list_sched")
    assert loop_execution_cycles(m, 50) == loop_execution_cycles(
        m, 50, hw_loop=True
    )


def test_hw_loop_edge_cases():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(kernels.dot_product(), cgra, mapper="list_sched")
    assert loop_execution_cycles(m, 0) == 0
    with pytest.raises(ValueError):
        loop_execution_cycles(m, -1)
