"""Design-space exploration tests."""

import pytest

from repro.arch import presets
from repro.dse.explorer import (
    DesignPoint,
    architecture_cost,
    default_space,
    evaluate_point,
    explore,
    pareto_front,
)


def test_cost_monotone_in_size():
    small = architecture_cost(presets.simple_cgra(2, 2))
    big = architecture_cost(presets.simple_cgra(4, 4))
    assert big > small


def test_cost_counts_features():
    lean = architecture_cost(
        presets.simple_cgra(4, 4, rf_size=2, mem_cells="left")
    )
    rich = architecture_cost(
        presets.simple_cgra(4, 4, rf_size=8, mem_cells="all")
    )
    assert rich > lean


def test_bypass_fabric_costs_more():
    shared = architecture_cost(presets.simple_cgra(4, 4))
    bypass = architecture_cost(presets.hycube_like(4, 4))
    assert bypass > shared


def test_default_space_size():
    assert len(default_space()) == 24


def test_evaluate_point_fields():
    p = evaluate_point(
        {"size": 4, "topology": "mesh", "rf_size": 4,
         "mem_cells": "all"},
        ["dot_product", "vector_add"],
    )
    assert isinstance(p, DesignPoint)
    assert p.success_rate == 1.0
    assert 0 < p.performance <= 1.0
    assert "4x4/mesh" in p.label()


def test_explore_small_space():
    space = [
        {"size": 4, "topology": "mesh", "rf_size": 4, "mem_cells": "all"},
        {"size": 4, "topology": "crossbar", "rf_size": 4,
         "mem_cells": "all"},
    ]
    pts = explore(space, ["dot_product", "if_select"])
    assert len(pts) == 2
    # Crossbar costs more (links) but can only help performance.
    mesh = next(p for p in pts if p.topology == "mesh")
    xbar = next(p for p in pts if p.topology == "crossbar")
    assert xbar.cost > mesh.cost
    assert xbar.performance >= mesh.performance


def test_pareto_front_dominance():
    pts = [
        DesignPoint(4, "mesh", 4, "all", 0.5, 100.0, 1.0),
        DesignPoint(4, "mesh", 8, "all", 0.5, 150.0, 1.0),  # dominated
        DesignPoint(6, "mesh", 4, "all", 0.8, 200.0, 1.0),
        DesignPoint(6, "one_hop", 4, "all", 0.7, 300.0, 1.0),  # dominated
    ]
    front = pareto_front(pts)
    assert [(p.cost, p.performance) for p in front] == [
        (100.0, 0.5), (200.0, 0.8),
    ]


def test_pareto_front_never_empty():
    pts = explore(
        [{"size": 4, "topology": "mesh", "rf_size": 4,
          "mem_cells": "all"}],
        ["vector_add"],
    )
    assert pareto_front(pts) == pts
