"""Top-level API and bench-harness tests."""

import pytest

from repro import available_mappers, compile_source, map_dfg
from repro.arch import presets
from repro.bench import MatrixResult, ascii_table, run_matrix
from repro.ir import kernels


def test_package_exports():
    import repro

    assert repro.__version__
    assert callable(repro.map_dfg)


def test_available_mappers_shape():
    cat = available_mappers()
    assert len(cat) == 24
    sample = cat["list_sched"]
    assert set(sample) >= {
        "family", "subfamily", "kinds", "exact", "solves",
        "modeled_after", "year",
    }


def test_map_dfg_forwards_options():
    m = map_dfg(
        kernels.dot_product(), presets.simple_cgra(4, 4),
        mapper="crimson", seed=3, restarts=2,
    )
    assert m.validate() == []


def test_compile_source_rejects_bad_source():
    with pytest.raises(Exception):
        compile_source("kernel broken {", presets.simple_cgra(2, 2))


def test_run_matrix_records_failures():
    cgra = presets.simple_cgra(2, 2)
    results = run_matrix(["sa_spatial"], ["conv3x3"], cgra)
    assert len(results) == 1
    r = results[0]
    assert not r.ok
    assert "sa_spatial" in r.error
    assert r.row()["ok"] == "FAIL"


def test_run_matrix_success_rows():
    cgra = presets.simple_cgra(4, 4)
    results = run_matrix(
        ["list_sched", "ultrafast"], ["dot_product", "vector_add"], cgra
    )
    assert len(results) == 4
    assert all(r.ok for r in results)
    assert all(r.time_ms >= 0 for r in results)


def test_run_matrix_mapper_opts():
    cgra = presets.simple_cgra(4, 4)
    results = run_matrix(
        ["crimson"], ["dot_product"], cgra,
        mapper_opts={"crimson": {"restarts": 1, "seed": 9}},
    )
    assert results[0].ok


def test_ascii_table_alignment():
    rows = [
        {"name": "a", "value": 1},
        {"name": "longer", "value": 23},
    ]
    text = ascii_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert len({len(l) for l in lines[1:2]}) == 1
    assert "longer" in text


def test_ascii_table_empty():
    assert ascii_table([], title="empty") == "empty"
