"""Multi-bank memory model tests."""

import pytest

from repro.memory.banks import BankedMemory, conflict_schedule


def test_block_placement_bank_of():
    mem = BankedMemory(4, {"A": 0, "B": 2})
    assert mem.bank_of("A", 17) == 0
    assert mem.bank_of("B", 0) == 2


def test_cyclic_interleave_by_address():
    mem = BankedMemory(4)
    assert mem.bank_of("A", 0) == 0
    assert mem.bank_of("A", 5) == 1
    assert mem.bank_of("A", 7) == 3


def test_conflicts_count_serialisation():
    mem = BankedMemory(2, {"A": 0, "B": 0, "C": 1})
    # A and B collide; C proceeds in parallel.
    assert mem.conflicts([("A", 0), ("B", 0), ("C", 0)]) == 1
    # Three on the same bank: two stalls.
    assert mem.conflicts([("A", 0), ("B", 0), ("A", 1)]) == 2
    assert mem.conflicts([("A", 0)]) == 0
    assert mem.conflicts([]) == 0


def test_no_conflicts_across_banks():
    mem = BankedMemory(2, {"A": 0, "B": 1})
    assert mem.conflicts([("A", 0), ("B", 0)]) == 0


def test_conflict_schedule_totals():
    mem = BankedMemory(2, {"A": 0, "B": 0})
    trace = [[("A", 0), ("B", 0)], [("A", 1)], []]
    stalls, total = conflict_schedule(mem, trace)
    assert stalls == 1
    assert total == 4


def test_validation():
    with pytest.raises(ValueError):
        BankedMemory(0)
    with pytest.raises(ValueError):
        BankedMemory(2, {"A": 5})
