"""Bank-assignment and register-allocation tests."""

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.ir import kernels
from repro.memory.banks import BankedMemory
from repro.memory.data_placement import (
    access_conflict_graph,
    greedy_bank_assignment,
    optimal_bank_assignment,
    slot_accesses,
    stall_cycles,
)
from repro.memory.regalloc import (
    allocate_registers,
    register_pressure,
)


@pytest.fixture(scope="module")
def mem_mapping():
    cgra = presets.simple_cgra(4, 4)
    return map_dfg(kernels.dot_product_mem(), cgra, mapper="list_sched",
                   ii=1)


def test_slot_accesses_sees_both_loads(mem_mapping):
    acc = slot_accesses(mem_mapping)
    arrays = [a for arrs in acc.values() for a in arrs]
    assert sorted(arrays) == ["A", "B"]


def test_conflict_graph_when_coscheduled(mem_mapping):
    # At II=1 both loads share the only slot.
    g = access_conflict_graph(mem_mapping)
    assert g.get(frozenset(("A", "B"))) == 1


def test_single_bank_stalls_two_banks_dont(mem_mapping):
    one = BankedMemory(1, {"A": 0, "B": 0})
    two = BankedMemory(2, {"A": 0, "B": 1})
    assert stall_cycles(mem_mapping, one) == 1
    assert stall_cycles(mem_mapping, two) == 0


def test_greedy_assignment_separates_conflicting_arrays(mem_mapping):
    mem = greedy_bank_assignment(mem_mapping, 2)
    assert mem.placement["A"] != mem.placement["B"]
    assert stall_cycles(mem_mapping, mem) == 0


def test_greedy_matches_optimal_here(mem_mapping):
    greedy = greedy_bank_assignment(mem_mapping, 2)
    opt = optimal_bank_assignment(mem_mapping, 2)
    assert stall_cycles(mem_mapping, greedy) == stall_cycles(
        mem_mapping, opt
    )


def test_optimal_rejects_large_instances(mem_mapping):
    with pytest.raises(ValueError, match="exhaustive"):
        optimal_bank_assignment(mem_mapping, 2, max_arrays=1)


# ---------------------------------------------------------------------------
def _mapping_with_holds():
    """Force RF holds: same-cell producer/consumer with a time gap."""
    from repro.arch.tec import HOLD, Step
    from repro.core.mapping import Mapping
    from repro.ir.dfg import DFG, Op

    cgra = presets.simple_cgra(2, 2)
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 0},
        schedule={a: 0, b: 4},
        routes={e: [Step(0, t, HOLD) for t in (1, 2, 3)]},
        ii=8,
    )
    assert m.validate() == []
    return m, a


def test_register_pressure_counts_holds():
    m, val = _mapping_with_holds()
    p = register_pressure(m)
    assert p[(0, 1)] == 1 and p[(0, 2)] == 1 and p[(0, 3)] == 1


def test_rotating_allocation_span():
    m, val = _mapping_with_holds()
    alloc = allocate_registers(m, mode="rotating")
    # Lifetime 3 cycles, II=8: one physical register suffices.
    assert alloc.registers[0][val] == [0]
    assert alloc.total_registers == 1


def test_rotating_allocation_overlapping_iterations():
    """II=2, hold lifetime 4 -> two iteration copies alive: 2 registers."""
    from repro.arch.tec import HOLD, Step
    from repro.core.mapping import Mapping
    from repro.ir.dfg import DFG, Op

    cgra = presets.simple_cgra(2, 2)
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 0},
        schedule={a: 0, b: 5},
        routes={e: [Step(0, t, HOLD) for t in (1, 2, 3, 4)]},
        ii=2,
    )
    assert m.validate() == []
    alloc = allocate_registers(m, mode="rotating")
    assert len(alloc.registers[0][a]) == 2


def test_unified_allocation_no_conflicts_single_value():
    m, val = _mapping_with_holds()
    alloc = allocate_registers(m, mode="unified")
    assert alloc.registers[0][val] == [0]


def test_unknown_mode_rejected():
    m, _ = _mapping_with_holds()
    with pytest.raises(ValueError, match="unknown"):
        allocate_registers(m, mode="stack")


def test_spatial_mapping_allocates_nothing():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(kernels.if_select(), cgra, mapper="graph_drawing")
    alloc = allocate_registers(m)
    assert alloc.total_registers == 0
