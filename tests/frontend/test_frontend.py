"""Front-end tests: lexing, parsing, lowering, end-to-end semantics."""

import pytest

from repro.frontend import compile_to_cdfg, compile_to_dfg, parse, tokenize
from repro.frontend.lexer import LexError
from repro.frontend.lower import LowerError
from repro.frontend.parser import ParseError
from repro.ir.dfg import Op
from repro.ir.interp import DFGInterpreter, evaluate

DOT = """
kernel dot {
    sum = sum + a * b;
    out sum;
}
"""


def test_tokenize_basics():
    toks = tokenize("x = a + 42; # comment\ny = x << 2;")
    kinds = [t.kind for t in toks]
    assert "num" in kinds and "id" in kinds and "<<" in kinds
    assert kinds[-1] == "eof"


def test_tokenize_rejects_junk():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("x = $;")


def test_parse_precedence():
    k = parse("kernel p { y = a + b * c; out y; }")
    assign = k.body[0]
    assert assign.value.op == "+"
    assert assign.value.rhs.op == "*"


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("kernel p { y = ; }")
    with pytest.raises(ParseError):
        parse("kernel p { out a + b; }")  # needs 'as'
    with pytest.raises(ParseError):
        parse("kernel p { y = min(a); out y; }")  # arity


def test_dot_product_source_compiles_and_runs():
    dfg = compile_to_dfg(DOT)
    dfg.check()
    a = [1, 2, 3, 4]
    b = [5, 6, 7, 8]
    out = evaluate(dfg, 4, {"a": a, "b": b})
    assert out["sum"][-1] == sum(x * y for x, y in zip(a, b))


def test_carried_read_has_distance_one():
    dfg = compile_to_dfg(DOT)
    assert any(e.dist == 1 for e in dfg.edges())


def test_delayed_reference():
    src = """
    kernel fir2 {
        y = 2 * x + 3 * x@1;
        out y;
    }
    """
    dfg = compile_to_dfg(src)
    xs = [1, 0, 2, 0]
    out = evaluate(dfg, 4, {"x": xs})
    ref = [2 * xs[i] + 3 * (xs[i - 1] if i else 0) for i in range(4)]
    assert out["y"] == ref


def test_arrays_load_store():
    src = """
    kernel copy2 {
        B[i] = A[i] * 2;
        out i;
    }
    """
    dfg = compile_to_dfg(src)
    interp = DFGInterpreter(dfg, memory={"A": [3, 4], "B": [0, 0]})
    interp.run(2, {"i": [0, 1]})
    assert interp.memory["B"] == [6, 8]


def test_if_else_becomes_diamond():
    src = """
    kernel clamp {
        c = x > hi;
        if (c) { y = hi; } else { y = x; }
        out y;
    }
    """
    cdfg = compile_to_cdfg(src)
    assert cdfg.is_diamond()
    dfg = compile_to_dfg(src)
    out = evaluate(dfg, 3, {"x": [5, 99, 7], "hi": [10, 10, 10]})
    assert out["y"] == [5, 10, 7]


def test_logical_operators():
    src = """
    kernel band {
        ok = (x > lo) && (x < hi);
        out ok;
    }
    """
    dfg = compile_to_dfg(src)
    out = evaluate(dfg, 3, {"x": [5, 0, 20], "lo": 1, "hi": 10})
    assert out["ok"] == [1, 0, 0]


def test_builtins():
    src = """
    kernel m {
        y = max(abs(a - b), min(a, b));
        out y;
    }
    """
    dfg = compile_to_dfg(src)
    out = evaluate(dfg, 2, {"a": [3, -1], "b": [7, 5]})
    assert out["y"] == [max(4, 3), max(6, -1)]


def test_select_builtin():
    dfg = compile_to_dfg(
        "kernel s { y = select(c, a, b); out y; }"
    )
    out = evaluate(dfg, 2, {"c": [1, 0], "a": 10, "b": 20})
    assert out["y"] == [10, 20]


def test_unary_operators():
    dfg = compile_to_dfg("kernel u { y = -x + !z + ~w; out y; }")
    out = evaluate(dfg, 1, {"x": [3], "z": [0], "w": [0]})
    assert out["y"] == [-3 + 1 + ~0]


def test_two_ifs_rejected():
    src = """
    kernel bad {
        if (a) { x = 1; } else { x = 2; }
        if (b) { y = 1; } else { y = 2; }
        out x; out y;
    }
    """
    with pytest.raises(LowerError, match="one top-level if"):
        compile_to_cdfg(src)


def test_nested_if_rejected():
    src = """
    kernel bad {
        if (a) { if (b) { x = 1; } else { x = 2; } } else { x = 3; }
        out x;
    }
    """
    with pytest.raises(LowerError, match="nested"):
        compile_to_cdfg(src)


def test_out_before_if_rejected():
    src = """
    kernel bad {
        out a;
        if (a) { x = 1; } else { x = 2; }
        out x;
    }
    """
    with pytest.raises(LowerError, match="follow the if"):
        compile_to_cdfg(src)


def test_recurrence_across_if_rejected():
    src = """
    kernel bad {
        if (c) { x = x + 1; } else { x = x - 1; }
        out x;
    }
    """
    with pytest.raises(LowerError):
        compile_to_cdfg(src)


def test_if_kernel_with_entry_values_flow_to_join():
    src = """
    kernel f {
        t = a * 2;
        if (t > b) { y = t - b; } else { y = b - t; }
        z = y + t;
        out z;
    }
    """
    dfg = compile_to_dfg(src)
    A, B = [3, 1], [2, 9]
    out = evaluate(dfg, 2, {"a": A, "b": B})
    ref = []
    for a, b in zip(A, B):
        t = a * 2
        y = t - b if t > b else b - t
        ref.append(y + t)
    assert out["z"] == ref


def test_full_flow_source_to_mapping():
    """The complete Fig. 3 journey: source -> mapping."""
    from repro.api import compile_source
    from repro.arch import presets

    m = compile_source(DOT, presets.simple_cgra(4, 4),
                       mapper="list_sched")
    assert m.validate() == []
    assert m.ii == 1  # the dot product pipelines at II=1
