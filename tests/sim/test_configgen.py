"""Context-word generation tests (Fig. 2(c) artifact)."""

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.ir import kernels
from repro.sim.configgen import generate_contexts, render_contexts


@pytest.fixture(scope="module")
def mapping():
    return map_dfg(
        kernels.dot_product(), presets.simple_cgra(4, 4),
        mapper="list_sched", ii=1,
    )


def test_contexts_cover_all_ops(mapping):
    words = generate_contexts(mapping)
    opcodes = {w.opcode for w in words.values()}
    assert "mul" in opcodes and "add" in opcodes


def test_context_slots_within_ii(mapping):
    for (cell, slot) in generate_contexts(mapping):
        assert 0 <= slot < mapping.ii


def test_operand_sources_named(mapping):
    words = generate_contexts(mapping)
    add_word = next(
        w for w in words.values() if w.opcode == "add"
    )
    # The add reads the mul result (a direction or self) and its own
    # previous output (self).
    assert len(add_word.operands) == 2
    assert "self" in add_word.operands


def test_immediate_field_captured():
    m = map_dfg(
        kernels.vector_scale(), presets.simple_cgra(2, 2),
        mapper="list_sched",
    )
    words = generate_contexts(m)
    imms = [w.imm for w in words.values() if w.imm is not None]
    assert 3 in imms or 1 in imms


def test_route_words_emitted():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(kernels.conv3x3(), cgra, mapper="list_sched")
    if m.route_step_count() == 0:
        pytest.skip("mapping needed no routing")
    words = generate_contexts(m)
    assert any(w.routes for w in words.values())


def test_render_mentions_cells(mapping):
    text = render_contexts(mapping)
    assert "cell" in text and "II=1" in text
    assert "mul" in text


def test_spatial_mapping_rejected():
    m = map_dfg(
        kernels.if_select(), presets.simple_cgra(4, 4),
        mapper="graph_drawing",
    )
    with pytest.raises(ValueError, match="modulo"):
        generate_contexts(m)


def test_encode_roundtrip_fields(mapping):
    words = generate_contexts(mapping)
    for w in words.values():
        enc = w.encode()
        assert w.opcode in enc
        assert "src=" in enc and "imm=" in enc
