"""Simulator tests: machine execution == reference interpretation."""

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.ir import kernels
from repro.ir.interp import DFGInterpreter, evaluate
from repro.sim.machine import simulate_mapping


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


@pytest.mark.parametrize(
    "kname,inputs",
    [
        ("dot_product", {"a": [1, 2, 3, 4], "b": [5, 6, 7, 8]}),
        ("vector_add", {"a": [1, 2, 3, 4], "b": [9, 9, 9, 9]}),
        ("sobel_x", {f"p{i}": [i, 2 * i, 3, 1] for i in range(9)}),
        ("iir_biquad", {"x": [1, 0, 2, 0]}),
        ("fir4", {"x": [1, 2, 3, 4]}),
        ("horner", {"x": [2, 3, 1, 0]}),
        ("if_select", {"a": [5, 1, 7, 7], "b": [3, 9, 7, 2]}),
    ],
)
@pytest.mark.parametrize("mapper", ["list_sched", "edge_centric"])
def test_simulation_matches_interpreter(cgra, kname, inputs, mapper):
    dfg = kernels.kernel(kname)
    m = map_dfg(dfg, cgra, mapper=mapper)
    sim = simulate_mapping(m, 4, inputs)
    ref = evaluate(dfg, 4, inputs)
    assert sim.outputs == ref
    assert sim.hazards == []


def test_simulation_with_memory(cgra):
    dfg = kernels.vector_add_mem()
    m = map_dfg(dfg, cgra, mapper="list_sched")
    sim = simulate_mapping(
        m, 3, {"i": [0, 1, 2]},
        memory={"A": [1, 2, 3], "B": [10, 20, 30], "C": [0, 0, 0]},
    )
    assert sim.memory["C"] == [11, 22, 33]
    assert sim.hazards == []  # A/B read-only, C write-only


def test_overlap_throughput_matches_ii(cgra):
    dfg = kernels.dot_product()
    m = map_dfg(dfg, cgra, mapper="list_sched", ii=1)
    n = 50
    sim = simulate_mapping(m, n, {"a": [1] * n, "b": [1] * n})
    # cycles ~ n * II + drain: close to n for II=1.
    assert sim.cycles <= n * m.ii + m.schedule_length
    assert sim.throughput > 0.8


def test_higher_ii_lower_throughput(cgra):
    dfg = kernels.dot_product()
    m1 = map_dfg(dfg, cgra, mapper="list_sched", ii=1)
    m3 = map_dfg(dfg, cgra, mapper="list_sched", ii=3)
    n = 30
    s1 = simulate_mapping(m1, n, {"a": [1] * n, "b": [1] * n})
    s3 = simulate_mapping(m3, n, {"a": [1] * n, "b": [1] * n})
    assert s1.throughput > s3.throughput
    assert s1.outputs == s3.outputs  # same values, different speed


def test_activity_accounting(cgra):
    dfg = kernels.sobel_x()
    m = map_dfg(dfg, cgra, mapper="list_sched")
    n = 5
    sim = simulate_mapping(m, n, {f"p{i}": [1] * n for i in range(9)})
    assert sim.issue_slots == dfg.op_count() * n
    assert sim.route_events == sum(
        sum(1 for s in p if s.kind == "route")
        for p in m.routes.values()
    ) * n


def test_predicated_kernel_simulates(cgra):
    from repro.controlflow import full_predication
    from tests.controlflow.test_predication import make_ite_cdfg, ref

    dfg = full_predication(make_ite_cdfg())
    m = map_dfg(dfg, cgra, mapper="list_sched")
    A, B = [5, 1, 7], [3, 9, 7]
    sim = simulate_mapping(m, 3, {"a": A, "b": B})
    assert sim.outputs["out"] == [ref(a, b) for a, b in zip(A, B)]


def test_spatial_mapping_rejected(cgra):
    m = map_dfg(kernels.if_select(), cgra, mapper="graph_drawing")
    with pytest.raises(ValueError, match="modulo"):
        simulate_mapping(m, 1, {"a": [1], "b": [2]})


def test_missing_input_rejected(cgra):
    m = map_dfg(kernels.dot_product(), cgra, mapper="list_sched")
    with pytest.raises(ValueError, match="missing input"):
        simulate_mapping(m, 2, {"a": [1, 2]})


def test_memory_hazard_detected():
    """A mapping that reorders cross-iteration store->load pairs is
    flagged: iteration k's load fires before iteration k-1's store."""
    from repro.arch.tec import HOLD, Step
    from repro.core.mapping import Mapping
    from repro.ir.dfg import DFG, Op

    from repro.arch.tec import ROUTE

    cgra = presets.simple_cgra(2, 2)
    g = DFG("racy")
    i = g.input("i")
    ld = g.add(Op.LOAD, i, array="A")        # reads A[i]
    st = g.add(Op.STORE, i, ld, array="A")   # writes A[i] back
    g.output(st, "w")
    # At II=1 with the store 3 cycles after the load, iteration 1's
    # load (cycle 1) fires before iteration 0's store (cycle 3).
    e = next(e for e in g.out_edges(ld) if e.dst == st)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={ld: 0, st: 1},
        schedule={ld: 0, st: 3},
        routes={
            # Value travels 0 -> 2 -> 3, read by cell 1 at cycle 3.
            e: [Step(2, 1, ROUTE), Step(3, 2, ROUTE)],
        },
        ii=1,
    )
    assert m.validate() == []
    sim = simulate_mapping(
        m, 2, {"i": [0, 1]}, memory={"A": [7, 7, 7]}
    )
    assert sim.hazards != []
