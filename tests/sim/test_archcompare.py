"""Fig. 1 trade-off model tests: the triangle's shape must hold."""

import pytest

from repro.sim.archcompare import ArchPoint, compare_architectures


@pytest.fixture(scope="module")
def points():
    return {p.name: p for p in compare_architectures()}


def test_all_classes_present(points):
    assert set(points) == {"CPU", "VLIW", "CGRA", "FPGA", "ASIC"}


def test_flexibility_ordering(points):
    """CPU most flexible ... ASIC least — Fig. 1's horizontal axis."""
    assert (
        points["CPU"].flexibility
        > points["VLIW"].flexibility
        > points["CGRA"].flexibility
        > points["FPGA"].flexibility
        > points["ASIC"].flexibility
    )


def test_performance_ordering(points):
    """Hardwired dataflow outruns instruction processors."""
    assert points["ASIC"].performance >= points["FPGA"].performance
    assert points["FPGA"].performance >= points["CGRA"].performance
    assert points["CGRA"].performance > points["CPU"].performance
    assert points["VLIW"].performance > points["CPU"].performance


def test_energy_efficiency_ordering(points):
    """CGRAs sit between processors and hardwired logic (the paper's
    'ideal trade-off' claim)."""
    assert points["CGRA"].efficiency > points["VLIW"].efficiency
    assert points["VLIW"].efficiency > points["CPU"].efficiency
    assert points["ASIC"].efficiency > points["CGRA"].efficiency


def test_cgra_is_the_compromise(points):
    """CGRA dominates CPU/VLIW on efficiency while staying more
    flexible than FPGA/ASIC — the reason the survey exists."""
    cgra = points["CGRA"]
    assert cgra.efficiency > points["CPU"].efficiency
    assert cgra.flexibility > points["FPGA"].flexibility


def test_custom_suite_runs():
    pts = compare_architectures(["vector_add", "dot_product"])
    assert len(pts) == 5
    assert all(isinstance(p, ArchPoint) for p in pts)
    assert all(p.performance > 0 for p in pts)
