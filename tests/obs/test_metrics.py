"""Metrics registry: instruments, snapshots, merges, worker deltas."""

import json
import random

import pytest

from repro.obs.metrics import (
    GROWTH,
    INSTRUMENTS,
    MAP_LATENCY_MS,
    MAPS_TOTAL,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_upper,
    get_metrics,
    merge_snapshots,
    metrics_scope,
    render_prometheus,
    set_metrics,
)
from repro.parallel import pmap


# ---------------------------------------------------------------------------
# Instrument basics
def test_counter_is_monotonic():
    c = Counter("hits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge("depth")
    g.set(7.0)
    g.inc(2.0)
    g.dec(1.0)
    assert g.value == 8.0
    g.merge({"value": 3.0})
    assert g.value == 3.0


def test_histogram_counts_and_percentiles():
    h = Histogram("lat")
    for v in [1.0, 1.0, 2.0, 4.0, 100.0]:
        h.observe(v)
    assert h.count == 5
    assert h.total == 108.0
    assert h.mean == pytest.approx(21.6)
    # The quantile readout is the holding bucket's upper bound: within
    # one GROWTH factor above the true value.
    assert 1.0 <= h.percentile(0.5) <= 2.0 * GROWTH
    assert 100.0 <= h.percentile(0.99) <= 100.0 * GROWTH
    assert h.percentile(0.0) > 0
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_zero_bucket_is_exact():
    h = Histogram("z")
    h.observe(0.0)
    h.observe(0.0)
    assert h.count == 2
    assert h.percentile(0.5) == 0.0


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_registry_iteration_sorted():
    reg = MetricsRegistry()
    reg.counter("b")
    reg.gauge("a")
    assert list(reg) == ["a", "b"]
    assert "a" in reg and "z" not in reg


# ---------------------------------------------------------------------------
# Snapshots and merge algebra
def _random_snapshot(rng):
    """A registry snapshot with random counters and histograms."""
    reg = MetricsRegistry()
    for name in ("alpha", "beta"):
        c = reg.counter(f"{name}_total")
        c.inc(rng.randrange(0, 50))
    for name in ("lat_ms", "work"):
        h = reg.histogram(name)
        for _ in range(rng.randrange(0, 40)):
            h.observe(rng.uniform(0.0, 1000.0))
    return reg.snapshot()


def _counts(snap):
    """The exact (integer) parts of a snapshot, for equality checks."""
    out = {}
    for name, data in snap.items():
        if data["type"] == "counter":
            out[name] = data["value"]
        elif data["type"] == "histogram":
            out[name] = (data["count"], tuple(sorted(data["buckets"].items())))
    return out


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merge_is_commutative(seed):
    rng = random.Random(seed)
    a, b = _random_snapshot(rng), _random_snapshot(rng)
    ab, ba = merge_snapshots(a, b), merge_snapshots(b, a)
    assert _counts(ab) == _counts(ba)
    for name in ab:
        if ab[name]["type"] == "histogram":
            assert ab[name]["sum"] == pytest.approx(ba[name]["sum"])


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_merge_is_associative(seed):
    rng = random.Random(seed)
    a, b, c = (_random_snapshot(rng) for _ in range(3))
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert _counts(left) == _counts(right)
    for name in left:
        if left[name]["type"] == "histogram":
            assert left[name]["sum"] == pytest.approx(right[name]["sum"])


def test_snapshot_is_json_clean():
    rng = random.Random(7)
    snap = _random_snapshot(rng)
    assert json.loads(json.dumps(snap)) == snap


def test_delta_since_then_merge_roundtrips():
    reg = MetricsRegistry()
    reg.counter(MAPS_TOTAL).inc(3)
    reg.histogram(MAP_LATENCY_MS).observe(5.0)
    before = reg.snapshot()
    reg.counter(MAPS_TOTAL).inc(2)
    reg.histogram(MAP_LATENCY_MS).observe(9.0)
    reg.histogram(MAP_LATENCY_MS).observe(0.5)
    delta = reg.delta_since(before)
    assert delta[MAPS_TOTAL]["value"] == 2
    assert delta[MAP_LATENCY_MS]["count"] == 2
    # before + delta == now, exactly on the integer parts.
    rebuilt = merge_snapshots(before, delta)
    assert _counts(rebuilt) == _counts(reg.snapshot())


def test_delta_since_drops_untouched_instruments():
    reg = MetricsRegistry()
    reg.counter("quiet").inc(5)
    before = reg.snapshot()
    reg.counter("busy").inc()
    delta = reg.delta_since(before)
    assert "quiet" not in delta
    assert delta["busy"]["value"] == 1


def test_merge_rejects_unknown_type():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.merge({"x": {"type": "mystery", "value": 1}})


# ---------------------------------------------------------------------------
# Active-registry plumbing and the null object
def test_null_registry_is_default_and_inert():
    assert get_metrics() is NULL_REGISTRY
    assert not NULL_REGISTRY.enabled
    NULL_REGISTRY.counter("x").inc()
    NULL_REGISTRY.histogram("y").observe(3.0)
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.counter("x").value == 0
    assert list(NULL_REGISTRY) == []


def test_metrics_scope_installs_and_restores():
    assert get_metrics() is NULL_REGISTRY
    with metrics_scope() as reg:
        assert get_metrics() is reg
        reg.counter("n").inc()
    assert get_metrics() is NULL_REGISTRY
    assert reg.counter("n").value == 1


def test_set_metrics_none_disables():
    prev = set_metrics(MetricsRegistry())
    try:
        assert get_metrics().enabled
        set_metrics(None)
        assert get_metrics() is NULL_REGISTRY
    finally:
        set_metrics(prev)


def test_instrument_vocabulary_is_unique():
    assert len(INSTRUMENTS) == len(set(INSTRUMENTS))


# ---------------------------------------------------------------------------
# Prometheus exposition
def test_render_prometheus_counter_and_histogram():
    reg = MetricsRegistry()
    reg.counter(MAPS_TOTAL).inc(3)
    h = reg.histogram(MAP_LATENCY_MS)
    h.observe(1.0)
    h.observe(8.0)
    text = render_prometheus(reg)
    assert "# TYPE repro_maps_total counter" in text
    assert "repro_maps_total 3" in text
    assert "# TYPE repro_map_latency_ms histogram" in text
    assert 'repro_map_latency_ms_bucket{le="+Inf"} 2' in text
    assert "repro_map_latency_ms_count 2" in text
    assert "repro_map_latency_ms_sum 9" in text
    # Bucket series are cumulative and non-decreasing.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if "_bucket{" in line
    ]
    assert counts == sorted(counts)


def test_render_prometheus_accepts_snapshot():
    reg = MetricsRegistry()
    reg.gauge("pool").set(4)
    assert "repro_pool 4" in render_prometheus(reg.snapshot())


def test_bucket_upper_brackets_value():
    h = Histogram("x")
    h.observe(37.0)
    (idx,) = h.buckets
    assert bucket_upper(idx) >= 37.0
    assert bucket_upper(idx) / GROWTH <= 37.0


# ---------------------------------------------------------------------------
# Worker delta shipping: parallel totals must equal serial totals.
def _metered_task(x):
    reg = get_metrics()
    reg.counter("tasks_total").inc()
    h = reg.histogram("task_value")
    h.observe(float(x))
    h.observe(float(x) * 2.0)
    return x


def test_pmap_jobs2_matches_serial_totals():
    items = list(range(6))
    with metrics_scope() as serial_reg:
        serial = pmap(_metered_task, items, jobs=1)
    with metrics_scope() as par_reg:
        parallel = pmap(_metered_task, items, jobs=2)
    assert [r.value for r in serial] == [r.value for r in parallel]
    s, p = serial_reg.snapshot(), par_reg.snapshot()
    assert s["tasks_total"] == p["tasks_total"]
    assert s["task_value"]["count"] == p["task_value"]["count"]
    assert s["task_value"]["buckets"] == p["task_value"]["buckets"]
    assert s["task_value"]["sum"] == pytest.approx(p["task_value"]["sum"])


def test_pmap_without_registry_ships_no_metrics():
    assert get_metrics() is NULL_REGISTRY
    results = pmap(_metered_task, [1, 2, 3], jobs=2)
    assert all(r.ok for r in results)
    assert all(r.metrics is None for r in results)
