"""JSONL export round-trip and the ASCII renderers."""

import json

from repro.obs.export import (
    manifest_of,
    read_jsonl,
    spans_from_records,
    to_records,
    write_jsonl,
)
from repro.obs.render import render_flame, render_profile, render_summary
from repro.obs.tracer import CANDIDATES_EXPLORED, Tracer


def _sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("map", mapper="demo") as root:
        with tr.span("ii", ii=3):
            tr.count(CANDIDATES_EXPLORED, 7)
        with tr.span("ii", ii=4):
            tr.count(CANDIDATES_EXPLORED, 2)
    assert root.t_end is not None
    return tr


def test_to_records_flat_preorder_with_parents():
    tr = _sample_tracer()
    recs = to_records(tr)
    assert [r["name"] for r in recs] == ["map", "ii", "ii"]
    assert recs[0]["parent"] is None and recs[0]["depth"] == 0
    assert recs[1]["parent"] == recs[0]["id"] and recs[1]["depth"] == 1
    assert recs[2]["parent"] == recs[0]["id"]
    assert recs[1]["counters"] == {CANDIDATES_EXPLORED: 7}
    assert recs[1]["tags"] == {"ii": 3}
    for r in recs:
        assert r["end"] >= r["start"]
        assert r["dur_ms"] >= 0


def test_jsonl_roundtrip(tmp_path):
    tr = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(tr, path)
    assert n == 4  # manifest header + 3 spans
    # Every line is standalone JSON.
    lines = path.read_text().splitlines()
    assert len(lines) == 4
    for line in lines:
        json.loads(line)
    recs = read_jsonl(path)
    assert manifest_of(recs) is not None
    assert recs[0]["type"] == "manifest"
    assert recs[1:] == to_records(tr)
    # And the tree rebuilds.
    roots = spans_from_records(recs)
    assert len(roots) == 1
    rebuilt = roots[0]
    assert rebuilt.name == "map"
    assert [c.name for c in rebuilt.children] == ["ii", "ii"]
    assert rebuilt.children[0].counters == {CANDIDATES_EXPLORED: 7}
    assert rebuilt.total(CANDIDATES_EXPLORED) == 9


def test_export_accepts_span_and_list(tmp_path):
    tr = _sample_tracer()
    root = tr.root
    assert to_records(root) == to_records(tr)
    assert to_records([root]) == to_records(tr)
    assert write_jsonl([root, root], tmp_path / "two.jsonl") == 7
    assert write_jsonl([root, root], tmp_path / "v1.jsonl", manifest=False) == 6


def test_render_flame_shows_tree_and_counters():
    tr = _sample_tracer()
    text = render_flame(tr)
    lines = text.splitlines()
    assert lines[0].startswith("map")
    assert lines[1].startswith("  ii")  # indented child
    assert "candidates_explored=7" in text
    assert "mapper=demo" in text
    assert "#" in lines[0]  # the bar


def test_render_summary_aggregates_by_name():
    tr = _sample_tracer()
    text = render_summary(tr)
    # One row per distinct span name, with call counts.
    row = next(l for l in text.splitlines() if l.startswith("ii"))
    assert "| 2" in row  # two "ii" calls
    assert "candidates_explored=9" in row


def test_render_profile_includes_totals_line():
    tr = _sample_tracer()
    text = render_profile(tr)
    assert "counters: candidates_explored=9" in text
    assert "per-phase summary" in text


def test_render_profile_empty():
    assert "no spans" in render_profile(Tracer())
