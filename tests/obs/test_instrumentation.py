"""Tracing hooks across mappers, solvers, passes, and the harness."""

import pytest

from repro.arch import presets
from repro.bench.harness import _truncate, run_matrix
from repro.core.registry import create
from repro.ir import kernels
from repro.obs.tracer import (
    CANDIDATES_EXPLORED,
    II_ATTEMPTS,
    SOLVER_CLAUSES,
    SOLVER_NODES,
    get_tracer,
    tracing,
)
from repro.solvers.csp import CSP, CSPUnsat
from repro.solvers.ilp import ILP
from repro.solvers.sat import CNF, SatSolver


@pytest.fixture
def cgra():
    return presets.by_name("simple4x4")


# ---------------------------------------------------------------------------
def test_mapper_map_opens_root_span(cgra):
    dfg = kernels.kernel("fir4")
    with tracing() as tr:
        mapping = create("list_sched").map(dfg, cgra)
    root = tr.root
    assert root.name == "map"
    assert root.tags["mapper"] == "list_sched"
    assert root.tags["dfg"] == "fir4"
    assert root.tags["ii"] == mapping.ii
    assert root.t_end is not None
    # The attempted IIs appear as child spans, one per attempt.
    ii_spans = [s for _, s in root.walk() if s.name == "ii"]
    assert len(ii_spans) >= 1
    assert root.total(II_ATTEMPTS) == len(ii_spans)
    # And the mapping carries its own trace.
    assert mapping.trace is root


def test_mapping_trace_is_none_when_disabled(cgra):
    dfg = kernels.kernel("dot_product")
    mapping = create("list_sched").map(dfg, cgra)
    assert mapping.trace is None


@pytest.mark.parametrize(
    "mapper", ["sa_spatial", "dresc", "list_sched", "bnb"]
)
def test_mappers_emit_inner_loop_counters(cgra, mapper):
    dfg = kernels.kernel("fir4")
    with tracing() as tr:
        create(mapper).map(dfg, cgra)
    assert tr.root.total(CANDIDATES_EXPLORED) > 0


def test_passes_record_spans(cgra):
    from repro.passes import standard_pipeline

    dfg = kernels.kernel("fir4")
    with tracing() as tr:
        standard_pipeline(dfg)
    pipeline = tr.root
    assert pipeline.name == "passes"
    names = {s.name for _, s in pipeline.walk()}
    assert any(n.startswith("pass:") for n in names)


# ---------------------------------------------------------------------------
def test_sat_solver_reports_model_size():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add(a, b)
    cnf.add(-a, b)
    with tracing() as tr:
        assert SatSolver(cnf).solve().sat
    span = tr.root
    assert span.name == "sat_solve"
    assert span.tags["vars"] == 2
    assert span.tags["sat"] is True
    assert span.counters[SOLVER_CLAUSES] == 2


def test_ilp_solver_reports_model_size():
    ilp = ILP()
    x = [ilp.add_var() for _ in range(3)]
    ilp.add_constraint({x[0]: 1, x[1]: 1, x[2]: 1}, "==", 1)
    ilp.set_objective({x[0]: 3.0, x[1]: 1.0, x[2]: 2.0})
    with tracing() as tr:
        ilp.solve()
    span = tr.root
    assert span.name == "ilp_solve"
    assert span.tags["vars"] == 3
    assert span.counters[SOLVER_CLAUSES] == 1
    assert "status" in span.tags


def test_csp_solver_reports_nodes_and_unsat():
    csp = CSP()
    csp.add_var("x", [0, 1])
    csp.add_var("y", [0, 1])
    csp.add_constraint(("x", "y"), lambda x, y: x + y == 5)
    with tracing() as tr:
        with pytest.raises(CSPUnsat):
            csp.solve()
    span = tr.root
    assert span.name == "csp_solve"
    assert span.tags["status"] == "unsat"
    assert SOLVER_NODES in span.counters


def test_solvers_untraced_when_disabled():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add(a)
    assert not get_tracer().enabled
    assert SatSolver(cnf).solve().sat  # must not blow up or trace


# ---------------------------------------------------------------------------
def test_run_matrix_records_traces(cgra):
    results = run_matrix(
        ["list_sched"], ["dot_product", "fir4"], cgra, trace=True
    )
    assert len(results) == 2
    for r in results:
        assert r.ok
        assert r.trace is not None
        assert r.trace.name == "map"
        assert r.trace.tags["dfg"] == r.kernel


def test_run_matrix_no_trace_by_default(cgra):
    (r,) = run_matrix(["list_sched"], ["dot_product"], cgra)
    assert r.trace is None


def test_run_matrix_times_mapper_separately(cgra):
    (r,) = run_matrix(["dresc"], ["fir4"], cgra)
    assert 0 < r.time_ms <= r.total_ms


def test_run_matrix_failure_row_keeps_trace():
    small = presets.by_name("simple2x2")
    (r,) = run_matrix(["sa_spatial"], ["conv3x3"], small, trace=True)
    assert not r.ok
    assert r.error
    assert r.trace is not None  # partial spans survive the failure


def test_matrix_row_includes_truncated_error(cgra):
    small = presets.by_name("simple2x2")
    (r,) = run_matrix(["sa_spatial"], ["conv3x3"], small)
    row = r.row()
    assert "error" in row
    assert row["error"]
    assert len(row["error"]) <= 48
    ok_row = run_matrix(["list_sched"], ["dot_product"], cgra)[0].row()
    assert ok_row["error"] == ""


def test_truncate_collapses_and_bounds():
    assert _truncate("a  b\nc", 10) == "a b c"
    long = "x" * 100
    out = _truncate(long, 10)
    assert len(out) == 10 and out.endswith("…")
