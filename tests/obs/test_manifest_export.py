"""Run manifests and format-2 trace files: headers, round-trips,
untraced-counter preservation."""

import json

from repro.arch import presets
from repro.ir import kernels
from repro.obs.export import (
    manifest_of,
    read_jsonl,
    spans_from_records,
    to_records,
    untraced_counters_of,
    write_jsonl,
)
from repro.obs.manifest import TRACE_FORMAT, git_revision, run_manifest
from repro.obs.render import render_profile
from repro.obs.tracer import Tracer, tracing


# ---------------------------------------------------------------------------
# The manifest record
def test_manifest_basic_fields():
    rec = run_manifest(seed=42, label="smoke")
    assert rec["type"] == "manifest"
    assert rec["format"] == TRACE_FORMAT
    assert rec["seed"] == 42
    assert rec["label"] == "smoke"
    assert rec["python"]
    assert rec["version"]
    # The wall-clock anchor pair: both captured, both floats.
    assert isinstance(rec["unix_time"], float)
    assert isinstance(rec["perf_anchor"], float)
    assert rec["unix_time"] > 1e9  # an actual unix timestamp


def test_manifest_problem_fingerprints():
    cgra = presets.by_name("simple4x4")
    dfg = kernels.kernel("dot_product")
    rec = run_manifest(dfg=dfg, cgra=cgra)
    assert rec["dfg"] == "dot_product"
    assert rec["arch"] == "simple4x4"
    assert rec["dfg_fingerprint"]
    assert rec["arch_fingerprint"]
    # Fingerprints are content-addressed: same problem, same digest.
    again = run_manifest(dfg=dfg, cgra=cgra)
    assert again["dfg_fingerprint"] == rec["dfg_fingerprint"]
    assert again["arch_fingerprint"] == rec["arch_fingerprint"]


def test_manifest_extra_does_not_override():
    rec = run_manifest(extra={"type": "evil", "note": "hi"})
    assert rec["type"] == "manifest"  # setdefault only
    assert rec["note"] == "hi"


def test_manifest_is_json_clean():
    rec = run_manifest(cgra=presets.by_name("simple4x4"))
    assert json.loads(json.dumps(rec)) == rec


def test_git_revision_cached_and_stable():
    assert git_revision() == git_revision()


# ---------------------------------------------------------------------------
# Files with and without the header both round-trip
def _sample_tracer():
    tr = Tracer()
    with tracing(tr):
        with tr.span("map", mapper="demo"):
            tr.count("ii_attempts")
            with tr.span("route"):
                tr.count("routing_attempts", 3)
    return tr


def test_write_jsonl_header_roundtrip(tmp_path):
    tr = _sample_tracer()
    path = tmp_path / "t.jsonl"
    n = write_jsonl(tr, str(path))
    recs = read_jsonl(str(path))
    assert len(recs) == n
    header = manifest_of(recs)
    assert header is not None
    assert recs[0] is header
    assert header["format"] == TRACE_FORMAT
    (root,) = spans_from_records(recs)
    assert root.name == "map"
    assert root.children[0].counters["routing_attempts"] == 3


def test_write_jsonl_headerless_roundtrip(tmp_path):
    tr = _sample_tracer()
    path = tmp_path / "bare.jsonl"
    n = write_jsonl(tr, str(path), manifest=False)
    recs = read_jsonl(str(path))
    assert len(recs) == n
    assert manifest_of(recs) is None  # a format-1 file
    (root,) = spans_from_records(recs)
    assert root.name == "map"


def test_write_jsonl_caller_built_manifest(tmp_path):
    tr = _sample_tracer()
    header = run_manifest(seed=7)
    path = tmp_path / "m.jsonl"
    write_jsonl(tr, str(path), manifest=header)
    recs = read_jsonl(str(path))
    assert manifest_of(recs)["seed"] == 7


def test_reader_skips_unknown_record_types(tmp_path):
    tr = _sample_tracer()
    path = tmp_path / "f.jsonl"
    write_jsonl(tr, str(path))
    with open(path, "a") as fh:
        fh.write(json.dumps({"type": "future_thing", "x": 1}) + "\n")
    (root,) = spans_from_records(read_jsonl(str(path)))
    assert root.name == "map"


# ---------------------------------------------------------------------------
# Untraced counters must not vanish (regression: Tracer.count with no
# open span used to be dropped by both the export and --profile).
def _loose_tracer():
    tr = Tracer()
    tr.count("check_cases", 7)
    tr.count("check_divergences")
    with tracing(tr):
        with tr.span("work"):
            tr.count("candidates_explored", 2)
    tr.count("check_cases", 3)
    return tr


def test_untraced_counters_survive_export(tmp_path):
    tr = _loose_tracer()
    records = to_records(tr)
    synthetic = [r for r in records if r.get("type") == "counters"]
    assert len(synthetic) == 1
    assert untraced_counters_of(records) == {
        "check_cases": 10,
        "check_divergences": 1,
    }
    path = tmp_path / "loose.jsonl"
    write_jsonl(tr, str(path))
    assert untraced_counters_of(read_jsonl(str(path)))["check_cases"] == 10


def test_untraced_counters_render_in_profile():
    out = render_profile(_loose_tracer())
    assert "counters (untraced):" in out
    assert "check_cases=10" in out
    # Span-attached counters keep their own line.
    assert "candidates_explored=2" in out


def test_profile_with_only_loose_counters():
    tr = Tracer()
    tr.count("check_cases", 4)
    out = render_profile(tr)
    assert "counters (untraced): check_cases=4" in out


def test_no_counters_record_when_none_loose():
    tr = _sample_tracer()
    assert all(r.get("type") != "counters" for r in to_records(tr))
