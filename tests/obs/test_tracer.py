"""Span/Tracer core: nesting, timing, counters, disabled path."""

import pytest

from repro.obs.tracer import (
    BACKTRACKS,
    CANDIDATES_EXPLORED,
    COUNTERS,
    NULL_SPAN,
    NULL_TRACER,
    ROUTING_ATTEMPTS,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)


def test_span_nesting_structure():
    tr = Tracer()
    with tr.span("root") as root:
        with tr.span("child_a") as a:
            with tr.span("leaf") as leaf:
                pass
        with tr.span("child_b") as b:
            pass
    assert tr.roots == [root]
    assert root.children == [a, b]
    assert a.children == [leaf]
    assert b.children == []
    # Pre-order walk with depths.
    walked = [(d, s.name) for d, s in root.walk()]
    assert walked == [
        (0, "root"), (1, "child_a"), (2, "leaf"), (1, "child_b"),
    ]


def test_current_tracks_the_stack():
    tr = Tracer()
    assert tr.current is None
    with tr.span("outer") as outer:
        assert tr.current is outer
        with tr.span("inner") as inner:
            assert tr.current is inner
        assert tr.current is outer
    assert tr.current is None
    assert tr.root is outer


def test_timing_monotonic_and_nested():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("inner") as inner:
            for _ in range(1000):
                pass
    assert outer.t_start <= inner.t_start
    assert inner.t_start <= inner.t_end
    assert inner.t_end <= outer.t_end
    assert outer.duration >= inner.duration >= 0.0
    assert outer.dur_ms == pytest.approx(1000 * outer.duration)
    # Self time excludes the child.
    assert outer.self_duration == pytest.approx(
        outer.duration - inner.duration
    )


def test_counters_attach_to_current_span_and_aggregate():
    tr = Tracer()
    with tr.span("root") as root:
        tr.count(CANDIDATES_EXPLORED, 2)
        with tr.span("sub"):
            tr.count(CANDIDATES_EXPLORED, 3)
            tr.count(BACKTRACKS)
    assert root.counters == {CANDIDATES_EXPLORED: 2}
    assert root.total(CANDIDATES_EXPLORED) == 5
    assert root.total(BACKTRACKS) == 1
    assert root.totals() == {CANDIDATES_EXPLORED: 5, BACKTRACKS: 1}
    # Out-of-span counts were zero: everything landed on spans.
    assert tr.counters == {}


def test_count_outside_any_span_goes_to_tracer():
    tr = Tracer()
    tr.count(ROUTING_ATTEMPTS, 4)
    assert tr.counters == {ROUTING_ATTEMPTS: 4}
    assert tr.roots == []


def test_tags_merge():
    tr = Tracer()
    with tr.span("s", a=1) as s:
        s.tag(b=2)
        tr.tag(c=3)
    assert s.tags == {"a": 1, "b": 2, "c": 3}


def test_exception_tags_error_and_propagates():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("boom") as s:
            raise ValueError("nope")
    assert s.tags["error"] == "ValueError"
    assert s.t_end is not None  # span still closed


def test_find_by_name():
    tr = Tracer()
    with tr.span("a"):
        with tr.span("b") as b:
            pass
    assert tr.root.find("b") == [b]
    assert tr.root.find("zzz") == []


def test_disabled_tracer_allocates_no_spans():
    null = NULL_TRACER
    assert not null.enabled
    with null.span("anything", x=1) as s:
        # Always the same singleton: no allocation per span.
        assert s is NULL_SPAN
        with null.span("nested") as s2:
            assert s2 is NULL_SPAN
        s.count(CANDIDATES_EXPLORED)
        s.tag(foo="bar")
    null.count(BACKTRACKS, 10)
    assert not null.roots
    assert dict(null.counters) == {}
    assert dict(NULL_SPAN.counters) == {}
    assert not NULL_SPAN  # falsy, so `if span:` gates enabled-only work


def test_null_span_read_only():
    with pytest.raises(TypeError):
        NULL_SPAN.tags["x"] = 1


def test_default_active_tracer_is_null():
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    tr = Tracer()
    prev = set_tracer(tr)
    try:
        assert get_tracer() is tr
    finally:
        assert set_tracer(prev) is tr
    assert get_tracer() is prev


def test_tracing_context_installs_and_restores():
    before = get_tracer()
    with tracing() as tr:
        assert tr.enabled
        assert get_tracer() is tr
        with tr.span("x"):
            pass
    assert get_tracer() is before
    assert [s.name for s in tr.roots] == ["x"]


def test_tracing_restores_on_exception():
    before = get_tracer()
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError
    assert get_tracer() is before


def test_counter_names_registered():
    assert CANDIDATES_EXPLORED in COUNTERS
    assert BACKTRACKS in COUNTERS
    assert len(COUNTERS) == len(set(COUNTERS))
