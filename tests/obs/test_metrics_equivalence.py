"""Observability must not perturb results: the mapping produced with
metrics + tracing enabled is identical to the one produced with both
disabled (the null-object path).  "Identical" is checked on a
canonical JSON document of every deterministic mapping field."""

import json

import pytest

from repro.arch import presets
from repro.core.registry import create
from repro.ir import kernels
from repro.obs.metrics import metrics_scope
from repro.obs.tracer import tracing


def _doc(mapping):
    """Canonical JSON of the result fields (wall-clock and trace are
    observational by definition and excluded)."""
    return json.dumps(
        {
            "kind": mapping.kind,
            "ii": mapping.ii,
            "mapper": mapping.mapper,
            "binding": {str(k): v for k, v in sorted(mapping.binding.items())},
            "schedule": {
                str(k): v for k, v in sorted(mapping.schedule.items())
            },
            "routes": sorted(
                f"{e}:{steps}" for e, steps in mapping.routes.items()
            ),
            "coexec": sorted(sorted(pair) for pair in mapping.coexec),
        },
        sort_keys=True,
    )


@pytest.mark.parametrize(
    "mapper,kernel",
    [
        ("list_sched", "dot_product"),
        ("edge_centric", "fir4"),
        ("dresc", "dot_product"),
        ("sa_spatial", "fir4"),
    ],
)
def test_mapping_identical_with_and_without_observability(mapper, kernel):
    cgra = presets.by_name("simple4x4")
    dfg = kernels.kernel(kernel)

    plain = create(mapper, seed=0).map(dfg, cgra)
    with metrics_scope() as reg, tracing() as tr:
        observed = create(mapper, seed=0).map(dfg, cgra)

    assert _doc(observed) == _doc(plain)
    # And observability actually ran: the run was recorded, not skipped.
    assert tr.root is not None
    assert "maps_total" in reg
    # The plain run left no trace behind.
    assert plain.trace is None
    assert observed.trace is tr.root


def test_metrics_alone_do_not_attach_traces():
    cgra = presets.by_name("simple4x4")
    dfg = kernels.kernel("dot_product")
    with metrics_scope() as reg:
        mapping = create("list_sched", seed=0).map(dfg, cgra)
    assert mapping.trace is None
    assert reg.counter("maps_total").value == 1
    assert reg.histogram("map_latency_ms").count == 1
