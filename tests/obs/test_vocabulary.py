"""The counter/instrument vocabularies stay live: every name defined
in the tracer/metrics modules must be emitted by at least one
instrumentation site.  A constant nothing references is either dead
vocabulary or an instrumentation site that silently lost its hook —
both are bugs this test turns into a named failure."""

import re
from pathlib import Path

import repro.obs.metrics as metrics_mod
import repro.obs.tracer as tracer_mod
from repro.obs.metrics import INSTRUMENTS
from repro.obs.tracer import COUNTERS

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _constant_names(module, values):
    """Map each vocabulary value back to its constant's identifier."""
    names = {}
    for attr, val in vars(module).items():
        if attr.isupper() and val in values:
            names[val] = attr
    assert set(names) == set(values)
    return names


def _sources_excluding(defining_file):
    for path in sorted(SRC.rglob("*.py")):
        if path.resolve() == Path(defining_file).resolve():
            continue
        yield path, path.read_text()


def _used_somewhere(identifier, sources):
    pattern = re.compile(rf"\b{identifier}\b")
    return [path for path, text in sources if pattern.search(text)]


def test_every_trace_counter_has_an_emission_site():
    names = _constant_names(tracer_mod, COUNTERS)
    sources = list(_sources_excluding(tracer_mod.__file__))
    unused = [
        ident for ident in names.values()
        if not _used_somewhere(ident, sources)
    ]
    assert not unused, f"COUNTERS with no instrumentation site: {unused}"


def test_every_metric_instrument_has_an_emission_site():
    names = _constant_names(metrics_mod, INSTRUMENTS)
    sources = list(_sources_excluding(metrics_mod.__file__))
    unused = [
        ident for ident in names.values()
        if not _used_somewhere(ident, sources)
    ]
    assert not unused, f"INSTRUMENTS with no instrumentation site: {unused}"


def test_vocabularies_do_not_collide():
    assert not set(COUNTERS) & set(INSTRUMENTS)
