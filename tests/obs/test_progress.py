"""Convergence telemetry: ProgressSeries, tracer emission, rendering."""

import pytest

from repro.arch import presets
from repro.core.registry import create
from repro.ir import kernels
from repro.obs.export import spans_from_records, to_records
from repro.obs.progress import DEFAULT_MAX_SAMPLES, ProgressSeries
from repro.obs.render import render_convergence, render_profile
from repro.obs.tracer import NULL_TRACER, Tracer, tracing


# ---------------------------------------------------------------------------
# The series itself
def test_series_records_relative_times():
    s = ProgressSeries("cost")
    s.note(10.0, t=100.0)
    s.note(8.0, t=100.5)
    s.note(5.0, t=101.0)
    assert s.samples == [(0.0, 10.0), (0.5, 8.0), (1.0, 5.0)]
    assert s.final == 5.0
    assert s.best == 5.0
    assert s.duration == 1.0
    assert len(s) == 3


def test_series_thinning_bounds_and_keeps_endpoints():
    s = ProgressSeries("cost", max_samples=16)
    for i in range(10_000):
        s.note(float(10_000 - i), t=float(i))
    assert len(s) <= 16
    assert s.samples[0] == (0.0, 10_000.0)  # first sample survives
    assert s.final == 1.0                   # newest sample survives
    # Monotone input stays monotone after decimation.
    values = [v for _, v in s.samples]
    assert values == sorted(values, reverse=True)


def test_series_default_cap():
    s = ProgressSeries("x")
    for i in range(5 * DEFAULT_MAX_SAMPLES):
        s.note(float(i), t=float(i))
    assert len(s) <= DEFAULT_MAX_SAMPLES


def test_series_rejects_tiny_cap():
    with pytest.raises(ValueError):
        ProgressSeries("x", max_samples=2)


def test_series_dict_roundtrip():
    s = ProgressSeries("cost")
    for i, v in enumerate([9.0, 4.0, 2.0]):
        s.note(v, t=float(i))
    back = ProgressSeries.from_dict(s.to_dict())
    assert back.name == "cost"
    assert back.samples == s.samples
    assert back.final == 2.0


# ---------------------------------------------------------------------------
# Emission through the tracer
def test_progress_attaches_to_root_span():
    tr = Tracer()
    with tracing(tr):
        with tr.span("map"):
            with tr.span("anneal"):
                tr.progress("best_cost", 12.0)
                tr.progress("best_cost", 7.0)
    root = tr.root
    assert root.progress is not None
    series = root.progress["best_cost"]
    assert [v for _, v in series.samples] == [12.0, 7.0]
    # The inner span carries nothing — series live on the root.
    assert root.children[0].progress is None


def test_progress_without_open_span_lands_on_tracer():
    tr = Tracer()
    tr.progress("loose", 3.0)
    assert "loose" in tr.series
    assert tr.series["loose"].final == 3.0
    assert tr.roots == []


def test_null_tracer_progress_is_noop():
    NULL_TRACER.progress("anything", 1.0)  # must not raise or record
    assert dict(NULL_TRACER.series) == {}


def test_progress_survives_export_roundtrip():
    tr = Tracer()
    with tracing(tr):
        with tr.span("map"):
            for i, v in enumerate([30.0, 20.0, 15.0]):
                tr.progress("dresc.best_cost", v)
    records = to_records(tr)
    (root,) = spans_from_records(records)
    series = root.progress["dresc.best_cost"]
    assert [v for _, v in series.samples] == [30.0, 20.0, 15.0]


# ---------------------------------------------------------------------------
# Rendering
def _traced_series(values):
    tr = Tracer()
    with tracing(tr):
        with tr.span("map"):
            for i, v in enumerate(values):
                tr.progress("best_cost", v)
    return tr


def test_render_convergence_plots_series():
    tr = _traced_series([100.0, 60.0, 30.0, 10.0])
    out = render_convergence(tr)
    assert "convergence:" in out
    assert "best_cost" in out
    assert "n=4" in out
    assert "final=10" in out
    assert "*" in out  # the staircase canvas


def test_render_convergence_flat_series():
    tr = _traced_series([5.0, 5.0, 5.0])
    out = render_convergence(tr)
    assert "(flat at 5)" in out


def test_render_convergence_empty_source():
    assert render_convergence(Tracer()) == ""


def test_render_convergence_caps_plot_count():
    tr = Tracer()
    with tracing(tr):
        with tr.span("map"):
            for k in range(9):
                for v in (2.0, 1.0):
                    tr.progress(f"series_{k}", v)
    out = render_convergence(tr, max_plots=2)
    # Two full plots, the remaining seven as one-line summaries.
    assert out.count("|") >= 2
    assert "series_8" in out


def test_render_profile_includes_convergence():
    tr = _traced_series([9.0, 3.0])
    out = render_profile(tr)
    assert "convergence:" in out
    assert "best_cost" in out


def test_render_convergence_includes_loose_series():
    tr = Tracer()
    tr.progress("loose_metric", 4.0)
    tr.progress("loose_metric", 2.0)
    assert "loose_metric" in render_convergence(tr)


# ---------------------------------------------------------------------------
# Mappers actually emit series
@pytest.mark.parametrize(
    "mapper,series_name",
    [
        ("dresc", "dresc.best_cost"),
        ("sa_spatial", "sa_spatial.best_cost"),
    ],
)
def test_annealers_emit_best_cost_series(mapper, series_name):
    cgra = presets.by_name("simple4x4")
    dfg = kernels.kernel("fir4")
    with tracing() as tr:
        create(mapper, seed=0).map(dfg, cgra)
    root = tr.root
    assert root.progress is not None
    series = root.progress[series_name]
    assert len(series) >= 1
    # Best cost is monotonically non-increasing: only improvements emit.
    values = [v for _, v in series.samples]
    assert values == sorted(values, reverse=True)
