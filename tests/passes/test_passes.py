"""Middle-end passes: unit behaviour + semantics preservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import kernels, randdfg
from repro.ir.dfg import DFG, Op
from repro.ir.interp import evaluate
from repro.passes import (
    algebraic_simplify,
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    standard_pipeline,
    unroll,
)


def test_constant_fold_collapses_tree():
    g = DFG()
    a = g.const(3)
    b = g.const(4)
    s = g.add(Op.ADD, a, b)
    m = g.add(Op.MUL, s, g.const(2))
    g.output(m, "y")
    out = constant_fold(g)
    assert out.op_count() == 0
    assert evaluate(out, 1, {})["y"] == [14]


def test_constant_fold_keeps_div_by_zero():
    g = DFG()
    a = g.const(1)
    z = g.const(0)
    d = g.add(Op.DIV, a, z)
    g.output(d, "y")
    out = constant_fold(g)
    assert any(n.op is Op.DIV for n in out.nodes())


def test_constant_fold_skips_carried_edges():
    g = kernels.accumulate()
    out = constant_fold(g)
    assert any(n.op is Op.ADD for n in out.nodes())


@pytest.mark.parametrize(
    "build,expect_ops",
    [
        (lambda g, x: g.add(Op.ADD, x, g.const(0)), 0),
        (lambda g, x: g.add(Op.MUL, x, g.const(1)), 0),
        (lambda g, x: g.add(Op.MUL, x, g.const(0)), 0),
        (lambda g, x: g.add(Op.SHL, x, g.const(0)), 0),
        (lambda g, x: g.add(Op.SUB, x, x), 0),
        (lambda g, x: g.add(Op.XOR, x, x), 0),
        (lambda g, x: g.add(Op.OR, x, g.const(0)), 0),
    ],
)
def test_algebraic_identities(build, expect_ops):
    g = DFG()
    x = g.input("x")
    n = build(g, x)
    g.output(n, "y")
    out = dead_code_elimination(algebraic_simplify(g))
    assert out.op_count() == expect_ops


def test_algebraic_preserves_semantics():
    g = DFG()
    x = g.input("x")
    y = g.add(Op.ADD, x, g.const(0))
    z = g.add(Op.MUL, y, g.const(1))
    g.output(z, "y")
    out = algebraic_simplify(g)
    assert evaluate(out, 2, {"x": [5, 7]})["y"] == [5, 7]


def test_cse_merges_duplicates():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    s1 = g.add(Op.ADD, a, b)
    s2 = g.add(Op.ADD, a, b)
    m = g.add(Op.MUL, s1, s2)
    g.output(m, "y")
    out = common_subexpression_elimination(g)
    assert sum(1 for n in out.nodes() if n.op is Op.ADD) == 1
    assert evaluate(out, 1, {"a": [2], "b": [3]})["y"] == [25]


def test_cse_respects_commutativity():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    s1 = g.add(Op.ADD, a, b)
    s2 = g.add(Op.ADD, b, a)
    g.output(g.add(Op.SUB, s1, s2), "y")
    out = common_subexpression_elimination(g)
    assert sum(1 for n in out.nodes() if n.op is Op.ADD) == 1


def test_cse_never_merges_loads():
    g = DFG()
    i = g.input("i")
    l1 = g.add(Op.LOAD, i, array="A")
    l2 = g.add(Op.LOAD, i, array="A")
    g.output(g.add(Op.ADD, l1, l2), "y")
    out = common_subexpression_elimination(g)
    assert sum(1 for n in out.nodes() if n.op is Op.LOAD) == 2


def test_dce_drops_unused_keeps_stores():
    g = DFG()
    x = g.input("x")
    dead = g.add(Op.MUL, x, x)
    live = g.add(Op.NEG, x)
    g.add(Op.STORE, x, live, array="A")
    out = dead_code_elimination(g)
    assert dead not in out
    assert any(n.op is Op.STORE for n in out.nodes())


def test_standard_pipeline_on_redundant_kernel():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.ADD, x, g.const(0))      # identity
    b = g.add(Op.MUL, a, g.const(1))      # identity
    c1 = g.add(Op.ADD, b, g.const(5))
    c2 = g.add(Op.ADD, b, g.const(5))     # CSE
    g.add(Op.MUL, x, g.const(0))          # dead
    g.output(g.add(Op.SUB, c1, c2), "y")  # x - x -> 0
    out = standard_pipeline(g)
    assert out.op_count() == 0
    assert evaluate(out, 1, {"x": [9]})["y"] == [0]


@given(seed=st.integers(0, 200), n=st.integers(3, 20))
@settings(max_examples=30, deadline=None)
def test_pipeline_preserves_semantics_on_random_dfgs(seed, n):
    g = randdfg.layered(n, seed=seed)
    out = standard_pipeline(g)
    ins = {
        node.name: [1, 7, 3]
        for node in g.nodes()
        if node.op is Op.INPUT
    }
    assert evaluate(g, 3, ins) == evaluate(out, 3, ins)


# ---------------------------------------------------------------------------
def test_unroll_factor_one_is_copy():
    g = kernels.dot_product()
    assert unroll(g, 1).op_count() == g.op_count()


def test_unroll_replicates_body():
    g = kernels.vector_add()
    u = unroll(g, 3)
    assert u.op_count() == 3 * g.op_count()
    out = evaluate(
        u, 2,
        {f"a_{i}": [1, 2] for i in range(3)}
        | {f"b_{i}": [10, 20] for i in range(3)},
    )
    assert out["c_0"] == [11, 22]
    assert out["c_2"] == [11, 22]


def test_unroll_rewires_recurrence():
    g = kernels.accumulate()
    u = unroll(g, 2)
    # Flat stream 1..6 split as evens/odds across the two copies.
    out = evaluate(u, 3, {"a_0": [1, 3, 5], "a_1": [2, 4, 6]})
    # copy 1 of unrolled iteration k sees flat prefix sums of 2k+2.
    assert out["sum_1"] == [3, 10, 21]
    assert out["sum_0"] == [1, 6, 15]


def test_unroll_raises_ilp():
    """Unrolling the accumulator halves the recurrence pressure."""
    from repro.arch import presets
    from repro.core.problem import MappingProblem

    g = kernels.accumulate()
    u = unroll(g, 2)
    cgra = presets.simple_cgra(4, 4)
    # Two adds per unrolled iteration, still RecMII 1 per copy chain...
    # the unrolled graph processes 2 elements per initiation.
    assert MappingProblem(u, cgra).rec_mii <= 2
    u.check()


def test_unroll_bad_factor():
    with pytest.raises(ValueError):
        unroll(kernels.vector_add(), 0)
