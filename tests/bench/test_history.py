"""The perf-regression ledger: recording, baseline selection, and
noise-aware comparison — including the injected-regression drill the
ledger exists for."""

import json

import pytest

from repro.arch import presets
from repro.bench.history import (
    DEFAULT_SLICE,
    ENTRY_SCHEMA,
    Comparison,
    append_entry,
    compare_entries,
    load_entries,
    render_comparison,
    render_entries,
    run_slice,
    select_baseline,
)
from repro.cli import main


@pytest.fixture(scope="module")
def cgra():
    return presets.by_name("simple4x4")


@pytest.fixture(scope="module")
def entry(cgra):
    """One real recorded entry (module-scoped: the slice is the
    expensive part of these tests)."""
    return run_slice(cgra, repeats=1, label="test")


# ---------------------------------------------------------------------------
# Recording
def test_run_slice_entry_shape(entry):
    assert entry["schema"] == ENTRY_SCHEMA
    assert entry["repeats"] == 1
    manifest = entry["manifest"]
    assert manifest["type"] == "manifest"
    assert manifest["arch"] == "simple4x4"
    assert manifest["arch_fingerprint"]
    assert manifest["label"] == "test"
    cells = entry["cells"]
    assert [(c["mapper"], c["kernel"]) for c in cells] == list(DEFAULT_SLICE)
    for cell in cells:
        assert cell["ok"]
        assert cell["ii"] >= 1
        assert cell["time_ms"] >= cell["time_ms_min"] >= 0
    # The slice ran under its own registry and recorded real work.
    metrics = entry["metrics"]
    assert metrics["matrix_cells_total"]["value"] == len(DEFAULT_SLICE)
    assert metrics["maps_total"]["value"] == len(DEFAULT_SLICE)
    assert metrics["map_latency_ms"]["count"] == len(DEFAULT_SLICE)


def test_run_slice_rejects_bad_repeats(cgra):
    with pytest.raises(ValueError):
        run_slice(cgra, repeats=0)


def test_run_slice_parallel_same_work_counts(cgra, entry):
    """The parallel slice changes *where* cells run, never the work:
    its deterministic totals must match the serial entry's exactly."""
    par = run_slice(cgra, repeats=1, label="test", jobs=2)
    assert par["jobs"] == 2
    assert entry["jobs"] == 1
    assert [
        (c["mapper"], c["kernel"], c["ok"], c["ii"])
        for c in par["cells"]
    ] == [
        (c["mapper"], c["kernel"], c["ok"], c["ii"])
        for c in entry["cells"]
    ]

    def work(metrics):
        out = {}
        for name, data in metrics.items():
            if data["type"] == "counter":
                out[name] = data["value"]
            elif data["type"] == "histogram":
                out[f"{name}.count"] = data["count"]
        return out

    assert work(par["metrics"]) == work(entry["metrics"])
    # and the two entries diff cleanly in the ledger's own terms
    comparisons = compare_entries(entry, par)
    counts = [c for c in comparisons if c.cls == "count"]
    assert counts and not any(c.regressed for c in counts)


def test_append_and_load_roundtrip(entry, tmp_path):
    path = tmp_path / "history" / "simple4x4.jsonl"
    append_entry(entry, str(path))
    append_entry(entry, str(path))
    entries = load_entries(str(path))
    assert len(entries) == 2
    assert entries[0] == json.loads(json.dumps(entry))  # JSON-clean


def test_load_entries_missing_file(tmp_path):
    assert load_entries(str(tmp_path / "nope.jsonl")) == []


def test_load_entries_corrupt_line_names_path_and_line(tmp_path):
    """A truncated append or hand-edit must surface as a ValueError
    naming file and line, never a raw JSONDecodeError traceback."""
    path = tmp_path / "simple4x4.jsonl"
    path.write_text('{"schema": 1, "cells": []}\n{"truncat\n')
    with pytest.raises(ValueError) as exc:
        load_entries(str(path))
    msg = str(exc.value)
    assert "corrupt ledger" in msg
    assert f"{path}:2" in msg


def test_load_entries_skips_blank_lines(tmp_path):
    path = tmp_path / "simple4x4.jsonl"
    path.write_text('{"schema": 1}\n\n  \n{"schema": 1}\n')
    assert len(load_entries(str(path))) == 2


# ---------------------------------------------------------------------------
# Baseline selection
def _fake_entries():
    return [
        {"manifest": {"git_sha": "aaa111"}, "cells": []},
        {"manifest": {"git_sha": "bbb222"}, "cells": []},
        {"manifest": {"git_sha": "aaa333"}, "cells": []},
    ]


def test_select_baseline_semantics():
    entries = _fake_entries()
    assert select_baseline(entries) is entries[-1]
    assert select_baseline(entries, "last") is entries[-1]
    assert select_baseline(entries, "0") is entries[0]
    assert select_baseline(entries, "-2") is entries[1]
    assert select_baseline(entries, "bbb") is entries[1]
    # Sha prefixes resolve newest-first.
    assert select_baseline(entries, "aaa") is entries[2]


def test_select_baseline_errors():
    with pytest.raises(ValueError):
        select_baseline([], "last")
    entries = _fake_entries()
    with pytest.raises(ValueError):
        select_baseline(entries, "9")
    with pytest.raises(ValueError):
        select_baseline(entries, "deadbeef")


# ---------------------------------------------------------------------------
# Comparison
def test_compare_identical_entries_is_clean(entry):
    comparisons = compare_entries(entry, entry)
    assert comparisons
    assert not any(c.regressed for c in comparisons)
    report = render_comparison(comparisons)
    assert "0 regression(s)" in report


def test_compare_flags_injected_count_regression(entry):
    tampered = json.loads(json.dumps(entry))
    # The baseline "did a third of the work": a fresh run then shows a
    # 3x count blowup, far beyond the 2% tolerance.
    tampered["metrics"]["matrix_cells_total"]["value"] = 1
    comparisons = compare_entries(tampered, entry)
    bad = [c for c in comparisons if c.regressed]
    assert [c.metric for c in bad] == ["matrix_cells_total"]
    report = render_comparison(comparisons)
    assert "matrix_cells_total" in report
    assert "REGRESSED" in report
    assert "1 regression(s)" in report


def test_compare_flags_injected_time_regression(entry):
    slow = json.loads(json.dumps(entry))
    for cell in slow["cells"]:
        cell["time_ms"] = cell["time_ms"] * 100 + 1000.0
    comparisons = compare_entries(entry, slow)
    bad = {c.metric for c in comparisons if c.regressed}
    assert any(m.endswith(".time_ms") for m in bad)


def test_compare_timing_noise_within_tolerance_passes(entry):
    wobbly = json.loads(json.dumps(entry))
    for cell in wobbly["cells"]:
        cell["time_ms"] = round(cell["time_ms"] * 1.3, 3)  # < 75% rtol
    comparisons = compare_entries(entry, wobbly)
    assert not any(c.regressed for c in comparisons)


def test_compare_flags_ii_and_ok_regressions(entry):
    worse = json.loads(json.dumps(entry))
    worse["cells"][0]["ii"] += 1
    worse["cells"][1]["ok"] = False
    bad = {
        c.metric for c in compare_entries(entry, worse) if c.regressed
    }
    m0, k0 = DEFAULT_SLICE[0]
    m1, k1 = DEFAULT_SLICE[1]
    assert f"{m0}/{k0}.ii" in bad
    assert f"{m1}/{k1}.ok" in bad


def test_compare_missing_cell_regresses(entry):
    shrunk = json.loads(json.dumps(entry))
    dropped = shrunk["cells"].pop()
    bad = {
        c.metric for c in compare_entries(entry, shrunk) if c.regressed
    }
    assert f"{dropped['mapper']}/{dropped['kernel']}.present" in bad


def test_compare_normalizes_by_repeats(entry):
    doubled = json.loads(json.dumps(entry))
    doubled["repeats"] = 2
    for data in doubled["metrics"].values():
        if data["type"] == "counter":
            data["value"] *= 2
        elif data["type"] == "histogram":
            data["count"] *= 2
            data["sum"] *= 2
            data["buckets"] = {
                k: v * 2 for k, v in data["buckets"].items()
            }
    comparisons = compare_entries(entry, doubled)
    assert not any(c.regressed for c in comparisons)


def test_comparison_delta_pct():
    c = Comparison("m", "count", 10.0, 15.0, regressed=True)
    assert c.delta_pct == pytest.approx(50.0)
    assert c.row()["delta"] == "+50.0%"
    z = Comparison("z", "count", 0.0, 1.0, regressed=True)
    assert z.row()["delta"] == "inf"


def test_render_entries_lists_ledger(entry):
    out = render_entries([entry, entry])
    assert "bench history" in out
    assert "test" in out  # the label column


# ---------------------------------------------------------------------------
# The CLI drill: record, clean re-compare, injected regression.
def test_cli_record_compare_and_injected_regression(tmp_path, capsys):
    hist = str(tmp_path / "history")
    common = [
        "--arch", "simple4x4", "--history-dir", hist, "--repeats", "1",
    ]
    assert main(["bench", "compare", "last"] + common) == 2  # empty ledger
    assert "run `repro bench record`" in capsys.readouterr().err

    assert main(["bench", "record", "--note", "baseline"] + common) == 0
    out = capsys.readouterr().out
    assert "recorded entry" in out and "baseline" in out

    # Unchanged code vs its own recording: clean.
    assert main(["bench", "compare", "last"] + common) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    # Inject a work regression into the recorded baseline and re-diff.
    path = tmp_path / "history" / "simple4x4.jsonl"
    entries = [json.loads(l) for l in path.read_text().splitlines()]
    entries[-1]["metrics"]["maps_total"]["value"] = 1
    path.write_text(
        "\n".join(json.dumps(e) for e in entries) + "\n"
    )
    assert main(["bench", "compare", "last"] + common) == 3
    out = capsys.readouterr().out
    assert "maps_total" in out and "REGRESSED" in out

    # --warn-only reports but does not fail.
    assert main(["bench", "compare", "last", "--warn-only"] + common) == 0
    assert "REGRESSED" in capsys.readouterr().out

    assert main(["bench", "list"] + common) == 0
    assert "bench history" in capsys.readouterr().out


def test_cli_corrupt_ledger_is_a_clean_exit_2(tmp_path, capsys):
    hist = tmp_path / "history"
    hist.mkdir()
    (hist / "simple4x4.jsonl").write_text(
        '{"schema": 1, "cells": []}\n{"truncat\n'
    )
    common = ["--arch", "simple4x4", "--history-dir", str(hist)]
    assert main(["bench", "list"] + common) == 2
    err = capsys.readouterr().err
    assert "corrupt ledger" in err and "simple4x4.jsonl:2" in err
    assert main(["bench", "compare", "last", "--repeats", "1"] + common) == 2
    assert "corrupt ledger" in capsys.readouterr().err


def test_cli_bad_sha_baseline_is_a_clean_exit_2(entry, tmp_path, capsys):
    hist = tmp_path / "history"
    append_entry(entry, str(hist / "simple4x4.jsonl"))
    assert main([
        "bench", "compare", "deadbeef",
        "--arch", "simple4x4", "--history-dir", str(hist),
        "--repeats", "1",
    ]) == 2
    assert "deadbeef" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The serving slice
def test_run_serve_slice_entry_shape_and_self_compare():
    from repro.bench.history import SERVE_BATCH, run_serve_slice

    entry = run_serve_slice("simple4x4", repeats=1, label="t", jobs=2)
    assert entry["schema"] == ENTRY_SCHEMA
    assert entry["jobs"] == 2
    cells = {(c["mapper"], c["kernel"]): c for c in entry["cells"]}
    n = len(SERVE_BATCH)
    assert set(cells) == {
        ("serve", f"batch{n}"), ("serve", "single"), ("direct", f"batch{n}"),
    }
    for cell in cells.values():
        assert cell["ok"]
        assert cell["time_ms"] >= cell["time_ms_min"] >= 0
    assert cells[("serve", "single")]["ii"] >= 1
    # The daemon's own counters made it into the snapshot: one timed
    # repeat = the batch plus the single request, dedup exercised.
    metrics = entry["metrics"]
    assert metrics["serve_requests_total"]["value"] == n + 1
    assert metrics["pool_dedup_total"]["value"] == 2
    # and the entry diffs cleanly against itself in ledger terms
    comparisons = compare_entries(entry, entry)
    assert comparisons
    assert not any(c.regressed for c in comparisons)


def test_run_serve_slice_rejects_bad_repeats():
    from repro.bench.history import run_serve_slice

    with pytest.raises(ValueError):
        run_serve_slice("simple4x4", repeats=0)


def test_cli_serve_slice_keeps_its_own_ledger(tmp_path, capsys):
    hist = str(tmp_path / "history")
    common = [
        "--arch", "simple4x4", "--history-dir", hist, "--repeats", "1",
        "--slice", "serve", "--jobs", "2",
    ]
    assert main(["bench", "record", "--note", "serve"] + common) == 0
    capsys.readouterr()
    path = tmp_path / "history" / "simple4x4-serve.jsonl"
    assert path.exists()
    assert not (tmp_path / "history" / "simple4x4.jsonl").exists()
    assert main(["bench", "compare", "last"] + common) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_cli_parallel_slice_keeps_its_own_ledger(tmp_path, capsys):
    hist = str(tmp_path / "history")
    common = [
        "--arch", "simple4x4", "--history-dir", hist, "--repeats", "1",
        "--slice", "parallel", "--jobs", "2",
    ]
    assert main(["bench", "record", "--note", "pool"] + common) == 0
    capsys.readouterr()
    # separate file: pool timings never diff against serial entries
    path = tmp_path / "history" / "simple4x4-parallel.jsonl"
    assert path.exists()
    assert not (tmp_path / "history" / "simple4x4.jsonl").exists()
    entries = [json.loads(l) for l in path.read_text().splitlines()]
    assert entries[-1]["jobs"] == 2
    assert main(["bench", "compare", "last"] + common) == 0
    assert "0 regression(s)" in capsys.readouterr().out
