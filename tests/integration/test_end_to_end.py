"""End-to-end integration: random programs through the whole stack.

The strongest property this package can state: for any well-formed
DFG, mapping it (any robust mapper, any II the mapper picks) and
executing the mapping cycle-accurately yields exactly the sequential
reference semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source, map_dfg
from repro.arch import presets
from repro.core.metrics import metrics_of
from repro.ir import randdfg
from repro.ir.dfg import Op
from repro.ir.interp import evaluate
from repro.sim.machine import simulate_mapping


@given(seed=st.integers(0, 300), n=st.integers(2, 14))
@settings(max_examples=25, deadline=None)
def test_random_dfg_map_and_simulate(seed, n):
    dfg = randdfg.layered(n, seed=seed)
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="list_sched")
    assert mapping.validate() == []
    ins = {
        node.name: [3, 1, 4, 1, 5]
        for node in dfg.nodes()
        if node.op is Op.INPUT
    }
    sim = simulate_mapping(mapping, 5, ins)
    assert sim.outputs == evaluate(dfg, 5, ins)


@given(seed=st.integers(0, 150))
@settings(max_examples=15, deadline=None)
def test_random_recurrent_dfg_maps(seed):
    base = randdfg.layered(8, seed=seed)
    dfg = randdfg.with_recurrences(base, count=2, seed=seed)
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="crimson")
    assert mapping.validate() == []
    ins = {
        node.name: [2, 7, 1]
        for node in dfg.nodes()
        if node.op is Op.INPUT
    }
    sim = simulate_mapping(mapping, 3, ins)
    assert sim.outputs == evaluate(dfg, 3, ins)


@pytest.mark.parametrize("mapper", ["list_sched", "regimap", "himap"])
def test_source_to_simulation(mapper):
    src = """
    kernel mix {
        acc = acc + (a - b) * (a + b);
        hi = max(acc, hi@1);
        out acc;
        out hi;
    }
    """
    cgra = presets.simple_cgra(4, 4)
    mapping = compile_source(src, cgra, mapper=mapper)
    assert mapping.validate() == []
    a = [3, 1, 4, 1]
    b = [1, 1, 2, 0]
    sim = simulate_mapping(mapping, 4, {"a": a, "b": b})
    acc, hi, ref_acc, ref_hi = 0, None, [], []
    prev_hi = 0
    for x, y in zip(a, b):
        acc = acc + (x - y) * (x + y)
        hi = max(acc, prev_hi)
        prev_hi = hi
        ref_acc.append(acc)
        ref_hi.append(hi)
    assert sim.outputs["acc"] == ref_acc
    assert sim.outputs["hi"] == ref_hi


def test_metrics_pipeline():
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(
        __import__("repro.ir.kernels", fromlist=["sobel_x"]).sobel_x(),
        cgra, mapper="edge_centric",
    )
    met = metrics_of(m)
    assert met.valid
    assert 0 < met.utilization <= 1.0
    row = met.row()
    assert row["II"] == m.ii and row["valid"]


def test_heterogeneous_end_to_end():
    """Memory kernel on a memory-constrained array, simulated."""
    from repro.ir import kernels

    cgra = presets.simple_cgra(4, 4, mem_cells="left")
    dfg = kernels.stencil1d_mem()
    mapping = map_dfg(dfg, cgra, mapper="list_sched")
    sim = simulate_mapping(
        mapping, 3, {"i": [1, 2, 3]},
        memory={"A": [0, 3, 6, 9, 12], "B": [0] * 5},
    )
    assert sim.memory["B"][1:4] == [3, 6, 9]
    assert sim.hazards == []


def test_all_presets_map_the_suite():
    """Every preset architecture accepts the easy kernel suite."""
    from repro.arch.presets import PRESETS
    from repro.ir import kernels

    for preset_name in PRESETS:
        cgra = presets.by_name(preset_name)
        for kname in ("vector_add", "dot_product"):
            dfg = kernels.kernel(kname)
            if dfg.memory_ops() and not cgra.memory_cells():
                continue
            m = map_dfg(dfg, cgra, mapper="list_sched")
            assert m.validate() == [], f"{preset_name}/{kname}"
