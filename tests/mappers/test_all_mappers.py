"""Cross-cutting tests: every registered mapper produces valid mappings.

This is the executable core of Table I — each (mapper, kernel) cell
must yield a mapping that passes the validator, or raise MapFailure.
"""

import pytest

from repro.api import available_mappers, map_dfg
from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.core.problem import MappingProblem
from repro.core.registry import catalog, create, names
from repro.ir import kernels

SPATIAL = [n for n, m in catalog().items() if "spatial" in m["kinds"]]
TEMPORAL = [n for n, m in catalog().items() if "temporal" in m["kinds"]]

# Kernels every temporal mapper must handle on a 4x4 mesh.
EASY_KERNELS = ["vector_add", "dot_product", "if_select", "horner"]
# Heavier kernels for the fast heuristics only.
HARD_KERNELS = ["sobel_x", "sad", "iir_biquad", "diamonds3"]
FAST_TEMPORAL = [
    "list_sched", "ultrafast", "edge_centric", "crimson", "ramp",
    "epimap", "regimap", "himap",
]


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


def test_registry_count_matches_design():
    assert len(names()) == 24


def test_every_family_represented():
    cat = catalog()
    fams = {m["family"] for m in cat.values()}
    assert fams == {"heuristic", "metaheuristic", "exact"}
    subs = {m["subfamily"] for m in cat.values()}
    for expected in ("SA", "GA", "QEA", "ILP", "SAT", "CP", "B&B"):
        assert any(expected in s for s in subs), expected


def test_exact_flag_consistent():
    cat = catalog()
    for name in ("ilp", "ilp_spatial", "sat", "csp", "bnb", "smt"):
        assert cat[name]["exact"], name
    for name in ("list_sched", "dresc", "genmap"):
        assert not cat[name]["exact"], name


@pytest.mark.parametrize("mapper", sorted(TEMPORAL))
@pytest.mark.parametrize("kernel", EASY_KERNELS)
def test_temporal_mappers_easy_kernels(cgra, mapper, kernel):
    dfg = kernels.kernel(kernel)
    m = map_dfg(dfg, cgra, mapper=mapper)
    assert m.validate() == []
    assert m.kind == "modulo"
    assert m.ii >= MappingProblem(dfg, cgra).mii
    assert m.mapper == mapper
    assert m.map_time > 0


@pytest.mark.parametrize("mapper", FAST_TEMPORAL)
@pytest.mark.parametrize("kernel", HARD_KERNELS)
def test_fast_heuristics_hard_kernels(cgra, mapper, kernel):
    dfg = kernels.kernel(kernel)
    m = map_dfg(dfg, cgra, mapper=mapper)
    assert m.validate() == []


@pytest.mark.parametrize("mapper", sorted(SPATIAL))
@pytest.mark.parametrize("kernel", ["vector_add", "dot_product", "if_select"])
def test_spatial_mappers(cgra, mapper, kernel):
    dfg = kernels.kernel(kernel)
    m = map_dfg(dfg, cgra, mapper=mapper)
    assert m.validate() == []
    assert m.kind == "spatial"
    # One cell per op in spatial mapping.
    assert len(set(m.binding.values())) == len(m.binding)


@pytest.mark.parametrize("mapper", sorted(TEMPORAL))
def test_requested_ii_is_respected(cgra, mapper):
    dfg = kernels.dot_product()
    m = map_dfg(dfg, cgra, mapper=mapper, ii=2)
    assert m.ii == 2


def test_mapper_failure_is_reported():
    # 9 independent multiplies cannot fit spatially on 2x2.
    dfg = kernels.conv3x3()
    cgra = presets.simple_cgra(2, 2)
    with pytest.raises(MapFailure) as ei:
        map_dfg(dfg, cgra, mapper="sa_spatial")
    assert ei.value.mapper == "sa_spatial"


def test_temporal_mapper_fails_below_recmii(cgra):
    # iir_biquad has RecMII 3: II=1 must be infeasible for any mapper.
    dfg = kernels.iir_biquad()
    with pytest.raises(MapFailure):
        map_dfg(dfg, cgra, mapper="list_sched", ii=1)
    with pytest.raises(MapFailure):
        map_dfg(dfg, cgra, mapper="csp", ii=1)


def test_available_mappers_metadata():
    cat = available_mappers()
    assert "dresc" in cat
    assert cat["dresc"]["subfamily"] == "SA"
    assert cat["dresc"]["modeled_after"] == "[22]"


def test_heterogeneous_binding_constraints():
    """Memory-capable cells only in column 0: loads must land there."""
    dfg = kernels.dot_product_mem()
    cgra = presets.simple_cgra(4, 4, mem_cells="left")
    m = map_dfg(dfg, cgra, mapper="list_sched")
    assert m.validate() == []
    from repro.ir.dfg import Op

    for node in dfg.nodes():
        if node.op is Op.LOAD:
            assert cgra.coords(m.binding[node.nid])[0] == 0


def test_unknown_mapper_raises():
    with pytest.raises(KeyError, match="unknown mapper"):
        map_dfg(kernels.vector_add(), presets.simple_cgra(2, 2),
                mapper="magic")
