"""PlacementState / constructive engine tests."""

import pytest

from repro.arch import presets
from repro.ir.dfg import DFG, Op
from repro.ir import kernels
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.schedule import priority_order


@pytest.fixture
def cgra():
    return presets.simple_cgra(3, 3)


def chain():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    return g, a, b


def test_place_routes_incident_edges(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=4)
    assert st.place(a, 0, 0)
    assert st.place(b, 1, 1)
    assert st.unrouted_edges() == []
    m = st.to_mapping("t")
    assert m.validate() == []


def test_place_rejects_unroutable_slot(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=4)
    assert st.place(a, 0, 0)
    # Cell 8 is 4 hops away: consumer at t=1 cannot be reached.
    assert not st.place(b, 8, 1)
    # State unchanged: b absent, occupancy clean.
    assert b not in st.binding
    assert st.occ.can_place_op(8, 1)


def test_place_rejects_occupied_fu(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=2)
    assert st.place(a, 0, 0)
    assert not st.place(b, 0, 2)  # folds onto slot 0


def test_unplace_restores_everything(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=8)
    st.place(a, 0, 0)
    st.place(b, 2, 2)  # needs a route step via cell 1
    assert sum(len(p) for p in st.routes.values()) == 1
    st.unplace(b)
    assert not st.routes
    assert st.occ.can_route(99, 1, 1)
    assert st.occ.can_place_op(2, 2)


def test_place_loose_tolerates_unroutable(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=4)
    st.place_loose(a, 0, 0)
    assert st.place_loose(b, 8, 1)  # placed despite no route
    assert len(st.unrouted_edges()) == 1


def test_try_route_after_timing_fix(cgra):
    g, a, b = chain()
    st = PlacementState(g, cgra, ii=8)
    st.place_loose(a, 0, 0)
    st.place_loose(b, 8, 1)
    e = st.unrouted_edges()[0]
    assert not st.try_route(e)
    st.unplace(b)
    st.place_loose(b, 8, 5)  # now 4 hops in 4 cycles: routable
    assert st.unrouted_edges() == []


def test_time_bounds_from_carried_successor(cgra):
    g = kernels.iir_biquad()
    ii = 3
    st = PlacementState(g, cgra, ii)
    # Find the y (SUB named 'y') node and one feedback consumer.
    y = next(n.nid for n in g.nodes() if n.name == "y")
    fb1 = next(n.nid for n in g.nodes() if n.name == "a1*y1")
    assert st.place(fb1, 0, 0)
    lb, ub = st.time_bounds(y, window=20)
    # y -> fb1 has dist 1: t_y <= t_fb1 + ii - 1 = 2.
    assert ub == 2


def test_greedy_construct_full_kernel(cgra):
    g = kernels.sobel_x()
    order = priority_order(g, by="height")
    m = greedy_construct(g, cgra, 2, order)
    assert m is not None
    assert m.validate() == []
    assert m.ii == 2


def test_greedy_construct_returns_none_when_infeasible(cgra):
    g = kernels.iir_biquad()  # RecMII 3
    order = priority_order(g, by="height")
    assert greedy_construct(g, cgra, 1, order) is None


def test_greedy_construct_no_hold_mode(cgra):
    g = kernels.dot_product()
    order = priority_order(g, by="height")
    m = greedy_construct(g, cgra, 1, order, allow_hold=False)
    assert m is not None
    from repro.arch.tec import HOLD

    assert all(
        s.kind != HOLD for path in m.routes.values() for s in path
    )
