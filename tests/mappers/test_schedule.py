"""Scheduling utility tests."""

from repro.ir import kernels
from repro.ir.dfg import DFG, Op
from repro.mappers.schedule import alap, asap, heights, mobility, priority_order


def test_asap_respects_latencies():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    c = g.add(Op.NOT, b)
    t = asap(g, ii=4)
    assert t[a] == 0 and t[b] == 1 and t[c] == 2


def test_asap_carried_edge_relaxed_by_ii():
    g = kernels.iir_biquad()
    t1 = asap(g, ii=3)
    # With II >= RecMII the fixed point exists and times are finite.
    assert all(v < 20 for v in t1.values())


def test_alap_is_upper_bound_of_asap():
    g = kernels.sobel_x()
    lo = asap(g, ii=2)
    hi = alap(g, ii=2, horizon=12)
    for nid in g:
        assert lo[nid] <= hi[nid]


def test_mobility_zero_on_critical_path():
    g = kernels.horner()  # pure chain: everything critical
    horizon = g.critical_path() - 1
    m = mobility(g, ii=1, horizon=horizon)
    compute = [n.nid for n in g.nodes() if not n.op.is_pseudo]
    assert all(m[nid] == 0 for nid in compute)


def test_heights_decrease_along_chain():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    h = heights(g)
    assert h[a] > h[b]


def test_priority_order_topological():
    g = kernels.sobel_x()
    order = priority_order(g, by="height")
    pos = {nid: i for i, nid in enumerate(order)}
    for e in g.edges():
        if e.dist == 0 and e.src in pos and e.dst in pos:
            assert pos[e.src] < pos[e.dst]


def test_priority_order_excludes_pseudo():
    g = kernels.dot_product()
    order = priority_order(g)
    assert all(not g.node(n).op.is_pseudo for n in order)


def test_priority_order_height_puts_critical_first():
    # Two independent chains: long one (3 ops) and short one (1 op).
    g = DFG()
    x = g.input("x")
    a1 = g.add(Op.NEG, x)
    a2 = g.add(Op.ABS, a1)
    a3 = g.add(Op.NOT, a2)
    b1 = g.add(Op.NEG, x)
    g.output(a3, "a")
    g.output(b1, "b")
    order = priority_order(g, by="height")
    assert order.index(a1) < order.index(b1)
