"""Exact mappers cross-check each other and bound the heuristics.

The survey's core distinction: "exact based methods can prove the
optimality, whereas heuristics may find the optimal solution, but
without the possibility to prove it."  Within the shared adjacency
model, the ILP / SAT / CSP / B&B mappers must agree on feasibility at
a given II, and the best heuristic II can never beat the exact one.
"""

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.ir import kernels

EXACT = ["ilp", "sat", "csp", "bnb"]
KERNELS = ["dot_product", "vector_add", "if_select", "accumulate"]


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(3, 3)


def best_ii(dfg, cgra, mapper, max_ii=6):
    for ii in range(1, max_ii + 1):
        try:
            m = map_dfg(dfg, cgra, mapper=mapper, ii=ii)
            return m.ii
        except MapFailure:
            continue
    return None


@pytest.mark.parametrize("kernel", KERNELS)
def test_exact_mappers_agree_on_best_ii(cgra, kernel):
    dfg = kernels.kernel(kernel)
    iis = {m: best_ii(dfg, cgra, m) for m in EXACT}
    values = set(iis.values())
    assert len(values) == 1, f"exact mappers disagree: {iis}"
    assert values != {None}


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("heuristic", ["list_sched", "ultrafast", "crimson"])
def test_heuristics_never_beat_exact(cgra, kernel, heuristic):
    dfg = kernels.kernel(kernel)
    exact = best_ii(dfg, cgra, "sat")
    m = map_dfg(dfg, cgra, mapper=heuristic)
    assert exact is not None
    assert m.ii >= exact


def test_exact_proves_infeasibility_below_recmii(cgra):
    dfg = kernels.iir_biquad()  # RecMII = 3
    for mapper in EXACT:
        with pytest.raises(MapFailure):
            map_dfg(dfg, cgra, mapper=mapper, ii=2)


def test_exact_dot_product_reaches_ii1(cgra):
    """Fig. 3's headline: dot product at II = 1."""
    for mapper in EXACT:
        m = map_dfg(kernels.dot_product(), cgra, mapper=mapper, ii=1)
        assert m.ii == 1
        assert m.validate() == []


def test_spatial_ilp_proves_infeasibility():
    dfg = kernels.conv3x3()  # 17 ops
    cgra = presets.simple_cgra(2, 2)  # 4 cells
    with pytest.raises(MapFailure):
        map_dfg(dfg, cgra, mapper="ilp_spatial")


def test_spatial_ilp_finds_known_feasible():
    dfg = kernels.if_select()
    cgra = presets.simple_cgra(3, 3)
    m = map_dfg(dfg, cgra, mapper="ilp_spatial")
    assert m.validate() == []


def test_sat_engines_agree_on_best_ii(cgra):
    """The incremental CDCL path and the DPLL reference find the same IIs."""
    from repro.mappers.sat_mapper import SATMapper

    for kernel in KERNELS + ["fir4"]:
        dfg = kernels.kernel(kernel)
        cdcl = SATMapper(engine="cdcl").map(dfg, cgra)
        dpll = SATMapper(engine="dpll").map(dfg, cgra)
        assert cdcl.ii == dpll.ii, kernel
        assert cdcl.validate() == []
        assert dpll.validate() == []


def test_sat_conflict_limit_reports_undetermined(cgra):
    """A conflict-limit overrun is 'undetermined', not a proof of UNSAT."""
    from repro.mappers.sat_mapper import SATMapper

    dfg = kernels.fir4()
    for engine in ("cdcl", "dpll"):
        mapper = SATMapper(conflict_limit=0, engine=engine)
        with pytest.raises(MapFailure, match="undetermined"):
            mapper.map(dfg, cgra, ii=1)


def test_sat_genuine_unsat_not_reported_undetermined(cgra):
    """A true infeasibility proof must not claim the limit was the cause."""
    from repro.mappers.sat_mapper import SATMapper

    dfg = kernels.iir_biquad()  # RecMII = 3
    with pytest.raises(MapFailure, match="UNSAT") as err:
        SATMapper().map(dfg, cgra, ii=2)
    assert "undetermined" not in str(err.value)
