"""Router unit tests."""

import pytest

from repro.arch import presets
from repro.arch.tec import HOLD, ROUTE
from repro.core.resources import Occupancy
from repro.mappers.routing import (
    RouteRequest,
    Router,
    commit_route,
    release_route,
)


@pytest.fixture
def cgra():
    return presets.simple_cgra(4, 1)  # a row: 0-1-2-3


def test_direct_neighbor_needs_no_steps(cgra):
    occ = Occupancy(cgra, ii=4)
    router = Router(cgra)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=1, t_consume=1)
    assert router.find(occ, req) == []


def test_same_cell_needs_no_steps(cgra):
    occ = Occupancy(cgra, ii=4)
    router = Router(cgra)
    req = RouteRequest(0, src_cell=2, t_emit=3, dst_cell=2, t_consume=4)
    assert router.find(occ, req) == []


def test_two_hops_one_route_step(cgra):
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
    steps = router.find(occ, req)
    assert steps is not None and len(steps) == 1
    assert steps[0].cell == 1 and steps[0].kind == ROUTE


def test_time_gap_bridged_by_hold(cgra):
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=0, t_consume=3)
    steps = router.find(occ, req)
    assert steps is not None and len(steps) == 2
    assert all(s.kind == HOLD and s.cell == 0 for s in steps)


def test_hold_disabled_router_uses_route_steps(cgra):
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra, allow_hold=False)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=0, t_consume=3)
    steps = router.find(occ, req)
    assert steps is not None
    assert all(s.kind == ROUTE for s in steps)


def test_unreachable_in_time_fails(cgra):
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    # 3 hops needed, 1 cycle available.
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=3, t_consume=2)
    assert router.find(occ, req) is None


def test_consumer_before_emission_fails(cgra):
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    req = RouteRequest(0, src_cell=0, t_emit=3, dst_cell=1, t_consume=2)
    assert router.find(occ, req) is None


def test_blocked_cell_forces_detour():
    cgra = presets.simple_cgra(3, 3)
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    # Block the straight middle cell (1) at the routing cycle.
    occ.place_op(99, 1, 1)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
    steps = router.find(occ, req)
    # The only 1-step detour would be via cell 1 (blocked) -> must fail
    # or go around, which needs 2 steps; with exactly 1 cycle, fail.
    assert steps is None
    # With one more cycle, the router detours via 3/4 or holds.
    req2 = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=3)
    steps2 = router.find(occ, req2)
    assert steps2 is not None
    assert all(s.cell != 1 or s.time != 1 for s in steps2)


def test_commit_and_release_are_inverse(cgra):
    occ = Occupancy(cgra, ii=4)
    router = Router(cgra)
    req = RouteRequest(7, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
    steps = router.find(occ, req)
    commit_route(occ, cgra, req, steps)
    assert not occ.can_route(8, 1, 1)  # other value blocked
    release_route(occ, cgra, req, steps)
    assert occ.can_route(8, 1, 1)


def test_negotiated_route_allows_congestion(cgra):
    occ = Occupancy(cgra, ii=4)
    router = Router(cgra)
    occ.place_op(99, 1, 1)  # congest the straight path
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
    assert router.find(occ, req) is None  # strict router refuses
    found = router.find_negotiated(occ, req)
    assert found is not None  # negotiated router pays the penalty
    steps, cost = found
    assert len(steps) == 1
    assert cost > 1.0


def test_negotiated_prefers_free_paths():
    cgra = presets.simple_cgra(3, 3)
    occ = Occupancy(cgra, ii=8)
    router = Router(cgra)
    occ.place_op(99, 1, 1)
    req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=3)
    steps, cost = router.find_negotiated(occ, req)
    # Two free cycles available: should avoid the blocked cell.
    assert all(not (s.cell == 1 and s.time == 1) for s in steps)


# -- terminal-link discipline (regression) ----------------------------------
# The span>0 acceptance of find_negotiated used to check only that the
# terminal link *exists*, while find and the span==0 paths also
# required it to be *free* — a congested terminal link was silently
# accepted and the resulting commit double-booked it.  All three
# routers (flat engine, scalar engine, reference) now share the strict
# rule: terminal link must exist AND be usable by this value.
def _routers_row4():
    from repro.core.refimpl import ReferenceRouter

    cgra = presets.simple_cgra(4, 1)  # a row: 0-1-2-3
    return cgra, [
        Router(cgra, engine="flat"),
        Router(cgra, engine="scalar"),
        ReferenceRouter(cgra),
    ]


def test_negotiated_rejects_busy_terminal_link_span1():
    cgra, routers = _routers_row4()
    for router in routers:
        occ = Occupancy(cgra, ii=8)
        # Another value owns link 1->2 at the consume cycle; the only
        # geometric path (route via 1, consume over 1->2) is illegal.
        occ.add_link(99, 1, 2, 2)
        req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
        assert router.find_negotiated(occ, req) is None
        assert router.find(occ, req) is None


def test_negotiated_accepts_terminal_link_shared_by_same_value():
    cgra, routers = _routers_row4()
    for router in routers:
        occ = Occupancy(cgra, ii=8)
        occ.add_link(0, 1, 2, 2)  # same value: sharing is legal
        req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=2)
        found = router.find_negotiated(occ, req)
        assert found is not None
        steps, _cost = found
        assert [s.cell for s in steps] == [1]


def test_negotiated_detours_around_busy_terminal_link():
    from repro.core.refimpl import ReferenceRouter

    cgra = presets.simple_cgra(3, 3)
    for router in (
        Router(cgra, engine="flat"),
        Router(cgra, engine="scalar"),
        ReferenceRouter(cgra),
    ):
        occ = Occupancy(cgra, ii=8)
        occ.add_link(99, 1, 2, 3)  # straight approach busy at consume
        req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=2, t_consume=3)
        found = router.find_negotiated(occ, req)
        assert found is not None
        steps, _cost = found
        last = steps[-1]
        # Whatever path was taken, the terminal hop must not be the
        # occupied 1->2 link.
        assert not (last.kind == ROUTE and last.cell == 1)


def test_span0_rejects_busy_terminal_link():
    cgra, routers = _routers_row4()
    for router in routers:
        occ = Occupancy(cgra, ii=8)
        occ.add_link(99, 0, 1, 1)
        req = RouteRequest(0, src_cell=0, t_emit=0, dst_cell=1, t_consume=1)
        assert router.find(occ, req) is None
        assert router.find_negotiated(occ, req) is None
        # Same value may share it.
        occ2 = Occupancy(cgra, ii=8)
        occ2.add_link(0, 0, 1, 1)
        assert router.find(occ2, req) == []
        assert router.find_negotiated(occ2, req) == ([], 0.0)
