"""SMT mapper: lazy DPLL(T) loop and theory solver."""

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.ir import kernels
from repro.mappers.smt_mapper import SMTMapper


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(3, 3)


def test_smt_dot_product_ii1(cgra):
    m = map_dfg(kernels.dot_product(), cgra, mapper="smt", ii=1)
    assert m.ii == 1
    assert m.validate() == []


def test_smt_agrees_with_sat_on_small_kernels(cgra):
    for kname in ("vector_add", "accumulate", "if_select"):
        dfg = kernels.kernel(kname)
        smt = map_dfg(dfg, cgra, mapper="smt")
        sat = map_dfg(dfg, cgra, mapper="sat")
        assert smt.ii == sat.ii, kname


def test_smt_proves_infeasibility_below_recmii(cgra):
    with pytest.raises(MapFailure):
        map_dfg(kernels.iir_biquad(), cgra, mapper="smt", ii=2)


def test_theory_rejects_unreachable_binding(cgra):
    """Binding two linked ops onto distant cells is a theory conflict."""
    mapper = SMTMapper()
    dfg = kernels.vector_add()
    from repro.ir.dfg import Op

    add = next(n.nid for n in dfg.nodes() if n.op is Op.ADD)
    # Single-op graph: any binding schedules trivially.
    sched, ii_dep, core = mapper._theory_schedule(dfg, cgra, 1, {add: 0})
    assert sched == {add: 0}


def test_theory_same_cell_slack(cgra):
    """Same-cell chains use RF slack but distinct fold slots."""
    mapper = SMTMapper()
    from repro.ir.dfg import DFG, Op

    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    sched, ii_dep, core = mapper._theory_schedule(g, cgra, 2, {a: 0, b: 0})
    assert sched is not None
    assert sched[b] > sched[a]
    assert sched[a] % 2 != sched[b] % 2


def test_theory_conflict_on_distant_cells(cgra):
    mapper = SMTMapper()
    from repro.ir.dfg import DFG, Op

    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    # Cells 0 and 8 are not adjacent on a 3x3 mesh.
    sched, ii_dep, core = mapper._theory_schedule(g, cgra, 2, {a: 0, b: 8})
    assert sched is None
    assert not ii_dep  # unreachable at every II: permanent block
    assert core == {a, b}


def test_smt_blocking_loop_makes_progress(cgra):
    """sobel needs several theory iterations but still terminates."""
    m = map_dfg(kernels.sobel_x(), cgra, mapper="smt")
    assert m.validate() == []
