"""Portfolio mapper: deterministic winners, serial == parallel."""

from __future__ import annotations

import pytest

from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels as kernel_lib
from repro.obs.tracer import tracing


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


def _signature(mapping):
    return (
        mapping.ii,
        dict(mapping.binding),
        dict(mapping.schedule) if mapping.schedule else None,
        {e: list(s) for e, s in mapping.routes.items()},
    )


@pytest.mark.parametrize("kname", ["dot_product", "fir4"])
def test_parallel_race_matches_serial(cgra, kname):
    dfg = kernel_lib.kernel(kname)
    serial = create("portfolio", jobs=1).map(dfg, cgra)
    parallel = create("portfolio", jobs=2).map(dfg, cgra)
    assert _signature(serial) == _signature(parallel)
    assert serial.mapper == "portfolio"


def test_best_policy_matches_serial(cgra):
    dfg = kernel_lib.kernel("dot_product")
    serial = create("portfolio", policy="best", jobs=1).map(dfg, cgra)
    parallel = create("portfolio", policy="best", jobs=2).map(dfg, cgra)
    assert _signature(serial) == _signature(parallel)


def test_first_policy_prefers_entrant_order(cgra):
    dfg = kernel_lib.kernel("dot_product")
    with tracing() as tr:
        create(
            "portfolio", mappers=("list_sched", "edge_centric"), jobs=1
        ).map(dfg, cgra)
    # list_sched succeeds on dot_product, so it must be the winner.
    assert tr.root.tags.get("winner") == "list_sched"


def test_winner_trace_grafted_in_parallel_run(cgra):
    dfg = kernel_lib.kernel("fir4")
    with tracing() as tr:
        create("portfolio", jobs=2).map(dfg, cgra)
    assert tr.root.tags.get("winner")
    # The winner's child-process span tree hangs under our root.
    assert len(tr.root.find("map")) >= 2


def test_all_entrants_failing_raises_mapfailure(cgra):
    dfg = kernel_lib.kernel("sobel_x")
    # Budget well below dresc/sobel_x's warm runtime (~50 ms), so the
    # entrant always times out instead of racing the alarm.
    mapper = create(
        "portfolio", mappers=("dresc",), jobs=1, timeout=0.02
    )
    with pytest.raises(MapFailure):
        mapper.map(dfg, cgra)


def test_bad_policy_rejected():
    with pytest.raises(ValueError):
        create("portfolio", policy="fastest")
