"""PlacementState delta-undo journal: rollback must equal a snapshot.

The annealing mappers replaced their per-move deep copies with the
inverse-operation journal, so the journal's one obligation is
exactness: after any mutation sequence, ``undo_to(mark)`` restores
occupancy, binding, schedule, and routes to the marked state.
"""

import random

import pytest

from repro.arch import presets
from repro.api import map_dfg
from repro.ir import kernels
from repro.mappers.construct import PlacementState


def _occ_signature(occ):
    """Occupancy as comparable data (empty dicts normalise to None)."""
    norm = lambda rows: [dict(d) if d else None for d in rows]
    return (
        occ.fu[:],
        norm(occ.routed),
        norm(occ.rf),
        norm(occ.link),
        occ._used_fu,
        occ._used_routed,
        occ._used_rf,
        occ._used_link,
    )


def _snapshot(state):
    return (
        _occ_signature(state.occ),
        dict(state.binding),
        dict(state.schedule),
        {e: list(s) for e, s in state.routes.items()},
    )


def _random_walk(state, rng, steps):
    """Random place_loose / unplace / try_route mutations."""
    dfg, cgra = state.dfg, state.cgra
    nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
    for _ in range(steps):
        action = rng.random()
        placed = [n for n in nodes if n in state.binding]
        if action < 0.45 or not placed:
            nid = rng.choice(nodes)
            if nid in state.binding:
                continue
            cell = rng.randrange(cgra.n_cells)
            t = rng.randint(0, 2 * state.ii + 3)
            state.place_loose(nid, cell, t)
        elif action < 0.75:
            state.unplace(rng.choice(placed))
        else:
            for e in state.unrouted_edges():
                state.try_route(e)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("kernel", ["dot_product", "fir4", "sobel_x"])
def test_undo_restores_marked_state(seed, kernel):
    dfg = kernels.kernel(kernel)
    cgra = presets.simple_cgra(3, 3)
    rng = random.Random(seed)
    state = PlacementState(dfg, cgra, ii=2)
    state.begin_undo()
    # Build up some arbitrary prefix state, then accept it.
    _random_walk(state, rng, 10)
    state.commit()
    reference = _snapshot(state)
    mark = state.mark()
    _random_walk(state, rng, 25)
    state.undo_to(mark)
    assert _snapshot(state) == reference


@pytest.mark.parametrize("seed", range(6))
def test_nested_marks_unwind_in_order(seed):
    dfg = kernels.kernel("fir4")
    cgra = presets.simple_cgra(3, 3)
    rng = random.Random(seed)
    state = PlacementState(dfg, cgra, ii=2)
    state.begin_undo()
    snaps, marks = [], []
    for _ in range(4):
        snaps.append(_snapshot(state))
        marks.append(state.mark())
        _random_walk(state, rng, 8)
    for mark, snap in zip(reversed(marks), reversed(snaps)):
        state.undo_to(mark)
        assert _snapshot(state) == snap


def test_dresc_fixed_seed_still_maps():
    """End to end: the journal-based annealer produces valid mappings."""
    cgra = presets.simple_cgra(3, 3)
    for kernel in ("dot_product", "fir4", "iir_biquad"):
        m = map_dfg(kernels.kernel(kernel), cgra, mapper="dresc", seed=1)
        assert m.validate() == []
