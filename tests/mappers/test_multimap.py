"""Stress-aware multi-mapping tests ([39])."""

import pytest

from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.ir import kernels
from repro.mappers.multimap import (
    multi_map,
    stress_profile,
    stress_reduction,
)


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


def test_all_mappings_valid(cgra):
    maps = multi_map(kernels.sobel_x(), cgra, n_maps=3)
    assert len(maps) == 3
    for m in maps:
        assert m.validate() == []
        assert m.mapper == "multi_map"


def test_mappings_use_different_cells(cgra):
    maps = multi_map(kernels.dot_product(), cgra, n_maps=4)
    cell_sets = [frozenset(m.binding.values()) for m in maps]
    # A 2-op kernel on 16 cells: rotation must not reuse the same pair.
    assert len(set(cell_sets)) > 1


def test_stress_reduction_above_one(cgra):
    maps = multi_map(kernels.sobel_x(), cgra, n_maps=4)
    assert stress_reduction(maps) > 1.0


def test_stress_profile_counts(cgra):
    maps = multi_map(kernels.vector_add(), cgra, n_maps=2)
    wear = stress_profile(maps)
    assert sum(wear.values()) == sum(len(m.binding) for m in maps)


def test_single_map_requested(cgra):
    maps = multi_map(kernels.dot_product(), cgra, n_maps=1)
    assert len(maps) == 1
    assert stress_reduction(maps) == 1.0


def test_impossible_kernel_raises():
    cgra = presets.simple_cgra(2, 2, n_contexts=1)
    with pytest.raises(MapFailure):
        multi_map(kernels.conv3x3(), cgra, n_maps=2)


def test_saturated_array_returns_partial_set():
    """On a tiny array the rotation may run out of fresh placements
    but must still return the mappings it found."""
    cgra = presets.simple_cgra(2, 2)
    maps = multi_map(kernels.dot_product(), cgra, n_maps=8)
    assert 1 <= len(maps) <= 8
    for m in maps:
        assert m.validate() == []
