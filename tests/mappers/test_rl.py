"""RL mapper: the learning loop produces valid mappings and improves."""

import numpy as np
import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.ir import kernels
from repro.mappers.rl_mapper import RLMapper
from repro.mappers.schedule import priority_order


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


@pytest.mark.parametrize("kname", ["dot_product", "if_select", "horner"])
def test_rl_maps_kernels(cgra, kname):
    m = map_dfg(kernels.kernel(kname), cgra, mapper="rl", seed=1)
    assert m.validate() == []


def test_rl_is_deterministic_per_seed(cgra):
    m1 = map_dfg(kernels.if_select(), cgra, mapper="rl", seed=5)
    m2 = map_dfg(kernels.if_select(), cgra, mapper="rl", seed=5)
    assert m1.binding == m2.binding
    assert m1.schedule == m2.schedule


def test_rl_respects_requested_ii(cgra):
    m = map_dfg(kernels.dot_product(), cgra, mapper="rl", ii=2)
    assert m.ii == 2


def test_policy_learns_on_sobel(cgra):
    """Average episode reward improves from the first to the last
    quarter of training — the method-family property [74] claims."""
    mapper = RLMapper(seed=3, episodes=80)
    dfg = kernels.sobel_x()
    order = priority_order(dfg, by="height")
    cand = {
        nid: [c.cid for c in cgra.cells
              if c.supports(dfg.node(nid).op)]
        for nid in order
    }
    logits = {nid: np.zeros(len(cand[nid])) for nid in order}
    rng = np.random.default_rng(3)
    rewards = []
    baseline = 0.0
    for _ in range(mapper.episodes):
        r, _, actions = mapper._episode(
            dfg, cgra, 2, order, cand, logits, rng
        )
        rewards.append(r)
        adv = r - baseline
        baseline += 0.1 * (r - baseline)
        for nid, idx in actions.items():
            z = logits[nid] / mapper.explore_temp
            p = np.exp(z - z.max())
            p /= p.sum()
            g = -p
            g[idx] += 1.0
            logits[nid] += mapper.lr * adv * g
    q = len(rewards) // 4
    assert sum(rewards[-q:]) / q > sum(rewards[:q]) / q
