"""Clustered two-phase placer: partitioning, equivalence, quality.

Three angles on :mod:`repro.mappers.cluster`:

* the FM partitioner's contract (exact cover, capacity, determinism,
  linear-arrangement order on chains);
* the scalar/vectorized evaluator equivalence the mapper's cache
  aliasing depends on — seeded refinement walks must be *bit-identical*
  across backends, checked through the move journal;
* end-to-end placement quality: validate()-clean on every 4x4 preset
  and never worse than the flat annealer where both succeed, plus the
  scaling case the mapper exists for (a 200-op chain on 16x16).
"""

from __future__ import annotations

import random

import pytest

from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels, randdfg
from repro.mappers.batchcost import make_evaluator
from repro.mappers.cluster import (
    ClusteredSpatialMapper,
    channel_columns,
    dataflow_depth,
    snake_cells,
)
from repro.mappers.partition import build_adjacency, partition
from repro.mappers.spatial_common import spatial_cost

PRESETS_4X4 = ["simple4x4", "adres4x4", "hycube4x4", "hetero4x4"]
EASY = ["vector_add", "dot_product", "if_select"]


# -- partitioning ------------------------------------------------------


def test_partition_exact_cover_and_capacity():
    dfg = kernels.kernel("sobel_x")
    compute = {n.nid for n in dfg.nodes() if not n.op.is_pseudo}
    clusters = partition(dfg, 4)
    seen = [nid for c in clusters for nid in c]
    assert sorted(seen) == sorted(compute)
    assert all(1 <= len(c) <= 4 for c in clusters)


def test_partition_deterministic():
    dfg = randdfg.layered(30, seed=7, width=3)
    assert partition(dfg, 8) == partition(dfg, 8)


def test_partition_chain_is_linear_arrangement():
    """On a pure chain the concatenated clusters must be the chain
    itself — consecutive clusters connectivity-adjacent — because the
    snake seed relies on that order."""
    dfg = randdfg.layered(
        24, seed=1, width=1, max_skip=1, ops=randdfg._UNOPS
    )
    adj = build_adjacency(dfg)
    clusters = partition(dfg, 6, adj=adj)
    flat = [nid for c in clusters for nid in c]
    breaks = sum(
        1
        for a, b in zip(flat, flat[1:])
        if b not in adj[a]
    )
    # Chain order may start from either end per bisection, but there
    # must be no interior discontinuities.
    assert breaks == 0


def test_partition_capacity_one_and_bad_capacity():
    dfg = kernels.kernel("vector_add")
    singletons = partition(dfg, 1)
    assert all(len(c) == 1 for c in singletons)
    with pytest.raises(ValueError):
        partition(dfg, 0)


# -- geometry helpers --------------------------------------------------


def test_snake_cells_covers_grid_and_stays_tight():
    cgra = presets.by_name("simple8x8")
    order = snake_cells(cgra)
    assert sorted(order) == list(range(cgra.n_cells))
    # Mesh-adjacent within bands; band seams may be two hops.
    seams = 0
    for a, b in zip(order, order[1:]):
        d = cgra.distance(a, b)
        assert d <= 2, (a, b)
        seams += d == 2
    assert seams <= cgra.height // 2


def test_channel_columns_budget_and_small_fabric():
    big = presets.by_name("simple16x16")
    chans = channel_columns(big, 200)
    # 56 spare cells on 256: at most 3 full columns fit.
    assert 0 < len(chans) <= 3
    assert 200 <= big.n_cells - len(chans) * big.height
    # Narrow fabrics reserve nothing — compactness wins there.
    assert channel_columns(presets.by_name("simple4x4"), 8) == frozenset()


def test_dataflow_depth_monotone_along_edges():
    dfg = kernels.kernel("fir4")
    depth = dataflow_depth(dfg)
    for e in dfg.edges():
        if e.dist == 0 and e.src in depth and e.dst in depth:
            assert depth[e.dst] >= depth[e.src] + 1


# -- scalar/vectorized bit-identity ------------------------------------


def _refine_journal(vectorized: bool, kname: str, seed: int):
    dfg = kernels.kernel(kname)
    cgra = presets.by_name("simple4x4")
    m = ClusteredSpatialMapper(seed=seed, vectorized=vectorized)
    ev = make_evaluator(dfg, cgra, vectorized=vectorized)
    clusters = partition(dfg, m.region * m.region)
    binding = m.seed_binding(dfg, cgra, clusters)
    assert binding is not None
    cells = ev.new_cells(binding)
    journal: list = []
    m.refine(ev, cells, random.Random(seed), journal=journal)
    return journal, [int(c) for c in cells]


@pytest.mark.parametrize("kname", ["dot_product", "mac4", "fir4"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_scalar_vector_walks_bit_identical(kname, seed):
    """The whole seeded anneal — every proposal, delta, accept/reject —
    must agree between backends, not just the final answer.  This is
    the property that lets ``cache_token`` alias them."""
    js, cs = _refine_journal(False, kname, seed)
    jv, cv = _refine_journal(True, kname, seed)
    assert js == jv
    assert cs == cv


def test_mapper_output_identical_across_backends():
    dfg = kernels.kernel("fir4")
    cgra = presets.by_name("simple4x4")
    a = ClusteredSpatialMapper(seed=3, vectorized=False).map(dfg, cgra)
    b = ClusteredSpatialMapper(seed=3, vectorized=True).map(dfg, cgra)
    assert a.binding == b.binding
    assert a.routes == b.routes


# -- end-to-end quality ------------------------------------------------


@pytest.mark.parametrize("pname", PRESETS_4X4)
@pytest.mark.parametrize("kname", EASY)
def test_valid_and_no_worse_than_flat_annealer(pname, kname):
    dfg = kernels.kernel(kname)
    cgra = presets.by_name(pname)
    ours = create("cluster", seed=0).map(dfg, cgra)
    assert ours.validate() == []
    assert ours.kind == "spatial"
    assert len(set(ours.binding.values())) == len(ours.binding)
    theirs = create("sa_spatial", seed=0).map(dfg, cgra)
    assert spatial_cost(dfg, cgra, ours.binding) <= spatial_cost(
        dfg, cgra, theirs.binding
    )


def test_capacity_failure_reported():
    dfg = kernels.kernel("conv3x3")
    cgra = presets.simple_cgra(2, 2)
    with pytest.raises(MapFailure) as ei:
        create("cluster").map(dfg, cgra)
    assert ei.value.mapper == "cluster"


def test_scales_to_200_op_chain_on_16x16():
    """The tentpole case: a 200-op dataflow chain on simple16x16 —
    beyond the flat annealer's horizon — maps cleanly."""
    dfg = randdfg.layered(
        200, seed=1, width=1, max_skip=1, ops=randdfg._UNOPS
    )
    cgra = presets.by_name("simple16x16")
    m = create("cluster", seed=0).map(dfg, cgra)
    assert m.validate() == []
    n_ops = sum(1 for n in dfg.nodes() if not n.op.is_pseudo)
    assert len(m.binding) == n_ops


def test_cluster_races_in_portfolio():
    """The two-phase placer slots into the portfolio as an entrant."""
    dfg = kernels.kernel("dot_product")
    cgra = presets.by_name("simple4x4")
    m = create(
        "portfolio", mappers=("cluster", "sa_spatial"), jobs=1
    ).map(dfg, cgra)
    assert m.validate() == []
    assert m.mapper == "portfolio"
