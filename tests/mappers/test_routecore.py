"""Flat routing core tests (repro.mappers.routecore).

Four layers of assurance for the flat-array engine:

* structure — the CSR graph mirrors the CGRA's adjacency exactly;
* unit — CellClaims refcounting and the DialQueue/heapq order contract;
* identity — negotiated spatial routing and the temporal searches are
  byte-identical to their scalar references (same routes, same costs,
  same dict key order);
* legality — incremental negotiation may pick different routes, but
  they are always legal and it succeeds whenever the scalar engine
  does.
"""

import heapq
import random

import pytest

from repro.arch import presets
from repro.arch.presets import by_name
from repro.arch.tec import HOLD, ROUTE
from repro.core.resources import Occupancy
from repro.ir import kernels
from repro.mappers import spatial_common as sc
from repro.mappers.routecore import CellClaims, DialQueue, flat_graph
from repro.mappers.routing import RouteRequest, Router

SMALL_ARCHS = ["simple4x4", "adres4x4", "hycube4x4", "hetero4x4"]
# hetero4x4's op classes are too tight for injective random spatial
# bindings of the layered kernels (nearly every draw fails), so the
# spatial corpus uses the homogeneous 4x4s; hetero4x4 still runs the
# structure and temporal-router suites.
SPATIAL_ARCHS = ["simple4x4", "adres4x4", "hycube4x4"]


# -- structure --------------------------------------------------------------
@pytest.mark.parametrize("arch", SMALL_ARCHS + ["simple16x16"])
def test_flat_graph_mirrors_cgra_adjacency(arch):
    cgra = by_name(arch)
    fg = flat_graph(cgra)
    assert fg.n == cgra.n_cells
    for c in range(fg.n):
        out = list(cgra.neighbors_out(c))
        assert fg.out_rows[c] == out
        assert fg.out_nbr[fg.out_ptr[c] : fg.out_ptr[c + 1]] == out
        inn = list(cgra.neighbors_in(c))
        assert fg.in_rows[c] == inn
        assert fg.in_nbr[fg.in_ptr[c] : fg.in_ptr[c + 1]] == inn
        for k in range(fg.out_ptr[c], fg.out_ptr[c + 1]):
            assert fg.out_link[k] == cgra.link_table[(c, fg.out_nbr[k])]
    assert fg.dist is cgra.distance_table()
    assert fg.rf_size == [cell.rf_size for cell in cgra.cells]


def test_flat_graph_reach_mirrors_reach_lists():
    cgra = by_name("simple4x4")
    fg = flat_graph(cgra)
    for c, row in enumerate(cgra.reach_lists()):
        lo, hi = fg.reach_ptr[c], fg.reach_ptr[c + 1]
        assert fg.reach[lo:hi] == list(row)
        for k in range(lo, hi):
            d = fg.reach[k]
            expect = -1 if d == c else cgra.link_table[(c, d)]
            assert fg.reach_link[k] == expect


def test_flat_graph_shared_across_equal_arrays():
    a, b = by_name("simple4x4"), by_name("simple4x4")
    assert a is not b
    assert flat_graph(a) is flat_graph(b)  # fingerprint LRU hit
    assert flat_graph(a) is flat_graph(a)  # instance memo


def test_links_into_matches_in_adjacency():
    cgra = by_name("hetero4x4")
    fg = flat_graph(cgra)
    for dst in range(fg.n):
        into = fg.links_into(dst)
        assert set(into) == set(cgra.neighbors_in(dst))
        for src, lid in into.items():
            assert lid == cgra.link_table[(src, dst)]


# -- CellClaims -------------------------------------------------------------
def test_cell_claims_overused_boundary():
    claims = CellClaims(4)
    claims.claim(1, 10)
    assert not claims.overused
    claims.claim(1, 11)
    assert claims.overused == {1}
    claims.release(1, 10)
    assert not claims.overused
    assert claims.exclusive(1, 11)
    assert not claims.exclusive(1, 10)
    assert claims.exclusive(0, 10)  # untouched cell is free


def test_cell_claims_fanout_refcounts():
    claims = CellClaims(4)
    # Two edges of the same fan-out share cell 2.
    claims.claim_path([1, 2], 7)
    claims.claim_path([3, 2], 7)
    assert claims.n_here(2) == 1  # one distinct value
    claims.release_path([1, 2], 7)
    # The sibling's claim must survive the rip-up.
    assert claims.exclusive(2, 7)
    assert not claims.exclusive(2, 8)
    claims.release_path([3, 2], 7)
    assert claims.exclusive(2, 8)


def test_cell_claims_n_others():
    claims = CellClaims(2)
    claims.claim(0, 1)
    claims.claim(0, 2)
    claims.claim(0, 2)
    assert claims.n_here(0) == 2
    assert claims.n_others(0, 1) == 1
    assert claims.n_others(0, 3) == 2
    assert claims.n_others(1, 3) == 0


# -- DialQueue vs heapq -----------------------------------------------------
def test_dial_queue_matches_heapq_on_monotone_pushes():
    rng = random.Random(1234)
    for _ in range(50):
        dial, heap = DialQueue(), []
        popped_dial, popped_heap = [], []
        floor = 0  # pushes never go below the current drain point
        for _ in range(rng.randrange(5, 60)):
            if heap and rng.random() < 0.4:
                popped_dial.append(dial.pop())
                pri, payload = heapq.heappop(heap)
                popped_heap.append((pri, payload))
                floor = popped_heap[-1][0]
            else:
                # Deliberately many ties in both priority and payload
                # head so the in-bucket heap order is exercised.
                pri = floor + rng.randrange(0, 4)
                payload = (rng.randrange(0, 3), rng.randrange(100))
                dial.push(pri, payload)
                heapq.heappush(heap, (pri, payload))
        while heap:
            popped_dial.append(dial.pop())
            popped_heap.append(heapq.heappop(heap))
        assert popped_dial == popped_heap
        assert len(dial) == 0


def test_dial_queue_empty_pop_raises():
    q = DialQueue()
    with pytest.raises(IndexError):
        q.pop()
    q.push(3, "x")
    assert q.pop() == (3, "x")
    with pytest.raises(IndexError):
        q.pop()


# -- negotiated spatial routing: flat vs scalar -----------------------------
def _corpus(arch, n_ops, seed):
    cgra = by_name(arch)
    dfg = kernels.kernel(f"layered:{n_ops}:2:{seed}")
    # random_binding is allowed to fail on a tight fabric; retry a few
    # deterministic draws so the corpus rarely loses a case to it.
    binding = None
    for attempt in range(8):
        rng = random.Random(seed * 7919 + n_ops * 131 + attempt)
        binding = sc.random_binding(dfg, cgra, rng)
        if binding is not None:
            break
    return cgra, dfg, binding


@pytest.mark.parametrize("arch", SPATIAL_ARCHS)
@pytest.mark.parametrize("seed", range(8))
def test_negotiate_flat_full_matches_scalar_small(arch, seed):
    cgra, dfg, binding = _corpus(arch, 10 + 2 * (seed % 2), seed)
    if binding is None:
        pytest.skip("no injective binding for this seed")
    r_flat = sc.route_negotiated(
        dfg, cgra, binding, engine="flat", incremental=False
    )
    r_scalar = sc.route_negotiated(dfg, cgra, binding, engine="scalar")
    assert (r_flat is None) == (r_scalar is None)
    if r_flat is not None:
        assert r_flat == r_scalar
        # Byte-identical includes dict insertion order.
        assert list(r_flat) == list(r_scalar)


@pytest.mark.parametrize("seed", range(4))
def test_negotiate_flat_full_matches_scalar_16x16(seed):
    cgra, dfg, binding = _corpus("simple16x16", 24, seed)
    assert binding is not None
    r_flat = sc.route_negotiated(
        dfg, cgra, binding, engine="flat", incremental=False
    )
    r_scalar = sc.route_negotiated(dfg, cgra, binding, engine="scalar")
    assert (r_flat is None) == (r_scalar is None)
    if r_flat is not None:
        assert r_flat == r_scalar and list(r_flat) == list(r_scalar)


def _assert_legal_spatial_routes(cgra, binding, routes):
    """The legality `route_spatial` enforces: route cells are op-free
    and carry one value each (fan-out sharing within a value ok)."""
    op_cells = set(binding.values())
    claims = CellClaims(cgra.n_cells)
    for e, steps in routes.items():
        chain = [s.cell for s in steps]
        for c in chain:
            assert c not in op_cells
        claims.claim_path(chain, e.src)
        # The chain must be a connected src -> dst walk.
        prev = binding[e.src]
        for c in chain:
            assert cgra.has_link(prev, c)
            prev = c
        assert cgra.has_link(prev, binding[e.dst])
    assert not claims.overused


@pytest.mark.parametrize("arch", SPATIAL_ARCHS + ["simple16x16"])
@pytest.mark.parametrize("seed", range(5))
def test_incremental_negotiation_legal_and_no_worse(arch, seed):
    n_ops = 24 if arch == "simple16x16" else 12
    cgra, dfg, binding = _corpus(arch, n_ops, seed + 100)
    if binding is None:
        pytest.skip("no injective binding for this seed")
    r_scalar = sc.route_negotiated(dfg, cgra, binding, engine="scalar")
    r_inc = sc.route_negotiated(
        dfg, cgra, binding, engine="flat", incremental=True
    )
    # Success parity: incremental succeeds whenever the scalar
    # schedule does (its exhaustion path falls back to that schedule).
    if r_scalar is not None:
        assert r_inc is not None
    if r_inc is not None:
        assert set(r_inc) == set(r_scalar or r_inc)
        _assert_legal_spatial_routes(cgra, binding, r_inc)


def test_negotiate_adjacent_chain_short_circuits():
    cgra = by_name("simple4x4")
    # A pure chain (width=1 draws from the unary pool) placed along a
    # row: every edge is cell-adjacent, so nothing needs negotiation.
    dfg = kernels.kernel("layered:4:1:0")
    nodes = [n.nid for n in dfg.nodes() if not n.op.is_pseudo]
    # Serpentine cell order keeps consecutive cells grid-adjacent
    # (0..3 along row 0, then 7 directly below 3).
    cells = [0, 1, 2, 3, 7, 6, 5, 4]
    binding = {nid: cells[i] for i, nid in enumerate(nodes)}
    r = sc.route_negotiated(dfg, cgra, binding, engine="flat")
    assert r == {}


# -- temporal searches: flat engine vs scalar engine ------------------------
def _random_occ(cgra, rng, ii=8):
    occ = Occupancy(cgra, ii=ii)
    n = cgra.n_cells
    for _ in range(n // 2):
        occ.place_op(rng.randrange(100), rng.randrange(n), rng.randrange(ii))
    for _ in range(n // 2):
        occ.add_route(
            rng.randrange(5), rng.randrange(n), rng.randrange(ii)
        )
    for _ in range(n // 4):
        src = rng.randrange(n)
        outs = list(cgra.neighbors_out(src))
        if outs:
            occ.add_link(
                rng.randrange(5), src, rng.choice(outs), rng.randrange(ii)
            )
    return occ


@pytest.mark.parametrize("arch", ["simple4x4", "hetero4x4"])
@pytest.mark.parametrize("prune", [False, True])
def test_router_find_flat_matches_scalar(arch, prune):
    cgra = by_name(arch)
    flat = Router(cgra, prune=prune, engine="flat")
    scalar = Router(cgra, prune=prune, engine="scalar")
    rng = random.Random(42)
    n = cgra.n_cells
    for case in range(40):
        occ = _random_occ(cgra, rng)
        req = RouteRequest(
            rng.randrange(5),
            src_cell=rng.randrange(n),
            t_emit=rng.randrange(4),
            dst_cell=rng.randrange(n),
            t_consume=rng.randrange(1, 8),
        )
        assert flat.find(occ, req) == scalar.find(occ, req)


@pytest.mark.parametrize("arch", ["simple4x4", "hetero4x4"])
@pytest.mark.parametrize("penalty", [10.0, 2.5])
def test_router_find_negotiated_flat_matches_scalar(arch, penalty):
    cgra = by_name(arch)
    flat = Router(cgra, engine="flat")
    scalar = Router(cgra, engine="scalar")
    rng = random.Random(4242)
    n = cgra.n_cells
    for case in range(30):
        occ = _random_occ(cgra, rng)
        req = RouteRequest(
            rng.randrange(5),
            src_cell=rng.randrange(n),
            t_emit=rng.randrange(4),
            dst_cell=rng.randrange(n),
            t_consume=rng.randrange(1, 8),
        )
        history = {}
        if case % 2:
            for _ in range(6):
                key = (
                    rng.randrange(n),
                    rng.randrange(8),
                    HOLD if rng.random() < 0.5 else ROUTE,
                )
                history[key] = float(rng.randrange(1, 4))
        a = flat.find_negotiated(
            occ, req, history=history, penalty=penalty
        )
        b = scalar.find_negotiated(
            occ, req, history=history, penalty=penalty
        )
        assert (a is None) == (b is None)
        if a is not None:
            assert a[0] == b[0]
            assert a[1] == pytest.approx(b[1], abs=1e-12)
