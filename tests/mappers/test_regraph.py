"""Route-node insertion (regraph) tests."""

from repro.ir import kernels
from repro.ir.dfg import DFG, Op
from repro.ir.interp import evaluate
from repro.mappers.regraph import split_dist0_edges, split_edge


def test_split_edge_preserves_semantics():
    g = kernels.dot_product()
    # Split the mul -> add edge.
    mul = next(n.nid for n in g.nodes() if n.op is Op.MUL)
    add = next(n.nid for n in g.nodes() if n.op is Op.ADD)
    e = next(e for e in g.out_edges(mul) if e.dst == add)
    h = g.copy()
    split_edge(h, next(
        e2 for e2 in h.out_edges(mul) if e2.dst == add and e2.port == e.port
    ))
    h.check()
    a, b = [1, 2, 3], [4, 5, 6]
    assert (
        evaluate(g, 3, {"a": a, "b": b})["sum"]
        == evaluate(h, 3, {"a": a, "b": b})["sum"]
    )


def test_split_carried_edge_moves_distance():
    g = DFG()
    x = g.input("x")
    d = g.add(Op.ROUTE, x)
    e0 = g.operand(d, 0)
    g.remove_edge(e0)
    g.connect(x, d, port=0, dist=2)
    y = g.add(Op.NEG, d)
    g.output(y, "y")
    e = next(e for e in g.out_edges(x))
    # x is pseudo, but split_edge works on any edge mechanically.
    split_edge(g, e)
    g.check()
    out = evaluate(g, 5, {"x": [1, 2, 3, 4, 5]})
    assert out["y"] == [0, 0, -1, -2, -3]


def test_split_all_adds_one_route_per_edge():
    g = kernels.sobel_x()
    n_edges = sum(
        1
        for e in g.edges()
        if e.dist == 0
        and not g.node(e.src).op.is_pseudo
        and not g.node(e.dst).op.is_pseudo
    )
    h = split_dist0_edges(g, rounds=1)
    assert h.op_count() == g.op_count() + n_edges


def test_split_preserves_original():
    g = kernels.sobel_x()
    before = g.pretty()
    split_dist0_edges(g, rounds=2)
    assert g.pretty() == before


def test_split_leaves_carried_edges_alone():
    g = kernels.accumulate()
    h = split_dist0_edges(g, rounds=1)
    carried = [e for e in h.edges() if e.dist > 0]
    assert len(carried) == 1
    # RecMII unchanged: the self-loop is intact.
    from repro.arch import presets
    from repro.core.problem import MappingProblem

    cgra = presets.simple_cgra(2, 2)
    assert MappingProblem(h, cgra).rec_mii == 1


def test_split_rounds_compose():
    g = kernels.if_select()  # has real op-to-op edges
    h1 = split_dist0_edges(g, rounds=1)
    h2 = split_dist0_edges(g, rounds=2)
    assert h2.op_count() > h1.op_count() > g.op_count()
    out = evaluate(h2, 2, {"a": [7, 2], "b": [3, 9]})
    assert out["y"] == [4, 7]
