"""CLI tests (direct invocation of repro.cli.main)."""

import pytest

from repro.cli import main


def test_list_mappers(capsys):
    assert main(["list", "mappers"]) == 0
    out = capsys.readouterr().out
    assert "dresc" in out and "exact" in out and "[22]" in out


def test_list_kernels(capsys):
    assert main(["list", "kernels"]) == 0
    assert "dot_product" in capsys.readouterr().out


def test_list_archs(capsys):
    assert main(["list", "archs"]) == 0
    out = capsys.readouterr().out
    assert "simple4x4" in out and "adres4x4" in out


def test_map_kernel(capsys):
    rc = main([
        "map", "--kernel", "dot_product", "--arch", "simple4x4",
        "--mapper", "list_sched", "--show-contexts",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "II=1" in out and "configuration" in out


def test_map_failure_exit_code(capsys):
    rc = main([
        "map", "--kernel", "conv3x3", "--arch", "simple2x2",
        "--mapper", "sa_spatial",
    ])
    assert rc == 1
    assert "mapping failed" in capsys.readouterr().err


def test_map_source_file(tmp_path, capsys):
    src = tmp_path / "k.cgra"
    src.write_text("kernel k { y = a + b; out y; }")
    rc = main([
        "map", "--source", str(src), "--arch", "simple4x4",
        "--mapper", "ultrafast",
    ])
    assert rc == 0
    assert "Mapping of" in capsys.readouterr().out


def test_compare(capsys):
    rc = main([
        "compare", "--kernels", "dot_product,vector_add",
        "--mappers", "list_sched,ultrafast",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ultrafast" in out and "vector_add" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I (literature)" in out
    assert "Table I (this package)" in out
    assert "[22]" in out and "dresc" in out


def test_timeline(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "2021" in out and "Modulo scheduling" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
