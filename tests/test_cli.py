"""CLI tests (direct invocation of repro.cli.main)."""

import pytest

from repro.cli import main


def test_list_mappers(capsys):
    assert main(["list", "mappers"]) == 0
    out = capsys.readouterr().out
    assert "dresc" in out and "exact" in out and "[22]" in out


def test_list_kernels(capsys):
    assert main(["list", "kernels"]) == 0
    assert "dot_product" in capsys.readouterr().out


def test_list_archs(capsys):
    assert main(["list", "archs"]) == 0
    out = capsys.readouterr().out
    assert "simple4x4" in out and "adres4x4" in out


def test_map_kernel(capsys):
    rc = main([
        "map", "--kernel", "dot_product", "--arch", "simple4x4",
        "--mapper", "list_sched", "--show-contexts",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "II=1" in out and "configuration" in out


def test_map_failure_exit_code(capsys):
    rc = main([
        "map", "--kernel", "conv3x3", "--arch", "simple2x2",
        "--mapper", "sa_spatial",
    ])
    assert rc == 1
    assert "mapping failed" in capsys.readouterr().err


def test_map_source_file(tmp_path, capsys):
    src = tmp_path / "k.cgra"
    src.write_text("kernel k { y = a + b; out y; }")
    rc = main([
        "map", "--source", str(src), "--arch", "simple4x4",
        "--mapper", "ultrafast",
    ])
    assert rc == 0
    assert "Mapping of" in capsys.readouterr().out


def test_compare(capsys):
    rc = main([
        "compare", "--kernels", "dot_product,vector_add",
        "--mappers", "list_sched,ultrafast",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ultrafast" in out and "vector_add" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I (literature)" in out
    assert "Table I (this package)" in out
    assert "[22]" in out and "dresc" in out


def test_timeline(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "2021" in out and "Modulo scheduling" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_map_positional_kernel_and_fuzzy_names(capsys):
    rc = main(["map", "dotprod", "--arch", "4x4", "--mapper", "sa_spatial"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dot_product on simple4x4" in out


def test_map_unknown_kernel_lists_candidates():
    with pytest.raises(SystemExit) as exc:
        main(["map", "no_such_kernel"])
    assert "available" in str(exc.value)


def test_map_profile_prints_breakdown(capsys):
    rc = main(["map", "fir4", "--mapper", "list_sched", "--profile"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-phase summary" in out
    assert "candidates_explored" in out
    assert "map" in out and "ii" in out


def test_map_trace_writes_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "map.jsonl"
    rc = main(["map", "fir4", "--mapper", "dresc", "--trace", str(path)])
    assert rc == 0
    assert "wrote" in capsys.readouterr().out
    recs = [json.loads(l) for l in path.read_text().splitlines()]
    assert recs
    assert recs[0]["type"] == "manifest"  # provenance header first
    assert recs[1]["name"] == "map"
    assert any(r.get("depth", 0) > 0 for r in recs)  # nested spans


def test_compare_trace_smoke(tmp_path, capsys):
    import json

    path = tmp_path / "cmp.jsonl"
    rc = main([
        "compare", "--kernels", "dot_product,fir4",
        "--mappers", "list_sched,dresc",
        "--trace", str(path), "--profile",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-phase summary" in out
    recs = [json.loads(l) for l in path.read_text().splitlines()]
    # One root span per (mapper, kernel) cell (plus the manifest line).
    assert sum(
        1 for r in recs if "name" in r and r.get("parent") is None
    ) == 4


def test_verbose_flag_sets_debug_level():
    import logging

    assert main(["-v", "list", "archs"]) == 0
    assert logging.getLogger("repro").level == logging.DEBUG
    assert main(["list", "archs"]) == 0
    assert logging.getLogger("repro").level == logging.WARNING
