"""The cache is a pure optimisation: byte-identical results or bust.

Every mapping produced through the cache — cold, warm, via the disk
tier, via a renumbered-but-isomorphic graph — must serialize to
exactly the bytes an uncached run produces.  And a poisoned store must
degrade to a silent miss, never a crash or a wrong answer.
"""

from __future__ import annotations

import json

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.bench.harness import run_matrix
from repro.cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    MappingCache,
    cache_disabled,
    get_cache,
    mapping_cache,
    reset_cache,
)
from repro.core.serialize import mapping_to_json
from repro.dse.explorer import explore
from repro.ir import kernels
from tests.cache.test_fingerprint import sum_of_products
from tests.core.test_equivalence import _row_key

MAPPERS = ["list_sched", "edge_centric", "spr", "dresc"]
KERNELS = ["dot_product", "fir4"]

SPACE = [
    {"size": 4, "topology": "mesh", "rf_size": 4, "mem_cells": "all"},
    {"size": 4, "topology": "diagonal", "rf_size": 2, "mem_cells": "left"},
]


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


@pytest.fixture(autouse=True)
def _pristine_cache_state(monkeypatch):
    """Each test starts (and leaves the process) with caching off."""
    monkeypatch.delenv(CACHE_ENV, raising=False)
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    reset_cache()
    yield
    reset_cache()


# ---------------------------------------------------------------------------
# Activation: off by default, on by env or region
# ---------------------------------------------------------------------------
def test_cache_is_off_by_default():
    assert get_cache() is None


def test_env_var_activates_memory_tier(monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "1")
    reset_cache()
    cache = get_cache()
    assert isinstance(cache, MappingCache)
    assert cache.store.disk is None


def test_env_path_activates_disk_tier(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "c"))
    reset_cache()
    cache = get_cache()
    assert cache.store.disk is not None
    assert cache.store.disk.root == tmp_path / "c"


def test_cache_disabled_overrides_env(monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "1")
    reset_cache()
    with cache_disabled():
        assert get_cache() is None
    assert get_cache() is not None


# ---------------------------------------------------------------------------
# Byte-identical equivalence
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mapper", MAPPERS)
@pytest.mark.parametrize("kname", KERNELS)
def test_cached_equals_uncached(cgra, mapper, kname):
    dfg = kernels.kernel(kname)
    reference = mapping_to_json(map_dfg(dfg, cgra, mapper=mapper))
    with mapping_cache() as cache:
        cold = mapping_to_json(map_dfg(dfg, cgra, mapper=mapper))
        warm = mapping_to_json(map_dfg(dfg, cgra, mapper=mapper))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.validation_failures == 0
    assert cold == reference
    assert warm == reference


def test_isomorphic_renumbering_hits(cgra):
    """Construction order must not defeat the cache."""
    with mapping_cache() as cache:
        map_dfg(sum_of_products("lr"), cgra, mapper="list_sched")
        mapping = map_dfg(sum_of_products("rl"), cgra, mapper="list_sched")
        assert cache.stats.hits == 1
    assert mapping.validate() == []


def test_distinct_problems_do_not_collide(cgra):
    with mapping_cache() as cache:
        map_dfg(kernels.kernel("dot_product"), cgra, mapper="list_sched")
        small = presets.simple_cgra(4, 4, rf_size=2)
        map_dfg(kernels.kernel("dot_product"), small, mapper="list_sched")
        map_dfg(kernels.kernel("fir4"), cgra, mapper="list_sched")
        map_dfg(kernels.kernel("fir4"), cgra, mapper="edge_centric")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 4


def test_disk_tier_shared_across_cache_instances(tmp_path, cgra):
    """A fresh process (modeled by a fresh cache over the same
    directory) re-uses the first process's work."""
    dfg = kernels.kernel("fir4")
    reference = mapping_to_json(map_dfg(dfg, cgra, mapper="list_sched"))
    shared = tmp_path / "shared"
    with mapping_cache(shared) as cache:
        map_dfg(dfg, cgra, mapper="list_sched")
        assert cache.stats.stores == 1
    with mapping_cache(shared) as cache:
        warm = mapping_to_json(map_dfg(dfg, cgra, mapper="list_sched"))
        assert cache.stats.hits == 1
        assert cache.stats.validation_failures == 0
    assert warm == reference


# ---------------------------------------------------------------------------
# Poisoned stores: silent misses, never crashes or wrong answers
# ---------------------------------------------------------------------------
def _wrong_fingerprint(doc):
    doc["fingerprint"] = "0" * len(doc["fingerprint"])


def _stale_format(doc):
    doc["format"] = 99


def _garbled_nodes(doc):
    doc["binding"] = {"999": 0}


@pytest.mark.parametrize(
    "mutate", [_wrong_fingerprint, _stale_format, _garbled_nodes]
)
def test_poisoned_entry_is_a_silent_miss(cgra, mutate):
    dfg = kernels.kernel("dot_product")
    reference = mapping_to_json(map_dfg(dfg, cgra, mapper="list_sched"))
    with mapping_cache() as cache:
        map_dfg(dfg, cgra, mapper="list_sched")
        [key] = cache.store.memory.keys()
        mutate(cache.store.memory.get(key))
        mapping = map_dfg(dfg, cgra, mapper="list_sched")
        assert cache.stats.validation_failures == 1
        assert cache.stats.hits == 0
        # The poisoned entry was dropped and replaced by the re-map.
        assert cache.stats.stores == 2
    assert mapping_to_json(mapping) == reference


def test_truncated_disk_entry_is_a_silent_miss(tmp_path, cgra):
    dfg = kernels.kernel("dot_product")
    shared = tmp_path / "c"
    with mapping_cache(shared):
        map_dfg(dfg, cgra, mapper="list_sched")
    for path in shared.glob("*.json"):
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
    with mapping_cache(shared) as cache:
        mapping = map_dfg(dfg, cgra, mapper="list_sched")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
    assert mapping.validate() == []


def test_put_declines_a_mismatched_graph(cgra):
    """Exact mappers may return a mapping over a rewritten graph; such
    a result must never be stored under the original graph's key."""
    cache = MappingCache()
    dfg = kernels.kernel("dot_product")
    other = kernels.kernel("fir4")
    mapping = map_dfg(dfg, cgra, mapper="list_sched")
    key = cache.key(other, cgra, mapper="list_sched")
    cache.put(key, mapping)
    assert cache.stats.stores == 0
    assert cache.get(key, other, cgra) is None


# ---------------------------------------------------------------------------
# Harness integration: run_matrix, explore, portfolio
# ---------------------------------------------------------------------------
def test_run_matrix_cache_equivalence(cgra):
    reference = run_matrix(MAPPERS, KERNELS, cgra, cache=False)
    cache = MappingCache()
    cold = run_matrix(MAPPERS, KERNELS, cgra, cache=cache)
    warm = run_matrix(MAPPERS, KERNELS, cgra, cache=cache)
    ref_keys = [_row_key(r) for r in reference]
    assert [_row_key(r) for r in cold] == ref_keys
    assert [_row_key(r) for r in warm] == ref_keys
    assert cache.stats.hits >= len(MAPPERS) * len(KERNELS)
    assert cache.stats.validation_failures == 0


def test_run_matrix_parallel_merges_worker_stats(tmp_path, cgra):
    cache = MappingCache(tmp_path / "c")
    run_matrix(["list_sched"], KERNELS, cgra, jobs=2, cache=cache)
    cold_hits = cache.stats.hits
    run_matrix(["list_sched"], KERNELS, cgra, jobs=2, cache=cache)
    # The warm hits happened inside forked workers; the parent's stats
    # must still see them.
    assert cache.stats.hits - cold_hits >= len(KERNELS)
    assert cache.stats.validation_failures == 0


def test_explore_cache_equivalence(tmp_path):
    suite = ["dot_product", "fir4"]
    reference = explore(SPACE, suite, cache=False)
    cache = MappingCache(tmp_path / "c")
    cold = explore(SPACE, suite, cache=cache)
    warm = explore(SPACE, suite, cache=cache)
    assert cold == reference
    assert warm == reference
    assert cache.stats.hits >= len(SPACE) * len(suite)
    assert cache.stats.validation_failures == 0


def test_portfolio_seeds_entrant_entries(cgra):
    dfg = kernels.kernel("dot_product")
    with mapping_cache() as cache:
        won = map_dfg(
            dfg, cgra, mapper="portfolio",
            mappers=("list_sched", "edge_centric"), jobs=1, policy="best",
        )
        stores = cache.stats.stores
        assert stores >= 1
        # A later direct call to the winning entrant hits immediately —
        # the race seeded the cache; nothing re-maps, nothing re-stores.
        hits = cache.stats.hits
        again = map_dfg(dfg, cgra, mapper="list_sched")
        assert cache.stats.hits == hits + 1
        assert cache.stats.stores == stores
    assert again.ii == won.ii
    assert again.validate() == []
