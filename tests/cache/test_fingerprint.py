"""Canonical-key tests: isomorphism invariance, architecture coverage.

The cache key must collide exactly when two problems are the same
problem.  The DFG half is checked against construction-order
renumbering (the classic ``a*b + c*d`` built in either order); the
architecture half is checked against every preset knob that changes
mapping feasibility.
"""

from __future__ import annotations

from repro.arch import presets
from repro.cache.fingerprint import (
    DIGEST_LEN,
    arch_fingerprint,
    canonical_ids,
    dfg_fingerprint,
    problem_fingerprint,
    refine_colors,
)
from repro.ir import kernels
from repro.ir.dfg import DFG, Op


def sum_of_products(order: str) -> DFG:
    """``a*b + c*d`` with the multiplies built in the given order.

    Both orders are the same kernel; only the accidental node ids
    differ.
    """
    g = DFG(f"sop_{order}")
    a = g.input("a")
    b = g.input("b")
    c = g.input("c")
    d = g.input("d")
    if order == "lr":
        m1 = g.add(Op.MUL, a, b)
        m2 = g.add(Op.MUL, c, d)
    else:
        m2 = g.add(Op.MUL, c, d)
        m1 = g.add(Op.MUL, a, b)
    s = g.add(Op.ADD, m1, m2)
    g.output(s, "out")
    return g


# ---------------------------------------------------------------------------
# DFG half
# ---------------------------------------------------------------------------
def test_isomorphic_builds_share_a_fingerprint():
    assert dfg_fingerprint(sum_of_products("lr")) == dfg_fingerprint(
        sum_of_products("rl")
    )


def test_node_names_are_accidental():
    g1 = kernels.kernel("dot_product")
    g2 = kernels.kernel("dot_product")
    for nid in g2:
        g2.node(nid).name = f"renamed_{nid}"
    assert dfg_fingerprint(g1) == dfg_fingerprint(g2)


def test_distinct_kernels_get_distinct_fingerprints():
    names = ["dot_product", "fir4", "sobel_x", "if_select"]
    fps = {dfg_fingerprint(kernels.kernel(n)) for n in names}
    assert len(fps) == len(names)


def test_edge_distance_is_semantic():
    """Dropping the loop-carried distance changes the problem."""
    g1 = kernels.kernel("dot_product")
    g2 = kernels.kernel("dot_product")
    carried = next(e for e in g2.edges() if e.dist == 1)
    g2.remove_edge(carried)
    g2.connect(carried.src, carried.dst, port=carried.port, dist=2)
    assert dfg_fingerprint(g1) != dfg_fingerprint(g2)


def test_canonical_ids_are_a_permutation():
    g = kernels.kernel("sobel_x")
    canon = canonical_ids(g)
    assert sorted(canon) == sorted(g)
    assert sorted(canon.values()) == list(range(len(g)))
    # Precomputed colors short-circuit to the same answer.
    assert canonical_ids(g, refine_colors(g)) == canon


def test_canonical_ids_translate_across_renumbering():
    """The canonical relabelings of two isomorphic builds agree on
    which *roles* land on which canonical index."""
    g1, g2 = sum_of_products("lr"), sum_of_products("rl")
    ops1 = {i: g1.node(nid).op for nid, i in canonical_ids(g1).items()}
    ops2 = {i: g2.node(nid).op for nid, i in canonical_ids(g2).items()}
    assert ops1 == ops2


# ---------------------------------------------------------------------------
# Architecture half
# ---------------------------------------------------------------------------
def test_arch_fingerprint_deterministic_across_instances():
    assert arch_fingerprint(presets.simple_cgra(4, 4)) == arch_fingerprint(
        presets.simple_cgra(4, 4)
    )


def test_arch_fingerprint_covers_feasibility_knobs():
    base = arch_fingerprint(presets.simple_cgra(4, 4))
    variants = [
        presets.simple_cgra(2, 2),
        presets.simple_cgra(4, 4, topology="torus"),
        presets.simple_cgra(4, 4, rf_size=2),
        presets.simple_cgra(4, 4, n_contexts=8),
        presets.simple_cgra(4, 4, mem_cells="left"),
    ]
    fps = [arch_fingerprint(v) for v in variants]
    assert base not in fps
    assert len(set(fps)) == len(fps)


def test_arch_fingerprint_memoized_on_instance():
    cgra = presets.simple_cgra(4, 4)
    fp = arch_fingerprint(cgra)
    assert cgra._arch_fp == fp
    assert arch_fingerprint(cgra) == fp


def test_problem_fingerprint_concatenates_both_halves():
    dfg = kernels.kernel("fir4")
    cgra = presets.simple_cgra(4, 4)
    fp = problem_fingerprint(dfg, cgra)
    assert len(fp) == 2 * DIGEST_LEN
    assert fp == dfg_fingerprint(dfg) + arch_fingerprint(cgra)
