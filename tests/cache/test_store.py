"""Tiered memo store: LRU discipline, atomicity, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.cache.store import DiskStore, MemoryStore, TieredStore


# ---------------------------------------------------------------------------
# MemoryStore
# ---------------------------------------------------------------------------
def test_memory_roundtrip_and_miss():
    store = MemoryStore(4)
    assert store.get("k") is None
    store.put("k", {"v": 1})
    assert store.get("k") == {"v": 1}
    store.invalidate("k")
    assert store.get("k") is None


def test_memory_eviction_is_least_recently_used():
    store = MemoryStore(2)
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    store.get("a")  # freshen a, making b the LRU entry
    store.put("c", {"v": 3})
    assert store.get("b") is None
    assert store.get("a") == {"v": 1}
    assert store.get("c") == {"v": 3}
    assert len(store) == 2


def test_memory_rejects_useless_capacity():
    with pytest.raises(ValueError, match="capacity"):
        MemoryStore(0)


# ---------------------------------------------------------------------------
# DiskStore
# ---------------------------------------------------------------------------
def test_disk_roundtrip(tmp_path):
    store = DiskStore(tmp_path / "c")
    store.put("k", {"v": 1})
    assert store.get("k") == {"v": 1}
    # One JSON file per key, valid on its own.
    [path] = (tmp_path / "c").glob("*.json")
    assert json.loads(path.read_text()) == {"v": 1}


def test_disk_corrupt_entry_reads_as_miss_and_is_dropped(tmp_path):
    store = DiskStore(tmp_path / "c")
    store.put("k", {"v": 1})
    path = store._path("k")
    path.write_text(path.read_text()[:5])  # torn write
    assert store.get("k") is None
    assert not path.exists()


def test_disk_non_dict_entry_reads_as_miss(tmp_path):
    store = DiskStore(tmp_path / "c")
    store._path("k").write_text("[1, 2, 3]")
    assert store.get("k") is None


def test_disk_eviction_trims_oldest_first(tmp_path):
    pad = "x" * 200
    store = DiskStore(tmp_path / "c", max_bytes=500)
    store.put("old", {"pad": pad})
    store.put("mid", {"pad": pad})
    # Backdate so mtime order is unambiguous regardless of clock
    # granularity.
    import os

    os.utime(store._path("old"), (1, 1))
    os.utime(store._path("mid"), (2, 2))
    store.put("new", {"pad": pad})  # 3 * ~215 bytes > 500 -> evict
    assert store.get("old") is None
    assert store.get("mid") is not None
    assert store.get("new") is not None


def test_disk_clear_and_stats(tmp_path):
    store = DiskStore(tmp_path / "c")
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["bytes"] > 0
    assert stats["directory"] == str(tmp_path / "c")
    assert store.clear() == 2
    assert len(store) == 0
    assert store.get("a") is None


# ---------------------------------------------------------------------------
# TieredStore
# ---------------------------------------------------------------------------
def test_tiered_disk_hits_promote_to_memory(tmp_path):
    disk = DiskStore(tmp_path / "c")
    disk.put("k", {"v": 1})
    tiered = TieredStore(MemoryStore(4), DiskStore(tmp_path / "c"))
    assert tiered.get("k") == {"v": 1}
    assert tiered.memory.get("k") == {"v": 1}
    # A second hit no longer needs the disk at all.
    tiered.disk.invalidate("k")
    assert tiered.get("k") == {"v": 1}


def test_tiered_put_writes_through_and_invalidate_clears_both(tmp_path):
    tiered = TieredStore(MemoryStore(4), DiskStore(tmp_path / "c"))
    tiered.put("k", {"v": 1})
    assert tiered.memory.get("k") == {"v": 1}
    assert tiered.disk.get("k") == {"v": 1}
    tiered.invalidate("k")
    assert tiered.memory.get("k") is None
    assert tiered.disk.get("k") is None


def test_tiered_without_disk_is_memory_only():
    tiered = TieredStore(MemoryStore(4), None)
    tiered.put("k", {"v": 1})
    assert tiered.get("k") == {"v": 1}
    tiered.clear()
    assert tiered.get("k") is None
