"""The fuzz driver: clean mappers pass, corrupted mappers get caught,
failures shrink into runnable reproducers."""

import pytest

from repro.check import PINNED, run_case, run_fuzz
from repro.check.problems import Case, generate_case
from repro.check.report import dfg_builder_source
from repro.core import registry
from repro.ir.dfg import DFG, Op


def _case_for(mapper: str, seed: int = 0, **kw) -> Case:
    return generate_case(seed, [mapper], **kw)


def test_clean_case_produces_no_divergence():
    report = run_case(_case_for("list_sched", seed=2), shrink=False)
    assert report.ok
    assert report.cases == 1
    assert report.mapped + report.unmapped + report.timeouts == 1


def test_run_fuzz_aggregates_and_rotates():
    report = run_fuzz(
        range(0, 6),
        mappers=["list_sched", "edge_centric"],
        shrink=False,
        metamorphic=False,
    )
    assert report.cases == 6
    assert report.ok
    assert "6 cases" in report.summary()


# ---------------------------------------------------------------------------
# A deliberately corrupted mapper must be convicted and shrunk.
# ---------------------------------------------------------------------------
@pytest.fixture
def corrupted_list_sched(monkeypatch):
    """list_sched whose mapping silently computes the wrong values.

    The mapping stays structurally valid (an ADD cell executes SUB just
    fine), so only the differential oracle can catch it — exactly the
    bug class the harness exists for.
    """
    base = registry.get("list_sched")

    class Corrupted(base):  # type: ignore[misc,valid-type]
        def _map(self, dfg, cgra, ii):
            mapping = super()._map(dfg.copy(), cgra, ii)
            for node in mapping.dfg.nodes():
                if node.op is Op.ADD:
                    node.op = Op.SUB
                    break
            return mapping

    monkeypatch.setitem(registry._REGISTRY, "list_sched", Corrupted)
    return "list_sched"


def _seed_with_add(mapper: str) -> Case:
    from repro.check.problems import case_dfg

    for seed in range(0, 200):
        case = generate_case(seed, [mapper])
        if any(n.op is Op.ADD for n in case_dfg(case).nodes()):
            return case
    raise AssertionError("no seed produced an ADD node")


def test_corrupted_mapper_is_convicted(corrupted_list_sched):
    case = _seed_with_add(corrupted_list_sched)
    report = run_case(case, shrink=False, metamorphic=False)
    assert not report.ok
    phases = {d.phase for d in report.divergences}
    assert "sim" in phases


def test_conviction_shrinks_and_emits_reproducer(corrupted_list_sched):
    case = _seed_with_add(corrupted_list_sched)
    report = run_case(case, shrink=True, metamorphic=False)
    assert not report.ok
    d = next(d for d in report.divergences if d.phase == "sim")
    assert d.shrunk_pretty
    assert d.reproducer
    # The reproducer must be compilable, self-contained Python whose
    # builder reconstructs exactly the shrunk graph.
    namespace: dict = {}
    exec(compile(d.reproducer, "<reproducer>", "exec"), namespace)
    rebuilt = namespace["build_dfg"]()
    assert rebuilt.pretty().splitlines()[1:] == (
        d.shrunk_pretty.splitlines()[1:]
    )  # same nodes/edges (name line differs only in graph name)
    # And smaller than what the generator produced.
    from repro.check.problems import case_dfg

    assert len(rebuilt) <= len(case_dfg(case))


def test_pinned_failures_do_not_fail_the_sweep(
    corrupted_list_sched, monkeypatch
):
    case = _seed_with_add(corrupted_list_sched)
    monkeypatch.setitem(
        PINNED, ("list_sched", "sim"), "tracking: synthetic test pin"
    )
    report = run_case(case, shrink=False, metamorphic=False)
    assert report.divergences  # still reported...
    assert report.ok  # ...but explained
    assert all(d.pinned for d in report.divergences if d.phase == "sim")


def test_crashing_mapper_is_a_divergence(monkeypatch):
    base = registry.get("list_sched")

    class Crashing(base):  # type: ignore[misc,valid-type]
        def _map(self, dfg, cgra, ii):
            raise RuntimeError("kaboom")

    monkeypatch.setitem(registry._REGISTRY, "list_sched", Crashing)
    report = run_case(
        _case_for("list_sched", seed=1), shrink=False, metamorphic=False
    )
    assert not report.ok
    assert report.divergences[0].phase == "map-crash"
    assert "kaboom" in report.divergences[0].detail


def test_builder_source_round_trips_carried_edges():
    g = DFG("carried")
    x = g.input("x")
    a = g.add(Op.ADD, x, x)
    m = g.add(Op.MAX, a, a)
    e = g.operand(m, 1)
    g.remove_edge(e)
    g.connect(a, m, port=1, dist=2)
    g.output(m, "y")
    g.check()
    namespace: dict = {"DFG": DFG, "Op": Op}
    exec(dfg_builder_source(g), namespace)
    rebuilt = namespace["g"]
    assert rebuilt.pretty() == g.pretty()
