"""The shrinker: minimal, deterministic, structure-preserving."""

from repro.check.shrink import (
    ShrinkBudget,
    shrink_dfg,
    shrink_inputs,
    shrink_iters,
)
from repro.ir import randdfg
from repro.ir.dfg import DFG, Op


def _has_mul(g: DFG) -> bool:
    return any(n.op is Op.MUL for n in g.nodes())


def test_shrinks_synthetic_failure_to_six_nodes():
    """A 'fails iff a MUL exists' predicate must strip everything else."""
    dfg = randdfg.layered(14, width=4, seed=7)
    assert _has_mul(dfg)
    small = shrink_dfg(dfg, _has_mul)
    assert _has_mul(small)
    small.check()
    # MUL + at most two producers + one OUTPUT.
    assert len(small) <= 6
    assert len(small) < len(dfg)


def test_shrink_is_deterministic():
    dfg = randdfg.layered(12, width=3, seed=11)
    if not _has_mul(dfg):  # the seed above does produce MULs
        return
    a = shrink_dfg(dfg, _has_mul)
    b = shrink_dfg(dfg, _has_mul)
    assert a.pretty() == b.pretty()


def test_shrink_keeps_graphs_well_formed():
    seen: list[int] = []

    def predicate(g: DFG) -> bool:
        g.check()  # every candidate the predicate sees is valid
        seen.append(len(g))
        return _has_mul(g)

    dfg = randdfg.layered(10, seed=3)
    if not _has_mul(dfg):
        dfg = randdfg.layered(10, seed=4)
    shrink_dfg(dfg, predicate)
    assert seen  # the predicate actually ran


def test_shrink_respects_budget():
    budget = ShrinkBudget(max_checks=5)
    dfg = randdfg.layered(14, seed=7)
    shrink_dfg(dfg, _has_mul, budget=budget)
    assert budget.checks <= 5


def test_predicate_crash_counts_as_not_failing():
    def explosive(g: DFG) -> bool:
        if len(g) < 10:
            raise RuntimeError("boom")
        return True

    dfg = randdfg.layered(12, seed=5)
    out = shrink_dfg(dfg, explosive)
    out.check()
    assert len(out) >= 10  # never shrank into the crashing region


def test_shrinks_constants_toward_zero():
    g = DFG("consts")
    x = g.input("x")
    c = g.const(1 << 60)
    y = g.add(Op.ADD, x, c)
    g.output(y, "y")

    def pred(cand: DFG) -> bool:
        return any(n.op is Op.CONST for n in cand.nodes())

    small = shrink_dfg(g, pred)
    consts = [n.value for n in small.nodes() if n.op is Op.CONST]
    assert consts and all(abs(v) <= 1 for v in consts)


def test_shrink_inputs_moves_samples_to_zero():
    inputs = {"x": [97, -55, 3], "y": [12, 0, 8]}

    def pred(cand):
        return cand["x"][0] != 0  # only the first x sample matters

    small = shrink_inputs(None, inputs, pred)
    assert small["x"][0] in (1, -1)  # minimal nonzero witness
    assert small["y"] == [0, 0, 0]
    assert small["x"][1:] == [0, 0]


def test_shrink_iters_finds_smallest_count():
    assert shrink_iters(6, lambda n: n >= 3) == 3
    assert shrink_iters(4, lambda n: False) == 4
