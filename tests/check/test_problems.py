"""Case generation: deterministic, well-formed, full coverage."""

import pytest

from repro.check.problems import (
    DEFAULT_ARCHS,
    GENERATOR_FAMILIES,
    case_cgra,
    case_dfg,
    case_inputs,
    generate_case,
    restrict_inputs,
)
from repro.core.registry import names
from repro.ir.dfg import Op


def test_case_is_deterministic():
    mappers = names()
    for seed in range(20):
        a = generate_case(seed, mappers)
        b = generate_case(seed, mappers)
        assert a == b
        assert case_dfg(a).pretty() == case_dfg(b).pretty()
        assert case_inputs(a, case_dfg(a)) == case_inputs(b, case_dfg(b))


def test_seed_range_covers_every_mapper():
    mappers = names()
    seen = {
        generate_case(s, mappers).mapper
        for s in range(len(mappers) * 2)
    }
    assert seen == set(mappers)


def test_seed_range_covers_archs_and_families():
    mappers = names()
    cases = [generate_case(s, mappers) for s in range(120)]
    assert {c.arch for c in cases} == set(DEFAULT_ARCHS)
    assert {c.family for c in cases} == set(GENERATOR_FAMILIES)
    assert any(c.cache_mode == "on" for c in cases)


def test_generated_graphs_are_well_formed():
    mappers = names()
    for seed in range(60):
        case = generate_case(seed, mappers)
        dfg = case_dfg(case)
        dfg.check()  # raises on malformation
        assert dfg.op_count() >= 1
        inputs = case_inputs(case, dfg)
        input_names = {
            n.name for n in dfg.nodes() if n.op is Op.INPUT
        }
        assert set(inputs) == input_names
        for series in inputs.values():
            assert len(series) == case.n_iters


def test_exact_mappers_get_small_instances():
    # CDCL/B&B solvers must not be handed 12-op graphs.  The budget is
    # 6 interior ops; layered() may append up to width-1 XOR combiners
    # to keep every sink live, so the hard ceiling is budget + 3.
    for seed in range(40):
        case = generate_case(seed, ["sat"])
        assert case_dfg(case).op_count() <= 9


def test_large_magnitude_samples_appear():
    mappers = names()
    big = 0
    for seed in range(200):
        case = generate_case(seed, mappers)
        for series in case_inputs(case, case_dfg(case)).values():
            big += sum(1 for v in series if abs(v) > (1 << 53))
    assert big > 0  # the float-precision trap is actually exercised


def test_case_cgra_resolves_presets():
    case = generate_case(0, names())
    assert case_cgra(case).name.startswith(case.arch[:5])


def test_restrict_inputs_drops_removed_names():
    case = generate_case(3, names())
    dfg = case_dfg(case)
    inputs = dict(case_inputs(case, dfg))
    inputs["ghost"] = [1] * case.n_iters
    kept = restrict_inputs(inputs, dfg)
    assert "ghost" not in kept


def test_empty_mapper_list_rejected():
    with pytest.raises(ValueError):
        generate_case(0, [])
