"""Regression: simulator crashed on OUTPUT fed directly by a pseudo.

Found by the conformance shrinker: minimizing an unrelated divergence
bypassed every compute node, leaving a bare ``input -> output`` graph
— and ``simulate_mapping`` raised ``KeyError`` collecting the output
series.  The OUTPUT-collection loop read ``values[(src, k)]``
unconditionally, but CONST and INPUT producers are pseudos that never
write into ``values``; only the ``operand()`` helper knew that.  The
sequential interpreter handled both fine, so this was a pure
simulator/interpreter divergence.
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.ir.dfg import DFG, Op
from repro.ir.interp import evaluate
from repro.sim.machine import simulate_mapping


def _check(g: DFG, inputs: dict[str, list[int]]) -> None:
    g.check()
    reference = evaluate(g, 4, inputs)
    mapping = map_dfg(g, presets.simple_cgra(4, 4), mapper="list_sched", seed=0)
    assert mapping.validate(raise_on_error=False) == []
    if mapping.kind == "modulo":
        sim = simulate_mapping(mapping, 4, inputs)
        assert sim.outputs == reference


def test_output_of_input():
    g = DFG("passthrough")
    g.output(g.input("x"), "y")
    _check(g, {"x": [5, 6, 7, 8]})


def test_output_of_const():
    g = DFG("const_out")
    g.output(g.const(42), "y")
    _check(g, {})


def test_mixed_passthrough_and_compute():
    g = DFG("mixed")
    x = g.input("x")
    c = g.const(-3)
    g.output(x, "raw")          # pseudo-fed output
    g.output(c, "k")            # pseudo-fed output
    g.output(g.add(Op.MUL, x, c), "scaled")  # compute-fed output
    _check(g, {"x": [1, -2, 9, 0]})
