"""Regression: cache-replay oracle on ROUTE-split rewrites.

Found by ``repro fuzz`` at seed 364 (series_parallel on hetero4x4 via
the SAT mapper, cache on).  hetero4x4's route-only checkerboard forces
the mapper to insert ROUTE nodes, so the produced mapping is over a
*rewrite* of the caller's graph; the cache declines (by documented
contract) to store such a mapping, both solves run cold, and no cache
hit ever happens.  The harness used to treat the missing hit as a
divergence — the correct invariant is byte-identity of every solve,
with a hit owed only when a store actually happened.
"""

from repro.arch import presets
from repro.cache import cache_disabled, mapping_cache, reset_cache
from repro.check.metamorphic import cached_replay_difference
from repro.core.serialize import mapping_to_json
from repro.api import map_dfg
from repro.ir import randdfg
from repro.ir.dfg import Op


def _problem():
    # The shrunk seed-364 case: depth-2 series-parallel block on the
    # route-only checkerboard.
    return randdfg.series_parallel(2, seed=364), presets.by_name("hetero4x4")


def test_sat_route_splits_on_hetero4x4():
    dfg, cgra = _problem()
    with cache_disabled():
        mapping = map_dfg(dfg, cgra, mapper="sat", seed=364)
    # The precondition of the whole scenario: a genuine rewrite.
    assert mapping.dfg is not dfg
    assert any(n.op is Op.ROUTE for n in mapping.dfg.nodes())


def test_route_split_store_is_declined_but_replay_is_pure():
    reset_cache()
    dfg, cgra = _problem()
    with cache_disabled():
        cold = mapping_to_json(map_dfg(dfg, cgra, mapper="sat", seed=364))
    with mapping_cache() as cache:
        first = mapping_to_json(map_dfg(dfg, cgra, mapper="sat", seed=364))
        warm = mapping_to_json(map_dfg(dfg, cgra, mapper="sat", seed=364))
        assert cache.stats.stores == 0  # declined by contract
        assert cache.stats.hits == 0
    assert first == cold == warm  # the invariant that must hold anyway
    reset_cache()


def test_oracle_accepts_declined_store():
    reset_cache()
    dfg, cgra = _problem()
    assert cached_replay_difference(dfg, cgra, "sat", seed=364) is None
    reset_cache()
