"""Regression: DIV/MOD lost precision past 2**53.

``apply_op`` used to compute DIV as ``int(a / b)`` — float division —
so any quotient whose intermediate float exceeded 53 bits of mantissa
came back rounded, and MOD (derived from that quotient) drifted with
it.  Found by the conformance fuzzer's large-magnitude input samples;
fixed by :func:`repro.ir.interp.trunc_div` (pure-integer truncation
toward zero, the C convention every CGRA datapath implements).
"""

from repro.arch import presets
from repro.core.registry import create
from repro.ir.dfg import DFG, Op
from repro.ir.interp import apply_op, evaluate, trunc_div
from repro.sim.machine import simulate_mapping

BIG = (1 << 60) + 1  # int(BIG / 3) == 384307168202282325 != BIG // 3


def test_div_exact_beyond_float_mantissa():
    assert apply_op(Op.DIV, [BIG, 3]) == BIG // 3
    assert apply_op(Op.DIV, [(1 << 62) - 1, 7]) == ((1 << 62) - 1) // 7
    # The old float path is provably wrong on this operand pair.
    assert int(BIG / 3) != BIG // 3


def test_mod_exact_beyond_float_mantissa():
    assert apply_op(Op.MOD, [BIG, 3]) == 2  # 2**60 % 3 == 1, so BIG % 3 == 2
    assert apply_op(Op.MOD, [(1 << 54) + 5, 1 << 10]) == 5


def test_div_mod_truncate_toward_zero():
    # C semantics, not Python floor semantics.
    assert apply_op(Op.DIV, [-7, 2]) == -3
    assert apply_op(Op.DIV, [7, -2]) == -3
    assert apply_op(Op.DIV, [-7, -2]) == 3
    assert apply_op(Op.MOD, [-7, 2]) == -1
    assert apply_op(Op.MOD, [7, -2]) == 1
    # Invariant: a == b * (a trunc-div b) + (a trunc-mod b).
    for a in (-9, -1, 0, 5, BIG, -BIG):
        for b in (-4, -1, 2, 3, 1 << 30):
            q = apply_op(Op.DIV, [a, b])
            r = apply_op(Op.MOD, [a, b])
            assert a == b * q + r
            assert q == trunc_div(a, b)


def test_div_end_to_end_through_interp_and_sim():
    g = DFG("divmod_big")
    x = g.input("x")
    c = g.const(3)
    q = g.add(Op.DIV, x, c)
    r = g.add(Op.MOD, x, c)
    g.output(q, "q")
    g.output(r, "r")
    g.check()

    inputs = {"x": [BIG, -BIG, (1 << 58) + 2, 9]}
    reference = evaluate(g, 4, inputs)
    assert reference["q"][0] == BIG // 3
    assert reference["r"][0] == 2
    assert reference["q"][1] == -(BIG // 3)

    cgra = presets.simple_cgra(4, 4)
    mapping = create("list_sched", seed=0).map(g, cgra)
    assert mapping.validate(raise_on_error=False) == []
    if mapping.kind == "modulo":
        sim = simulate_mapping(mapping, 4, inputs)
        assert sim.outputs == reference
