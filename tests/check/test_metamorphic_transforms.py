"""Metamorphic transforms: relabeling, pass pipeline, replay purity."""

import pytest

from repro.arch import presets
from repro.check.metamorphic import (
    cached_replay_difference,
    pipeline_difference,
    relabel,
    relabel_difference,
)
from repro.ir import kernels, randdfg
from repro.ir.dfg import Op
from repro.ir.interp import evaluate

KERNELS = ["vector_add", "dot_product", "if_select", "horner", "fir4"]


def _inputs(dfg, n):
    return {
        node.name: [(3 * i + 1) % 7 - 3 for i in range(n)]
        for node in dfg.nodes()
        if node.op is Op.INPUT
    }


def test_relabel_is_a_permutation():
    dfg = randdfg.layered(10, seed=1)
    twin, perm = relabel(dfg, seed=42)
    assert sorted(perm) == sorted(perm.values()) == dfg.node_ids()
    assert len(twin) == len(dfg)
    assert twin.num_edges() == dfg.num_edges()
    # Node payloads survive the renumbering.
    for old, new in perm.items():
        a, b = dfg.node(old), twin.node(new)
        assert (a.op, a.name, a.value) == (b.op, b.name, b.value)


def test_relabel_round_trips():
    dfg = randdfg.layered(8, seed=2)
    twin, perm = relabel(dfg, seed=9)
    back, perm2 = relabel(twin, seed=0)  # any second permutation
    composed = {old: perm2[new] for old, new in perm.items()}
    assert sorted(composed) == dfg.node_ids()
    # Semantics survive arbitrary chained relabelings.
    ins = _inputs(dfg, 3)
    assert evaluate(back, 3, ins) == evaluate(dfg, 3, ins)


@pytest.mark.parametrize("seed", range(8))
def test_relabel_preserves_interpretation_random(seed):
    dfg = randdfg.layered(9, seed=seed, ops=randdfg.ALU_POOL)
    assert relabel_difference(dfg, 4, _inputs(dfg, 4), seed=seed) is None


@pytest.mark.parametrize("kernel", KERNELS)
def test_relabel_preserves_interpretation_kernels(kernel):
    dfg = kernels.kernel(kernel)
    if dfg.memory_ops():
        pytest.skip("interp needs array contents for memory kernels")
    assert relabel_difference(dfg, 4, _inputs(dfg, 4), seed=5) is None


@pytest.mark.parametrize("kernel", KERNELS)
def test_pipeline_preserves_semantics_kernels(kernel):
    dfg = kernels.kernel(kernel)
    if dfg.memory_ops():
        pytest.skip("interp needs array contents for memory kernels")
    assert pipeline_difference(dfg, 4, _inputs(dfg, 4)) is None


@pytest.mark.parametrize("seed", range(10))
def test_pipeline_preserves_semantics_random(seed):
    dfg = randdfg.layered(8, seed=seed, ops=randdfg.ALU_POOL)
    assert pipeline_difference(dfg, 4, _inputs(dfg, 4)) is None


def test_cached_replay_is_byte_identical():
    from repro.cache import reset_cache

    reset_cache()
    dfg = kernels.dot_product()
    cgra = presets.simple_cgra(4, 4)
    assert cached_replay_difference(dfg, cgra, "list_sched") is None
    reset_cache()
