"""`repro fuzz` CLI: seed specs, sweep exit codes, logs, reproducers."""

import json

import pytest

from repro.cli import _parse_seeds, main


def test_parse_seeds_specs():
    assert list(_parse_seeds("0:5")) == [0, 1, 2, 3, 4]
    assert list(_parse_seeds("7")) == list(range(7))
    assert list(_parse_seeds("10:12")) == [10, 11]


@pytest.mark.parametrize("bad", ["", "5:2", "a:b", "1:1", "-3"])
def test_parse_seeds_rejects(bad):
    with pytest.raises(SystemExit):
        _parse_seeds(bad)


def test_fuzz_smoke_exits_clean(capsys):
    rc = main([
        "fuzz", "--seeds", "0:4", "--mapper", "list_sched",
        "--no-shrink", "--oracle-only",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "4 cases" in out


def test_fuzz_writes_failure_log(tmp_path, capsys):
    log = tmp_path / "failures.jsonl"
    rc = main([
        "fuzz", "--seeds", "0:3", "--mapper", "list_sched",
        "--no-shrink", "--oracle-only", "--log", str(log),
    ])
    assert rc == 0
    if log.exists():  # only written when divergences occur
        for line in log.read_text().splitlines():
            json.loads(line)


def test_fuzz_unknown_mapper_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fuzz", "--seeds", "0:2", "--mapper", "no_such_mapper"])
