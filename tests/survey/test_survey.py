"""Survey dataset tests: Table I and Fig. 4 regeneration."""

import pytest

from repro.survey.bibliography import BIBLIOGRAPHY, Work, by_year, works_with
from repro.survey.taxonomy import (
    executable_table1,
    literature_table1,
    render_table1,
)
from repro.survey.timeline import (
    ERA_MARKERS,
    era_onsets,
    publications_per_year,
    render_timeline,
)


def test_bibliography_keys_unique():
    keys = [w.key for w in BIBLIOGRAPHY]
    assert len(keys) == len(set(keys))


def test_bibliography_years_in_survey_window():
    assert all(1998 <= w.year <= 2021 for w in BIBLIOGRAPHY)


def test_bad_table_cell_rejected():
    with pytest.raises(ValueError, match="bad Table I cell"):
        Work(99, "bad", 2020, "x", (("spatial", "quantum"),))


def test_literature_table_matches_paper_cells():
    """Spot-check cells against the printed Table I."""
    t = literature_table1()
    assert t["temporal"]["local_search"] == ["[22]"]          # DRESC SA
    assert t["spatial"]["population"] == ["[19]"]             # GenMap GA
    assert "[17]" in t["temporal"]["csp"]                     # SAT
    assert "[43]" in t["temporal"]["csp"]                     # CP
    assert "[41]" in t["temporal"]["ilp_bb"]                  # ILP
    assert "[42]" in t["temporal"]["ilp_bb"]                  # B&B
    assert set(t["spatial"]["ilp_bb"]) == {"[23]", "[34]", "[35]"}
    assert "[48]" in t["binding"]["population"]               # QEA
    assert "[49]" in t["binding"]["local_search"]             # SPR
    assert set(t["spatial"]["heuristic"]) == {"[23]", "[30]", "[31]"}
    assert "[12]" in t["temporal"]["heuristic"]
    assert "[26]" in t["temporal"]["heuristic"]               # HiMap
    assert "[52]" in t["scheduling"]["heuristic"]             # CRIMSON
    assert set(t["scheduling"]["ilp_bb"]) == {"[15]", "[53]"}


def test_executable_table_covers_every_nonempty_literature_column():
    """Every technique column of the printed table has at least one
    living implementation in the registry."""
    lit = literature_table1()
    exe = executable_table1()
    for row in lit:
        for col in lit[row]:
            if lit[row][col] and row in ("spatial", "temporal"):
                assert exe[row][col] or any(
                    exe[r][col] for r in exe
                ), f"no implementation for column {col} (row {row})"


def test_executable_table_places_known_mappers():
    exe = executable_table1()
    assert "dresc" in exe["temporal"]["local_search"]
    assert "genmap" in exe["spatial"]["population"]
    assert "sat" in exe["temporal"]["csp"]
    assert "ilp_spatial" in exe["spatial"]["ilp_bb"]
    assert "crimson" in exe["scheduling"]["heuristic"]
    assert "regimap" in exe["binding"]["heuristic"]


def test_render_table_is_aligned_ascii():
    text = render_table1(literature_table1(), title="Table I (lit)")
    lines = text.splitlines()
    assert lines[0] == "Table I (lit)"
    assert "Spatial mapping" in text
    assert "[22]" in text


def test_by_year_sorted_and_grouped():
    groups = by_year()
    years = list(groups)
    assert years == sorted(years)
    assert any(w.name == "DRESC" for w in groups[2002])


def test_works_with_feature():
    hw = works_with("hardware_loops")
    assert {w.key for w in hw} == {62, 63, 64}


def test_timeline_shape_matches_paper():
    """Fig. 4's claims: second decade > first decade, 2021 spike."""
    counts = publications_per_year()
    first_decade = sum(counts[y] for y in range(2000, 2011))
    second_decade = sum(counts[y] for y in range(2011, 2022))
    assert second_decade > first_decade
    assert counts[2021] == max(counts.values())


def test_era_onsets_ordering():
    onsets = era_onsets()
    assert onsets["Modulo scheduling"] <= 2002
    assert onsets["Full predication"] == 2002
    assert onsets["Partial predication"] == 2008
    assert onsets["Memory aware"] <= 2011
    assert onsets["Hardware loops"] >= 2015
    assert set(onsets) == set(ERA_MARKERS.values())


def test_render_timeline_has_all_years():
    text = render_timeline()
    for y in (2000, 2010, 2021):
        assert str(y) in text
    assert "Modulo scheduling" in text
