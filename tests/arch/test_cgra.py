"""CGRA array model tests."""

import pytest

from repro.arch import presets
from repro.arch.cell import CellKind, make_cell
from repro.arch.cgra import CGRA
from repro.arch.topology import topology_links
from repro.ir.dfg import Op


def test_simple_cgra_shape():
    cgra = presets.simple_cgra(4, 4)
    assert cgra.n_cells == 16
    assert cgra.width == cgra.height == 4
    assert cgra.is_connected()


def test_cell_count_mismatch_rejected():
    cells = [make_cell(0, 0, 0, CellKind.ALU)]
    with pytest.raises(ValueError, match="expected 4 cells"):
        CGRA("bad", 2, 2, cells, [])


def test_cell_ids_must_be_dense():
    cells = [make_cell(i * 2, i % 2, i // 2, CellKind.ALU) for i in range(4)]
    with pytest.raises(ValueError, match="cell ids"):
        CGRA("bad", 2, 2, cells, [])


def test_self_link_rejected():
    cells = [make_cell(i, i % 2, i // 2, CellKind.ALU) for i in range(4)]
    with pytest.raises(ValueError, match="self-link"):
        CGRA("bad", 2, 2, cells, [(0, 0)])


def test_link_to_unknown_cell_rejected():
    cells = [make_cell(i, i % 2, i // 2, CellKind.ALU) for i in range(4)]
    with pytest.raises(ValueError, match="unknown cell"):
        CGRA("bad", 2, 2, cells, [(0, 9)])


def test_neighbors_match_mesh():
    cgra = presets.simple_cgra(3, 3)
    # Centre cell (1,1) = cid 4 has all four neighbours.
    assert cgra.neighbors_out(4) == [1, 3, 5, 7]
    assert cgra.neighbors_in(4) == [1, 3, 5, 7]
    # Corner cell 0 has two.
    assert cgra.neighbors_out(0) == [1, 3]


def test_cell_at_and_coords_roundtrip():
    cgra = presets.simple_cgra(4, 2)
    c = cgra.cell_at(3, 1)
    assert c.cid == 7
    assert cgra.coords(7) == (3, 1)
    with pytest.raises(IndexError):
        cgra.cell_at(4, 0)


def test_distance_is_manhattan_on_mesh():
    cgra = presets.simple_cgra(4, 4)
    assert cgra.distance(0, 0) == 0
    assert cgra.distance(0, 3) == 3
    assert cgra.distance(0, 15) == 6


def test_distance_shrinks_on_torus():
    mesh = presets.simple_cgra(4, 4)
    torus = presets.simple_cgra(4, 4, topology="torus")
    assert torus.distance(0, 3) == 1
    assert torus.distance(0, 3) < mesh.distance(0, 3)


def test_candidates_respect_heterogeneity():
    cgra = presets.heterogeneous(4, 4)
    load_cells = cgra.candidates(Op.LOAD)
    assert load_cells  # column 0
    assert all(cgra.coords(c)[0] == 0 for c in load_cells)
    add_cells = cgra.candidates(Op.ADD)
    assert add_cells
    assert not set(add_cells) & set(load_cells)  # MEM cells have no ALU


def test_memory_cells_left_column_preset():
    cgra = presets.simple_cgra(4, 4, mem_cells="left")
    assert cgra.memory_cells() == [0, 4, 8, 12]


def test_preset_registry():
    for name in presets.PRESETS:
        cgra = presets.by_name(name)
        assert cgra.n_cells >= 4
        assert cgra.is_connected()
    with pytest.raises(KeyError, match="unknown preset"):
        presets.by_name("weird")


def test_preset_error_lists_every_name_sorted():
    """The unknown-preset message is the CLI's discovery surface: it
    must enumerate the full registry, sorted."""
    with pytest.raises(KeyError) as ei:
        presets.by_name("nope")
    msg = str(ei.value)
    assert str(sorted(presets.PRESETS)) in msg


def test_preset_fingerprints_roundtrip_and_distinct():
    """Every preset rebuilds to the same fingerprint (they are pure
    factories), and no two presets collide."""
    from repro.cache.fingerprint import arch_fingerprint

    fps = {}
    for name in presets.PRESETS:
        first = arch_fingerprint(presets.by_name(name))
        again = arch_fingerprint(presets.by_name(name))
        assert first == again, name
        fps[name] = first
    assert len(set(fps.values())) == len(fps)


def test_equal_presets_share_distance_table():
    """Rebuilding a preset must reuse the module-level all-pairs
    table rather than re-running the BFS sweep."""
    a = presets.by_name("simple8x8")
    b = presets.by_name("simple8x8")
    assert a.distance_table() is b.distance_table()
    assert a.distance(0, a.n_cells - 1) == (a.width - 1) + (a.height - 1)


def test_adres_like_has_diagonals_and_left_memory():
    cgra = presets.adres_like(4, 4)
    assert cgra.has_link(0, 5)  # diagonal
    assert set(cgra.memory_cells()) == {0, 4, 8, 12}


def test_hycube_like_bypass_routing():
    cgra = presets.hycube_like()
    assert cgra.route_shares_fu is False
    assert cgra.hw_loop is True


def test_render_shows_grid():
    text = presets.heterogeneous(4, 4).render()
    lines = text.splitlines()
    assert len(lines) == 5  # header + 4 rows
    assert "M" in text and "A" in text and "." in text


def test_duplicate_links_deduplicated():
    cells = [make_cell(i, i % 2, i // 2, CellKind.ALU) for i in range(4)]
    cgra = CGRA("dup", 2, 2, cells, [(0, 1), (0, 1), (1, 0)])
    assert len(cgra.links) == 2
    assert cgra.neighbors_out(0) == [1]
