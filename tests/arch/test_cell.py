"""Cell model tests."""

from repro.arch.cell import ALL_OPS, ALU_OPS, CellKind, make_cell
from repro.ir.dfg import Op


def test_alu_cell_supports_alu_not_memory():
    c = make_cell(0, 0, 0, CellKind.ALU)
    assert c.supports(Op.ADD)
    assert c.supports(Op.MUL)
    assert not c.supports(Op.LOAD)
    assert not c.supports(Op.STORE)


def test_mem_cell_supports_memory_only():
    c = make_cell(0, 0, 0, CellKind.MEM)
    assert c.supports(Op.LOAD)
    assert not c.supports(Op.ADD)
    assert c.has_memory_port


def test_alu_mem_cell_supports_everything():
    c = make_cell(0, 0, 0, CellKind.ALU_MEM)
    assert all(c.supports(op) for op in ALL_OPS)


def test_route_cell_supports_only_route_and_pseudo():
    c = make_cell(0, 0, 0, CellKind.ROUTE)
    assert c.supports(Op.ROUTE)
    assert c.supports(Op.CONST)
    assert not c.supports(Op.ADD)
    assert not c.is_compute


def test_pseudo_ops_supported_everywhere():
    for kind in CellKind:
        c = make_cell(0, 0, 0, kind)
        assert c.supports(Op.CONST)
        assert c.supports(Op.INPUT)
        assert c.supports(Op.OUTPUT)


def test_constant_field_range():
    c = make_cell(0, 0, 0, CellKind.ALU, const_width=8)
    assert c.can_hold_constant(127)
    assert c.can_hold_constant(-128)
    assert not c.can_hold_constant(128)
    zero_width = make_cell(1, 0, 0, CellKind.ALU, const_width=0)
    assert not zero_width.can_hold_constant(0)


def test_describe_mentions_kind_and_coords():
    c = make_cell(5, 1, 1, CellKind.ALU_MEM)
    d = c.describe()
    assert "cell5" in d and "(1,1)" in d and "mem" in d
