"""Topology generator tests, including symmetry properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.topology import TOPOLOGIES, topology_links


def test_unknown_topology_raises():
    with pytest.raises(KeyError, match="unknown topology"):
        topology_links("hypercube", 2, 2)


def test_bad_dimensions_raise():
    with pytest.raises(ValueError):
        topology_links("mesh", 0, 4)


def test_mesh_link_count():
    # 4x4 mesh: 2 * (3*4 + 4*3) = 48 directed links.
    assert len(topology_links("mesh", 4, 4)) == 48


def test_torus_adds_wraparound():
    links = topology_links("torus", 4, 4)
    assert (3, 0) in links          # row wrap: (3,0) -> (0,0)
    assert (12, 0) in links         # column wrap
    assert len(links) == 64         # every cell has degree 4


def test_diagonal_includes_corners():
    links = topology_links("diagonal", 3, 3)
    assert (0, 4) in links  # (0,0) -> (1,1)
    assert (4, 0) in links


def test_one_hop_has_express_lanes():
    links = topology_links("one_hop", 4, 1)
    assert (0, 2) in links
    assert (0, 1) in links
    assert (0, 3) not in links


def test_ring_is_a_cycle():
    links = topology_links("ring", 2, 2)
    assert (3, 0) in links and (0, 3) in links
    assert len(links) == 8


def test_crossbar_is_complete():
    links = topology_links("crossbar", 2, 2)
    assert len(links) == 12  # 4*3 ordered pairs


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
@given(w=st.integers(1, 5), h=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_all_topologies_symmetric_and_in_range(name, w, h):
    links = topology_links(name, w, h)
    n = w * h
    for src, dst in links:
        assert 0 <= src < n and 0 <= dst < n
        assert src != dst
        assert (dst, src) in links  # all generators emit symmetric links
