"""TEC and MRRG space-time graph tests."""

import pytest

from repro.arch import presets
from repro.arch.mrrg import MRRG
from repro.arch.tec import HOLD, ROUTE, Step, TEC


@pytest.fixture
def cgra():
    return presets.simple_cgra(2, 2)


def test_tec_node_count(cgra):
    tec = TEC(cgra, horizon=5)
    assert tec.n_nodes() == 4 * 5
    assert len(list(tec.nodes())) == 20


def test_tec_slot_is_identity(cgra):
    tec = TEC(cgra, horizon=4)
    assert tec.wrap is None
    assert tec.slot(3) == 3


def test_tec_bad_horizon(cgra):
    with pytest.raises(ValueError):
        TEC(cgra, horizon=0)


def test_readable_from_includes_self_and_neighbors(cgra):
    tec = TEC(cgra)
    # Cell 0 of a 2x2 mesh links to 1 (right) and 2 (down).
    assert tec.readable_from(0) == [0, 1, 2]
    assert set(tec.emitters_into(0)) == {0, 1, 2}


def test_successors_are_one_cycle_later(cgra):
    tec = TEC(cgra, horizon=10)
    steps = list(tec.successors(0, 3))
    assert all(s.time == 4 for s in steps)
    kinds = {(s.cell, s.kind) for s in steps}
    assert (0, ROUTE) in kinds
    assert (1, ROUTE) in kinds
    assert (0, HOLD) in kinds
    assert (3, ROUTE) not in kinds  # diagonal not linked on a mesh


def test_successors_stop_at_horizon(cgra):
    tec = TEC(cgra, horizon=4)
    assert list(tec.successors(0, 3)) == []


def test_can_consume_semantics(cgra):
    tec = TEC(cgra)
    emit = Step(0, 2, ROUTE)
    assert tec.can_consume(emit, 0)
    assert tec.can_consume(emit, 1)
    assert not tec.can_consume(emit, 3)
    hold = Step(0, 2, HOLD)
    assert tec.can_consume(hold, 0)
    assert not tec.can_consume(hold, 1)


def test_mrrg_slot_wraps(cgra):
    m = MRRG(cgra, ii=3)
    assert m.wrap == 3
    assert m.slot(0) == 0
    assert m.slot(3) == 0
    assert m.slot(7) == 1
    assert m.n_slots() == 12


def test_mrrg_bounds(cgra):
    with pytest.raises(ValueError, match="II"):
        MRRG(cgra, ii=0)
    with pytest.raises(ValueError, match="context"):
        MRRG(cgra, ii=cgra.n_contexts + 1)


def test_mrrg_default_horizon_scales_with_ii(cgra):
    m = MRRG(cgra, ii=2)
    assert m.horizon == 16
    m2 = MRRG(cgra, ii=2, horizon=6)
    assert m2.horizon == 6


def test_mrrg_successors_like_tec(cgra):
    m = MRRG(cgra, ii=2, horizon=8)
    steps = list(m.successors(3, 0))
    cells = {s.cell for s in steps}
    assert cells == {3, 1, 2}
