"""Property-based tests for the random DFG generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import randdfg
from repro.ir.dfg import Op
from repro.ir.interp import evaluate


@given(
    n_ops=st.integers(1, 40),
    width=st.integers(1, 6),
    seed=st.integers(0, 999),
)
@settings(max_examples=50, deadline=None)
def test_layered_is_valid_and_sized(n_ops, width, seed):
    g = randdfg.layered(n_ops, width=width, seed=seed)
    g.check()
    compute = sum(
        1 for n in g.nodes()
        if not n.op.is_pseudo and n.op is not Op.XOR
    )
    # XOR merge nodes may be added to join sinks; compute nodes >= n_ops
    # minus nothing: at least the requested ops exist in total.
    assert g.op_count() >= n_ops


@given(seed=st.integers(0, 999))
@settings(max_examples=30, deadline=None)
def test_layered_deterministic(seed):
    a = randdfg.layered(15, seed=seed)
    b = randdfg.layered(15, seed=seed)
    assert a.pretty() == b.pretty()


@given(seed=st.integers(0, 999))
@settings(max_examples=30, deadline=None)
def test_layered_is_executable(seed):
    g = randdfg.layered(12, seed=seed)
    ins = {
        n.name: [1, 2, 3] for n in g.nodes() if n.op is Op.INPUT
    }
    out = evaluate(g, 3, ins)
    assert all(len(v) == 3 for v in out.values())


@given(depth=st.integers(0, 4), seed=st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_series_parallel_valid(depth, seed):
    g = randdfg.series_parallel(depth, seed=seed)
    g.check()
    out = evaluate(g, 2, {"x": [1, 2]})
    assert len(out["y"]) == 2


@given(seed=st.integers(0, 300), count=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_with_recurrences_stays_valid(seed, count):
    base = randdfg.layered(10, seed=seed)
    g = randdfg.with_recurrences(base, count=count, seed=seed)
    g.check()
    carried = [e for e in g.edges() if e.dist > 0]
    assert len(carried) >= 1
    # Still executable.
    ins = {n.name: 1 for n in g.nodes() if n.op is Op.INPUT}
    evaluate(g, 3, ins)


def test_with_recurrences_preserves_original():
    base = randdfg.layered(10, seed=1)
    before = base.pretty()
    randdfg.with_recurrences(base, count=2, seed=1)
    assert base.pretty() == before
