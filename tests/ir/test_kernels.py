"""Kernel library: every kernel is well-formed and computes the maths."""

import pytest

from repro.ir import kernels
from repro.ir.dfg import Op
from repro.ir.interp import DFGInterpreter, evaluate


def test_registry_contains_the_classics():
    names = kernels.kernel_names()
    for expected in ("dot_product", "vector_add", "fir4", "conv3x3",
                     "sobel_x", "iir_biquad", "if_select"):
        assert expected in names


@pytest.mark.parametrize("name", kernels.kernel_names())
def test_every_kernel_is_structurally_valid(name):
    g = kernels.kernel(name)
    g.check()
    assert g.op_count() >= 1
    # Every kernel exposes at least one result.
    assert any(n.op is Op.OUTPUT for n in g.nodes())


def test_unknown_kernel_raises():
    with pytest.raises(KeyError, match="unknown kernel"):
        kernels.kernel("nope")


def test_dot_product_matches_reference():
    g = kernels.dot_product()
    a = [1, 2, 3, 4]
    b = [5, 6, 7, 8]
    out = evaluate(g, 4, {"a": a, "b": b})
    assert out["sum"][-1] == sum(x * y for x, y in zip(a, b))


def test_vector_add_matches_reference():
    out = evaluate(kernels.vector_add(), 3, {"a": [1, 2, 3], "b": [9, 8, 7]})
    assert out["c"] == [10, 10, 10]


def test_accumulate_running_sum():
    out = evaluate(kernels.accumulate(), 5, {"a": [1] * 5})
    assert out["sum"] == [1, 2, 3, 4, 5]


def test_fir_is_a_transversal_filter():
    g = kernels.fir(3)  # h = [1, 2, 3]
    x = [1, 0, 0, 2, 0]
    out = evaluate(g, 5, {"x": x})

    def ref(i):
        h = [1, 2, 3]
        return sum(h[k] * (x[i - k] if i - k >= 0 else 0) for k in range(3))

    assert out["y"] == [ref(i) for i in range(5)]


def test_conv3x3_weighted_sum():
    g = kernels.conv3x3()
    pix = {f"p{i}": [1] for i in range(9)}
    out = evaluate(g, 1, pix)
    weights = [(i * 7) % 11 + 1 for i in range(9)]
    assert out["acc"] == [sum(weights)]


def test_sobel_x_gradient():
    g = kernels.sobel_x()
    # Vertical edge: left column 0, right column 10.
    vals = {f"p{i}": [0, 0, 10, 0, 0, 10, 0, 0, 10][i] for i in range(9)}
    out = evaluate(g, 1, vals)
    assert out["gx"] == [40]  # (10 + 20 + 10) - 0


def test_sad_accumulates_absolute_differences():
    g = kernels.sad()
    ins = {}
    for i in range(4):
        ins[f"a{i}"] = [i + 1, 5]
        ins[f"b{i}"] = [0, 5]
    out = evaluate(g, 2, ins)
    assert out["sad"] == [1 + 2 + 3 + 4, 1 + 2 + 3 + 4]  # second adds 0


def test_iir_biquad_recurrence():
    g = kernels.iir_biquad()
    x = [1, 0, 0, 0]
    out = evaluate(g, 4, {"x": x})
    # y[i] = 3x[i] + 2x[i-1] - y[i-1] - y[i-2]
    y = []
    for i in range(4):
        xm1 = x[i - 1] if i >= 1 else 0
        ym1 = y[i - 1] if i >= 1 else 0
        ym2 = y[i - 2] if i >= 2 else 0
        y.append(3 * x[i] + 2 * xm1 - ym1 - ym2)
    assert out["y"] == y


def test_if_select_takes_both_arms():
    out = evaluate(kernels.if_select(), 2, {"a": [7, 2], "b": [3, 9]})
    assert out["y"] == [4, 7]


def test_horner_evaluates_polynomial():
    out = evaluate(kernels.horner(), 1, {"x": [2]})
    # coefficients c4..c0 = 5,4,3,2,1
    x = 2
    assert out["y"] == [(((5 * x + 4) * x + 3) * x + 2) * x + 1]


def test_butterfly_matches_complex_arithmetic():
    g = kernels.butterfly()
    ins = {"ar": [1], "ai": [2], "br": [3], "bi": [4]}
    out = evaluate(g, 1, ins)
    # t = (3 + 4j) * (3 + 1j) = 5 + 15j
    assert (out["xr"][0], out["xi"][0]) == (1 + 5, 2 + 15)
    assert (out["yr"][0], out["yi"][0]) == (1 - 5, 2 - 15)


def test_chain_has_no_ilp():
    g = kernels.chain(6)
    assert g.critical_path() >= 6


def test_dot_product_mem_equivalent_to_streaming():
    g = kernels.dot_product_mem()
    A = [1, 2, 3]
    B = [4, 5, 6]
    interp = DFGInterpreter(g, memory={"A": A, "B": B})
    out = interp.run(3, {"i": [0, 1, 2]})
    assert out["sum"][-1] == 32


def test_stencil_writes_averages():
    g = kernels.stencil1d_mem()
    A = [0, 3, 6, 9, 12]
    interp = DFGInterpreter(g, memory={"A": A, "B": [0] * 5})
    interp.run(3, {"i": [1, 2, 3]})
    assert interp.memory["B"][1:4] == [3, 6, 9]


def test_vector_add_mem_stores_sum():
    g = kernels.vector_add_mem()
    interp = DFGInterpreter(
        g, memory={"A": [1, 2], "B": [10, 20], "C": [0, 0]}
    )
    interp.run(2, {"i": [0, 1]})
    assert interp.memory["C"] == [11, 22]


def test_relu_semantics():
    out = evaluate(kernels.relu(), 3, {"x": [-5, 0, 7]})
    assert out["y"] == [0, 0, 7]


def test_leaky_relu_semantics():
    out = evaluate(kernels.leaky_relu(), 2, {"x": [16, -16]})
    assert out["y"] == [16, -2]


def test_mac4_accumulates():
    ins = {f"x{k}": [1, 1] for k in range(4)}
    out = evaluate(kernels.mac4(), 2, ins)
    # weights 1..4 sum to 10 per iteration.
    assert out["acc"] == [10, 20]


def test_maxpool4():
    out = evaluate(
        kernels.maxpool4(), 1, {"a": [3], "b": [9], "c": [1], "d": [5]}
    )
    assert out["y"] == [9]


def test_sigmoid_pw_segments():
    out = evaluate(kernels.sigmoid_pw(), 3, {"x": [-9, 0, 9]})
    assert out["y"] == [0, 8, 16]


def test_batch_norm_lite():
    out = evaluate(kernels.batch_norm_lite(), 1, {"x": [23]})
    # ((23-7)*5)>>4 + 3 = 80>>4 + 3 = 5 + 3
    assert out["y"] == [8]


def test_ai_kernels_map_cleanly():
    from repro.api import map_dfg
    from repro.arch import presets

    cgra = presets.simple_cgra(4, 4)
    for name in ("relu", "leaky_relu", "mac4", "maxpool4",
                 "sigmoid_pw", "batch_norm_lite"):
        m = map_dfg(kernels.kernel(name), cgra, mapper="list_sched")
        assert m.validate() == [], name
