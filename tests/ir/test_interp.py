"""Tests for the reference DFG interpreter."""

import pytest

from repro.ir.dfg import DFG, Op
from repro.ir.interp import DFGInterpreter, evaluate


def test_vector_add_semantics():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    g.output(g.add(Op.ADD, a, b), "c")
    out = evaluate(g, 3, {"a": [1, 2, 3], "b": [10, 20, 30]})
    assert out["c"] == [11, 22, 33]


def test_scalar_inputs_broadcast():
    g = DFG()
    a = g.input("a")
    g.output(g.add(Op.MUL, a, a), "y")
    out = evaluate(g, 4, {"a": 3})
    assert out["y"] == [9, 9, 9, 9]


def test_missing_input_raises():
    g = DFG()
    g.input("a")
    with pytest.raises(ValueError, match="missing input"):
        evaluate(g, 1, {})


def test_short_input_series_raises():
    g = DFG()
    a = g.input("a")
    g.output(a, "y")
    with pytest.raises(ValueError, match="provides 2"):
        evaluate(g, 3, {"a": [1, 2]})


def test_accumulator_self_edge():
    g = DFG()
    a = g.input("a")
    s = g.add(Op.ADD, a, a)
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sum")
    out = evaluate(g, 4, {"a": [1, 2, 3, 4]})
    assert out["sum"] == [1, 3, 6, 10]


def test_carried_edge_initial_value_override():
    g = DFG()
    a = g.input("a")
    s = g.add(Op.ADD, a, a)
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sum")
    out = DFGInterpreter(g, init={s: 100}).run(2, {"a": [1, 1]})
    assert out["sum"] == [101, 102]


def test_distance_two_delay_line():
    g = DFG()
    x = g.input("x")
    d = g.add(Op.ROUTE, x)
    e = g.operand(d, 0)
    g.remove_edge(e)
    g.connect(x, d, port=0, dist=2)
    g.output(d, "y")
    out = evaluate(g, 5, {"x": [1, 2, 3, 4, 5]})
    assert out["y"] == [0, 0, 1, 2, 3]  # default init is 0


def test_phi_selects_initial_then_carried():
    g = DFG()
    one = g.const(1)
    ten = g.const(10)
    phi = g.add(Op.PHI, ten, ten)
    inc = g.add(Op.ADD, phi, one)
    e = g.operand(phi, 1)
    g.remove_edge(e)
    g.connect(inc, phi, port=1, dist=1)
    g.output(phi, "i")
    out = evaluate(g, 4, {})
    assert out["i"] == [10, 11, 12, 13]


def test_select_semantics():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    c = g.add(Op.GT, a, b)
    y = g.add(Op.SELECT, c, a, b)
    g.output(y, "max")
    out = evaluate(g, 3, {"a": [5, 1, 7], "b": [3, 9, 7]})
    assert out["max"] == [5, 9, 7]


def test_division_truncates_toward_zero():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    g.output(g.add(Op.DIV, a, b), "q")
    out = evaluate(g, 2, {"a": [-7, 7], "b": [2, 2]})
    assert out["q"] == [-3, 3]  # C semantics, not Python floor


def test_division_by_zero_raises():
    g = DFG()
    a = g.input("a")
    z = g.const(0)
    g.output(g.add(Op.DIV, a, z), "q")
    with pytest.raises(ZeroDivisionError):
        evaluate(g, 1, {"a": 1})


def test_load_store_roundtrip():
    g = DFG()
    i = g.input("i")
    v = g.add(Op.LOAD, i, array="A")
    two = g.const(2)
    d = g.add(Op.MUL, v, two)
    g.add(Op.STORE, i, d, array="B")
    interp = DFGInterpreter(g, memory={"A": [1, 2, 3], "B": [0, 0, 0]})
    interp.run(3, {"i": [0, 1, 2]})
    assert interp.memory["B"] == [2, 4, 6]


def test_load_out_of_bounds():
    g = DFG()
    i = g.input("i")
    g.add(Op.LOAD, i, array="A")
    interp = DFGInterpreter(g, memory={"A": [1]})
    with pytest.raises(IndexError):
        interp.run(1, {"i": [5]})


def test_missing_array_raises():
    g = DFG()
    i = g.input("i")
    g.add(Op.LOAD, i, array="A")
    with pytest.raises(KeyError, match="'A'"):
        DFGInterpreter(g).run(1, {"i": [0]})


def test_value_inspection_after_run():
    g = DFG()
    a = g.input("a")
    n = g.add(Op.NEG, a)
    g.output(n, "y")
    it = DFGInterpreter(g)
    it.run(2, {"a": [3, 4]})
    assert it.value(n, 0) == -3
    assert it.value(n, 1) == -4


@pytest.mark.parametrize(
    "op,a,b,expect",
    [
        (Op.SUB, 5, 3, 2),
        (Op.MOD, 7, 3, 1),
        (Op.MOD, -7, 3, -1),  # C-style remainder
        (Op.MIN, 4, 9, 4),
        (Op.MAX, 4, 9, 9),
        (Op.AND, 0b1100, 0b1010, 0b1000),
        (Op.OR, 0b1100, 0b1010, 0b1110),
        (Op.XOR, 0b1100, 0b1010, 0b0110),
        (Op.SHL, 3, 2, 12),
        (Op.SHR, 12, 2, 3),
        (Op.EQ, 4, 4, 1),
        (Op.NE, 4, 4, 0),
        (Op.LT, 3, 4, 1),
        (Op.LE, 4, 4, 1),
        (Op.GT, 3, 4, 0),
        (Op.GE, 4, 4, 1),
    ],
)
def test_binary_op_semantics(op, a, b, expect):
    g = DFG()
    x = g.input("x")
    y = g.input("y")
    g.output(g.add(op, x, y), "r")
    out = evaluate(g, 1, {"x": [a], "y": [b]})
    assert out["r"] == [expect]


@pytest.mark.parametrize(
    "op,a,expect",
    [(Op.NEG, 5, -5), (Op.ABS, -5, 5), (Op.NOT, 0, -1), (Op.ROUTE, 9, 9)],
)
def test_unary_op_semantics(op, a, expect):
    g = DFG()
    x = g.input("x")
    g.output(g.add(op, x), "r")
    assert evaluate(g, 1, {"x": [a]})["r"] == [expect]
