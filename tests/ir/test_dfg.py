"""Unit tests for the DFG data structure."""

import pytest

from repro.ir.dfg import DFG, DFGError, Op


def test_add_and_connect_builds_expected_structure():
    g = DFG("t")
    a = g.input("a")
    b = g.input("b")
    s = g.add(Op.ADD, a, b)
    assert len(g) == 3
    assert g.num_edges() == 2
    assert g.preds(s) == [a, b]
    assert g.succs(a) == [s]
    assert g.node(s).op is Op.ADD


def test_ports_are_ordered_by_operand_position():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    s = g.add(Op.SUB, a, b)
    assert g.operand(s, 0).src == a
    assert g.operand(s, 1).src == b


def test_const_carries_value():
    g = DFG()
    c = g.const(42)
    assert g.node(c).value == 42
    assert g.node(c).op is Op.CONST


def test_check_rejects_missing_operand():
    g = DFG()
    a = g.input("a")
    s = g.add(Op.ADD, a)  # only port 0 fed
    with pytest.raises(DFGError, match="operand ports"):
        g.check()


def test_check_rejects_extra_operand():
    g = DFG()
    a = g.input("a")
    n = g.add(Op.NEG, a)
    g.connect(a, n, port=1)
    with pytest.raises(DFGError):
        g.check()


def test_check_rejects_const_without_value():
    g = DFG()
    g.add(Op.CONST)
    with pytest.raises(DFGError, match="CONST"):
        g.check()


def test_check_rejects_dist0_cycle():
    g = DFG()
    a = g.input("a")
    x = g.add(Op.ADD, a, a)
    y = g.add(Op.NEG, x)
    e = g.operand(x, 1)
    g.remove_edge(e)
    g.connect(y, x, port=1, dist=0)
    with pytest.raises(DFGError, match="cycle"):
        g.check()


def test_carried_cycle_is_allowed():
    g = DFG()
    a = g.input("a")
    s = g.add(Op.ADD, a, a)
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.check()  # must not raise
    assert g.topo_order()  # dist=0 subgraph is acyclic


def test_negative_distance_rejected():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    with pytest.raises(DFGError, match="negative"):
        g.connect(a, b, dist=-1)


def test_connect_unknown_node_rejected():
    g = DFG()
    a = g.input("a")
    with pytest.raises(DFGError):
        g.connect(a, 99)
    with pytest.raises(DFGError):
        g.connect(99, a)


def test_remove_node_cleans_incident_edges():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    s = g.add(Op.ADD, a, b)
    g.remove_node(s)
    assert len(g) == 2
    assert g.succs(a) == []
    assert g.num_edges() == 0


def test_rewire_redirects_consumers():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    n = g.add(Op.NEG, a)
    g.rewire(a, b)
    assert g.operand(n, 0).src == b
    assert g.succs(a) == []


def test_topo_order_is_deterministic_and_respects_edges():
    g = DFG()
    a = g.input("a")
    b = g.input("b")
    s = g.add(Op.ADD, a, b)
    m = g.add(Op.MUL, s, b)
    order = g.topo_order()
    assert order.index(a) < order.index(s) < order.index(m)
    assert order == g.topo_order()


def test_critical_path_counts_latencies():
    g = DFG()
    a = g.input("a")
    x = g.add(Op.ADD, a, a)
    y = g.add(Op.MUL, x, a)
    z = g.add(Op.SUB, y, a)
    g.output(z, "z")
    # INPUT latency 0, three unit-latency ops in series.
    assert g.critical_path() == 3


def test_op_count_excludes_pseudo_nodes():
    g = DFG()
    a = g.input("a")
    c = g.const(1)
    s = g.add(Op.ADD, a, c)
    g.output(s, "y")
    assert g.op_count() == 1
    assert g.op_count(include_pseudo=True) == 4


def test_copy_is_deep():
    g = DFG("orig")
    a = g.input("a")
    s = g.add(Op.NEG, a)
    h = g.copy()
    h.remove_node(s)
    assert s in g
    assert s not in h
    assert g.num_edges() == 1


def test_to_networkx_roundtrip_attributes():
    g = DFG()
    a = g.input("a")
    c = g.const(7)
    s = g.add(Op.ADD, a, c)
    nxg = g.to_networkx()
    assert nxg.nodes[s]["op"] is Op.ADD
    assert nxg.nodes[c]["value"] == 7
    assert nxg.number_of_edges() == 2


def test_recurrence_cycles_found():
    g = DFG()
    a = g.input("a")
    s = g.add(Op.ADD, a, a)
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    cycles = g.recurrence_cycles()
    assert [s] in cycles


def test_pretty_mentions_every_node():
    g = DFG("p")
    a = g.input("a")
    s = g.add(Op.NEG, a)
    text = g.pretty()
    assert f"n{a}" in text and f"n{s}" in text


def test_commutativity_flags():
    assert Op.ADD.commutative and Op.MUL.commutative
    assert not Op.SUB.commutative and not Op.SHL.commutative


def test_memory_ops_listing():
    g = DFG()
    i = g.input("i")
    ld = g.add(Op.LOAD, i, array="A")
    st = g.add(Op.STORE, i, ld, array="B")
    assert set(g.memory_ops()) == {ld, st}
