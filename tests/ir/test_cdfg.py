"""Unit tests for the CFG/CDFG structure."""

import pytest

from repro.ir.cdfg import CFG, CFGError
from repro.ir.dfg import DFG, Op


def _block_with_output(cfg, name, value=1):
    bid = cfg.add_block()
    body = cfg.block(bid).body
    c = body.const(value)
    body.output(c, name)
    return bid


def make_diamond():
    """entry branch -> then/else jumps -> exit join."""
    cfg = CFG("diamond")
    entry = cfg.add_block(label="entry")
    body = cfg.block(entry).body
    a = body.input("a")
    b = body.input("b")
    c = body.add(Op.GT, a, b)
    body.output(c, "cond")
    then = _block_with_output(cfg, "t", 1)
    els = _block_with_output(cfg, "f", 2)
    join = cfg.add_block(label="join")
    cfg.set_branch(entry, "cond", then, els)
    cfg.set_jump(then, join)
    cfg.set_jump(els, join)
    cfg.set_exit(join)
    return cfg, entry, then, els, join


def test_diamond_is_valid_and_detected():
    cfg, *_ = make_diamond()
    cfg.check()
    assert cfg.is_diamond()


def test_entry_is_first_block():
    cfg = CFG()
    b0 = cfg.add_block()
    cfg.add_block()
    assert cfg.entry == b0


def test_branch_requires_condition_defined_in_body():
    cfg = CFG()
    e = cfg.add_block()
    t = cfg.add_block()
    f = cfg.add_block()
    cfg.set_branch(e, "missing", t, f)
    cfg.set_exit(t)
    cfg.set_exit(f)
    with pytest.raises(CFGError, match="condition"):
        cfg.check()


def test_unreachable_block_rejected():
    cfg = CFG()
    e = cfg.add_block()
    cfg.set_exit(e)
    cfg.add_block()  # orphan
    with pytest.raises(CFGError, match="unreachable"):
        cfg.check()


def test_reset_terminator_clears_old_edges():
    cfg = CFG()
    a = cfg.add_block()
    b = cfg.add_block()
    c = cfg.add_block()
    cfg.set_jump(a, b)
    cfg.set_jump(a, c)  # re-target
    cfg.set_exit(b)
    cfg.set_exit(c)
    assert cfg.successors(a) == [(c, None)]
    assert cfg.predecessors(b) == []


def test_successor_edge_labels():
    cfg, entry, then, els, join = make_diamond()
    succ = dict(cfg.successors(entry))
    assert succ[then] is True
    assert succ[els] is False
    assert cfg.successors(then) == [(join, None)]


def test_reverse_postorder_starts_at_entry():
    cfg, entry, then, els, join = make_diamond()
    rpo = cfg.reverse_postorder()
    assert rpo[0] == entry
    assert rpo[-1] == join
    assert set(rpo) == {entry, then, els, join}


def test_defined_and_used_names():
    cfg, entry, *_ = make_diamond()
    blk = cfg.block(entry)
    assert blk.defined_names() == {"cond"}
    assert blk.used_names() == {"a", "b"}


def test_non_diamond_shapes_rejected():
    cfg = CFG()
    a = cfg.add_block()
    cfg.set_exit(a)
    assert not cfg.is_diamond()


def test_pretty_lists_blocks():
    cfg, *_ = make_diamond()
    text = cfg.pretty()
    assert "bb0" in text and "entry" in text
