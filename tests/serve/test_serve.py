"""End-to-end contracts of the serve daemon.

One in-process daemon per test (port 0, shared worker pool left
running): mixed batches stream per-request results, valid responses
are byte-identical to a serial ``Mapper.map`` + ``mapping_to_doc``,
duplicates collapse onto one pool execution, malformed requests get
structured field-naming errors without killing their batch, and the
HTTP face serves the same batches plus ``/metrics`` and
``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.arch import presets
from repro.core.registry import create
from repro.core.serialize import dfg_to_doc, mapping_to_doc
from repro.ir import kernels
from repro.obs.metrics import (
    SERVE_BATCHES_TOTAL,
    SERVE_ERRORS_TOTAL,
    SERVE_REQUEST_LATENCY_MS,
    SERVE_REQUESTS_TOTAL,
)
from repro.serve import MappingServer, submit
from repro.serve.validate import RequestError, validate_request


def roundtrip(requests, **server_kw):
    """Run one batch against a fresh in-process daemon.

    Returns ``(responses, summary, metrics snapshot)``; responses are
    submission-ordered.
    """

    async def go():
        async with MappingServer(port=0, **server_kw) as server:
            loop = asyncio.get_running_loop()
            port = server.bound_port
            responses, summary = await loop.run_in_executor(
                None,
                lambda: submit(requests, port=port, timeout=120),
            )
            return responses, summary, server.registry.snapshot()

    return asyncio.run(go())


def serial_doc(kernel, arch="simple4x4", mapper="list_sched", ii=None):
    """The reference document: serial map + serialize, no daemon."""
    mapping = create(mapper).map(
        kernels.kernel(kernel), presets.by_name(arch), ii=ii
    )
    return mapping_to_doc(mapping)


def canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True)


# ---------------------------------------------------------------------------
def test_mixed_batch_streams_every_outcome():
    requests = [
        {"id": "ok", "kernel": "dot_product", "arch": "simple4x4"},
        {"id": "dup", "kernel": "dot_product", "arch": "simple4x4"},
        {"id": "bad", "kernel": 42, "arch": "simple4x4"},
        {
            "id": "late",
            "kernel": "layered:60:3:7",
            "arch": "simple4x4",
            "deadline_ms": 0.01,
        },
        {"id": "fir", "kernel": "fir4", "arch": "simple4x4"},
    ]
    responses, summary, snap = roundtrip(requests, jobs=2)
    by_id = {r["id"]: r for r in responses}

    assert by_id["ok"]["ok"] and not by_id["ok"]["deduped"]
    assert by_id["dup"]["ok"] and by_id["dup"]["deduped"]
    # byte-identical to the serial pipeline, duplicate included
    reference = canonical(serial_doc("dot_product"))
    assert canonical(by_id["ok"]["mapping"]) == reference
    assert canonical(by_id["dup"]["mapping"]) == reference

    err = by_id["bad"]["error"]
    assert err["type"] == "validation"
    assert err["field"] == "requests[2].kernel"

    assert by_id["late"]["error"]["type"] == "timeout"
    assert "deadline" in by_id["late"]["error"]["detail"]

    assert by_id["fir"]["ok"]
    assert canonical(by_id["fir"]["mapping"]) == canonical(
        serial_doc("fir4")
    )

    assert summary["requests"] == 5
    assert summary["ok"] == 3
    assert summary["errors"] == 2
    assert summary["deduped"] == 1

    assert snap[SERVE_REQUESTS_TOTAL]["value"] == 5
    assert snap[SERVE_ERRORS_TOTAL]["value"] == 2
    assert snap[SERVE_BATCHES_TOTAL]["value"] == 1
    # only pool-run requests get a latency observation
    assert snap[SERVE_REQUEST_LATENCY_MS]["count"] == 4


def test_inline_dfg_request_maps_with_exact_node_ids():
    dfg = kernels.kernel("fir4")
    responses, summary, _ = roundtrip(
        [
            {"id": "inline", "dfg": dfg_to_doc(dfg), "arch": "simple4x4"},
            {"id": "named", "kernel": "fir4", "arch": "simple4x4"},
        ],
        jobs=2,
    )
    inline, named = responses
    assert inline["ok"] and named["ok"]
    # ids are preserved exactly, so both routes to the same graph
    # produce the same document — but the requests must NOT have
    # deduped onto each other (different key suffixes).
    assert canonical(inline["mapping"]) == canonical(named["mapping"])
    assert summary["deduped"] == 0


def test_relabeled_isomorphic_inline_dfgs_do_not_dedup():
    dfg = kernels.kernel("dot_product")
    doc = dfg_to_doc(dfg)
    shift = max(n["id"] for n in doc["nodes"]) + 1
    relabeled = {
        "name": doc["name"],
        "nodes": [
            {**n, "id": n["id"] + shift} for n in doc["nodes"]
        ],
        "edges": [
            [s + shift, d + shift, p, dist]
            for s, d, p, dist in doc["edges"]
        ],
    }
    responses, summary, _ = roundtrip(
        [
            {"id": "a", "dfg": doc, "arch": "simple4x4"},
            {"id": "b", "dfg": relabeled, "arch": "simple4x4"},
        ],
        jobs=2,
    )
    a, b = responses
    assert a["ok"] and b["ok"]
    # same content address, different labels: dedup would hand b a
    # document speaking a's node ids
    assert summary["deduped"] == 0
    b_ids = {int(k) for k in b["mapping"]["binding"]}
    assert b_ids and all(i >= shift for i in b_ids)
    a_ids = {int(k) for k in a["mapping"]["binding"]}
    assert b_ids == {i + shift for i in a_ids}


def test_map_failure_is_a_structured_error_not_a_crash():
    # sobel_x cannot fit spatially on a 2x2: a deterministic MapFailure
    responses, summary, _ = roundtrip(
        [
            {
                "id": "nofit",
                "kernel": "sobel_x",
                "arch": "simple2x2",
                "mapper": "sa_spatial",
            },
            {"id": "fine", "kernel": "dot_product", "arch": "simple4x4"},
        ],
        jobs=2,
    )
    by_id = {r["id"]: r for r in responses}
    assert not by_id["nofit"]["ok"]
    assert by_id["nofit"]["error"]["type"] == "map_failure"
    assert "does not fit" in by_id["nofit"]["error"]["detail"]
    assert by_id["fine"]["ok"]
    assert summary["requests"] == 2 and summary["errors"] == 1


def test_batch_envelope_errors_are_structured():
    async def go():
        async with MappingServer(port=0, jobs=2) as server:
            port = server.bound_port

            def talk():
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=30
                ) as sock:
                    stream = sock.makefile("rwb")
                    out = []
                    for payload in (b"[1, 2]\n", b"{not json\n"):
                        stream.write(payload)
                        stream.flush()
                        out.append(json.loads(stream.readline()))
                        out.append(json.loads(stream.readline()))
                    return out

            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, talk)

    shape_err, shape_sum, parse_err, parse_sum = asyncio.run(go())
    assert shape_err["error"]["type"] == "validation"
    assert shape_err["error"]["field"] == "batch"
    assert shape_sum["batch"]["errors"] == 1
    assert parse_err["error"]["field"] == "batch"
    assert "not valid JSON" in parse_err["error"]["detail"]
    assert parse_sum["batch"]["requests"] == 0


def test_connection_serves_multiple_batches():
    async def go():
        async with MappingServer(port=0, jobs=2) as server:
            port = server.bound_port

            def talk():
                batch = json.dumps({
                    "requests": [
                        {"kernel": "dot_product", "arch": "simple4x4"}
                    ]
                }).encode() + b"\n"
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=120
                ) as sock:
                    stream = sock.makefile("rwb")
                    summaries = []
                    for _ in range(2):
                        stream.write(batch)
                        stream.flush()
                        while True:
                            doc = json.loads(stream.readline())
                            if "batch" in doc:
                                summaries.append(doc["batch"])
                                break
                    return summaries

            loop = asyncio.get_running_loop()
            summaries = await loop.run_in_executor(None, talk)
            return summaries, server.registry.snapshot()

    summaries, snap = asyncio.run(go())
    assert [s["ok"] for s in summaries] == [1, 1]
    assert snap[SERVE_BATCHES_TOTAL]["value"] == 2


def test_http_face_serves_map_metrics_and_health():
    async def go():
        async with MappingServer(port=0, jobs=2) as server:
            port = server.bound_port

            def http(method, path, body=b""):
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=120
                ) as sock:
                    head = (
                        f"{method} {path} HTTP/1.1\r\n"
                        f"Host: x\r\nContent-Length: {len(body)}\r\n"
                        "\r\n"
                    ).encode()
                    sock.sendall(head + body)
                    chunks = []
                    while True:
                        got = sock.recv(65536)
                        if not got:
                            return b"".join(chunks)
                        chunks.append(got)

            loop = asyncio.get_running_loop()
            body = json.dumps({
                "requests": [
                    {"id": "h", "kernel": "dot_product",
                     "arch": "simple4x4"},
                ]
            }).encode()
            mapped = await loop.run_in_executor(
                None, lambda: http("POST", "/map", body)
            )
            metrics = await loop.run_in_executor(
                None, lambda: http("GET", "/metrics")
            )
            health = await loop.run_in_executor(
                None, lambda: http("GET", "/healthz")
            )
            missing = await loop.run_in_executor(
                None, lambda: http("GET", "/nope")
            )
            return mapped, metrics, health, missing

    mapped, metrics, health, missing = asyncio.run(go())
    head, _, payload = mapped.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"application/x-ndjson" in head
    lines = [json.loads(x) for x in payload.splitlines() if x.strip()]
    assert lines[0]["ok"] is True
    assert canonical(lines[0]["mapping"]) == canonical(
        serial_doc("dot_product")
    )
    assert lines[-1]["batch"]["ok"] == 1
    assert b"repro_serve_requests_total 1" in metrics
    assert health.partition(b"\r\n\r\n")[2] == b"ok\n"
    assert missing.startswith(b"HTTP/1.1 404")


def test_aclose_drains_and_double_close_is_noop():
    async def go():
        server = MappingServer(port=0, jobs=2)
        await server.start()
        loop = asyncio.get_running_loop()
        port = server.bound_port
        responses, _ = await loop.run_in_executor(
            None,
            lambda: submit(
                [{"kernel": "dot_product", "arch": "simple4x4"}],
                port=port, timeout=120,
            ),
        )
        await server.aclose()
        await server.aclose()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)
        return responses

    responses = asyncio.run(go())
    assert responses[0]["ok"]


def test_cli_serve_submit_and_sigterm_drain(tmp_path):
    """The whole CLI path: boot `repro serve`, drive it with
    `repro submit`, then SIGTERM it and verify a clean drain with no
    orphaned pool workers."""
    import os
    import re
    import signal
    import subprocess
    import sys
    import time

    env = {**os.environ, "PYTHONPATH": "src", "PYTHONUNBUFFERED": "1"}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--grace", "2.0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        assert m, f"no readiness line, got {line!r}"
        port = int(m.group(1))

        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({
            "requests": [
                {"id": "a", "kernel": "dot_product", "arch": "simple4x4"},
                {"id": "b", "kernel": "dot_product", "arch": "simple4x4"},
                {"id": "bad", "arch": "simple4x4"},
                {"id": "c", "kernel": "fir4", "arch": "simple4x4"},
            ]
        }))
        out = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(batch),
             "--port", str(port)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.returncode == 1  # the malformed request failed
        lines = [json.loads(x) for x in out.stdout.splitlines()]
        summary = lines[-1]["batch"]
        assert summary["requests"] == 4 and summary["ok"] == 3
        assert summary["deduped"] == 1
        by_id = {d["id"]: d for d in lines[:-1]}
        assert canonical(by_id["a"]["mapping"]) == canonical(
            serial_doc("dot_product")
        )
        assert by_id["bad"]["error"]["field"] == "requests[2].kernel"

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        tail = proc.stdout.read()
        assert "drained and stopped" in tail
        # no orphaned workers: every child of the daemon is gone
        procs = subprocess.run(
            ["ps", "--ppid", str(proc.pid), "-o", "pid="],
            capture_output=True, text=True,
        )
        assert procs.stdout.strip() == ""
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ---------------------------------------------------------------------------
# validation unit drills
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "doc,field",
    [
        ("nope", "requests[0]"),
        ({}, "requests[0].kernel"),
        ({"kernel": "dot_product", "dfg": {"nodes": []}},
         "requests[0].kernel"),
        ({"kernel": "no_such_kernel", "arch": "simple4x4"},
         "requests[0].kernel"),
        ({"kernel": "dot_product"}, "requests[0].arch"),
        ({"kernel": "dot_product", "arch": "atari2600"},
         "requests[0].arch"),
        ({"kernel": "dot_product", "arch": "simple4x4",
          "mapper": "magic"}, "requests[0].mapper"),
        ({"kernel": "dot_product", "arch": "simple4x4",
          "options": {"bogus_opt": 1}}, "requests[0].options"),
        ({"kernel": "dot_product", "arch": "simple4x4", "ii": 0},
         "requests[0].ii"),
        ({"kernel": "dot_product", "arch": "simple4x4", "ii": True},
         "requests[0].ii"),
        ({"kernel": "dot_product", "arch": "simple4x4",
          "deadline_ms": -5}, "requests[0].deadline_ms"),
        ({"kernel": "dot_product", "arch": "simple4x4",
          "turbo": True}, "requests[0].turbo"),
        ({"id": 7, "kernel": "dot_product", "arch": "simple4x4"},
         "requests[0].id"),
        ({"dfg": {"nodes": "x"}, "arch": "simple4x4"},
         "requests[0].dfg"),
    ],
)
def test_validate_request_names_the_offending_field(doc, field):
    with pytest.raises(RequestError) as exc:
        validate_request(doc, 0)
    assert exc.value.field == field


def test_validate_request_accepts_the_full_shape():
    p = validate_request(
        {
            "id": "r9",
            "kernel": "dot_product",
            "arch": "simple4x4",
            "mapper": "list_sched",
            "deadline_ms": 1500,
        },
        3,
    )
    assert p.rid == "r9" and p.index == 3
    assert p.budget == pytest.approx(1.5)
    assert p.key.endswith("+k:dot_product")
    kind, spec, arch, mapper, ii, options = p.item()
    assert (kind, spec, arch, mapper) == (
        "kernel", "dot_product", "simple4x4", "list_sched"
    )
