"""Validator tests: hand-built mappings, valid and broken in every way.

These tests pin the execution model: an op emits at the end of its
cycle; neighbours read it next cycle; route/hold steps cost one cycle
each and occupy FU/bypass/RF resources folded modulo II.
"""

import pytest

from repro.arch import presets
from repro.arch.tec import HOLD, ROUTE, Step
from repro.core.exceptions import ValidationError
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, Op
from repro.ir.kernels import dot_product


@pytest.fixture
def cgra():
    return presets.simple_cgra(2, 2)  # cells 0,1 / 2,3 mesh


def two_op_dfg():
    """x -> NEG -> ABS -> out."""
    g = DFG("two")
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    g.output(b, "y")
    return g, a, b


def test_minimal_valid_modulo_mapping(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 1},
        schedule={a: 0, b: 1},
        ii=2,
    )
    assert m.validate() == []
    assert m.is_valid
    assert m.schedule_length == 2


def test_same_cell_chain_valid(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 0},
        schedule={a: 0, b: 1},
        ii=2,
    )
    assert m.is_valid


def test_unbound_node_reported(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0},
                schedule={a: 0, b: 1}, ii=2)
    v = m.validate(raise_on_error=False)
    assert any("not bound" in s for s in v)
    with pytest.raises(ValidationError):
        m.validate()


def test_unsupported_cell_reported():
    cgra = presets.heterogeneous(4, 4)  # cell 0 is MEM-only
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 0, b: 1}, ii=2)
    v = m.validate(raise_on_error=False)
    assert any("cannot execute" in s for s in v)


def test_consumer_before_producer_rejected(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 1, b: 0}, ii=4)
    v = m.validate(raise_on_error=False)
    assert any("before the value exists" in s for s in v)


def test_non_adjacent_consumer_needs_route(cgra):
    g, a, b = two_op_dfg()
    # Cells 0 and 3 are diagonal: not linked on a mesh.
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 3},
                schedule={a: 0, b: 1}, ii=4)
    v = m.validate(raise_on_error=False)
    assert any("not adjacent" in s for s in v)


def test_route_step_fixes_non_adjacency(cgra):
    g, a, b = two_op_dfg()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 3},
        schedule={a: 0, b: 2},
        routes={e: [Step(1, 1, ROUTE)]},
        ii=4,
    )
    assert m.validate() == []
    assert m.route_step_count() == 1


def test_route_path_length_must_cover_gap(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 0, b: 3}, ii=8)
    v = m.validate(raise_on_error=False)
    assert any("path must cover" in s for s in v)


def test_hold_steps_bridge_time_gap(cgra):
    g, a, b = two_op_dfg()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 0},
        schedule={a: 0, b: 3},
        routes={e: [Step(0, 1, HOLD), Step(0, 2, HOLD)]},
        ii=8,
    )
    assert m.validate() == []


def test_hold_readable_only_locally(cgra):
    g, a, b = two_op_dfg()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 1},
        schedule={a: 0, b: 3},
        routes={e: [Step(0, 1, HOLD), Step(0, 2, HOLD)]},
        ii=8,
    )
    v = m.validate(raise_on_error=False)
    assert any("not readable" in s for s in v)


def test_hold_must_stay_on_same_cell(cgra):
    g, a, b = two_op_dfg()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 1},
        schedule={a: 0, b: 2},
        routes={e: [Step(1, 1, HOLD)]},
        ii=8,
    )
    v = m.validate(raise_on_error=False)
    assert any("HOLD must stay" in s for s in v)


def test_fu_conflict_same_slot(cgra):
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, x)
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 0},
                schedule={a: 0, b: 2}, ii=2)  # 2 mod 2 == 0: clash
    v = m.validate(raise_on_error=False)
    assert any("FU conflict" in s for s in v)


def test_route_conflicts_with_op_when_fu_shared(cgra):
    assert cgra.route_shares_fu
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)    # producer
    b = g.add(Op.ABS, a)    # far consumer, needs route via cell 1
    c = g.add(Op.NOT, x)    # op occupying the route cell at route time
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 3, c: 1},
        schedule={a: 0, b: 2, c: 1},
        routes={e: [Step(1, 1, ROUTE)]},
        ii=4,
    )
    v = m.validate(raise_on_error=False)
    assert any("cannot route" in s for s in v)


def test_bypass_fabric_allows_route_next_to_op():
    cgra = presets.hycube_like(4, 4)  # route_shares_fu=False
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    c = g.add(Op.NOT, x)
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 8, c: 4},
        schedule={a: 0, b: 2, c: 1},
        routes={e: [Step(4, 1, ROUTE)]},
        ii=4,
    )
    assert m.validate() == []


def test_modulo_fold_route_vs_op():
    """Route at t=4 with II=4 clashes with an op at t=0 on that cell."""
    cgra = presets.simple_cgra(4, 1)  # a 4-cell row
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    blocker = g.add(Op.NOT, x)
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={a: 0, b: 2, blocker: 1},
        schedule={a: 3, b: 5, blocker: 0},
        routes={e: [Step(1, 4, ROUTE)]},  # slot 0 on cell 1 = blocker
        ii=4,
    )
    v = m.validate(raise_on_error=False)
    assert any("cannot route" in s for s in v)


def test_rf_capacity_enforced():
    cgra = presets.simple_cgra(2, 2, rf_size=1)
    g = DFG()
    x = g.input("x")
    p1 = g.add(Op.NEG, x)
    p2 = g.add(Op.NOT, x)
    c1 = g.add(Op.ABS, p1)
    c2 = g.add(Op.ABS, p2)
    e1 = g.operand(c1, 0)
    e2 = g.operand(c2, 0)
    # Both values held in cell 0's single-entry RF at cycle 2.
    m = Mapping(
        g, cgra, kind="modulo",
        binding={p1: 0, p2: 0, c1: 0, c2: 0},
        schedule={p1: 0, p2: 1, c1: 3, c2: 4},
        routes={
            e1: [Step(0, 1, HOLD), Step(0, 2, HOLD)],
            e2: [Step(0, 2, HOLD), Step(0, 3, HOLD)],
        },
        ii=8,
    )
    v = m.validate(raise_on_error=False)
    assert any("RF" in s and "full" in s for s in v)


def test_link_contention_two_values():
    cgra = presets.simple_cgra(3, 1)
    g = DFG()
    x = g.input("x")
    p1 = g.add(Op.NEG, x)   # on cell 0
    p2 = g.add(Op.NOT, x)   # on cell 2... both values cross 1->? no:
    c1 = g.add(Op.ABS, p1)
    c2 = g.add(Op.ABS, p2)
    e1 = g.operand(c1, 0)
    e2 = g.operand(c2, 0)
    # Both producers on cell 0 (different cycles), both consumers on
    # cell 1 at the same cycle mod II -> same link, same slot.
    m = Mapping(
        g, cgra, kind="modulo",
        binding={p1: 0, p2: 0, c1: 1, c2: 1},
        schedule={p1: 0, p2: 2, c1: 1, c2: 3},
        ii=2,  # consumers at cycles 1 and 3: slot 1 both
    )
    v = m.validate(raise_on_error=False)
    assert any("busy" in s for s in v)


def test_fanout_shares_resources_for_free(cgra):
    g = DFG()
    x = g.input("x")
    p = g.add(Op.NEG, x)
    c1 = g.add(Op.ABS, p)
    c2 = g.add(Op.NOT, p)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={p: 0, c1: 3, c2: 1},
        schedule={p: 0, c1: 2, c2: 2},
        routes={
            g.operand(c1, 0): [Step(1, 1, ROUTE)],
            g.operand(c2, 0): [Step(1, 1, ROUTE)],
        },
        ii=4,
    )
    # Both consumers share the 0->1 link at cycle 1 and the route slot
    # on cell 1 at cycle 1 — same value, so the fan-out is free.
    assert m.validate() == []


def test_dot_product_ii1_like_fig3(cgra):
    """The survey's Fig. 3: dot product modulo-scheduled at II=1."""
    g = dot_product()
    mul = next(n.nid for n in g.nodes() if n.op is Op.MUL)
    add = next(n.nid for n in g.nodes() if n.op is Op.ADD)
    m = Mapping(
        g, cgra, kind="modulo",
        binding={mul: 0, add: 1},
        schedule={mul: 0, add: 1},
        ii=1,
    )
    # add reads mul (neighbour, +1 cycle) and itself (self, dist=1:
    # consumer instance at t=1+1*1=2 reads emission at t=1). Valid.
    assert m.validate() == []
    assert m.ii == 1


def test_ii_exceeding_contexts_rejected():
    cgra = presets.simple_cgra(2, 2, n_contexts=4)
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 0, b: 1}, ii=5)
    v = m.validate(raise_on_error=False)
    assert any("context" in s for s in v)


def test_missing_ii_rejected(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 0, b: 1}, ii=None)
    v = m.validate(raise_on_error=False)
    assert any("ii" in s for s in v)


def test_constant_immediate_width_checked():
    cgra_narrow = presets.simple_cgra(2, 2)
    # Shrink the immediate field by rebuilding cells via const_width.
    from repro.arch.cell import CellKind, make_cell
    from repro.arch.cgra import CGRA
    from repro.arch.topology import topology_links

    cells = [
        make_cell(i, i % 2, i // 2, CellKind.ALU, const_width=4)
        for i in range(4)
    ]
    cgra = CGRA("narrow", 2, 2, cells, topology_links("mesh", 2, 2))
    g = DFG()
    x = g.input("x")
    big = g.const(1000)
    s = g.add(Op.ADD, x, big)
    g.output(s, "y")
    m = Mapping(g, cgra, kind="modulo", binding={s: 0},
                schedule={s: 0}, ii=1)
    v = m.validate(raise_on_error=False)
    assert any("immediate" in s for s in v)


def test_unknown_kind_rejected(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="quantum", binding={a: 0, b: 1})
    v = m.validate(raise_on_error=False)
    assert any("unknown mapping kind" in s for s in v)


def test_describe_mentions_nodes(cgra):
    g, a, b = two_op_dfg()
    m = Mapping(g, cgra, kind="modulo", binding={a: 0, b: 1},
                schedule={a: 0, b: 1}, ii=2)
    text = m.describe()
    assert f"n{a}" in text and "II=2" in text
