"""Fast path == slow path.

The flat-array :class:`~repro.core.resources.Occupancy`, the
distance-pruned/A* :class:`~repro.mappers.routing.Router`, and the
parallel sweep layer are all *pure* optimisations: for a fixed seed
they must produce byte-identical mappings to the reference
implementations kept in :mod:`repro.core.refimpl`.  This suite holds
them to that.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import presets
from repro.bench.harness import run_matrix
from repro.core.refimpl import DictOccupancy, ReferenceRouter
from repro.core.registry import create
from repro.core.resources import Occupancy
from repro.dse.explorer import explore
from repro.ir import kernels as kernel_lib
from repro.mappers import construct, spr
from repro.mappers.routing import Router
from repro.obs.tracer import (
    CANDIDATES_EXPLORED,
    ROUTING_ATTEMPTS,
    tracing,
)
from repro.parallel import PMapResult, TaskTimeout, pmap, time_limit


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


# ---------------------------------------------------------------------------
# 1. Occupancy: flat arrays vs the dict/Counter reference
# ---------------------------------------------------------------------------
def _random_op(rng, flat, ref, cgra, t_max):
    """Apply one random mutation to both implementations."""
    cell = rng.randrange(cgra.n_cells)
    t = rng.randrange(t_max)
    value = rng.randrange(8)
    link = rng.choice(sorted(cgra.links))
    kind = rng.randrange(8)
    if kind == 0:
        if flat.can_place_op(cell, t):
            assert ref.can_place_op(cell, t)
            flat.place_op(value, cell, t)
            ref.place_op(value, cell, t)
    elif kind == 1:
        flat.release_op(cell, t)
        ref.release_op(cell, t)
    elif kind == 2:
        if flat.can_route(value, cell, t):
            assert ref.can_route(value, cell, t)
            flat.add_route(value, cell, t)
            ref.add_route(value, cell, t)
    elif kind == 3:
        flat.release_route(value, cell, t)
        ref.release_route(value, cell, t)
    elif kind == 4:
        if flat.can_hold(value, cell, t):
            assert ref.can_hold(value, cell, t)
            flat.add_hold(value, cell, t)
            ref.add_hold(value, cell, t)
    elif kind == 5:
        flat.release_hold(value, cell, t)
        ref.release_hold(value, cell, t)
    elif kind == 6:
        if flat.can_use_link(value, *link, t):
            assert ref.can_use_link(value, *link, t)
            flat.add_link(value, *link, t)
            ref.add_link(value, *link, t)
    else:
        flat.release_link(value, *link, t)
        ref.release_link(value, *link, t)


def _assert_same_state(flat, ref, cgra, t_max):
    for cell in range(cgra.n_cells):
        for t in range(t_max):
            assert flat.op_at(cell, t) == ref.op_at(cell, t)
            assert flat.can_place_op(cell, t) == ref.can_place_op(cell, t)
            assert flat.holds_at(cell, t) == ref.holds_at(cell, t)
            assert flat.routed_at(cell, t) == ref.routed_at(cell, t)
            for v in range(8):
                assert flat.can_route(v, cell, t) == ref.can_route(v, cell, t)
                assert flat.can_hold(v, cell, t) == ref.can_hold(v, cell, t)
    for link in sorted(cgra.links):
        for t in range(t_max):
            assert flat.link_users(*link, t) == ref.link_users(*link, t)
    assert flat.used_entries() == ref.used_entries()
    assert flat.pressure() == ref.pressure()


@pytest.mark.parametrize("ii", [None, 1, 3])
def test_occupancy_matches_reference_under_random_ops(cgra, ii):
    rng = random.Random(1234)
    flat = Occupancy(cgra, ii)
    ref = DictOccupancy(cgra, ii)
    t_max = ii if ii else 24  # exercise axis growth when unfolded
    for _ in range(600):
        _random_op(rng, flat, ref, cgra, t_max)
    _assert_same_state(flat, ref, cgra, t_max)
    # Copies are equivalent too, and independent of the original.
    fc, rc = flat.copy(), ref.copy()
    for _ in range(100):
        _random_op(rng, flat, ref, cgra, t_max)
    _assert_same_state(fc, rc, cgra, t_max)


def test_pressure_is_mean_entries_per_class(cgra):
    occ = Occupancy(cgra, 2)
    assert occ.pressure() == 0.0
    occ.place_op(0, 0, 0)
    occ.add_route(1, 1, 0)
    occ.add_hold(1, 2, 1)
    link = sorted(cgra.links)[0]
    occ.add_link(1, *link, 0)
    assert occ.pressure() == pytest.approx(4 / 4)
    before = occ.pressure()
    occ.add_route(2, 3, 1)  # every allocation keeps pressure monotone
    assert occ.pressure() > before


# ---------------------------------------------------------------------------
# 2. Whole-mapper equivalence: production stack vs reference stack
# ---------------------------------------------------------------------------
MAPPERS = ["list_sched", "edge_centric", "ultrafast", "crimson", "spr",
           "dresc"]
KERNELS = ["dot_product", "fir4"]


def _signature(mapping):
    return (
        mapping.ii,
        mapping.kind,
        dict(mapping.binding),
        dict(mapping.schedule) if mapping.schedule else None,
        {e: list(steps) for e, steps in mapping.routes.items()},
    )


def _map_with_reference_stack(monkeypatch, mname, dfg, cgra):
    monkeypatch.setattr(construct, "Occupancy", DictOccupancy)
    monkeypatch.setattr(construct, "Router", ReferenceRouter)
    monkeypatch.setattr(spr, "Occupancy", DictOccupancy)
    monkeypatch.setattr(spr, "Router", ReferenceRouter)
    try:
        return create(mname, seed=7).map(dfg, cgra)
    finally:
        monkeypatch.undo()


@pytest.mark.parametrize("kname", KERNELS)
@pytest.mark.parametrize("mname", MAPPERS)
def test_fixed_seed_mapping_identical_to_reference(
    monkeypatch, cgra, mname, kname
):
    dfg = kernel_lib.kernel(kname)
    fast = create(mname, seed=7).map(dfg, cgra)
    slow = _map_with_reference_stack(monkeypatch, mname, dfg, cgra)
    assert _signature(fast) == _signature(slow)


# ---------------------------------------------------------------------------
# 3. Pruning: fewer explored candidates, same mapping, same attempts
# ---------------------------------------------------------------------------
class _UnprunedRouter(Router):
    def __init__(self, cgra, **kw):
        kw["prune"] = False
        super().__init__(cgra, **kw)


@pytest.mark.parametrize("kname", ["fir4", "sobel_x"])
def test_pruning_strictly_reduces_explored_candidates(
    monkeypatch, cgra, kname
):
    dfg = kernel_lib.kernel(kname)
    with tracing() as tr_fast:
        fast = create("list_sched", seed=7).map(dfg, cgra)
    monkeypatch.setattr(construct, "Router", _UnprunedRouter)
    with tracing() as tr_slow:
        slow = create("list_sched", seed=7).map(dfg, cgra)
    monkeypatch.undo()
    assert _signature(fast) == _signature(slow)
    fast_tot, slow_tot = tr_fast.root.totals(), tr_slow.root.totals()
    # Pruning is invisible to callers: one router invocation per edge
    # attempt either way ...
    assert (
        fast_tot.get(ROUTING_ATTEMPTS, 0)
        == slow_tot.get(ROUTING_ATTEMPTS, 0)
    )
    # ... but the router's internal frontier shrinks.
    assert (
        fast_tot.get(CANDIDATES_EXPLORED, 0)
        < slow_tot.get(CANDIDATES_EXPLORED, 0)
    )


# ---------------------------------------------------------------------------
# 4. Parallel sweeps: same rows/points as serial, modulo timing
# ---------------------------------------------------------------------------
def _row_key(r):
    return (
        r.mapper, r.kernel, r.ok, r.ii, r.schedule_length,
        r.utilization, r.route_steps, r.error,
    )


def test_run_matrix_parallel_matches_serial(cgra):
    mappers = ["list_sched", "edge_centric"]
    kernels = ["dot_product", "fir4"]
    serial = run_matrix(mappers, kernels, cgra)
    par = run_matrix(mappers, kernels, cgra, jobs=2)
    assert [_row_key(r) for r in serial] == [_row_key(r) for r in par]


def test_run_matrix_parallel_carries_traces_back(cgra):
    rows = run_matrix(
        ["list_sched"], ["dot_product", "fir4"], cgra, jobs=2, trace=True
    )
    assert all(r.trace is not None for r in rows)
    assert all(r.trace.find("map") for r in rows)


def test_explore_parallel_matches_serial():
    space = [
        {"size": 4, "topology": t, "rf_size": 2, "mem_cells": "left"}
        for t in ("mesh", "one_hop")
    ]
    suite = ["dot_product", "fir4"]
    assert explore(space, suite) == explore(space, suite, jobs=2)


# ---------------------------------------------------------------------------
# 5. Timeouts surface as data, never as hangs
# ---------------------------------------------------------------------------
def _busy(_):
    while True:  # only a signal can stop this
        pass


def _double(x):
    return 2 * x


def test_pmap_timeout_yields_failed_result():
    results = pmap(_busy, [0, 1], jobs=2, timeout=0.2)
    assert all(not r.ok and r.timed_out for r in results)
    assert all(isinstance(r.error, TaskTimeout) for r in results)


def test_pmap_preserves_order_and_values():
    results = pmap(_double, list(range(20)), jobs=4)
    assert [r.value for r in results] == [2 * i for i in range(20)]
    assert [r.index for r in results] == list(range(20))
    assert all(isinstance(r, PMapResult) and r.ok for r in results)


def test_time_limit_raises_in_process():
    with pytest.raises(TaskTimeout):
        with time_limit(0.1):
            while True:
                pass


def test_run_matrix_timeout_becomes_failure_row(cgra):
    # The budget must sit well below dresc/sobel_x's *warm* runtime
    # (~50 ms once per-process memos are hot), or the cell races the
    # alarm and the test flakes in full-suite runs.
    for jobs in (1, 2):
        rows = run_matrix(
            ["dresc"], ["sobel_x", "fir4"], cgra,
            jobs=jobs, timeout=0.02,
        )
        assert len(rows) == 2
        timed_out = [r for r in rows if not r.ok]
        assert timed_out, f"jobs={jobs}: expected at least one timeout"
        assert all("timeout" in r.error for r in timed_out)
