"""Metamorphic properties of the mapping model.

Valid mappings stay valid under symmetries of the model: shifting a
modulo schedule in time, and translating a binding by a graph
automorphism of a torus fabric.  These pin the validator's semantics
independently of any mapper.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import map_dfg
from repro.arch import presets
from repro.arch.tec import Step
from repro.core.mapping import Mapping
from repro.ir import kernels, randdfg
from repro.ir.dfg import Op


def _shift(mapping: Mapping, dt: int) -> Mapping:
    return Mapping(
        mapping.dfg,
        mapping.cgra,
        kind="modulo",
        binding=dict(mapping.binding),
        schedule={n: t + dt for n, t in mapping.schedule.items()},
        routes={
            e: [Step(s.cell, s.time + dt, s.kind) for s in steps]
            for e, steps in mapping.routes.items()
        },
        ii=mapping.ii,
        coexec=set(mapping.coexec),
    )


@given(dt=st.integers(0, 7), seed=st.integers(0, 60))
@settings(max_examples=20, deadline=None)
def test_time_shift_preserves_validity(dt, seed):
    dfg = randdfg.layered(8, seed=seed)
    cgra = presets.simple_cgra(4, 4)
    m = map_dfg(dfg, cgra, mapper="list_sched")
    assert _shift(m, dt).validate() == []


def _translate(mapping: Mapping, dx: int, dy: int) -> Mapping:
    """Translate every cell on a torus (a fabric automorphism)."""
    cgra = mapping.cgra

    def move(cid: int) -> int:
        x, y = cgra.coords(cid)
        return ((y + dy) % cgra.height) * cgra.width + (
            (x + dx) % cgra.width
        )

    return Mapping(
        mapping.dfg,
        cgra,
        kind="modulo",
        binding={n: move(c) for n, c in mapping.binding.items()},
        schedule=dict(mapping.schedule),
        routes={
            e: [Step(move(s.cell), s.time, s.kind) for s in steps]
            for e, steps in mapping.routes.items()
        },
        ii=mapping.ii,
    )


@given(
    dx=st.integers(0, 3),
    dy=st.integers(0, 3),
    seed=st.integers(0, 60),
)
@settings(max_examples=20, deadline=None)
def test_torus_translation_preserves_validity(dx, dy, seed):
    dfg = randdfg.layered(7, seed=seed)
    cgra = presets.simple_cgra(4, 4, topology="torus")
    m = map_dfg(dfg, cgra, mapper="list_sched")
    assert _translate(m, dx, dy).validate() == []


def test_mesh_wrap_breaks_on_wider_array():
    dfg = kernels.dot_product()
    cgra = presets.simple_cgra(3, 1)  # row: 0-1-2, no wrap link 2->0
    mul = next(n.nid for n in dfg.nodes() if n.op is Op.MUL)
    add = next(n.nid for n in dfg.nodes() if n.op is Op.ADD)
    m = Mapping(
        dfg, cgra, kind="modulo",
        binding={mul: 1, add: 2},
        schedule={mul: 0, add: 1},
        ii=1,
    )
    assert m.validate() == []
    shifted = _translate(m, 1, 0)  # mul -> 2, add -> 0: needs 2->0
    v = shifted.validate(raise_on_error=False)
    assert any("not adjacent" in s for s in v)
