"""Spatial-mapping validation tests."""

import pytest

from repro.arch import presets
from repro.arch.tec import HOLD, ROUTE, Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, Op


@pytest.fixture
def cgra():
    return presets.simple_cgra(3, 3)


def chain3():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.NEG, x)
    b = g.add(Op.ABS, a)
    c = g.add(Op.NOT, b)
    g.output(c, "y")
    return g, a, b, c


def test_valid_spatial_chain(cgra):
    g, a, b, c = chain3()
    m = Mapping(g, cgra, kind="spatial", binding={a: 0, b: 1, c: 2})
    assert m.validate() == []


def test_cells_exclusive(cgra):
    g, a, b, c = chain3()
    m = Mapping(g, cgra, kind="spatial", binding={a: 0, b: 0, c: 1})
    v = m.validate(raise_on_error=False)
    assert any("exclusive" in s for s in v)


def test_non_adjacent_needs_route_cells(cgra):
    g, a, b, c = chain3()
    # 0 and 2 are two hops apart on a 3x3 mesh row.
    m = Mapping(g, cgra, kind="spatial", binding={a: 0, b: 2, c: 5})
    v = m.validate(raise_on_error=False)
    assert any("not reachable" in s for s in v)


def test_route_cell_bridges_gap(cgra):
    g, a, b, c = chain3()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={a: 0, b: 2, c: 5},
        routes={e: [Step(1, 0, ROUTE)]},
    )
    assert m.validate() == []


def test_route_cell_cannot_host_op(cgra):
    g, a, b, c = chain3()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={a: 0, b: 2, c: 1},  # c sits on the route cell
        routes={e: [Step(1, 0, ROUTE)]},
    )
    v = m.validate(raise_on_error=False)
    assert any("hosts op" in s for s in v)


def test_route_cell_single_value(cgra):
    g = DFG()
    x = g.input("x")
    p1 = g.add(Op.NEG, x)
    p2 = g.add(Op.NOT, x)
    c1 = g.add(Op.ABS, p1)
    c2 = g.add(Op.ABS, p2)
    e1 = g.operand(c1, 0)
    e2 = g.operand(c2, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={p1: 0, p2: 2, c1: 6, c2: 8},
        routes={e1: [Step(3, 0, ROUTE)], e2: [Step(5, 0, ROUTE)]},
    )
    assert m.validate() == []
    # Now force both through cell 4.
    m2 = Mapping(
        g, cgra, kind="spatial",
        binding={p1: 1, p2: 3, c1: 7, c2: 5},
        routes={e1: [Step(4, 0, ROUTE)], e2: [Step(4, 0, ROUTE)]},
    )
    v = m2.validate(raise_on_error=False)
    assert any("two values" in s for s in v)


def test_hold_steps_invalid_in_spatial(cgra):
    g, a, b, c = chain3()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={a: 0, b: 2, c: 5},
        routes={e: [Step(1, 0, HOLD)]},
    )
    v = m.validate(raise_on_error=False)
    assert any("ROUTE steps only" in s for s in v)


def test_route_adjacency_checked(cgra):
    g, a, b, c = chain3()
    e = g.operand(b, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={a: 0, b: 2, c: 5},
        routes={e: [Step(8, 0, ROUTE)]},  # 0 -> 8 not a link
    )
    v = m.validate(raise_on_error=False)
    assert any("no link" in s for s in v)


def test_self_recurrence_same_cell_ok(cgra):
    from repro.ir.kernels import accumulate

    g = accumulate()
    add = next(n.nid for n in g.nodes() if n.op is Op.ADD)
    m = Mapping(g, cgra, kind="spatial", binding={add: 4})
    assert m.validate() == []


def test_fanout_same_route_cell_shared(cgra):
    g = DFG()
    x = g.input("x")
    p = g.add(Op.NEG, x)
    c1 = g.add(Op.ABS, p)
    c2 = g.add(Op.NOT, p)
    e1 = g.operand(c1, 0)
    e2 = g.operand(c2, 0)
    m = Mapping(
        g, cgra, kind="spatial",
        binding={p: 0, c1: 2, c2: 4},
        routes={e1: [Step(1, 0, ROUTE)], e2: [Step(1, 0, ROUTE)]},
    )
    # Same value through cell 1 twice: allowed (fan-out).
    assert m.validate() == []
