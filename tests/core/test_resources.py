"""Occupancy resource-accounting tests."""

import pytest

from repro.arch import presets
from repro.core.resources import Occupancy


@pytest.fixture
def cgra():
    return presets.simple_cgra(2, 2, rf_size=2)


def test_fu_exclusive(cgra):
    occ = Occupancy(cgra, ii=2)
    assert occ.can_place_op(0, 0)
    occ.place_op(7, 0, 0)
    assert not occ.can_place_op(0, 0)
    assert not occ.can_place_op(0, 2)  # folds to slot 0
    assert occ.can_place_op(0, 1)
    assert occ.op_at(0, 2) == 7


def test_release_op(cgra):
    occ = Occupancy(cgra, ii=2)
    occ.place_op(7, 0, 0)
    occ.release_op(0, 0)
    assert occ.can_place_op(0, 0)


def test_route_shares_fu(cgra):
    occ = Occupancy(cgra, ii=2)
    occ.place_op(7, 0, 0)
    assert not occ.can_route(9, 0, 0)
    assert occ.can_route(9, 0, 1)
    occ.add_route(9, 0, 1)
    # A second distinct value cannot route there; the same value can.
    assert not occ.can_route(8, 0, 1)
    assert occ.can_route(9, 0, 1)
    # And an op cannot take that slot anymore.
    assert not occ.can_place_op(0, 1)


def test_bypass_capacity():
    cgra = presets.hycube_like(2, 2)
    occ = Occupancy(cgra, ii=1)
    occ.place_op(7, 0, 0)
    # Bypass routing coexists with the op.
    for v in range(cgra.bypass_capacity):
        assert occ.can_route(100 + v, 0, 0)
        occ.add_route(100 + v, 0, 0)
    assert not occ.can_route(999, 0, 0)


def test_rf_capacity(cgra):
    occ = Occupancy(cgra, ii=1)
    assert occ.can_hold(1, 0, 0)
    occ.add_hold(1, 0, 0)
    occ.add_hold(2, 0, 0)
    assert not occ.can_hold(3, 0, 0)
    assert occ.can_hold(1, 0, 0)  # dedup by value
    occ.release_hold(2, 0, 0)
    assert occ.can_hold(3, 0, 0)


def test_link_single_value(cgra):
    occ = Occupancy(cgra, ii=2)
    assert occ.can_use_link(1, 0, 1, 0)
    occ.add_link(1, 0, 1, 0)
    assert occ.can_use_link(1, 0, 1, 2)  # same value, folded slot
    assert not occ.can_use_link(2, 0, 1, 0)
    assert occ.can_use_link(2, 0, 1, 1)
    occ.release_link(1, 0, 1, 0)
    assert occ.can_use_link(2, 0, 1, 0)


def test_no_fold_when_ii_none(cgra):
    occ = Occupancy(cgra, ii=None)
    occ.place_op(7, 0, 0)
    assert occ.can_place_op(0, 5)


def test_copy_is_independent(cgra):
    occ = Occupancy(cgra, ii=2)
    occ.place_op(7, 0, 0)
    occ.add_hold(1, 1, 0)
    clone = occ.copy()
    clone.release_op(0, 0)
    clone.add_hold(2, 1, 0)
    assert occ.op_at(0, 0) == 7
    assert occ.holds_at(1, 0) == {1}


def test_release_is_refcounted(cgra):
    """Fan-out: two edges share a slot; releasing one keeps the other."""
    occ = Occupancy(cgra, ii=1)
    occ.add_route(5, 0, 0)
    occ.add_route(5, 0, 0)
    occ.release_route(5, 0, 0)
    assert not occ.can_route(6, 0, 0)  # still occupied by value 5
    occ.release_route(5, 0, 0)
    assert occ.can_route(6, 0, 0)


def test_pressure_monotone(cgra):
    occ = Occupancy(cgra, ii=1)
    p0 = occ.pressure()
    occ.place_op(1, 0, 0)
    occ.add_route(2, 1, 0)
    assert occ.pressure() > p0
