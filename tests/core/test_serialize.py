"""Mapping JSON round-trip tests."""

import json

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.core.serialize import (
    fingerprint,
    mapping_from_json,
    mapping_to_json,
)
from repro.ir import kernels


@pytest.fixture(scope="module")
def setup():
    dfg = kernels.sobel_x()
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="edge_centric")
    return dfg, cgra, mapping


def test_roundtrip_preserves_everything(setup):
    dfg, cgra, mapping = setup
    text = mapping_to_json(mapping)
    loaded = mapping_from_json(text, dfg, cgra)
    assert loaded.binding == mapping.binding
    assert loaded.schedule == mapping.schedule
    assert loaded.routes == mapping.routes
    assert loaded.ii == mapping.ii
    assert loaded.mapper == mapping.mapper
    assert loaded.validate() == []


def test_json_is_plain_and_versioned(setup):
    _, _, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    assert doc["format"] == 2
    assert doc["kind"] == "modulo"
    assert isinstance(doc["binding"], dict)


def test_fingerprint_rejects_wrong_substrate(setup):
    dfg, cgra, mapping = setup
    text = mapping_to_json(mapping)
    other = presets.simple_cgra(4, 4, topology="torus")
    with pytest.raises(ValueError, match="fingerprint"):
        mapping_from_json(text, dfg, other)
    # Opt-out works, but validation may then fail honestly.
    loaded = mapping_from_json(text, dfg, other, verify=False)
    assert loaded.cgra is other


def test_fingerprint_stable(setup):
    dfg, cgra, _ = setup
    assert fingerprint(dfg, cgra) == fingerprint(dfg, cgra)
    assert fingerprint(dfg, cgra) != fingerprint(
        dfg, presets.simple_cgra(2, 2)
    )


def test_fingerprint_covers_context_depth_and_rf(setup):
    """Format 1 hashed rendered text and collided on presets that
    differ only in context depth or RF size; format 2 must not."""
    dfg, _, _ = setup
    base = fingerprint(dfg, presets.simple_cgra(4, 4, n_contexts=32))
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, n_contexts=8)
    )
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, rf_size=2)
    )
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, mem_cells="left")
    )


def test_unknown_format_rejected(setup):
    dfg, cgra, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    doc["format"] = 99
    with pytest.raises(ValueError, match="format"):
        mapping_from_json(json.dumps(doc), dfg, cgra)


def test_spatial_mapping_roundtrip():
    dfg = kernels.if_select()
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="graph_drawing")
    loaded = mapping_from_json(mapping_to_json(mapping), dfg, cgra)
    assert loaded.kind == "spatial"
    assert loaded.validate() == []


def test_dual_issue_pairs_roundtrip():
    from repro.controlflow.dual_issue import dual_issue, map_dual_issue
    from tests.controlflow.test_predication import make_ite_cdfg

    dfg, pairs = dual_issue(make_ite_cdfg())
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dual_issue(dfg, pairs, cgra)
    loaded = mapping_from_json(mapping_to_json(mapping), dfg, cgra)
    assert loaded.coexec == mapping.coexec
    assert loaded.validate() == []