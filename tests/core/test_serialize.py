"""Mapping JSON round-trip tests, the corrupted-document corpus, and
the DFG document codec used by serve requests."""

import copy
import json

import pytest

from repro.api import map_dfg
from repro.arch import presets
from repro.core.serialize import (
    dfg_from_doc,
    dfg_to_doc,
    fingerprint,
    mapping_from_doc,
    mapping_from_json,
    mapping_to_doc,
    mapping_to_json,
)
from repro.ir import kernels


@pytest.fixture(scope="module")
def setup():
    dfg = kernels.sobel_x()
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="edge_centric")
    return dfg, cgra, mapping


def test_roundtrip_preserves_everything(setup):
    dfg, cgra, mapping = setup
    text = mapping_to_json(mapping)
    loaded = mapping_from_json(text, dfg, cgra)
    assert loaded.binding == mapping.binding
    assert loaded.schedule == mapping.schedule
    assert loaded.routes == mapping.routes
    assert loaded.ii == mapping.ii
    assert loaded.mapper == mapping.mapper
    assert loaded.validate() == []


def test_json_is_plain_and_versioned(setup):
    _, _, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    assert doc["format"] == 2
    assert doc["kind"] == "modulo"
    assert isinstance(doc["binding"], dict)


def test_fingerprint_rejects_wrong_substrate(setup):
    dfg, cgra, mapping = setup
    text = mapping_to_json(mapping)
    other = presets.simple_cgra(4, 4, topology="torus")
    with pytest.raises(ValueError, match="fingerprint"):
        mapping_from_json(text, dfg, other)
    # Opt-out works, but validation may then fail honestly.
    loaded = mapping_from_json(text, dfg, other, verify=False)
    assert loaded.cgra is other


def test_fingerprint_stable(setup):
    dfg, cgra, _ = setup
    assert fingerprint(dfg, cgra) == fingerprint(dfg, cgra)
    assert fingerprint(dfg, cgra) != fingerprint(
        dfg, presets.simple_cgra(2, 2)
    )


def test_fingerprint_covers_context_depth_and_rf(setup):
    """Format 1 hashed rendered text and collided on presets that
    differ only in context depth or RF size; format 2 must not."""
    dfg, _, _ = setup
    base = fingerprint(dfg, presets.simple_cgra(4, 4, n_contexts=32))
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, n_contexts=8)
    )
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, rf_size=2)
    )
    assert base != fingerprint(
        dfg, presets.simple_cgra(4, 4, mem_cells="left")
    )


def test_unknown_format_rejected(setup):
    dfg, cgra, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    doc["format"] = 99
    with pytest.raises(ValueError, match="format"):
        mapping_from_json(json.dumps(doc), dfg, cgra)


def test_spatial_mapping_roundtrip():
    dfg = kernels.if_select()
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="graph_drawing")
    loaded = mapping_from_json(mapping_to_json(mapping), dfg, cgra)
    assert loaded.kind == "spatial"
    assert loaded.validate() == []


def test_dual_issue_pairs_roundtrip():
    from repro.controlflow.dual_issue import dual_issue, map_dual_issue
    from tests.controlflow.test_predication import make_ite_cdfg

    dfg, pairs = dual_issue(make_ite_cdfg())
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dual_issue(dfg, pairs, cgra)
    loaded = mapping_from_json(mapping_to_json(mapping), dfg, cgra)
    assert loaded.coexec == mapping.coexec
    assert loaded.validate() == []


# ---------------------------------------------------------------------------
# Corrupted-document corpus: every defect must surface as a clean
# ValueError naming the field — documents arrive over the wire now,
# and a raw KeyError/TypeError/IndexError is a daemon bug.
# ---------------------------------------------------------------------------
def _drop(key):
    def mutate(doc):
        del doc[key]
    return mutate


def _set(key, value):
    def mutate(doc):
        doc[key] = value
    return mutate


def _mangle_route(**changes):
    def mutate(doc):
        doc["routes"][0].update(changes)
    return mutate


CORRUPTIONS = [
    _drop("fingerprint"), _drop("kind"), _drop("ii"), _drop("binding"),
    _drop("schedule"), _drop("routes"),
    _set("fingerprint", 17),
    _set("kind", "quantum"),
    _set("ii", "three"),
    _set("ii", True),
    _set("ii", 0),
    _set("binding", [1, 2, 3]),
    _set("binding", {"x": 1}),
    _set("binding", {"3": "pe0"}),
    _set("binding", {"3": True}),
    _set("schedule", "soon"),
    _set("routes", {"0": []}),
    _set("routes", ["not an object"]),
    _mangle_route(edge=None),
    _mangle_route(edge=[1, 2]),                 # wrong arity
    _mangle_route(edge=[1, 2, "p", 0]),         # non-int member
    _mangle_route(steps="abc"),
    _mangle_route(steps=[[1, 2]]),              # truncated step
    _mangle_route(steps=[[1, 2, 3, 4]]),        # oversized step
    _set("coexec", 5),
    _set("coexec", [[1, "two"]]),
]


@pytest.mark.parametrize("mutate", CORRUPTIONS)
def test_corrupted_docs_raise_field_naming_value_errors(setup, mutate):
    dfg, cgra, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    mutate(doc)
    with pytest.raises(ValueError, match="mapping document"):
        mapping_from_doc(doc, dfg, cgra, verify=False)


def test_non_object_doc_rejected(setup):
    dfg, cgra, _ = setup
    for junk in (None, 7, "doc", [1, 2]):
        with pytest.raises(ValueError, match="mapping document"):
            mapping_from_doc(junk, dfg, cgra)


def test_good_doc_still_roundtrips_after_hardening(setup):
    dfg, cgra, mapping = setup
    doc = json.loads(mapping_to_json(mapping))
    loaded = mapping_from_doc(doc, dfg, cgra)
    assert mapping_to_doc(loaded) == mapping_to_doc(mapping)


def test_node_map_missing_an_id_is_a_clean_error(setup):
    dfg, cgra, mapping = setup
    doc = mapping_to_doc(mapping)
    with pytest.raises(ValueError, match="unknown node id"):
        mapping_from_doc(doc, dfg, cgra, node_map={}, verify=False)


# ---------------------------------------------------------------------------
# DFG documents (inline problem graphs in serve requests)
# ---------------------------------------------------------------------------
def test_dfg_doc_roundtrip_preserves_ids_and_mapping_bytes():
    dfg = kernels.kernel("fir4")
    doc = dfg_to_doc(dfg)
    rebuilt = dfg_from_doc(copy.deepcopy(doc))
    assert {n.nid for n in rebuilt.nodes()} == {
        n.nid for n in dfg.nodes()
    }
    assert dfg_to_doc(rebuilt) == doc
    cgra = presets.simple_cgra(4, 4)
    original = mapping_to_doc(map_dfg(dfg, cgra, mapper="list_sched"))
    replayed = mapping_to_doc(map_dfg(rebuilt, cgra, mapper="list_sched"))
    assert json.dumps(replayed, sort_keys=True) == json.dumps(
        original, sort_keys=True
    )


def test_dfg_doc_is_json_clean():
    doc = dfg_to_doc(kernels.kernel("sobel_x"))
    assert json.loads(json.dumps(doc)) == doc


@pytest.mark.parametrize(
    "mutate,needle",
    [
        (lambda d: d.update(nodes="x"), "nodes"),
        (lambda d: d["nodes"].append(7), "nodes"),
        (lambda d: d["nodes"].append({"id": -1, "op": "add"}), "id"),
        (lambda d: d["nodes"].append(dict(d["nodes"][0])), "twice"),
        (
            lambda d: d["nodes"].append({"id": 999, "op": "frobnicate"}),
            "opcode",
        ),
        (lambda d: d["edges"].append([0, 1]), "edges"),
        (lambda d: d["edges"].append([0, 99999, 0, 0]), "edges"),
        (lambda d: d.update(name=4), "name"),
    ],
)
def test_dfg_doc_defects_are_clean_errors(mutate, needle):
    doc = dfg_to_doc(kernels.kernel("dot_product"))
    mutate(doc)
    with pytest.raises(ValueError, match="dfg document") as exc:
        dfg_from_doc(doc)
    assert needle in str(exc.value)