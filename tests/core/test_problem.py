"""MappingProblem / MII bound tests."""

import pytest

from repro.arch import presets
from repro.core.problem import MappingProblem
from repro.ir import kernels
from repro.ir.dfg import DFG, Op


def test_res_mii_counts_slots():
    g = kernels.conv3x3()  # 17 compute ops
    cgra = presets.simple_cgra(2, 2)
    prob = MappingProblem(g, cgra)
    assert prob.n_ops == 17
    assert prob.res_mii == 5  # ceil(17 / 4)


def test_res_mii_at_least_one():
    g = kernels.vector_add()
    cgra = presets.simple_cgra(4, 4)
    assert MappingProblem(g, cgra).res_mii == 1


def test_res_mii_memory_bound():
    g = kernels.stencil1d_mem()  # 3 loads + 1 store
    cgra = presets.simple_cgra(4, 4, mem_cells="left")
    prob = MappingProblem(g, cgra)
    assert prob.res_mii >= 1
    # 4 memory ops over 4 memory cells: memory bound is 1; compute
    # bound is ceil(9/16)=1.
    assert prob.res_mii == 1
    # 3x3 with left-column memory: 3 memory cells for 4 memory ops
    # gives mem bound ceil(4/3)=2, above the compute bound ceil(9/9)=1.
    narrow = presets.simple_cgra(3, 3, mem_cells="left")
    assert MappingProblem(g, narrow).res_mii == 2


def test_memory_ops_without_memory_cells():
    g = kernels.dot_product_mem()
    cgra = presets.simple_cgra(2, 2, mem_cells="none")
    with pytest.raises(ValueError, match="no memory cells"):
        MappingProblem(g, cgra).res_mii


def test_rec_mii_accumulator_is_one():
    g = kernels.dot_product()
    cgra = presets.simple_cgra(4, 4)
    prob = MappingProblem(g, cgra)
    assert prob.rec_mii == 1
    assert prob.mii == 1


def test_rec_mii_longer_cycle():
    # a -> b -> a with total distance 1 and two unit latencies: RecMII 2.
    g = DFG()
    x = g.input("x")
    a = g.add(Op.ADD, x, x)
    b = g.add(Op.NEG, a)
    e = g.operand(a, 1)
    g.remove_edge(e)
    g.connect(b, a, port=1, dist=1)
    cgra = presets.simple_cgra(4, 4)
    assert MappingProblem(g, cgra).rec_mii == 2


def test_rec_mii_distance_two_halves_bound():
    g = DFG()
    x = g.input("x")
    a = g.add(Op.ADD, x, x)
    b = g.add(Op.NEG, a)
    e = g.operand(a, 1)
    g.remove_edge(e)
    g.connect(b, a, port=1, dist=2)
    cgra = presets.simple_cgra(4, 4)
    assert MappingProblem(g, cgra).rec_mii == 1  # ceil(2/2)


def test_mii_is_max_of_bounds():
    g = kernels.iir_biquad()
    cgra = presets.simple_cgra(2, 1)
    prob = MappingProblem(g, cgra)
    assert prob.mii == max(prob.res_mii, prob.rec_mii)


def test_fits_spatially():
    cgra = presets.simple_cgra(2, 2)
    assert MappingProblem(kernels.vector_add(), cgra).fits_spatially()
    assert not MappingProblem(kernels.conv3x3(), cgra).fits_spatially()


def test_describe_contains_bounds():
    prob = MappingProblem(kernels.dot_product(), presets.simple_cgra(4, 4))
    text = prob.describe()
    assert "MII=1" in text and "ResMII" in text
