"""The persistent pool's own contracts.

Reuse across calls, crash respawn, leaked-alarm hygiene between tasks
of one long-lived worker, the ``TaskTimeout``-is-``BaseException``
guarantee on *reused* workers (the PR 6 tests covered fork-per-call
workers), the parent-side hard-timeout backstop, in-batch dedup, race
loser cancellation, and the ``pool_scope`` lifecycle.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.arch import presets
from repro.bench.harness import run_matrix
from repro.dse.explorer import explore
from repro.parallel import (
    TaskTimeout,
    WorkerCrash,
    get_pool,
    pmap,
    pool_scope,
    race,
    shutdown,
    warm_pool,
)
from repro.parallel import pool as pool_mod


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


# --- payloads (module-level so workers can unpickle them by name) ----------
def _double(x):
    return 2 * x


def _pid(_):
    return os.getpid()


def _crash_or_pid(item):
    if item == "die":
        os._exit(42)
    return os.getpid()


def _alarm_script(step):
    """Task k leaks an armed SIGALRM with the *default* disposition —
    which kills the process on delivery; task k+1 then sleeps past the
    leaked timer.  Only the pool's between-task disarm keeps the
    worker alive."""
    if step == "leak":
        signal.signal(signal.SIGALRM, signal.SIG_DFL)
        signal.setitimer(signal.ITIMER_REAL, 0.15)
        return "leaked"
    time.sleep(0.4)
    return "survived"


def _swallow_script(step):
    """A greedy ``except Exception`` guard on the interrupted path:
    only a ``BaseException`` timeout can escape it."""
    if step == "swallow":
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                time.sleep(0.01)
            except Exception:
                pass
        return "never"
    return "ok"


def _sleep_for(seconds):
    time.sleep(seconds)
    return "done"


def _wedge(_):
    # A worker stuck where SIGALRM cannot reach it (here: the signal is
    # blocked, standing in for a hung C extension).
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    time.sleep(60)
    return "unreachable"


def _record_and_tag(path_and_item):
    path, item = path_and_item
    with open(path, "a") as fh:
        fh.write(f"{item}\n")
    return (item, os.getpid(), os.urandom(8).hex())


def _race_script(item):
    if item == "fast":
        return "winner"
    time.sleep(30)
    return "loser"


def _wedge_forever(_):
    """Make this worker unkillable by anything short of SIGKILL: ignore
    SIGTERM and hold the process open with a non-daemon thread, then
    return normally so the batch itself succeeds."""
    import threading

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    t = threading.Thread(target=time.sleep, args=(600,), daemon=False)
    t.start()
    return "wedged"


def _sleep_tagged(item):
    tag, seconds = item
    time.sleep(seconds)
    return tag


# ---------------------------------------------------------------------------
def test_pool_persists_across_pmap_calls():
    warm_pool(2)
    first = set(r.value for r in pmap(_pid, [0, 1, 2, 3], jobs=2))
    second = set(r.value for r in pmap(_pid, [0, 1, 2, 3], jobs=2))
    pool = get_pool(2)
    assert first == second  # same processes served both calls
    assert first <= set(pool.pids())
    assert os.getpid() not in first


def test_pool_reused_across_run_matrix_and_explore_calls(cgra):
    warm_pool(2)
    pool = get_pool(2)
    pids = set(pool.pids())
    batches = pool.batches
    run_matrix(["list_sched"], ["dot_product", "fir4"], cgra, jobs=2)
    run_matrix(["list_sched"], ["dot_product", "fir4"], cgra, jobs=2)
    space = [
        {"size": 4, "topology": t, "rf_size": 2, "mem_cells": "left"}
        for t in ("mesh", "one_hop")
    ]
    explore(space, ["dot_product"], jobs=2)
    assert get_pool(2) is pool
    assert set(pool.pids()) == pids  # no respawns, no new forks
    assert pool.batches == batches + 3


def test_worker_crash_is_contained_and_respawned():
    pool = warm_pool(2)
    respawns = pool.respawns
    results = pmap(_crash_or_pid, ["ok1", "die", "ok2", "ok3"], jobs=2)
    crashed = [r for r in results if not r.ok]
    assert len(crashed) == 1
    assert isinstance(crashed[0].error, WorkerCrash)
    assert [r.ok for r in results] == [True, False, True, True]
    assert pool.respawns > respawns
    # the pool is not poisoned: the very next batch works
    after = pmap(_double, [1, 2, 3], jobs=2)
    assert [r.value for r in after] == [2, 4, 6]


def test_leaked_alarm_cleared_between_tasks_of_reused_worker():
    pool = warm_pool(2)
    respawns = pool.respawns
    # jobs=1 pins both tasks to one worker, in order; pmap would take
    # the serial path, so drive the batch directly.
    results = pool.run_batch(_alarm_script, ["leak", "sleep"], jobs=1)
    assert [r.value for r in results] == ["leaked", "survived"]
    assert pool.respawns == respawns  # the worker outlived the leak


def test_timeout_escapes_except_exception_on_reused_worker():
    pool = warm_pool(2)
    respawns = pool.respawns
    pids = set(pool.pids())
    results = pool.run_batch(
        _swallow_script, ["swallow", "ok"], jobs=1, timeout=0.3
    )
    assert not results[0].ok and results[0].timed_out
    assert isinstance(results[0].error, TaskTimeout)
    assert results[1].ok and results[1].value == "ok"
    # the in-worker alarm unwound the task; the worker itself survived
    assert pool.respawns == respawns
    assert set(pool.pids()) == pids


def test_hard_timeout_backstop_kills_only_the_wedged_worker(monkeypatch):
    monkeypatch.setattr(pool_mod, "BACKSTOP_SLACK", 0.5)
    pool = warm_pool(2)
    respawns = pool.respawns
    t0 = time.monotonic()
    # run_batch directly: pmap's serial gate would wedge the parent
    results = pool.run_batch(_wedge, [0], jobs=1, timeout=0.2)
    # well under the 60s wedge: the parent condemned the worker
    assert time.monotonic() - t0 < 30.0
    assert not results[0].ok and results[0].timed_out
    assert isinstance(results[0].error, TaskTimeout)
    assert pool.respawns > respawns
    after = pmap(_double, [5], jobs=2)
    assert after[0].value == 10


def test_backstop_clock_starts_at_head_of_line_not_queue(monkeypatch):
    monkeypatch.setattr(pool_mod, "BACKSTOP_SLACK", 0.2)
    pool = warm_pool(2)
    respawns = pool.respawns
    # Two 0.5s tasks pinned to one worker under timeout=0.7: the second
    # is prefetched at t~0 and only starts at t~0.5.  A deadline
    # stamped at queue time (0.7 + 0.2 slack = t=0.9) would condemn it
    # at 0.4s into its own run, well inside its SIGALRM budget;
    # head-of-line arming gives it the full budget from t~0.5, so both
    # tasks succeed exactly as they would under a serial run.
    results = pool.run_batch(_sleep_for, [0.5, 0.5], jobs=1, timeout=0.7)
    assert [(r.ok, r.value) for r in results] == [
        (True, "done"), (True, "done")
    ]
    assert not any(r.timed_out for r in results)
    assert pool.respawns == respawns  # no worker was condemned


def test_run_batch_clamps_growth_to_batch_width():
    shutdown()
    pool = get_pool(1)
    # Two items sharing one dedup key: one real task, so jobs=8 must
    # not fork a single extra worker (the pool never shrinks).
    results = pool.run_batch(_double, [5, 5], jobs=8, keys=["k", "k"])
    assert [r.value for r in results] == [10, 10]
    assert results[1].deduped
    assert pool.size == 1
    # Without dedup the batch width is len(items), still not jobs.
    results = pool.run_batch(_double, [1, 2, 3], jobs=8)
    assert [r.value for r in results] == [2, 4, 6]
    assert pool.size == 3


def test_in_batch_dedup_runs_identical_tasks_once(tmp_path):
    warm_pool(2)
    log = tmp_path / "ran.log"
    items = [(str(log), "a"), (str(log), "a"), (str(log), "b")]
    results = pmap(
        _record_and_tag, items, jobs=2, keys=["ka", "ka", "kb"]
    )
    ran = log.read_text().splitlines()
    assert sorted(ran) == ["a", "b"]  # the duplicate never executed
    assert [r.deduped for r in results] == [False, True, False]
    # the copy carries the primary's exact value (fresh entropy would
    # differ had it actually run)
    assert results[1].value == results[0].value
    assert results[1].elapsed == 0.0


def test_dedup_none_keys_always_run(tmp_path):
    warm_pool(2)
    log = tmp_path / "ran.log"
    items = [(str(log), "a"), (str(log), "a")]
    results = pmap(_record_and_tag, items, jobs=2, keys=[None, None])
    assert len(log.read_text().splitlines()) == 2
    assert not any(r.deduped for r in results)


def test_race_cancels_losers_promptly():
    pool = warm_pool(4)
    cancels = pool.cancels
    t0 = time.monotonic()
    results = race(_race_script, ["fast", "slow", "slow", "slow"], jobs=4)
    elapsed = time.monotonic() - t0
    assert elapsed < 20.0  # nowhere near the losers' 30s sleeps
    assert results[0].ok and results[0].value == "winner"
    assert results[1:] == [None, None, None]
    assert pool.cancels > cancels  # losers were killed, not drained
    after = pmap(_double, [7], jobs=2)
    assert after[0].value == 14


def test_pool_scope_creates_and_tears_down():
    shutdown()
    assert pool_mod._POOL is None
    with pool_scope(2) as pool:
        assert pool_mod._POOL is pool
        assert [r.value for r in pmap(_double, [1, 2], jobs=2)] == [2, 4]
    assert pool_mod._POOL is None


def test_pool_scope_leaves_existing_pool_running():
    outer = warm_pool(2)
    with pool_scope(2) as pool:
        assert pool is outer
    assert pool_mod._POOL is outer
    assert [r.value for r in pmap(_double, [3], jobs=2)] == [6]


def test_shutdown_escalates_to_sigkill_on_wedged_worker():
    shutdown()
    pool = warm_pool(2)
    results = pmap(_wedge_forever, [0, 1], jobs=2)
    assert [r.value for r in results] == ["wedged", "wedged"]
    pids = pool.pids()
    t0 = time.monotonic()
    shutdown(grace=0.5)
    elapsed = time.monotonic() - t0
    # bounded: ~3 grace periods total, not per wedged worker
    assert elapsed < 5.0
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)  # ESRCH: nothing left behind


def test_shutdown_twice_is_a_noop():
    warm_pool(2)
    shutdown()
    t0 = time.monotonic()
    shutdown()  # e.g. atexit after an explicit serve teardown
    assert time.monotonic() - t0 < 0.5
    assert pool_mod._POOL is None


def test_per_task_timeouts_mix_in_one_batch():
    pool = warm_pool(2)
    # Same payload duration, opposite budgets: only the starved entry
    # may time out, proving the budget rides on the task, not the batch.
    results = pool.run_batch(
        _sleep_tagged,
        [("tight", 0.4), ("roomy", 0.4)],
        jobs=2,
        timeouts=[0.1, None],
    )
    assert not results[0].ok and results[0].timed_out
    assert isinstance(results[0].error, TaskTimeout)
    assert results[1].ok and results[1].value == "roomy"


def test_on_result_streams_settled_tasks_without_barrier():
    warm_pool(2)
    seen: list[tuple[int, float]] = []
    results = pmap(
        _sleep_tagged,
        [("slow", 0.6), ("fast", 0.0)],
        jobs=2,
        on_result=lambda i, r: seen.append((i, time.monotonic())),
    )
    assert [r.value for r in results] == ["slow", "fast"]
    order = [i for i, _ in seen]
    assert sorted(order) == [0, 1]
    # the fast task streamed out first — no submission-order barrier
    assert order[0] == 1
    assert seen[1][1] - seen[0][1] > 0.3


def test_on_result_fires_for_deduped_copies():
    warm_pool(2)
    seen: list[tuple[int, bool]] = []
    results = pmap(
        _double,
        [5, 5, 6],
        jobs=2,
        keys=["k", "k", "j"],
        on_result=lambda i, r: seen.append((i, r.deduped)),
    )
    assert [r.value for r in results] == [10, 10, 12]
    assert sorted(seen) == [(0, False), (1, True), (2, False)]
    # the duplicate settles with its primary, immediately after it
    assert seen.index((1, True)) == seen.index((0, False)) + 1
