"""``jobs=N`` over the persistent pool == ``jobs=1``, exactly.

Byte-identical mapping rows, exact metrics-fold equivalence (counter
values and histogram event counts; histogram sums are wall-clock and
excluded), and in-batch dedup that provably does the work once while
returning the same rows.
"""

from __future__ import annotations

import pytest

from repro.arch import presets
from repro.bench.harness import run_matrix
from repro.cache import MappingCache
from repro.dse.explorer import explore
from repro.obs.metrics import (
    POOL_DEDUP_TOTAL,
    MetricsRegistry,
    metrics_scope,
)
from repro.parallel import warm_pool

MAPPERS = ["list_sched", "edge_centric", "dresc"]
KERNELS = ["dot_product", "fir4", "sobel_x"]


@pytest.fixture(scope="module")
def cgra():
    return presets.simple_cgra(4, 4)


def _row_sig(r):
    # everything but the wall-clock fields
    return (
        r.mapper, r.kernel, r.ok, r.ii, r.schedule_length,
        round(r.utilization, 12), r.route_steps, r.error,
    )


def _work_sig(registry):
    """Deterministic work totals: counters + histogram event counts."""
    sig = {}
    for name, data in registry.snapshot().items():
        if data["type"] == "counter":
            sig[name] = data["value"]
        elif data["type"] == "histogram":
            sig[f"{name}.count"] = data["count"]
    return sig


def test_run_matrix_jobs2_equals_jobs1_rows_and_metrics(cgra):
    warm_pool(2)
    serial_reg = MetricsRegistry()
    with metrics_scope(serial_reg):
        serial = run_matrix(MAPPERS, KERNELS, cgra)
    parallel_reg = MetricsRegistry()
    with metrics_scope(parallel_reg):
        parallel = run_matrix(MAPPERS, KERNELS, cgra, jobs=2)
    assert [_row_sig(r) for r in serial] == [_row_sig(r) for r in parallel]
    assert _work_sig(serial_reg) == _work_sig(parallel_reg)


def test_explore_jobs2_equals_jobs1_with_metrics():
    space = [
        {"size": 4, "topology": t, "rf_size": rf, "mem_cells": "left"}
        for t in ("mesh", "one_hop")
        for rf in (2, 8)
    ]
    suite = ["dot_product", "fir4"]
    warm_pool(2)
    serial_reg = MetricsRegistry()
    with metrics_scope(serial_reg):
        serial = explore(space, suite)
    parallel_reg = MetricsRegistry()
    with metrics_scope(parallel_reg):
        parallel = explore(space, suite, jobs=2)
    assert serial == parallel
    assert _work_sig(serial_reg) == _work_sig(parallel_reg)


def test_run_matrix_dedups_identical_cells_under_cache(cgra, tmp_path):
    warm_pool(2)
    store = MappingCache(tmp_path / "cache")
    registry = MetricsRegistry()
    with metrics_scope(registry):
        rows = run_matrix(
            ["list_sched"], ["dot_product", "dot_product"], cgra,
            jobs=2, cache=store,
        )
    assert len(rows) == 2
    assert _row_sig(rows[0]) == _row_sig(rows[1])
    # one execution for the pair: the duplicate was an in-batch dedup
    # (one cache miss+store); the deduped copy books a synthetic hit,
    # mirroring the cache get a serial sweep's duplicate cell performs
    snap = registry.snapshot()
    assert snap[POOL_DEDUP_TOTAL]["value"] == 1
    assert store.stats.misses == 1
    assert store.stats.hits == 1
    # ...so hit/miss totals match a serial run of the same matrix
    serial_store = MappingCache(tmp_path / "serial_cache")
    run_matrix(
        ["list_sched"], ["dot_product", "dot_product"], cgra,
        cache=serial_store,
    )
    assert (serial_store.stats.hits, serial_store.stats.misses) == (
        store.stats.hits, store.stats.misses
    )


def test_run_matrix_no_dedup_without_cache(cgra):
    warm_pool(2)
    registry = MetricsRegistry()
    with metrics_scope(registry):
        rows = run_matrix(
            ["list_sched"], ["dot_product", "dot_product"], cgra, jobs=2
        )
    assert len(rows) == 2
    assert _row_sig(rows[0]) == _row_sig(rows[1])
    assert POOL_DEDUP_TOTAL not in registry.snapshot()
