"""CSP solver tests."""

import pytest

from repro.solvers.csp import CSP, CSPTimeout, CSPUnsat


def test_trivial_assignment():
    csp = CSP()
    csp.add_var("x", [1, 2, 3])
    sol = csp.solve()
    assert sol["x"] in (1, 2, 3)


def test_binary_constraint_respected():
    csp = CSP()
    csp.add_var("x", range(5))
    csp.add_var("y", range(5))
    csp.add_constraint(("x", "y"), lambda x, y: x + y == 7)
    sol = csp.solve()
    assert sol["x"] + sol["y"] == 7


def test_unsat_detected():
    csp = CSP()
    csp.add_var("x", [0, 1])
    csp.add_var("y", [0, 1])
    csp.add_constraint(("x", "y"), lambda x, y: x + y == 5)
    with pytest.raises(CSPUnsat):
        csp.solve()


def test_empty_domain_rejected_eagerly():
    csp = CSP()
    with pytest.raises(CSPUnsat):
        csp.add_var("x", [])


def test_duplicate_var_rejected():
    csp = CSP()
    csp.add_var("x", [1])
    with pytest.raises(ValueError):
        csp.add_var("x", [2])


def test_unknown_var_in_constraint():
    csp = CSP()
    csp.add_var("x", [1])
    with pytest.raises(KeyError):
        csp.add_constraint(("x", "nope"), lambda a, b: True)
    with pytest.raises(KeyError):
        csp.add_all_different(["x", "nope"])


def test_all_different():
    csp = CSP()
    for v in "abc":
        csp.add_var(v, [1, 2, 3])
    csp.add_all_different(["a", "b", "c"])
    sol = csp.solve()
    assert len({sol["a"], sol["b"], sol["c"]}) == 3


def test_all_different_unsat_when_domain_too_small():
    csp = CSP()
    for v in "abc":
        csp.add_var(v, [1, 2])
    csp.add_all_different(["a", "b", "c"])
    with pytest.raises(CSPUnsat):
        csp.solve()


@pytest.mark.parametrize("n", [4, 6, 8])
def test_n_queens(n):
    csp = CSP()
    for i in range(n):
        csp.add_var(f"q{i}", range(n))
    csp.add_all_different([f"q{i}" for i in range(n)])
    for i in range(n):
        for j in range(i + 1, n):
            csp.add_constraint(
                (f"q{i}", f"q{j}"),
                lambda a, b, d=j - i: abs(a - b) != d,
            )
    sol = csp.solve()
    cols = [sol[f"q{i}"] for i in range(n)]
    assert len(set(cols)) == n
    for i in range(n):
        for j in range(i + 1, n):
            assert abs(cols[i] - cols[j]) != j - i


def test_three_queens_unsat():
    n = 3
    csp = CSP()
    for i in range(n):
        csp.add_var(f"q{i}", range(n))
    csp.add_all_different([f"q{i}" for i in range(n)])
    for i in range(n):
        for j in range(i + 1, n):
            csp.add_constraint(
                (f"q{i}", f"q{j}"),
                lambda a, b, d=j - i: abs(a - b) != d,
            )
    with pytest.raises(CSPUnsat):
        csp.solve()


def test_ternary_constraint():
    csp = CSP()
    for v in "xyz":
        csp.add_var(v, range(4))
    csp.add_constraint(("x", "y", "z"), lambda x, y, z: x + y + z == 9)
    sol = csp.solve()
    assert sol["x"] + sol["y"] + sol["z"] == 9


def test_ac3_prunes_before_search():
    csp = CSP()
    csp.add_var("x", range(10))
    csp.add_var("y", [9])
    csp.add_constraint(("x", "y"), lambda x, y: x > y)
    with pytest.raises(CSPUnsat, match="AC-3"):
        csp.solve()


def test_node_limit():
    n = 8
    csp = CSP()
    for i in range(n):
        csp.add_var(f"v{i}", range(n))
    # Impossible global constraint that only fails when all assigned.
    csp.add_constraint(
        tuple(f"v{i}" for i in range(n)),
        lambda *vals: sum(vals) == -1,
    )
    with pytest.raises((CSPTimeout, CSPUnsat)):
        csp.solve(node_limit=50)


def test_graph_coloring():
    # Petersen-ish: a 5-cycle needs 3 colours.
    csp = CSP()
    for i in range(5):
        csp.add_var(f"n{i}", range(3))
    for i in range(5):
        csp.add_constraint(
            (f"n{i}", f"n{(i + 1) % 5}"), lambda a, b: a != b
        )
    sol = csp.solve()
    for i in range(5):
        assert sol[f"n{i}"] != sol[f"n{(i + 1) % 5}"]


def test_value_hints_prefer_hinted_solution():
    csp = CSP()
    for v in "abc":
        csp.add_var(v, range(6))
    csp.add_constraint(("a", "b"), lambda a, b: a < b)
    csp.add_constraint(("b", "c"), lambda b, c: b < c)
    hinted = csp.solve(value_hints={"a": 2, "b": 3, "c": 4})
    assert hinted == {"a": 2, "b": 3, "c": 4}


def test_value_hints_do_not_break_completeness():
    """A hint pointing at an infeasible value only reorders the search."""
    csp = CSP()
    csp.add_var("x", range(3))
    csp.add_var("y", range(3))
    csp.add_constraint(("x", "y"), lambda x, y: x + y == 4)
    sol = csp.solve(value_hints={"x": 0, "y": 0})  # 0+0 != 4
    assert sol["x"] + sol["y"] == 4
