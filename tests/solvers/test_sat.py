"""SAT solver tests: unit cases, pigeonhole, random 3-SAT vs brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.sat import CNF, SatSolver


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([False, True], repeat=n_vars):
        ok = True
        for cl in clauses:
            if not any(
                bits[abs(l) - 1] == (l > 0) for l in cl
            ):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in cl) for cl in clauses)


def test_single_unit_clause():
    cnf = CNF()
    a = cnf.new_var("a")
    cnf.add(a)
    res = SatSolver(cnf).solve()
    assert res.sat and res.assignment[a] is True


def test_contradictory_units():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add(a)
    cnf.add(-a)
    assert not SatSolver(cnf).solve().sat


def test_implication_chain_propagates():
    cnf = CNF()
    vs = [cnf.new_var() for _ in range(6)]
    cnf.add(vs[0])
    for i in range(5):
        cnf.implies(vs[i], vs[i + 1])
    res = SatSolver(cnf).solve()
    assert res.sat
    assert all(res.assignment[v] for v in vs)


def test_simple_unsat_triangle():
    cnf = CNF()
    a, b, c = (cnf.new_var() for _ in range(3))
    cnf.add(a, b)
    cnf.add(a, -b)
    cnf.add(-a, c)
    cnf.add(-a, -c)
    assert not SatSolver(cnf).solve().sat


@pytest.mark.parametrize("holes", [1, 2, 3])
def test_pigeonhole_unsat(holes):
    """holes+1 pigeons into `holes` holes is UNSAT."""
    pigeons = holes + 1
    cnf = CNF()
    var = {
        (p, h): cnf.new_var() for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add(*[var[p, h] for h in range(holes)])
    for h in range(holes):
        cnf.at_most_one([var[p, h] for p in range(pigeons)])
    assert not SatSolver(cnf).solve().sat


def test_pigeonhole_equal_sat():
    cnf = CNF()
    n = 3
    var = {(p, h): cnf.new_var() for p in range(n) for h in range(n)}
    for p in range(n):
        cnf.exactly_one([var[p, h] for h in range(n)])
    for h in range(n):
        cnf.at_most_one([var[p, h] for p in range(n)])
    res = SatSolver(cnf).solve()
    assert res.sat
    assert check_model(cnf.clauses, res.assignment)


def test_exactly_one_helper():
    cnf = CNF()
    vs = [cnf.new_var() for _ in range(4)]
    cnf.exactly_one(vs)
    res = SatSolver(cnf).solve()
    assert res.sat
    assert sum(res.assignment[v] for v in vs) == 1


def test_implies_any_helper():
    cnf = CNF()
    a, b, c = (cnf.new_var() for _ in range(3))
    cnf.add(a)
    cnf.implies_any(a, [b, c])
    cnf.add(-b)
    res = SatSolver(cnf).solve()
    assert res.sat and res.assignment[c]


def test_named_variables():
    cnf = CNF()
    cnf.new_var("x")
    assert cnf.var("x") == 1
    with pytest.raises(ValueError, match="duplicate"):
        cnf.new_var("x")


def test_literal_validation():
    cnf = CNF()
    cnf.new_var()
    with pytest.raises(ValueError):
        cnf.add(0)
    with pytest.raises(ValueError):
        cnf.add(5)
    with pytest.raises(ValueError, match="empty"):
        cnf.add()


def test_graph_coloring_3cycle_2colors_unsat():
    cnf = CNF()
    col = {(v, c): cnf.new_var() for v in range(3) for c in range(2)}
    for v in range(3):
        cnf.exactly_one([col[v, c] for c in range(2)])
    for u, v in [(0, 1), (1, 2), (2, 0)]:
        for c in range(2):
            cnf.add(-col[u, c], -col[v, c])
    assert not SatSolver(cnf).solve().sat


@given(seed=st.integers(0, 2000))
@settings(max_examples=60, deadline=None)
def test_random_3sat_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 9)
    m = rng.randint(3, int(4.5 * n))
    cnf = CNF()
    for _ in range(n):
        cnf.new_var()
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), min(3, n))
        cl = [v if rng.random() < 0.5 else -v for v in vs]
        clauses.append(cl)
        cnf.add(*cl)
    res = SatSolver(cnf).solve()
    expected = brute_force_sat(n, clauses)
    assert res.sat == expected
    if res.sat:
        assert check_model(clauses, res.assignment)


# -- incremental solving / assumptions --------------------------------------
def test_assumptions_flip_between_solves():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add(a, b)
    solver = SatSolver(cnf)
    res = solver.solve(assumptions=[-a])
    assert res.sat and res.assignment[b]
    res = solver.solve(assumptions=[-b])
    assert res.sat and res.assignment[a]
    res = solver.solve(assumptions=[-a, -b])
    assert not res.sat
    # An assumption failure is not permanent: the instance stays usable.
    assert solver.solve().sat


def test_incremental_clauses_between_solves():
    cnf = CNF()
    vs = [cnf.new_var() for _ in range(3)]
    cnf.exactly_one(vs)
    solver = SatSolver(cnf)
    models = []
    while True:
        res = solver.solve()
        if not res.sat:
            break
        chosen = next(v for v in vs if res.assignment[v])
        models.append(chosen)
        cnf.add(-chosen)  # block and re-solve on the same instance
    assert sorted(models) == vs  # enumerated every model exactly once


def test_assumption_selector_retirement():
    """The sat_mapper pattern: guarded groups retired by unit clauses."""
    cnf = CNF()
    x = cnf.new_var()
    s1 = cnf.new_var()
    cnf.add(-s1, x)  # under s1: x must hold
    solver = SatSolver(cnf)
    assert solver.solve(assumptions=[s1]).assignment[x]
    cnf.add(-s1)  # retire s1
    s2 = cnf.new_var()
    cnf.add(-s2, -x)  # under s2: x must not hold
    res = solver.solve(assumptions=[s2])
    assert res.sat and not res.assignment[x]


def test_conflict_limit_sets_limit_reached():
    holes = 8
    pigeons = holes + 1
    cnf = CNF()
    var = {
        (p, h): cnf.new_var() for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add(*[var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add(-var[p1, h], -var[p2, h])
    res = SatSolver(cnf).solve(conflict_limit=5)
    assert not res.sat and res.limit_reached
    from repro.solvers.sat import DPLLSolver

    res = DPLLSolver(cnf).solve(conflict_limit=5)
    assert not res.sat and res.limit_reached


def test_genuine_unsat_leaves_limit_flag_clear():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add(a)
    cnf.add(-a)
    res = SatSolver(cnf).solve(conflict_limit=10_000)
    assert not res.sat and not res.limit_reached


# -- ladder (sequential) at-most-one ----------------------------------------
def test_ladder_amo_large_group_semantics():
    from repro.solvers.sat import AMO_PAIRWISE_MAX

    n = AMO_PAIRWISE_MAX + 6
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    cnf.at_most_one(lits)
    assert cnf.n_vars > n  # ladder introduced auxiliary variables
    solver = SatSolver(cnf)
    # Any single literal can be on...
    for x in (lits[0], lits[n // 2], lits[-1]):
        res = solver.solve(assumptions=[x])
        assert res.sat
        assert sum(res.assignment[v] for v in lits) == 1
    # ...but no pair can.
    assert not solver.solve(assumptions=[lits[2], lits[11]]).sat


def test_ladder_amo_guard_disables_constraint():
    from repro.solvers.sat import AMO_PAIRWISE_MAX

    n = AMO_PAIRWISE_MAX + 4
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    g = cnf.new_var()
    cnf.at_most_one(lits, guard=g)
    solver = SatSolver(cnf)
    # Guard off: two literals may hold simultaneously.
    assert solver.solve(assumptions=[-g, lits[0], lits[1]]).sat
    # Guard on: the constraint bites.
    assert not solver.solve(assumptions=[g, lits[0], lits[1]]).sat
