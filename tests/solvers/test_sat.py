"""SAT solver tests: unit cases, pigeonhole, random 3-SAT vs brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.sat import CNF, SatSolver


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([False, True], repeat=n_vars):
        ok = True
        for cl in clauses:
            if not any(
                bits[abs(l) - 1] == (l > 0) for l in cl
            ):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in cl) for cl in clauses)


def test_single_unit_clause():
    cnf = CNF()
    a = cnf.new_var("a")
    cnf.add(a)
    res = SatSolver(cnf).solve()
    assert res.sat and res.assignment[a] is True


def test_contradictory_units():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add(a)
    cnf.add(-a)
    assert not SatSolver(cnf).solve().sat


def test_implication_chain_propagates():
    cnf = CNF()
    vs = [cnf.new_var() for _ in range(6)]
    cnf.add(vs[0])
    for i in range(5):
        cnf.implies(vs[i], vs[i + 1])
    res = SatSolver(cnf).solve()
    assert res.sat
    assert all(res.assignment[v] for v in vs)


def test_simple_unsat_triangle():
    cnf = CNF()
    a, b, c = (cnf.new_var() for _ in range(3))
    cnf.add(a, b)
    cnf.add(a, -b)
    cnf.add(-a, c)
    cnf.add(-a, -c)
    assert not SatSolver(cnf).solve().sat


@pytest.mark.parametrize("holes", [1, 2, 3])
def test_pigeonhole_unsat(holes):
    """holes+1 pigeons into `holes` holes is UNSAT."""
    pigeons = holes + 1
    cnf = CNF()
    var = {
        (p, h): cnf.new_var() for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add(*[var[p, h] for h in range(holes)])
    for h in range(holes):
        cnf.at_most_one([var[p, h] for p in range(pigeons)])
    assert not SatSolver(cnf).solve().sat


def test_pigeonhole_equal_sat():
    cnf = CNF()
    n = 3
    var = {(p, h): cnf.new_var() for p in range(n) for h in range(n)}
    for p in range(n):
        cnf.exactly_one([var[p, h] for h in range(n)])
    for h in range(n):
        cnf.at_most_one([var[p, h] for p in range(n)])
    res = SatSolver(cnf).solve()
    assert res.sat
    assert check_model(cnf.clauses, res.assignment)


def test_exactly_one_helper():
    cnf = CNF()
    vs = [cnf.new_var() for _ in range(4)]
    cnf.exactly_one(vs)
    res = SatSolver(cnf).solve()
    assert res.sat
    assert sum(res.assignment[v] for v in vs) == 1


def test_implies_any_helper():
    cnf = CNF()
    a, b, c = (cnf.new_var() for _ in range(3))
    cnf.add(a)
    cnf.implies_any(a, [b, c])
    cnf.add(-b)
    res = SatSolver(cnf).solve()
    assert res.sat and res.assignment[c]


def test_named_variables():
    cnf = CNF()
    cnf.new_var("x")
    assert cnf.var("x") == 1
    with pytest.raises(ValueError, match="duplicate"):
        cnf.new_var("x")


def test_literal_validation():
    cnf = CNF()
    cnf.new_var()
    with pytest.raises(ValueError):
        cnf.add(0)
    with pytest.raises(ValueError):
        cnf.add(5)
    with pytest.raises(ValueError, match="empty"):
        cnf.add()


def test_graph_coloring_3cycle_2colors_unsat():
    cnf = CNF()
    col = {(v, c): cnf.new_var() for v in range(3) for c in range(2)}
    for v in range(3):
        cnf.exactly_one([col[v, c] for c in range(2)])
    for u, v in [(0, 1), (1, 2), (2, 0)]:
        for c in range(2):
            cnf.add(-col[u, c], -col[v, c])
    assert not SatSolver(cnf).solve().sat


@given(seed=st.integers(0, 2000))
@settings(max_examples=60, deadline=None)
def test_random_3sat_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 9)
    m = rng.randint(3, int(4.5 * n))
    cnf = CNF()
    for _ in range(n):
        cnf.new_var()
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), min(3, n))
        cl = [v if rng.random() < 0.5 else -v for v in vs]
        clauses.append(cl)
        cnf.add(*cl)
    res = SatSolver(cnf).solve()
    expected = brute_force_sat(n, clauses)
    assert res.sat == expected
    if res.sat:
        assert check_model(clauses, res.assignment)
