"""ILP solver tests, cross-checked against scipy.optimize.milp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.ilp import ILP, ILPStatus


def test_simple_binary_choice():
    ilp = ILP()
    x = [ilp.add_var() for _ in range(3)]
    ilp.add_constraint({x[0]: 1, x[1]: 1, x[2]: 1}, "==", 1)
    ilp.set_objective({x[0]: 3.0, x[1]: 1.0, x[2]: 2.0})
    res = ilp.solve()
    assert res.status is ILPStatus.OPTIMAL
    assert res.objective == pytest.approx(1.0)
    assert res.x[x[1]] == pytest.approx(1.0)


def test_knapsack():
    # values 6,10,12 weights 1,2,3 cap 5 -> take items 1,2 => 22.
    ilp = ILP()
    x = [ilp.add_var() for _ in range(3)]
    ilp.add_constraint({x[0]: 1, x[1]: 2, x[2]: 3}, "<=", 5)
    ilp.set_objective({x[0]: -6.0, x[1]: -10.0, x[2]: -12.0})
    res = ilp.solve()
    assert res.status is ILPStatus.OPTIMAL
    assert res.objective == pytest.approx(-22.0)


def test_assignment_problem_is_lp_integral_anyway():
    # 3x3 assignment, costs force the anti-diagonal.
    cost = [[9, 9, 1], [9, 1, 9], [1, 9, 9]]
    ilp = ILP()
    x = {(i, j): ilp.add_var() for i in range(3) for j in range(3)}
    for i in range(3):
        ilp.add_constraint({x[i, j]: 1 for j in range(3)}, "==", 1)
    for j in range(3):
        ilp.add_constraint({x[i, j]: 1 for i in range(3)}, "==", 1)
    ilp.set_objective({x[i, j]: cost[i][j] for i in range(3) for j in range(3)})
    res = ilp.solve()
    assert res.objective == pytest.approx(3.0)


def test_infeasible():
    ilp = ILP()
    a = ilp.add_var()
    ilp.add_constraint({a: 1}, ">=", 2)  # binary var can't reach 2
    res = ilp.solve()
    assert res.status is ILPStatus.INFEASIBLE
    assert not res.ok


def test_feasibility_problem_no_objective():
    ilp = ILP()
    a = ilp.add_var()
    b = ilp.add_var()
    ilp.add_constraint({a: 1, b: 1}, "==", 1)
    res = ilp.solve()
    assert res.ok
    assert res.x[a] + res.x[b] == pytest.approx(1.0)


def test_general_integer_variables():
    # max x + y s.t. 2x + 3y <= 12, x,y integer in [0, 5].
    ilp = ILP()
    x = ilp.add_var(ub=5)
    y = ilp.add_var(ub=5)
    ilp.add_constraint({x: 2, y: 3}, "<=", 12)
    ilp.set_objective({x: -1.0, y: -1.0})
    res = ilp.solve()
    # Best integer points all reach x + y = 5 (e.g. x=5,y=0 or x=3,y=2).
    assert res.objective == pytest.approx(-5.0)
    xv, yv = res.x[x], res.x[y]
    assert xv == round(xv) and yv == round(yv)
    assert 2 * xv + 3 * yv <= 12 + 1e-6


def test_bad_constraint_sense():
    ilp = ILP()
    a = ilp.add_var()
    with pytest.raises(ValueError, match="sense"):
        ilp.add_constraint({a: 1}, "<", 1)
    with pytest.raises(ValueError, match="empty"):
        ilp.add_constraint({}, "<=", 1)


def test_node_limit_reported():
    ilp = ILP()
    xs = [ilp.add_var() for _ in range(12)]
    ilp.add_constraint({v: w for v, w in zip(xs, [3, 5, 7, 9, 11, 13, 17, 19, 23, 29, 31, 37])}, "<=", 60)
    ilp.set_objective({v: -w for v, w in zip(xs, [3.1, 5.2, 7.3, 9.1, 11.5, 13.9, 17.2, 19.8, 23.1, 29.7, 31.3, 37.9])})
    res = ilp.solve(node_limit=2)
    assert res.status in (ILPStatus.NODE_LIMIT, ILPStatus.OPTIMAL)


@given(st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_random_knapsack_matches_scipy_milp(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    w = rng.integers(1, 10, n)
    v = rng.integers(1, 20, n).astype(float)
    cap = int(rng.integers(5, 25))

    ilp = ILP()
    xs = [ilp.add_var() for _ in range(n)]
    ilp.add_constraint({xs[i]: float(w[i]) for i in range(n)}, "<=", cap)
    ilp.set_objective({xs[i]: -v[i] for i in range(n)})
    ours = ilp.solve()

    from scipy.optimize import LinearConstraint, milp

    ref = milp(
        c=-v,
        constraints=[LinearConstraint(w.reshape(1, -1), ub=[cap])],
        integrality=np.ones(n),
        bounds=__import__("scipy.optimize", fromlist=["Bounds"]).Bounds(0, 1),
    )
    assert ours.status is ILPStatus.OPTIMAL
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)


def test_warm_start_feasible_becomes_incumbent():
    """A valid MIP start on a feasibility model ends the search at once."""
    n = 10
    ilp = ILP()
    xs = [ilp.add_var() for _ in range(n)]
    for i in range(0, n, 2):
        ilp.add_constraint({xs[i]: 1.0, xs[i + 1]: 1.0}, "==", 1.0)
    start = {xs[i]: float(i % 2 == 0) for i in range(n)}
    res = ilp.solve(warm_start=start)
    assert res.status is ILPStatus.OPTIMAL
    assert all(res.x[xs[i]] + res.x[xs[i + 1]] == 1.0 for i in range(0, n, 2))


def test_warm_start_infeasible_is_ignored():
    ilp = ILP()
    a, b = ilp.add_var(), ilp.add_var()
    ilp.add_constraint({a: 1.0, b: 1.0}, "==", 1.0)
    res = ilp.solve(warm_start={a: 1.0, b: 1.0})  # violates the equality
    assert res.ok
    assert res.x[a] + res.x[b] == 1.0


def test_warm_start_never_worse_than_optimal():
    """A suboptimal start must still yield the true optimum."""
    ilp = ILP()
    xs = [ilp.add_var() for _ in range(3)]
    ilp.add_constraint({x: 1.0 for x in xs}, "==", 1.0)
    ilp.set_objective({xs[0]: 3.0, xs[1]: 1.0, xs[2]: 2.0})
    res = ilp.solve(warm_start={xs[0]: 1.0, xs[1]: 0.0, xs[2]: 0.0})
    assert res.status is ILPStatus.OPTIMAL
    assert res.objective == pytest.approx(1.0)
    assert res.x[xs[1]] == 1.0
