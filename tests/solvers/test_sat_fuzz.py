"""Randomized CDCL-vs-DPLL equivalence fuzzing.

The tentpole guarantee of the CDCL upgrade: behind the same
:class:`SatResult` interface, the learning solver and the retained
DPLL reference agree on sat/unsat for every formula, and every model
either returns satisfies every clause.  ~200 seeded random CNFs keep
the check deterministic and fast.
"""

import random

import pytest

from repro.solvers.sat import CNF, DPLLSolver, SatSolver


def _random_cnf(seed: int) -> tuple[CNF, list[list[int]]]:
    rng = random.Random(seed)
    n = rng.randint(3, 14)
    m = rng.randint(2, int(4.4 * n))
    cnf = CNF()
    for _ in range(n):
        cnf.new_var()
    clauses = []
    for _ in range(m):
        width = rng.choice((1, 2, 2, 3, 3, 3))
        vs = rng.sample(range(1, n + 1), min(width, n))
        cl = [v if rng.random() < 0.5 else -v for v in vs]
        clauses.append(cl)
        cnf.add(*cl)
    return cnf, clauses


def _satisfies(clauses, model) -> bool:
    return all(
        any(model[abs(l)] == (l > 0) for l in cl) for cl in clauses
    )


@pytest.mark.parametrize("seed", range(200))
def test_cdcl_and_dpll_agree(seed):
    cnf, clauses = _random_cnf(seed)
    cdcl = SatSolver(cnf).solve()
    dpll = DPLLSolver(cnf).solve()
    assert cdcl.sat == dpll.sat, f"seed {seed}: cdcl={cdcl.sat} dpll={dpll.sat}"
    if cdcl.sat:
        assert _satisfies(clauses, cdcl.assignment), f"seed {seed}: bad model"
        assert _satisfies(clauses, dpll.assignment), f"seed {seed}: bad model"


@pytest.mark.parametrize("seed", range(60))
def test_assumptions_match_unit_clauses(seed):
    """solve(assumptions=A) == solving a copy with A as unit clauses."""
    cnf, clauses = _random_cnf(seed * 7919 + 13)
    rng = random.Random(seed)
    n = cnf.n_vars
    assumed = [
        v if rng.random() < 0.5 else -v
        for v in rng.sample(range(1, n + 1), rng.randint(1, min(3, n)))
    ]
    under = SatSolver(cnf).solve(assumptions=assumed)

    hard = CNF()
    for _ in range(n):
        hard.new_var()
    for cl in clauses:
        hard.add(*cl)
    for lit in assumed:
        hard.add(lit)
    expected = SatSolver(hard).solve()

    assert under.sat == expected.sat, f"seed {seed}: assumptions diverge"
    if under.sat:
        assert _satisfies(clauses, under.assignment)
        for lit in assumed:
            assert under.assignment[abs(lit)] == (lit > 0)


@pytest.mark.parametrize("seed", range(40))
def test_incremental_blocking_enumeration_is_exhaustive(seed):
    """Reusing one instance across blocking clauses loses no models."""
    rng = random.Random(seed)
    n = rng.randint(3, 6)
    cnf, clauses = _random_cnf(seed * 31 + 5)
    if cnf.n_vars > 8:
        pytest.skip("enumeration kept small")
    solver = SatSolver(cnf)
    seen = set()
    while True:
        res = solver.solve()
        if not res.sat:
            break
        model = tuple(
            v if res.assignment[v] else -v
            for v in range(1, cnf.n_vars + 1)
        )
        assert model not in seen, f"seed {seed}: duplicate model"
        seen.add(model)
        cnf.add(*(-lit for lit in model))
    # Brute force count must match.
    import itertools

    count = 0
    for bits in itertools.product([False, True], repeat=cnf.n_vars):
        model = {v: bits[v - 1] for v in range(1, cnf.n_vars + 1)}
        if _satisfies(clauses, model):
            count += 1
    assert len(seen) == count, f"seed {seed}: {len(seen)} != {count}"
