"""Direct CDFG mapping.

Das et al. [60] map the control-flow graph onto the CGRA *as is*: each
basic block gets its own region of the context memory, and at run time
the fabric switches to the context block of whichever basic block the
branch selects.  No arm is wasted on untaken work — the win over
predication for large, unbalanced arms — at the price of context
memory and a branch-switch penalty per block transition.

:func:`map_direct` maps every block independently (any registered
temporal mapper) and returns a :class:`DirectCDFGMapping` whose
expected iteration latency is a weighted path sum over branch
probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cgra import CGRA
from repro.core.mapping import Mapping
from repro.core.registry import create
from repro.ir.cdfg import CDFG

__all__ = ["DirectCDFGMapping", "map_direct"]

#: Cycles charged for redirecting the context sequencer at a branch.
BRANCH_SWITCH_PENALTY = 1


@dataclass
class DirectCDFGMapping:
    """Per-block mappings plus whole-CDFG statistics."""

    cdfg: CDFG
    blocks: dict[int, Mapping]
    switch_penalty: int = BRANCH_SWITCH_PENALTY

    @property
    def total_contexts(self) -> int:
        """Context-memory footprint: blocks occupy disjoint regions."""
        return sum(m.schedule_length for m in self.blocks.values())

    def path_cycles(self, taken: bool) -> int:
        """Cycles for one traversal taking the given branch direction."""
        cdfg = self.cdfg
        cycles = 0
        bid = cdfg.entry
        while True:
            cycles += self.blocks[bid].schedule_length
            succ = cdfg.successors(bid)
            if not succ:
                return cycles
            cycles += self.switch_penalty
            if len(succ) == 1:
                bid = succ[0][0]
            else:
                labelled = dict((lab, b) for b, lab in succ)
                bid = labelled[taken]

    def expected_cycles(self, p_taken: float = 0.5) -> float:
        """Expected cycles per traversal given the branch probability."""
        return p_taken * self.path_cycles(True) + (
            1.0 - p_taken
        ) * self.path_cycles(False)

    def validate(self) -> list[str]:
        out: list[str] = []
        for bid, m in self.blocks.items():
            out.extend(
                f"bb{bid}: {v}"
                for v in m.validate(raise_on_error=False)
            )
        return out


def map_direct(
    cdfg: CDFG, cgra: CGRA, mapper: str = "list_sched", **opts
) -> DirectCDFGMapping:
    """Map every basic block separately (non-pipelined schedules).

    Each block is mapped with ``ii = schedule length`` semantics: the
    block's mapper is asked for a plain temporal mapping (the II search
    still runs, but blocks execute once per traversal, so the II is
    only a packing constraint, not a throughput one).
    """
    cdfg.check()
    blocks: dict[int, Mapping] = {}
    total = 0
    for blk in cdfg.blocks():
        if blk.body.op_count() == 0:
            # Empty blocks (bare joins) cost nothing.
            m = Mapping(blk.body, cgra, kind="modulo", ii=1)
            m.mapper = mapper
            blocks[blk.bid] = m
            continue
        m = create(mapper, **opts).map(blk.body, cgra)
        blocks[blk.bid] = m
        total += m.schedule_length
    if total > cgra.n_contexts:
        raise ValueError(
            f"direct CDFG mapping needs {total} contexts;"
            f" {cgra.name} has {cgra.n_contexts}"
        )
    return DirectCDFGMapping(cdfg, blocks)
