"""If-conversion: partial and full predication.

Both transforms take a *diamond* CDFG (branch, two arms, join) and
produce one straight-line DFG a temporal mapper can consume.  They
differ exactly where the literature says they do:

* **partial predication** (Chang & Choi [57]): every arm operation
  executes unconditionally; names defined differently across arms are
  merged by ``SELECT`` at the join.  A STORE cannot execute
  unconditionally, so it is rewritten ``load old -> select -> store``
  — the extra memory traffic is partial predication's documented cost;
* **full predication** (Anido et al. [56]): arm operations carry a
  predicate operand and commit conditionally — STOREs stay single
  operations, but the predicate value must be *routed to every
  predicated op*, which the mapper pays for in fabric resources.

Name flow between blocks follows the CDFG convention: blocks export
values as ``OUTPUT`` nodes and import them as same-named ``INPUT``
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cdfg import CDFG
from repro.ir.dfg import DFG, Op

__all__ = ["partial_predication", "full_predication", "diamond_parts"]


@dataclass
class _CopyResult:
    mapping: dict[int, int]       #: old node id -> new node id
    defs: dict[str, int]          #: exported name -> producing new id
    new_ops: list[int]            #: copied non-pseudo op ids


def _copy_block(
    out: DFG,
    body: DFG,
    bound_names: dict[str, int],
    ext_inputs: dict[str, int],
    *,
    keep_outputs: bool = False,
) -> _CopyResult:
    """Copy ``body`` into ``out``, wiring INPUTs to earlier definitions.

    INPUT nodes named in ``bound_names`` become edges from those
    values; other INPUTs become (deduplicated) external live-ins.
    OUTPUT nodes are recorded as definitions and dropped unless
    ``keep_outputs``.
    """
    mapping: dict[int, int] = {}
    defs: dict[str, int] = {}
    new_ops: list[int] = []
    for nid in body.topo_order():
        node = body.node(nid)
        if node.op is Op.INPUT:
            name = node.name or f"in{nid}"
            if name in bound_names:
                mapping[nid] = bound_names[name]
            elif name in ext_inputs:
                mapping[nid] = ext_inputs[name]
            else:
                new = out.input(name)
                ext_inputs[name] = new
                mapping[nid] = new
            continue
        if node.op is Op.OUTPUT:
            src = body.operand(nid, 0).src
            defs[node.name or f"out{nid}"] = mapping[src]
            if keep_outputs:
                mapping[nid] = out.output(mapping[src], node.name)
            continue
        new = out.add(
            node.op,
            name=node.name,
            value=node.value,
            array=node.array,
        )
        mapping[nid] = new
        for e in sorted(body.in_edges(nid), key=lambda e: e.port):
            out.connect(mapping[e.src], new, port=e.port, dist=e.dist)
        if not node.op.is_pseudo:
            new_ops.append(new)
    return _CopyResult(mapping, defs, new_ops)


def diamond_parts(cdfg: CDFG):
    """(entry, then, else, join) blocks of a diamond CDFG."""
    if not cdfg.is_diamond():
        raise ValueError(f"CDFG {cdfg.name!r} is not an if-then-else diamond")
    entry = cdfg.block(cdfg.entry)
    succ = dict(cdfg.successors(entry.bid))
    then_b = next(b for b, lab in cdfg.successors(entry.bid) if lab is True)
    else_b = next(b for b, lab in cdfg.successors(entry.bid) if lab is False)
    join_b = cdfg.successors(then_b)[0][0]
    return entry, cdfg.block(then_b), cdfg.block(else_b), cdfg.block(join_b)


def _if_convert(cdfg: CDFG, *, full: bool) -> DFG:
    entry, then_blk, else_blk, join_blk = diamond_parts(cdfg)
    out = DFG(f"{cdfg.name}_{'full' if full else 'partial'}pred")
    ext: dict[str, int] = {}

    entry_res = _copy_block(out, entry.body, {}, ext)
    cond = entry_res.defs[entry.cond]

    bound = dict(entry_res.defs)
    then_res = _copy_block(out, then_blk.body, bound, ext)
    else_res = _copy_block(out, else_blk.body, bound, ext)

    if full:
        for polarity, res in ((True, then_res), (False, else_res)):
            for nid in res.new_ops:
                node = out.node(nid)
                node.pred = polarity
                out.connect(cond, nid, port=node.op.arity)
    else:
        # Partial predication: make STOREs unconditional-safe by
        # rewriting them to load-select-store.
        for polarity, res in ((True, then_res), (False, else_res)):
            for nid in list(res.new_ops):
                node = out.node(nid)
                if node.op is not Op.STORE:
                    continue
                addr = out.operand(nid, 0).src
                val = out.operand(nid, 1).src
                old = out.add(Op.LOAD, addr, array=node.array)
                sel = (
                    out.add(Op.SELECT, cond, val, old)
                    if polarity
                    else out.add(Op.SELECT, cond, old, val)
                )
                out.remove_edge(out.operand(nid, 1))
                out.connect(sel, nid, port=1)

    # Merge arm definitions at the join.
    join_bound = dict(entry_res.defs)
    all_names = set(then_res.defs) | set(else_res.defs)
    for name in sorted(all_names):
        t = then_res.defs.get(name)
        f = else_res.defs.get(name)
        if t is not None and f is not None:
            join_bound[name] = (
                t if t == f else out.add(
                    Op.SELECT, cond, t, f, name=name
                )
            )
        elif t is not None:
            base = entry_res.defs.get(name)
            join_bound[name] = (
                out.add(Op.SELECT, cond, t, base, name=name)
                if base is not None
                else t
            )
        else:
            base = entry_res.defs.get(name)
            join_bound[name] = (
                out.add(Op.SELECT, cond, base, f, name=name)
                if base is not None
                else f
            )

    _copy_block(out, join_blk.body, join_bound, ext, keep_outputs=True)
    out.check()
    return out


def partial_predication(cdfg: CDFG) -> DFG:
    """If-convert a diamond with SELECT merges (partial predication)."""
    return _if_convert(cdfg, full=False)


def full_predication(cdfg: CDFG) -> DFG:
    """If-convert a diamond with predicated arm ops (full predication)."""
    return _if_convert(cdfg, full=True)
