"""Control-flow mapping (§III-B).

"A solution adopted in many cases is to let the control flow managed
by a host processor" — or give the fabric support.  This package
implements the four ITE methods the survey enumerates and the
hardware-loop model:

* :func:`~repro.controlflow.predication.partial_predication` [57] —
  both arms execute; live-outs merged by SELECT; stores rewritten to
  load-select-store;
* :func:`~repro.controlflow.predication.full_predication` [56] — arm
  ops carry a predicate operand (its routing is a real mapped cost);
  stores execute conditionally, no extra loads;
* :func:`~repro.controlflow.dual_issue.dual_issue` [55], [58], [59] —
  opposite-arm op pairs share issue slots (resource model);
* :class:`~repro.controlflow.direct_cdfg.DirectCDFGMapping` [60] —
  per-block mappings with branch-directed context switching;
* :mod:`~repro.controlflow.hwloops` [62]–[64] — loop-control overhead
  with and without hardware loop support.

:func:`flatten_cdfg` is the front door used by the compilation flow:
single-block CDFGs pass through, diamonds are if-converted (partial
predication by default).
"""

from repro.controlflow.predication import (
    full_predication,
    partial_predication,
)
from repro.controlflow.dual_issue import dual_issue
from repro.controlflow.direct_cdfg import DirectCDFGMapping, map_direct
from repro.controlflow.hwloops import loop_execution_cycles
from repro.ir.cdfg import CDFG
from repro.ir.dfg import DFG

__all__ = [
    "DirectCDFGMapping",
    "dual_issue",
    "flatten_cdfg",
    "full_predication",
    "loop_execution_cycles",
    "map_direct",
    "partial_predication",
]


def flatten_cdfg(cdfg: CDFG) -> DFG:
    """Collapse a CDFG into one DFG (if-conversion where needed)."""
    cdfg.check()
    if len(cdfg) == 1:
        blk = cdfg.block(cdfg.entry)
        return blk.body.copy(name=cdfg.name)
    if cdfg.is_diamond():
        return partial_predication(cdfg)
    raise ValueError(
        f"CDFG {cdfg.name!r} is neither straight-line nor a diamond;"
        " general control flow needs a host processor or direct CDFG"
        " mapping (repro.controlflow.map_direct)"
    )
