"""Dual-issue single execution (DISE).

Yuan et al. [55] and Hamzeh et al.'s branch-aware mapping [58] load
*two* configurations into a cell and let the predicate pick which one
issues — so an op from the then-arm and an op from the else-arm can
share one ``(cell, cycle)`` slot, because at run time only one of them
executes.  The arms' resource demands overlap instead of adding up:
that is the entire benefit, and it is a *mapping-level* property.

This module produces the if-converted DFG plus the set of co-
executable pairs (opposite-arm ops matched by scheduling level), and a
mapper wrapper that exploits them: when placing an op whose partner is
already placed, its partner's slot is offered first and the FU
exclusivity check is waived for the pair.  The validator honours the
same waiver through ``Mapping.coexec``.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.mapping import Mapping
from repro.core.problem import MappingProblem
from repro.ir.cdfg import CDFG
from repro.ir.dfg import DFG
from repro.mappers.construct import PlacementState, default_candidates
from repro.mappers.schedule import heights, priority_order
from repro.controlflow.predication import _copy_block, diamond_parts
from repro.ir.dfg import Op

__all__ = ["dual_issue", "map_dual_issue"]


def dual_issue(cdfg: CDFG) -> tuple[DFG, set[frozenset[int]]]:
    """If-convert a diamond and pair opposite-arm ops for dual issue.

    Returns ``(dfg, pairs)`` where each pair is a frozenset of two node
    ids allowed to share an FU slot.  Arm ops execute under partial-
    predication semantics (the untaken arm's results are discarded by
    the join SELECTs); pairing is by descending height within each
    arm, the order in which schedulers will want to issue them.
    """
    entry, then_blk, else_blk, join_blk = diamond_parts(cdfg)
    out = DFG(f"{cdfg.name}_dise")
    ext: dict[str, int] = {}
    entry_res = _copy_block(out, entry.body, {}, ext)
    cond = entry_res.defs[entry.cond]
    bound = dict(entry_res.defs)
    then_res = _copy_block(out, then_blk.body, bound, ext)
    else_res = _copy_block(out, else_blk.body, bound, ext)

    # STORE safety: like partial predication, an unpaired STORE cannot
    # execute unconditionally; rewrite both arms' stores.
    for polarity, res in ((True, then_res), (False, else_res)):
        for nid in list(res.new_ops):
            node = out.node(nid)
            if node.op is not Op.STORE:
                continue
            addr = out.operand(nid, 0).src
            val = out.operand(nid, 1).src
            old = out.add(Op.LOAD, addr, array=node.array)
            sel = (
                out.add(Op.SELECT, cond, val, old)
                if polarity
                else out.add(Op.SELECT, cond, old, val)
            )
            out.remove_edge(out.operand(nid, 1))
            out.connect(sel, nid, port=1)

    join_bound = dict(entry_res.defs)
    for name in sorted(set(then_res.defs) | set(else_res.defs)):
        t = then_res.defs.get(name)
        f = else_res.defs.get(name)
        if t is not None and f is not None and t != f:
            join_bound[name] = out.add(Op.SELECT, cond, t, f, name=name)
        else:
            join_bound[name] = t if t is not None else f
    _copy_block(out, join_blk.body, join_bound, ext, keep_outputs=True)
    out.check()

    h = heights(out)
    then_ops = sorted(then_res.new_ops, key=lambda n: -h[n])
    else_ops = sorted(else_res.new_ops, key=lambda n: -h[n])
    pairs = {
        frozenset((a, b)) for a, b in zip(then_ops, else_ops)
    }
    return out, pairs


def map_dual_issue(
    dfg: DFG,
    pairs: set[frozenset[int]],
    cgra: CGRA,
    ii: int | None = None,
) -> Mapping:
    """Constructive mapping that lets paired ops share FU slots."""
    partner: dict[int, int] = {}
    for p in pairs:
        a, b = tuple(p)
        partner[a] = b
        partner[b] = a

    class DISEState(PlacementState):
        def place(self, nid: int, cell: int, t: int) -> bool:
            mate = partner.get(nid)
            if mate is not None and self.occ.op_at(cell, t) == mate:
                # Share the partner's slot: place without the FU check.
                self.binding[nid] = cell
                self.schedule[nid] = t
                committed = []
                from repro.mappers.routing import (
                    commit_route,
                    release_route,
                )

                for e in self._routable_edges_of(nid):
                    req = self._edge_request(e)
                    steps = self.router.find(self.occ, req)
                    if steps is None:
                        for ce, creq, csteps in committed:
                            release_route(self.occ, self.cgra, creq, csteps)
                            del self.routes[ce]
                        del self.binding[nid], self.schedule[nid]
                        return False
                    commit_route(self.occ, self.cgra, req, steps)
                    self.routes[e] = steps
                    committed.append((e, req, steps))
                return True
            return super().place(nid, cell, t)

    def attempt(ii_try: int) -> Mapping | None:
        state = DISEState(dfg, cgra, ii_try)
        window = 2 * ii_try + 2
        for nid in priority_order(dfg, by="height"):
            lb, ub = state.time_bounds(nid, window)
            if lb > ub:
                return None
            placed = False
            mate = partner.get(nid)
            if mate is not None and mate in state.binding:
                mc, mt = state.binding[mate], state.schedule[mate]
                if lb <= mt <= ub and state.place(nid, mc, mt):
                    placed = True
            if not placed:
                for cell, t in default_candidates(state, nid, lb, ub):
                    if state.place(nid, cell, t):
                        placed = True
                        break
            if not placed:
                return None
        mapping = state.to_mapping("dual_issue")
        mapping.coexec = set(pairs)
        if mapping.validate(raise_on_error=False):
            return None
        return mapping

    prob = MappingProblem(dfg, cgra)
    lo = ii if ii is not None else prob.rec_mii
    hi = ii if ii is not None else min(
        cgra.n_contexts, 2 * prob.mii + dfg.op_count()
    )
    for ii_try in range(lo, hi + 1):
        mapping = attempt(ii_try)
        if mapping is not None:
            return mapping
    raise MapFailure("dual-issue mapping failed", mapper="dual_issue")
