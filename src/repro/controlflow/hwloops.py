"""Hardware loop support (§III-B2).

"Hardware loops consist of extra logic inside the CGRA to manage the
iterations of the loop in order to reduce the overhead of loop control
by the processor" [62]-[64].  The model here is the one those papers
measure against:

* **software loop control** — every iteration pays the host/fabric
  round trip: increment, compare, branch (``SW_LOOP_OVERHEAD`` cycles
  serialised with the loop body);
* **hardware loop** — a counter register in the fabric sequences the
  contexts; per-iteration overhead is zero, with a one-off setup cost.

:func:`loop_execution_cycles` turns a mapping plus a trip count into
total cycles under either regime — the quantity the hardware-loop
benchmark sweeps.
"""

from __future__ import annotations

from repro.core.mapping import Mapping

__all__ = [
    "HW_LOOP_SETUP",
    "SW_LOOP_OVERHEAD",
    "loop_execution_cycles",
    "loop_speedup",
]

#: Per-iteration cycles for software loop control (index update,
#: compare, branch back) when the host drives the loop.
SW_LOOP_OVERHEAD = 3

#: One-off cycles to configure the hardware loop counter.
HW_LOOP_SETUP = 2


def loop_execution_cycles(
    mapping: Mapping, trip_count: int, *, hw_loop: bool | None = None
) -> int:
    """Total cycles to run ``trip_count`` iterations of a mapped loop.

    A modulo mapping issues an iteration every II cycles; the pipeline
    drains for ``schedule_length - II`` extra cycles.  Software loop
    control adds its overhead per iteration (it serialises with the
    steady state because the next iteration cannot be issued before
    the branch resolves); a hardware loop adds only its setup.

    ``hw_loop`` defaults to the target architecture's capability.
    """
    if trip_count < 0:
        raise ValueError("trip count must be >= 0")
    if trip_count == 0:
        return 0
    if mapping.kind == "spatial":
        ii, drain = 1, 0
    else:
        ii = mapping.ii or mapping.schedule_length
        drain = max(0, mapping.schedule_length - ii)
    use_hw = mapping.cgra.hw_loop if hw_loop is None else hw_loop
    if use_hw:
        return HW_LOOP_SETUP + trip_count * ii + drain
    return trip_count * (ii + SW_LOOP_OVERHEAD) + drain


def loop_speedup(mapping: Mapping, trip_count: int) -> float:
    """Speedup of hardware loops over software loop control."""
    sw = loop_execution_cycles(mapping, trip_count, hw_loop=False)
    hw = loop_execution_cycles(mapping, trip_count, hw_loop=True)
    return sw / hw if hw else float("inf")
