"""Array-to-bank placement driven by the mapping's access schedule.

Given a modulo mapping, memory operations scheduled in the same cycle
(mod II) contend if their arrays land in the same bank.  The placement
problem is a colouring of the *conflict graph* — arrays as vertices,
same-slot co-access counts as weighted edges — with banks as colours:

* :func:`greedy_bank_assignment` — heaviest-edge-first greedy
  colouring (what the multi-bank papers deploy at scale);
* :func:`optimal_bank_assignment` — exhaustive optimum for small
  array counts, used to measure the greedy gap;
* :func:`stall_cycles` — the cost function both minimise.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.core.mapping import Mapping
from repro.memory.banks import BankedMemory

__all__ = [
    "access_conflict_graph",
    "greedy_bank_assignment",
    "optimal_bank_assignment",
    "stall_cycles",
    "slot_accesses",
]


def slot_accesses(mapping: Mapping) -> dict[int, list[str]]:
    """Arrays accessed per schedule slot (cycle mod II)."""
    ii = mapping.ii or max(1, mapping.schedule_length)
    out: dict[int, list[str]] = defaultdict(list)
    for node in mapping.dfg.nodes():
        if not node.op.is_memory or node.nid not in mapping.schedule:
            continue
        slot = mapping.schedule[node.nid] % ii
        out[slot].append(node.array or "?")
    return dict(out)


def access_conflict_graph(
    mapping: Mapping,
) -> dict[frozenset[str], int]:
    """Weighted co-access counts between array pairs (same slot)."""
    weights: dict[frozenset[str], int] = defaultdict(int)
    for arrays in slot_accesses(mapping).values():
        for a, b in itertools.combinations(sorted(arrays), 2):
            if a != b:
                weights[frozenset((a, b))] += 1
    return dict(weights)


def stall_cycles(
    mapping: Mapping, memory: BankedMemory
) -> int:
    """Stalls per kernel iteration under the given bank placement.

    Block-placed arrays (present in ``memory.placement``) serialise
    all their same-slot accesses on one bank.  Cyclic-interleaved
    arrays (absent from the placement) model the compiler-partitioned
    layout of the conflict-free mapping line ([68]): the distinct
    same-slot accesses of one array land on consecutive banks, so they
    stall only when there are more of them than banks.
    """
    total = 0
    for arrays in slot_accesses(mapping).values():
        per_array_seq: dict[str, int] = {}
        accesses = []
        for a in arrays:
            seq = per_array_seq.get(a, 0)
            per_array_seq[a] = seq + 1
            accesses.append((a, seq))
        total += memory.conflicts(accesses)
    return total


def _arrays_of(mapping: Mapping) -> list[str]:
    return sorted(
        {
            n.array or "?"
            for n in mapping.dfg.nodes()
            if n.op.is_memory
        }
    )


def greedy_bank_assignment(
    mapping: Mapping, n_banks: int
) -> BankedMemory:
    """Greedy conflict-graph colouring into ``n_banks`` banks.

    Arrays that conflict *with themselves* (several same-slot accesses)
    are left unplaced — i.e. cyclic-interleaved — because no whole-array
    bank choice can separate intra-array accesses; everything else is
    block-placed by heaviest-conflict-first colouring.
    """
    arrays = _arrays_of(mapping)
    self_conflicting = set()
    for arrs in slot_accesses(mapping).values():
        for a in arrs:
            if arrs.count(a) > 1:
                self_conflicting.add(a)
    arrays = [a for a in arrays if a not in self_conflicting]
    weights = access_conflict_graph(mapping)
    # Order arrays by total conflict weight, heaviest first.
    score = {a: 0 for a in arrays}
    for pair, w in weights.items():
        for a in pair:
            if a in score:  # cyclic arrays are out of the colouring
                score[a] += w
    placement: dict[str, int] = {}
    for a in sorted(arrays, key=lambda x: -score[x]):
        cost_per_bank = []
        for bank in range(n_banks):
            trial = BankedMemory(n_banks, {**placement, a: bank})
            cost_per_bank.append((stall_cycles(mapping, trial), bank))
        placement[a] = min(cost_per_bank)[1]
    return BankedMemory(n_banks, placement)


def optimal_bank_assignment(
    mapping: Mapping, n_banks: int, *, max_arrays: int = 8
) -> BankedMemory:
    """Exhaustive optimum (small array counts only)."""
    arrays = _arrays_of(mapping)
    if len(arrays) > max_arrays:
        raise ValueError(
            f"{len(arrays)} arrays exceed the exhaustive limit"
            f" ({max_arrays}); use greedy_bank_assignment"
        )
    best: tuple[int, BankedMemory] | None = None
    # Option n_banks means "leave the array cyclic-interleaved".
    for combo in itertools.product(
        range(n_banks + 1), repeat=len(arrays)
    ):
        placement = {
            a: b for a, b in zip(arrays, combo) if b < n_banks
        }
        mem = BankedMemory(n_banks, placement)
        cost = stall_cycles(mapping, mem)
        if best is None or cost < best[0]:
            best = (cost, mem)
    assert best is not None
    return best[1]
