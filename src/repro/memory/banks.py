"""Multi-bank scratchpad model.

A CGRA's data memory is split into banks that can each serve one
access per cycle; two same-cycle accesses to the same bank *conflict*
and stall the fabric.  Arrays are placed whole into banks (block
placement) or word-interleaved across all banks (cyclic) — the two
disciplines the multi-bank mapping papers [65]–[68] trade off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["BankedMemory", "conflict_schedule"]


@dataclass
class BankedMemory:
    """``n_banks`` single-ported banks with a placement policy.

    ``placement`` maps array names to bank ids (block placement);
    arrays absent from it are word-interleaved across all banks
    (cyclic), in which case the accessed *address* selects the bank.
    """

    n_banks: int
    placement: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ValueError("need at least one bank")
        for name, bank in self.placement.items():
            if not 0 <= bank < self.n_banks:
                raise ValueError(
                    f"array {name!r} placed in bank {bank}"
                    f" of {self.n_banks}"
                )

    def bank_of(self, array: str, address: int = 0) -> int:
        """Which bank serves an access to ``array[address]``."""
        if array in self.placement:
            return self.placement[array]
        return address % self.n_banks

    def conflicts(
        self, accesses: list[tuple[str, int]]
    ) -> int:
        """Extra stall cycles for one cycle's worth of accesses.

        ``k`` same-bank accesses serialise into ``k`` cycles: ``k - 1``
        stalls each.  Different banks proceed in parallel.
        """
        banks = Counter(
            self.bank_of(arr, addr) for arr, addr in accesses
        )
        return sum(k - 1 for k in banks.values() if k > 1)


def conflict_schedule(
    memory: BankedMemory,
    per_cycle_accesses: list[list[tuple[str, int]]],
) -> tuple[int, int]:
    """(total stall cycles, total cycles) over an access trace.

    ``per_cycle_accesses[t]`` lists the ``(array, address)`` accesses
    issued at cycle ``t``; the returned total is ``len(trace) +
    stalls``.
    """
    stalls = sum(memory.conflicts(acc) for acc in per_cycle_accesses)
    return stalls, len(per_cycle_accesses) + stalls
