"""Register allocation for mapped loops.

De Sutter et al. [29] showed register allocation on CGRAs is a
placement-and-routing by-product: every HOLD step of a mapping is a
value living in some cell's register file for one cycle.  This module
turns a mapping's hold steps into per-cell lifetimes and allocates:

* **rotating register files** [29] — in a modulo schedule a value
  produced every II cycles with lifetime ``L`` needs
  ``ceil(L / II)`` physical registers (successive iterations' copies
  coexist); rotation renames them for free;
* **unified register files** (URECA [25]) — one shared file; linear-
  scan colouring of all lifetimes folded onto the II window.

:func:`register_pressure` reports the per-cell per-slot demand the
validator already bounds by ``rf_size``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.arch.tec import HOLD
from repro.core.mapping import Mapping

__all__ = ["RegisterAllocation", "allocate_registers", "register_pressure"]


@dataclass
class RegisterAllocation:
    """Result of allocating a mapping's held values to registers.

    ``registers[cell][value]`` is the list of physical register
    indices the value occupies in that cell's file (one per live
    iteration copy for rotating files).
    """

    mode: str
    registers: dict[int, dict[int, list[int]]]
    spills: int = 0

    def per_cell_count(self) -> dict[int, int]:
        return {
            cell: max(
                (r for regs in vals.values() for r in regs), default=-1
            )
            + 1
            for cell, vals in self.registers.items()
        }

    @property
    def total_registers(self) -> int:
        return sum(self.per_cell_count().values())


def _lifetimes(mapping: Mapping) -> dict[int, dict[int, tuple[int, int]]]:
    """Per cell: value -> (first hold cycle, last hold cycle)."""
    lives: dict[int, dict[int, tuple[int, int]]] = defaultdict(dict)
    for edge, steps in mapping.routes.items():
        for s in steps:
            if s.kind != HOLD:
                continue
            prev = lives[s.cell].get(edge.src)
            if prev is None:
                lives[s.cell][edge.src] = (s.time, s.time)
            else:
                lives[s.cell][edge.src] = (
                    min(prev[0], s.time),
                    max(prev[1], s.time),
                )
    return lives


def register_pressure(mapping: Mapping) -> dict[tuple[int, int], int]:
    """Distinct held values per (cell, slot mod II)."""
    ii = mapping.ii or max(1, mapping.schedule_length)
    pressure: dict[tuple[int, int], set[int]] = defaultdict(set)
    for edge, steps in mapping.routes.items():
        for s in steps:
            if s.kind == HOLD:
                pressure[(s.cell, s.time % ii)].add(edge.src)
    return {k: len(v) for k, v in pressure.items()}


def allocate_registers(
    mapping: Mapping, *, mode: str = "rotating"
) -> RegisterAllocation:
    """Allocate every held value to physical registers.

    ``mode="rotating"``: per value, ``ceil(lifetime / II)`` registers;
    values get disjoint register ranges per cell (the rotation handles
    iteration renaming).  ``mode="unified"``: linear scan over the
    II-folded interference: values whose folded hold slots overlap get
    different registers.
    """
    if mapping.kind == "spatial":
        return RegisterAllocation(mode, {})
    ii = mapping.ii or max(1, mapping.schedule_length)
    lives = _lifetimes(mapping)
    registers: dict[int, dict[int, list[int]]] = {}

    if mode == "rotating":
        for cell, vals in lives.items():
            nxt = 0
            cell_regs: dict[int, list[int]] = {}
            for value, (lo, hi) in sorted(vals.items()):
                need = math.ceil((hi - lo + 1) / ii)
                cell_regs[value] = list(range(nxt, nxt + need))
                nxt += need
            registers[cell] = cell_regs
        return RegisterAllocation(mode, registers)

    if mode == "unified":
        for cell, vals in lives.items():
            # Folded slot sets per value.
            slots = {
                value: {
                    t % ii for t in range(lo, hi + 1)
                }
                for value, (lo, hi) in vals.items()
            }
            cell_regs = {}
            assigned: list[tuple[set[int], int]] = []
            for value in sorted(
                slots, key=lambda v: -len(slots[v])
            ):
                reg = 0
                while any(
                    r == reg and s & slots[value] for s, r in assigned
                ):
                    reg += 1
                assigned.append((slots[value], reg))
                cell_regs[value] = [reg]
            registers[cell] = cell_regs
        return RegisterAllocation(mode, registers)

    raise ValueError(f"unknown allocation mode {mode!r}")
