"""Data mapping (§III-C).

"The interaction between the CGRA and the memory … defines the
efficiency of the whole execution."  This package models the
parameters the survey lists — number of banks, bandwidth, placement —
and the register-file side:

* :mod:`repro.memory.banks` — a multi-bank scratchpad with cyclic or
  block interleaving and per-cycle conflict accounting [65]–[68];
* :mod:`repro.memory.data_placement` — array-to-bank assignment that
  minimises same-cycle conflicts for a given mapping (greedy colouring
  of the conflict graph, with an exhaustive optimum for small cases);
* :mod:`repro.memory.regalloc` — register allocation for the values a
  mapping parks in register files: rotating-register-file allocation
  (DRESC/ADRES style [29]) and unified-RF linear scan ([25]).
"""

from repro.memory.banks import BankedMemory, conflict_schedule
from repro.memory.data_placement import (
    access_conflict_graph,
    greedy_bank_assignment,
    optimal_bank_assignment,
    stall_cycles,
)
from repro.memory.regalloc import (
    RegisterAllocation,
    allocate_registers,
    register_pressure,
)

__all__ = [
    "BankedMemory",
    "RegisterAllocation",
    "access_conflict_graph",
    "allocate_registers",
    "conflict_schedule",
    "greedy_bank_assignment",
    "optimal_bank_assignment",
    "register_pressure",
    "stall_cycles",
]
