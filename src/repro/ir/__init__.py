"""Application intermediate representation.

The IR follows the terminology of the survey's §II-B:

* a :class:`~repro.ir.dfg.DFG` is a graph whose nodes are operations
  and whose edges are data dependencies (optionally loop-carried, with
  an iteration *distance*);
* a :class:`~repro.ir.cdfg.CFG` is a graph of basic blocks connected by
  control dependencies;
* a :class:`~repro.ir.cdfg.CDFG` combines the two: each basic block
  embeds a DFG.

:mod:`repro.ir.kernels` ships the classic CGRA benchmark kernels
(dot product, FIR, matmul, convolutions, …), :mod:`repro.ir.randdfg`
generates random DFGs for stress and property tests, and
:mod:`repro.ir.interp` is the reference interpreter against which both
middle-end passes and the CGRA simulator are checked.
"""

from repro.ir.dfg import DFG, Op, Node, Edge
from repro.ir.cdfg import CFG, CDFG, BasicBlock
from repro.ir import kernels, randdfg
from repro.ir.interp import DFGInterpreter, evaluate

__all__ = [
    "DFG",
    "Op",
    "Node",
    "Edge",
    "CFG",
    "CDFG",
    "BasicBlock",
    "kernels",
    "randdfg",
    "DFGInterpreter",
    "evaluate",
]
