"""The classic CGRA benchmark kernel library.

Every kernel the CGRA mapping literature leans on — dot product (the
survey's Fig. 3 worked example), FIR filters, matrix multiply, 2-D
convolutions, Sobel, SAD, IIR recurrences — expressed as
:class:`~repro.ir.dfg.DFG` loop bodies.

Kernels come in *streaming* form (operands arrive through ``INPUT``
nodes, one element per loop iteration) because that is the abstraction
mappers consume; a few *memory* variants (explicit LOAD/STORE with
address computation) exist for the data-mapping experiments.

The module-level :data:`KERNELS` registry maps kernel names to
zero-argument factories and is what the benchmark harness sweeps over.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.dfg import DFG, Op

__all__ = [
    "KERNELS",
    "kernel",
    "kernel_names",
    "accumulate",
    "conv3x3",
    "dfg_fig3_dot_product",
    "dot_product",
    "fir",
    "iir_biquad",
    "if_select",
    "matmul_body",
    "sad",
    "sobel_x",
    "vector_add",
    "vector_scale",
    "dot_product_mem",
    "vector_add_mem",
    "butterfly",
    "chain",
    "diamonds",
    "horner",
]

KERNELS: dict[str, Callable[[], DFG]] = {}


def _register(fn: Callable[[], DFG]) -> Callable[[], DFG]:
    KERNELS[fn.__name__] = fn
    return fn


#: Built-once kernel instances; :func:`kernel` hands out copies.
_BUILT: dict[str, DFG] = {}


def kernel(name: str) -> DFG:
    """Build a registered kernel by name, or a generator spec.

    Construction is memoized per process — the factories are pure and
    the harnesses request the same few kernels over and over — but
    every call returns a fresh :meth:`~repro.ir.dfg.DFG.copy`, so a
    caller that rewrites its graph in place (the pass pipelines do)
    cannot poison the next caller's.

    Names containing ``:`` are *generator specs* rather than registry
    entries: ``layered:N[:WIDTH[:SEED]]`` builds the deterministic
    :func:`repro.ir.randdfg.layered` instance of ``N`` ops (width
    defaults to 2, seed to 0; ``WIDTH=1`` draws from the unary pool so
    the result is a pure dataflow chain).  This is how the scaling
    benchmarks name instances far beyond the hand-written library —
    the perf ledger's place slice records ``layered:200:1:1`` cells
    the same way it records ``dot_product`` ones.
    """
    built = _BUILT.get(name)
    if built is None:
        if ":" in name:
            built = _BUILT[name] = _spec_kernel(name)
        else:
            try:
                factory = KERNELS[name]
            except KeyError:
                raise KeyError(
                    f"unknown kernel {name!r};"
                    f" available: {sorted(KERNELS)}"
                ) from None
            built = _BUILT[name] = factory()
    return built.copy()


def _spec_kernel(spec: str) -> DFG:
    """Parse a ``family:arg...`` generator spec (see :func:`kernel`)."""
    from repro.ir import randdfg

    family, *args = spec.split(":")
    if family != "layered" or not 1 <= len(args) <= 3:
        raise KeyError(
            f"unknown kernel spec {spec!r};"
            " expected layered:N[:WIDTH[:SEED]]"
        )
    try:
        n_ops = int(args[0])
        width = int(args[1]) if len(args) > 1 else 2
        seed = int(args[2]) if len(args) > 2 else 0
    except ValueError:
        raise KeyError(
            f"non-integer field in kernel spec {spec!r}"
        ) from None
    if n_ops < 1 or width < 1:
        raise KeyError(f"kernel spec {spec!r} needs N >= 1, WIDTH >= 1")
    ops = randdfg._UNOPS if width == 1 else None
    return randdfg.layered(
        n_ops, seed=seed, width=width, max_skip=1, ops=ops
    )


def kernel_names() -> list[str]:
    return sorted(KERNELS)


# ---------------------------------------------------------------------------
# Streaming kernels
# ---------------------------------------------------------------------------
@_register
def dot_product() -> DFG:
    """``sum += A[i] * B[i]`` — the survey's Fig. 3 loop body.

    The accumulation is a loop-carried self-dependence on the ADD
    (distance 1), which is exactly what lets modulo scheduling reach
    II = 1: iteration ``i+1``'s multiply overlaps iteration ``i``'s add.
    """
    g = DFG("dot_product")
    a = g.input("a")
    b = g.input("b")
    m = g.add(Op.MUL, a, b, name="a*b")
    s = g.add(Op.ADD, m, m, name="sum")  # placeholder second operand
    # Replace port 1 with the loop-carried accumulation edge.
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sum")
    return g


# Alias used by the Fig. 3 bench so the experiment reads like the paper.
dfg_fig3_dot_product = dot_product


@_register
def vector_add() -> DFG:
    """``C[i] = A[i] + B[i]`` — the minimal two-input streaming kernel."""
    g = DFG("vector_add")
    a = g.input("a")
    b = g.input("b")
    s = g.add(Op.ADD, a, b)
    g.output(s, "c")
    return g


@_register
def vector_scale() -> DFG:
    """``C[i] = (A[i] * k) >> s`` — fixed-point scaling."""
    g = DFG("vector_scale")
    a = g.input("a")
    k = g.const(3, name="k")
    sh = g.const(1, name="shift")
    m = g.add(Op.MUL, a, k)
    r = g.add(Op.SHR, m, sh)
    g.output(r, "c")
    return g


@_register
def accumulate() -> DFG:
    """``sum += A[i]`` — the smallest recurrence kernel (RecMII = 1)."""
    g = DFG("accumulate")
    a = g.input("a")
    s = g.add(Op.ADD, a, a)
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sum")
    return g


def fir(taps: int = 4) -> DFG:
    """An N-tap FIR filter: ``y = sum_k h[k] * x[i-k]``.

    The delayed samples ``x[i-k]`` are loop-carried edges of distance
    ``k`` from the single streaming input, so the DFG is one iteration
    of the canonical transversal filter.
    """
    g = DFG(f"fir{taps}")
    x = g.input("x")
    acc = None
    for k in range(taps):
        h = g.const(k + 1, name=f"h{k}")
        m = g.add(Op.MUL, h, h, name=f"m{k}")
        e = g.operand(m, 1)
        g.remove_edge(e)
        g.connect(x, m, port=1, dist=k)
        acc = m if acc is None else g.add(Op.ADD, acc, m)
    g.output(acc, "y")
    return g


@_register
def fir4() -> DFG:
    return fir(4)


@_register
def fir8() -> DFG:
    return fir(8)


@_register
def matmul_body() -> DFG:
    """Inner body of matrix multiply: ``c += A[i][k] * B[k][j]``.

    Structurally the dot product, but with the address streams exposed,
    matching how the kernel appears after loop normalisation.
    """
    g = DFG("matmul_body")
    aik = g.input("a_ik")
    bkj = g.input("b_kj")
    m = g.add(Op.MUL, aik, bkj)
    s = g.add(Op.ADD, m, m, name="c")
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "c")
    return g


@_register
def conv3x3() -> DFG:
    """Unrolled 3x3 convolution: 9 multiplies reduced by an adder tree.

    A wide, shallow DFG — the stress case for *spatial* parallelism
    (9 independent multiplies per iteration).
    """
    g = DFG("conv3x3")
    prods = []
    for i in range(9):
        p = g.input(f"p{i}")
        w = g.const((i * 7) % 11 + 1, name=f"w{i}")
        prods.append(g.add(Op.MUL, p, w))
    # Balanced adder tree.
    level = prods
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(g.add(Op.ADD, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    g.output(level[0], "acc")
    return g


@_register
def sobel_x() -> DFG:
    """Horizontal Sobel gradient on a 3x3 neighbourhood.

    ``gx = (p2 + 2*p5 + p8) - (p0 + 2*p3 + p6)`` followed by |gx|.
    """
    g = DFG("sobel_x")
    p = [g.input(f"p{i}") for i in range(9)]
    two = g.const(2, name="2")
    right = g.add(
        Op.ADD, g.add(Op.ADD, p[2], g.add(Op.MUL, two, p[5])), p[8]
    )
    left = g.add(
        Op.ADD, g.add(Op.ADD, p[0], g.add(Op.MUL, two, p[3])), p[6]
    )
    gx = g.add(Op.SUB, right, left)
    mag = g.add(Op.ABS, gx)
    g.output(mag, "gx")
    return g


@_register
def sad() -> DFG:
    """Sum of absolute differences over a 4-wide window per iteration."""
    g = DFG("sad")
    terms = []
    for i in range(4):
        a = g.input(f"a{i}")
        b = g.input(f"b{i}")
        d = g.add(Op.SUB, a, b)
        terms.append(g.add(Op.ABS, d))
    t0 = g.add(Op.ADD, terms[0], terms[1])
    t1 = g.add(Op.ADD, terms[2], terms[3])
    t = g.add(Op.ADD, t0, t1)
    s = g.add(Op.ADD, t, t, name="sad")
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sad")
    return g


@_register
def iir_biquad() -> DFG:
    """Direct-form-I biquad: two feedback taps.

    ``y = b0*x + b1*x[-1] - a1*y[-1] - a2*y[-2]``.  The distance-2
    feedback makes RecMII interesting (> latency of a single op).
    """
    g = DFG("iir_biquad")
    x = g.input("x")
    b0 = g.const(3, name="b0")
    b1 = g.const(2, name="b1")
    a1 = g.const(1, name="a1")
    a2 = g.const(1, name="a2")
    t0 = g.add(Op.MUL, b0, x)
    t1 = g.add(Op.MUL, b1, b1, name="b1*x1")
    e = g.operand(t1, 1)
    g.remove_edge(e)
    g.connect(x, t1, port=1, dist=1)
    ff = g.add(Op.ADD, t0, t1)
    # Feedback terms read y (the final node) from 1 and 2 iterations ago.
    fb1 = g.add(Op.MUL, a1, a1, name="a1*y1")
    fb2 = g.add(Op.MUL, a2, a2, name="a2*y2")
    fb = g.add(Op.ADD, fb1, fb2)
    y = g.add(Op.SUB, ff, fb, name="y")
    for node, dist in ((fb1, 1), (fb2, 2)):
        e = g.operand(node, 1)
        g.remove_edge(e)
        g.connect(y, node, port=1, dist=dist)
    g.output(y, "y")
    return g


@_register
def if_select() -> DFG:
    """``y = (a > b) ? a - b : b - a`` — an if-converted ITE body.

    This is what the four branch-mapping methods of §III-B produce from
    the same source; the SELECT is the predication primitive.
    """
    g = DFG("if_select")
    a = g.input("a")
    b = g.input("b")
    c = g.add(Op.GT, a, b)
    t = g.add(Op.SUB, a, b)
    f = g.add(Op.SUB, b, a)
    y = g.add(Op.SELECT, c, t, f)
    g.output(y, "y")
    return g


@_register
def horner() -> DFG:
    """Degree-4 polynomial by Horner's rule — a pure serial chain.

    The stress case for *temporal* mapping: no instruction-level
    parallelism at all, schedule length = critical path.
    """
    g = DFG("horner")
    x = g.input("x")
    acc = g.const(5, name="c4")
    for i in range(4):
        c = g.const(4 - i, name=f"c{3 - i}")
        m = g.add(Op.MUL, acc, x)
        acc = g.add(Op.ADD, m, c)
    g.output(acc, "y")
    return g


@_register
def butterfly() -> DFG:
    """Radix-2 FFT butterfly on fixed-point pairs (real arithmetic).

    ``(ar, ai, br, bi) -> (ar+br, ai+bi, ar-br, ai-bi)`` with a twiddle
    multiply on the difference path.
    """
    g = DFG("butterfly")
    ar, ai = g.input("ar"), g.input("ai")
    br, bi = g.input("br"), g.input("bi")
    wr, wi = g.const(3, name="wr"), g.const(1, name="wi")
    # Twiddle multiply (br, bi) * (wr, wi)
    t_r = g.add(Op.SUB, g.add(Op.MUL, br, wr), g.add(Op.MUL, bi, wi))
    t_i = g.add(Op.ADD, g.add(Op.MUL, br, wi), g.add(Op.MUL, bi, wr))
    g.output(g.add(Op.ADD, ar, t_r), "xr")
    g.output(g.add(Op.ADD, ai, t_i), "xi")
    g.output(g.add(Op.SUB, ar, t_r), "yr")
    g.output(g.add(Op.SUB, ai, t_i), "yi")
    return g


def chain(length: int = 8) -> DFG:
    """A serial dependence chain of ``length`` adds (no ILP)."""
    g = DFG(f"chain{length}")
    x = g.input("x")
    one = g.const(1, name="1")
    acc = x
    for _ in range(length):
        acc = g.add(Op.ADD, acc, one)
    g.output(acc, "y")
    return g


@_register
def chain8() -> DFG:
    return chain(8)


def diamonds(count: int = 3) -> DFG:
    """``count`` stacked diamond patterns (fan-out 2 / fan-in 2).

    The classic routing stress shape: every diamond forces two disjoint
    paths between its fork and join.
    """
    g = DFG(f"diamonds{count}")
    x = g.input("x")
    one = g.const(1, name="1")
    cur = x
    for _ in range(count):
        l = g.add(Op.ADD, cur, one)
        r = g.add(Op.SHL, cur, one)
        cur = g.add(Op.XOR, l, r)
    g.output(cur, "y")
    return g


@_register
def diamonds3() -> DFG:
    return diamonds(3)


# ---------------------------------------------------------------------------
# Memory-explicit kernels (for the data-mapping experiments)
# ---------------------------------------------------------------------------
@_register
def dot_product_mem() -> DFG:
    """Dot product with explicit LOADs: ``sum += A[i] * B[i]``.

    The loop index arrives as the streaming input ``i``; both loads use
    it as address.  Bank-conflict analysis sees two arrays accessed in
    the same cycle.
    """
    g = DFG("dot_product_mem")
    i = g.input("i")
    a = g.add(Op.LOAD, i, array="A")
    b = g.add(Op.LOAD, i, array="B")
    m = g.add(Op.MUL, a, b)
    s = g.add(Op.ADD, m, m, name="sum")
    e = g.operand(s, 1)
    g.remove_edge(e)
    g.connect(s, s, port=1, dist=1)
    g.output(s, "sum")
    return g


@_register
def vector_add_mem() -> DFG:
    """``C[i] = A[i] + B[i]`` with explicit loads and a store."""
    g = DFG("vector_add_mem")
    i = g.input("i")
    a = g.add(Op.LOAD, i, array="A")
    b = g.add(Op.LOAD, i, array="B")
    s = g.add(Op.ADD, a, b)
    st = g.add(Op.STORE, i, s, array="C")
    g.output(st, "stored")
    return g


@_register
def stencil1d_mem() -> DFG:
    """``B[i] = (A[i-1] + A[i] + A[i+1]) / 3`` — neighbouring accesses.

    Three loads into the same array at adjacent addresses in one
    iteration: the canonical bank-conflict workload.
    """
    g = DFG("stencil1d_mem")
    i = g.input("i")
    one = g.const(1, name="1")
    three = g.const(3, name="3")
    im1 = g.add(Op.SUB, i, one)
    ip1 = g.add(Op.ADD, i, one)
    a0 = g.add(Op.LOAD, im1, array="A")
    a1 = g.add(Op.LOAD, i, array="A")
    a2 = g.add(Op.LOAD, ip1, array="A")
    s = g.add(Op.ADD, g.add(Op.ADD, a0, a1), a2)
    avg = g.add(Op.DIV, s, three)
    st = g.add(Op.STORE, i, avg, array="B")
    g.output(st, "stored")
    return g


# ---------------------------------------------------------------------------
# AI / second-wave kernels (§IV: "CGRAs experience a new momentum as
# they get carried away by artificial intelligence applications")
# ---------------------------------------------------------------------------
@_register
def relu() -> DFG:
    """``y = max(x, 0)`` — the activation that launched a thousand
    accelerators."""
    g = DFG("relu")
    x = g.input("x")
    zero = g.const(0, name="0")
    g.output(g.add(Op.MAX, x, zero), "y")
    return g


@_register
def leaky_relu() -> DFG:
    """``y = x > 0 ? x : x >> 3`` — fixed-point leaky activation."""
    g = DFG("leaky_relu")
    x = g.input("x")
    zero = g.const(0, name="0")
    three = g.const(3, name="3")
    c = g.add(Op.GT, x, zero)
    leak = g.add(Op.SHR, x, three)
    g.output(g.add(Op.SELECT, c, x, leak), "y")
    return g


@_register
def mac4() -> DFG:
    """4-wide multiply-accumulate: one GEMV strip per iteration.

    ``acc += sum_k w[k] * x[k]`` with the weights as immediates — the
    inner kernel of the AI workloads the survey's §IV names.
    """
    g = DFG("mac4")
    terms = []
    for k in range(4):
        x = g.input(f"x{k}")
        w = g.const(k + 1, name=f"w{k}")
        terms.append(g.add(Op.MUL, x, w))
    t0 = g.add(Op.ADD, terms[0], terms[1])
    t1 = g.add(Op.ADD, terms[2], terms[3])
    t = g.add(Op.ADD, t0, t1)
    acc = g.add(Op.ADD, t, t, name="acc")
    e = g.operand(acc, 1)
    g.remove_edge(e)
    g.connect(acc, acc, port=1, dist=1)
    g.output(acc, "acc")
    return g


@_register
def maxpool4() -> DFG:
    """2x2 max pooling: ``y = max(max(a, b), max(c, d))``."""
    g = DFG("maxpool4")
    a, b = g.input("a"), g.input("b")
    c, d = g.input("c"), g.input("d")
    g.output(
        g.add(Op.MAX, g.add(Op.MAX, a, b), g.add(Op.MAX, c, d)), "y"
    )
    return g


@_register
def sigmoid_pw() -> DFG:
    """Piecewise-linear sigmoid approximation (fixed point, scale 16).

    ``y = x < -4 ? 0 : x > 4 ? 16 : 8 + 2*x`` — the three-segment
    approximation common in integer inference engines.
    """
    g = DFG("sigmoid_pw")
    x = g.input("x")
    lo = g.const(-4, name="-4")
    hi = g.const(4, name="4")
    zero = g.const(0, name="0")
    one6 = g.const(16, name="16")
    mid = g.add(Op.ADD, g.const(8, name="8"),
                g.add(Op.MUL, g.const(2, name="2"), x))
    below = g.add(Op.LT, x, lo)
    above = g.add(Op.GT, x, hi)
    upper = g.add(Op.SELECT, above, one6, mid)
    g.output(g.add(Op.SELECT, below, zero, upper), "y")
    return g


@_register
def batch_norm_lite() -> DFG:
    """``y = ((x - mean) * gamma) >> 4 + beta`` — inference-time BN."""
    g = DFG("batch_norm_lite")
    x = g.input("x")
    mean = g.const(7, name="mean")
    gamma = g.const(5, name="gamma")
    beta = g.const(3, name="beta")
    four = g.const(4, name="4")
    centred = g.add(Op.SUB, x, mean)
    scaled = g.add(Op.SHR, g.add(Op.MUL, centred, gamma), four)
    g.output(g.add(Op.ADD, scaled, beta), "y")
    return g
