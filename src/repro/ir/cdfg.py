"""Control/data flow graphs.

A :class:`CFG` is a graph of :class:`BasicBlock`\\ s connected by control
edges; each block embeds a :class:`~repro.ir.dfg.DFG` (its straight-line
data-flow body).  The combination is the :class:`CDFG` of the survey's
§II-B — "an application … represented in the form of a graph, where the
nodes are the operations, and the edges are the dependencies (control or
data)".

Blocks end in one of three terminators:

* ``jump``   — unconditional edge to one successor,
* ``branch`` — two successors selected by a condition value computed in
  the block's DFG,
* ``exit``   — no successor.

Values crossing block boundaries are named: a block's DFG exposes them
as ``OUTPUT`` nodes and consumers re-import them as ``INPUT`` nodes with
the same name.  The control-flow mapping transforms in
:mod:`repro.controlflow` consume this structure and produce a single
predicated DFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ir.dfg import DFG, Op

__all__ = ["BasicBlock", "CFG", "CDFG", "CFGError"]


class CFGError(ValueError):
    """Raised when a CFG violates a structural invariant."""


@dataclass
class BasicBlock:
    """A basic block: a DFG body plus a terminator.

    Attributes:
        bid: block id, unique within the CFG.
        body: the block's data-flow graph.
        kind: terminator kind — ``"jump"``, ``"branch"``, or ``"exit"``.
        cond: for a branch, the *name* of the body OUTPUT holding the
            condition (non-zero means the true edge is taken).
        label: optional human-readable name.
    """

    bid: int
    body: DFG
    kind: str = "exit"
    cond: str | None = None
    label: str | None = None

    def defined_names(self) -> set[str]:
        """Names this block exports (its OUTPUT node names)."""
        return {
            n.name
            for n in self.body.nodes()
            if n.op is Op.OUTPUT and n.name is not None
        }

    def used_names(self) -> set[str]:
        """Names this block imports (its INPUT node names)."""
        return {
            n.name
            for n in self.body.nodes()
            if n.op is Op.INPUT and n.name is not None
        }


class CFG:
    """A control flow graph of basic blocks."""

    def __init__(self, name: str = "cfg") -> None:
        self.name = name
        self._blocks: dict[int, BasicBlock] = {}
        self._succ: dict[int, list[tuple[int, bool | None]]] = {}
        self._pred: dict[int, list[int]] = {}
        self._next_id = 0
        self.entry: int | None = None

    # ------------------------------------------------------------------
    def add_block(self, body: DFG | None = None, label: str | None = None) -> int:
        bid = self._next_id
        self._next_id += 1
        self._blocks[bid] = BasicBlock(
            bid, body or DFG(f"bb{bid}"), label=label
        )
        self._succ[bid] = []
        self._pred[bid] = []
        if self.entry is None:
            self.entry = bid
        return bid

    def block(self, bid: int) -> BasicBlock:
        return self._blocks[bid]

    def blocks(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)

    def set_jump(self, bid: int, target: int) -> None:
        self._set_term(bid, "jump", None)
        self._add_edge(bid, target, None)

    def set_branch(
        self, bid: int, cond: str, if_true: int, if_false: int
    ) -> None:
        self._set_term(bid, "branch", cond)
        self._add_edge(bid, if_true, True)
        self._add_edge(bid, if_false, False)

    def set_exit(self, bid: int) -> None:
        self._set_term(bid, "exit", None)

    def _set_term(self, bid: int, kind: str, cond: str | None) -> None:
        blk = self._blocks[bid]
        # Re-setting a terminator clears old out-edges.
        for tgt, _ in self._succ[bid]:
            self._pred[tgt].remove(bid)
        self._succ[bid] = []
        blk.kind = kind
        blk.cond = cond

    def _add_edge(self, src: int, dst: int, taken: bool | None) -> None:
        if dst not in self._blocks:
            raise CFGError(f"unknown block {dst}")
        self._succ[src].append((dst, taken))
        self._pred[dst].append(src)

    # ------------------------------------------------------------------
    def successors(self, bid: int) -> list[tuple[int, bool | None]]:
        """Successor blocks as ``(bid, edge_label)`` pairs.

        The label is True/False for branch edges, None for jumps.
        """
        return list(self._succ[bid])

    def predecessors(self, bid: int) -> list[int]:
        return list(self._pred[bid])

    def check(self) -> None:
        """Validate the CFG and every block body."""
        if self.entry is None:
            raise CFGError("empty CFG")
        for blk in self._blocks.values():
            blk.body.check()
            n_succ = len(self._succ[blk.bid])
            if blk.kind == "exit" and n_succ != 0:
                raise CFGError(f"exit block {blk.bid} has successors")
            if blk.kind == "jump" and n_succ != 1:
                raise CFGError(f"jump block {blk.bid} has {n_succ} successors")
            if blk.kind == "branch":
                if n_succ != 2:
                    raise CFGError(
                        f"branch block {blk.bid} has {n_succ} successors"
                    )
                if blk.cond is None or blk.cond not in blk.defined_names():
                    raise CFGError(
                        f"branch block {blk.bid} condition {blk.cond!r} is"
                        " not defined by its body"
                    )
        # Reachability from entry.
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(t for t, _ in self._succ[b])
        unreachable = set(self._blocks) - seen
        if unreachable:
            raise CFGError(f"unreachable blocks: {sorted(unreachable)}")

    def reverse_postorder(self) -> list[int]:
        """Blocks in reverse post-order from the entry (forward analysis)."""
        seen: set[int] = set()
        post: list[int] = []

        def visit(b: int) -> None:
            seen.add(b)
            for t, _ in self._succ[b]:
                if t not in seen:
                    visit(t)
            post.append(b)

        assert self.entry is not None
        visit(self.entry)
        return list(reversed(post))

    def is_diamond(self) -> bool:
        """True if this CFG is a single if-then-else diamond.

        Entry branch block, two disjoint single-entry arms (each a jump
        block), one join block.  The shape the §III-B1 ITE transforms
        accept directly.
        """
        if len(self._blocks) != 4 or self.entry is None:
            return False
        entry = self._blocks[self.entry]
        if entry.kind != "branch":
            return False
        (t, _), (f, _) = sorted(
            self._succ[self.entry], key=lambda x: x[1] is not True
        )
        for arm in (t, f):
            if self._blocks[arm].kind != "jump":
                return False
        jt = self._succ[t][0][0]
        jf = self._succ[f][0][0]
        return jt == jf and self._blocks[jt].kind == "exit"

    def pretty(self) -> str:
        lines = [f"CFG {self.name}: {len(self)} blocks, entry bb{self.entry}"]
        for blk in self._blocks.values():
            succ = ", ".join(
                f"bb{t}" + ("" if lab is None else f"[{lab}]")
                for t, lab in self._succ[blk.bid]
            )
            lines.append(
                f"  bb{blk.bid} ({blk.label or blk.kind}):"
                f" {blk.body.op_count()} ops -> {succ or 'exit'}"
            )
        return "\n".join(lines)


# The survey uses "CDFG" for the combined structure; structurally it is
# a CFG whose blocks carry DFG bodies, which is exactly what CFG already
# is — the alias keeps client code aligned with the paper's vocabulary.
CDFG = CFG
