"""Reference interpreter for data flow graphs.

The interpreter defines the *semantics* of a :class:`~repro.ir.dfg.DFG`
— every other executable artifact in the package (middle-end passes,
mappings, generated configuration contexts run on the simulator) is
checked against it.

Iteration semantics
-------------------

A DFG models one loop body.  Running it for ``n`` iterations evaluates
every node once per iteration, in topological order of the ``dist=0``
edges.  An edge with ``dist=k>0`` feeds the consumer at iteration ``i``
with the producer's value from iteration ``i-k``; for iterations where
``i-k < 0`` the *initial value* applies (0 by default, or whatever
``init`` supplies for that producer node).

``PHI`` nodes get special treatment: a PHI merges an initial value
(its ``dist=0`` operand) with a loop-carried value (its ``dist>0``
operand); it yields the former until the carried operand becomes
available.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.ir.dfg import DFG, DFGError, Edge, Op

__all__ = [
    "DFGInterpreter",
    "apply_op",
    "broadcast_series",
    "evaluate",
    "trunc_div",
]


def broadcast_series(value: Any, n: int, name: str) -> list[int]:
    """Broadcast a scalar to ``n`` iterations, or validate a sequence.

    Public contract shared by the interpreter and the cycle-accurate
    machine (:mod:`repro.sim.machine`): both feeds must agree on how an
    input specification becomes a per-iteration series.
    """
    if isinstance(value, (int, float)):
        return [int(value)] * n
    seq = list(value)
    if len(seq) < n:
        raise ValueError(
            f"input {name!r} provides {len(seq)} values for {n} iterations"
        )
    return [int(v) for v in seq[:n]]


def trunc_div(a: int, b: int) -> int:
    """C-style integer division: truncate toward zero, exact at any width.

    Implemented purely on integers — ``int(a / b)`` goes through a
    float and silently loses precision once the quotient exceeds 2**53.
    """
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def apply_op(op: Op, args: list[int]) -> int:
    """Evaluate a non-memory, non-pseudo op on integer arguments.

    This function *is* the operator semantics of the package: the
    sequential interpreter, the cycle-accurate machine and the
    constant folder all evaluate through it, so they cannot disagree
    on a single opcode.
    """
    a = args
    if op is Op.ADD:
        return a[0] + a[1]
    if op is Op.SUB:
        return a[0] - a[1]
    if op is Op.MUL:
        return a[0] * a[1]
    if op is Op.DIV:
        if a[1] == 0:
            raise ZeroDivisionError("DFG DIV by zero")
        return trunc_div(a[0], a[1])  # C-style truncation toward zero
    if op is Op.MOD:
        if a[1] == 0:
            raise ZeroDivisionError("DFG MOD by zero")
        return a[0] - trunc_div(a[0], a[1]) * a[1]  # sign of the dividend
    if op is Op.NEG:
        return -a[0]
    if op is Op.ABS:
        return abs(a[0])
    if op is Op.MIN:
        return min(a)
    if op is Op.MAX:
        return max(a)
    if op is Op.AND:
        return a[0] & a[1]
    if op is Op.OR:
        return a[0] | a[1]
    if op is Op.XOR:
        return a[0] ^ a[1]
    if op is Op.NOT:
        return ~a[0]
    if op is Op.SHL:
        return a[0] << (a[1] & 63)
    if op is Op.SHR:
        return a[0] >> (a[1] & 63)
    if op is Op.EQ:
        return int(a[0] == a[1])
    if op is Op.NE:
        return int(a[0] != a[1])
    if op is Op.LT:
        return int(a[0] < a[1])
    if op is Op.LE:
        return int(a[0] <= a[1])
    if op is Op.GT:
        return int(a[0] > a[1])
    if op is Op.GE:
        return int(a[0] >= a[1])
    if op is Op.SELECT:
        return a[1] if a[0] else a[2]
    if op is Op.ROUTE:
        return a[0]
    raise DFGError(f"cannot interpret op {op}")


# Compatibility aliases: the helpers were underscore-private before the
# conformance harness promoted them to the public surface.
_apply = apply_op
_as_series = broadcast_series


class DFGInterpreter:
    """Evaluates a DFG over a number of loop iterations.

    Args:
        dfg: the graph to run (must pass ``dfg.check()``).
        memory: initial contents of named arrays for LOAD/STORE nodes;
            arrays grow on store to unseen addresses only if created as
            dicts — list-backed arrays bound-check.
        init: initial values for loop-carried edges, keyed by producer
            node id (default 0).
    """

    def __init__(
        self,
        dfg: DFG,
        memory: Mapping[str, Sequence[int]] | None = None,
        init: Mapping[int, int] | None = None,
    ) -> None:
        dfg.check()
        self.dfg = dfg
        self.memory: dict[str, list[int]] = {
            name: list(vals) for name, vals in (memory or {}).items()
        }
        self.init = dict(init or {})
        self._order = dfg.topo_order()

    def _carried_value(
        self, values: list[dict[int, int]], edge: Edge, it: int
    ) -> int | None:
        """Value over a dist>0 edge at iteration ``it`` (None if not yet)."""
        past = it - edge.dist
        if past < 0:
            return None
        return values[past][edge.src]

    def run(
        self,
        n_iters: int,
        inputs: Mapping[str, Any] | None = None,
    ) -> dict[str, list[int]]:
        """Run ``n_iters`` iterations; return OUTPUT series keyed by name.

        ``inputs`` maps INPUT node names to either a scalar (broadcast)
        or a per-iteration sequence.
        """
        dfg = self.dfg
        ins = {
            name: broadcast_series(v, n_iters, name)
            for name, v in (inputs or {}).items()
        }
        for node in dfg.nodes():
            if node.op is Op.INPUT and node.name not in ins:
                raise ValueError(f"missing input series for {node.name!r}")

        values: list[dict[int, int]] = []
        outputs: dict[str, list[int]] = {
            n.name or f"out{n.nid}": []
            for n in dfg.nodes()
            if n.op is Op.OUTPUT
        }

        for it in range(n_iters):
            cur: dict[int, int] = {}
            values.append(cur)
            for nid in self._order:
                node = dfg.node(nid)
                if node.op is Op.CONST:
                    cur[nid] = int(node.value)  # type: ignore[arg-type]
                    continue
                if node.op is Op.INPUT:
                    cur[nid] = ins[node.name][it]  # type: ignore[index]
                    continue

                # Predicated nodes (full predication): the last port
                # carries the predicate; a nullified op yields 0 and
                # performs no side effect.
                # Gather operands by port, honouring distances.
                args: list[int] = []
                carried_missing: list[int] = []
                by_port = sorted(dfg.in_edges(nid), key=lambda e: e.port)
                for e in by_port:
                    if e.dist == 0:
                        args.append(cur[e.src])
                    else:
                        v = self._carried_value(values, e, it)
                        if v is None:
                            carried_missing.append(e.port)
                            args.append(self.init.get(e.src, 0))
                        else:
                            args.append(v)

                enabled = True
                if node.pred is not None:
                    pred_val = args.pop()  # the extra trailing port
                    enabled = bool(pred_val) == node.pred

                if node.op is Op.PHI:
                    # PHI(initial, carried): yield the initial operand
                    # until the carried one exists.
                    carried_ports = [
                        e.port for e in by_port if e.dist > 0
                    ]
                    if not carried_ports:
                        raise DFGError(
                            f"PHI node {nid} has no loop-carried operand"
                        )
                    cport = carried_ports[0]
                    iport = 1 - cport
                    if cport in carried_missing:
                        cur[nid] = args[iport]
                    else:
                        cur[nid] = args[cport]
                    continue
                if node.op is Op.OUTPUT:
                    cur[nid] = args[0]
                    outputs[node.name or f"out{nid}"].append(args[0])
                    continue
                if not enabled:
                    cur[nid] = 0
                    continue
                if node.op is Op.LOAD:
                    arr = self._array(node.array, nid)
                    addr = args[0]
                    self._bounds(arr, addr, node, "load")
                    cur[nid] = arr[addr]
                    continue
                if node.op is Op.STORE:
                    arr = self._array(node.array, nid)
                    addr = args[0]
                    self._bounds(arr, addr, node, "store")
                    arr[addr] = args[1]
                    cur[nid] = args[1]
                    continue
                cur[nid] = _apply(node.op, args)

        self._values = values
        return outputs

    def _array(self, name: str | None, nid: int) -> list[int]:
        if name is None:
            raise DFGError(f"memory node {nid} has no array name")
        if name not in self.memory:
            raise KeyError(f"array {name!r} not provided to interpreter")
        return self.memory[name]

    @staticmethod
    def _bounds(arr: list[int], addr: int, node, what: str) -> None:
        if not 0 <= addr < len(arr):
            raise IndexError(
                f"{what} at node {node.nid} ({node.array}[{addr}])"
                f" out of bounds (len {len(arr)})"
            )

    def value(self, nid: int, it: int = -1) -> int:
        """Value of node ``nid`` at iteration ``it`` of the last run."""
        return self._values[it][nid]


def evaluate(
    dfg: DFG,
    n_iters: int,
    inputs: Mapping[str, Any] | None = None,
    memory: Mapping[str, Sequence[int]] | None = None,
    init: Mapping[int, int] | None = None,
) -> dict[str, list[int]]:
    """One-shot convenience wrapper around :class:`DFGInterpreter`."""
    return DFGInterpreter(dfg, memory=memory, init=init).run(n_iters, inputs)
