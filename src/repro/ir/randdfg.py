"""Random DFG generators for stress and property-based tests.

Three families, mirroring the shapes that appear in the mapping
literature's benchmark sets:

* :func:`layered` — the standard layered random DAG (TGFF-style):
  nodes are organised in ranks, edges only go forward a bounded number
  of ranks; controls width (spatial pressure) and depth (temporal
  pressure) independently;
* :func:`series_parallel` — recursively composed series/parallel
  blocks, always mappable on trivial fabrics;
* :func:`with_recurrences` — adds loop-carried self/back edges to an
  existing DFG to give it a non-trivial RecMII.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.ir.dfg import DFG, Op

__all__ = ["ALU_POOL", "layered", "series_parallel", "with_recurrences"]

# Binary ops a random interior node may take.
_BINOPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.MIN, Op.MAX]
_UNOPS = [Op.NEG, Op.ABS, Op.NOT]

# The full single-cycle ALU vocabulary (any arity) — what the
# conformance fuzzer feeds through :func:`layered`'s ``ops=`` hook.
# DIV/MOD are excluded on purpose: a random denominator hitting zero
# aborts the reference run, so the differential harness covers them
# with directed cases instead of noise-prone random ones.
ALU_POOL = _BINOPS + _UNOPS + [
    Op.SHL, Op.SHR,
    Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
    Op.SELECT,
]


def layered(
    n_ops: int,
    *,
    width: int = 4,
    max_skip: int = 2,
    seed: int = 0,
    n_inputs: int = 2,
    ops: Sequence[Op] | None = None,
) -> DFG:
    """A layered random DAG with ``n_ops`` compute nodes.

    Args:
        n_ops: number of compute (non-pseudo) nodes.
        width: maximum nodes per rank.
        max_skip: edges may span up to this many ranks.
        seed: RNG seed (generation is deterministic).
        n_inputs: number of streaming live-ins.
        ops: opcode pool interior nodes draw from (uniformly, honouring
            each opcode's arity).  None keeps the historical mix of 80%
            binary / 20% unary arithmetic, byte-for-byte.
    """
    if n_ops < 1:
        raise ValueError("n_ops must be >= 1")
    rng = random.Random(seed)
    g = DFG(f"layered_{n_ops}_w{width}_s{seed}")
    inputs = [g.input(f"x{i}") for i in range(n_inputs)]

    ranks: list[list[int]] = [inputs]
    remaining = n_ops
    while remaining > 0:
        k = min(remaining, rng.randint(1, width))
        rank: list[int] = []
        for _ in range(k):
            if ops is not None:
                op = rng.choice(list(ops))
            else:
                op = rng.choice(
                    _BINOPS if rng.random() < 0.8 else _UNOPS
                )
            # Pick producers from the previous `max_skip` ranks.
            pool: list[int] = []
            for r in ranks[-max_skip:]:
                pool.extend(r)
            srcs = [rng.choice(pool) for _ in range(op.arity)]
            rank.append(g.add(op, *srcs))
        ranks.append(rank)
        remaining -= k

    # Every sink feeds an output so no node is dead.
    sinks = [
        n.nid
        for n in g.nodes()
        if not g.out_edges(n.nid) and n.op is not Op.OUTPUT
    ]
    if len(sinks) == 1:
        g.output(sinks[0], "y")
    else:
        acc = sinks[0]
        for s in sinks[1:]:
            acc = g.add(Op.XOR, acc, s)
        g.output(acc, "y")
    g.check()
    return g


def series_parallel(
    depth: int = 3,
    *,
    seed: int = 0,
) -> DFG:
    """A series-parallel DFG built by recursive composition.

    At each level the generator either chains two sub-blocks (series)
    or forks/joins them (parallel).  Depth 0 is a single operation.
    """
    rng = random.Random(seed)
    g = DFG(f"sp_d{depth}_s{seed}")
    x = g.input("x")

    def build(d: int, src: int) -> int:
        if d == 0:
            op = rng.choice(_BINOPS)
            other = g.const(rng.randint(1, 7))
            return g.add(op, src, other)
        if rng.random() < 0.5:  # series
            mid = build(d - 1, src)
            return build(d - 1, mid)
        left = build(d - 1, src)  # parallel
        right = build(d - 1, src)
        return g.add(rng.choice(_BINOPS), left, right)

    y = build(depth, x)
    g.output(y, "y")
    g.check()
    return g


def with_recurrences(
    g: DFG,
    *,
    count: int = 1,
    max_dist: int = 2,
    seed: int = 0,
) -> DFG:
    """Return a copy of ``g`` with ``count`` extra loop-carried edges.

    Each added edge goes *backwards* in topological order (consumer
    earlier than producer) with distance >= 1, so the dist=0 subgraph
    stays acyclic while RecMII becomes non-trivial.  Edges are added by
    widening a unary op into a two-operand one via a MAX merge, to keep
    operand arity valid.
    """
    rng = random.Random(seed)
    out = g.copy(name=f"{g.name}_rec{count}")
    order = out.topo_order()
    compute = [
        nid for nid in order if not out.node(nid).op.is_pseudo
    ]
    if len(compute) < 2:
        return out
    added = 0
    attempts = 0
    while added < count and attempts < 50 * count:
        attempts += 1
        i = rng.randrange(1, len(compute))
        j = rng.randrange(0, i)
        late, early = compute[i], compute[j]
        # Merge the carried value into `early` via a MAX node spliced
        # onto its port-0 operand.
        e = out.operand(early, 0)
        if e is None:
            continue
        out.remove_edge(e)
        merge = out.add(Op.MAX, e.src, e.src)
        e2 = out.operand(merge, 1)
        out.remove_edge(e2)
        out.connect(late, merge, port=1, dist=rng.randint(1, max_dist))
        out.connect(merge, early, port=0, dist=e.dist)
        compute.append(merge)
        added += 1
    out.check()
    return out
