"""Data flow graphs.

A :class:`DFG` is the unit of work every mapper in this package
consumes: nodes are operations (:class:`Op`), edges are data
dependencies.  An edge carries

* ``port`` — which operand slot of the consumer it feeds, and
* ``dist`` — the *dependence distance* in loop iterations.  ``dist=0``
  is an ordinary intra-iteration dependence; ``dist=k>0`` means the
  consumer at iteration ``i`` reads the value the producer computed at
  iteration ``i-k`` (a loop-carried dependence).  Recurrence cycles
  through such edges are what bound the initiation interval from below
  (RecMII).

The graph restricted to ``dist=0`` edges must be a DAG; this is the
single structural invariant :meth:`DFG.check` enforces, together with
operand arity and port consistency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Op", "Node", "Edge", "DFG", "DFGError"]


class DFGError(ValueError):
    """Raised when a DFG violates a structural invariant."""


class Op(enum.Enum):
    """Operation opcodes understood by the architecture model.

    The set mirrors what a word-level CGRA cell typically implements:
    integer ALU operations, comparisons, a select (the primitive that
    predication lowers to), memory accesses, and pseudo-operations used
    by the compilation flow (constants, live-ins/outs, ``PHI`` for
    loop-carried merges and ``ROUTE`` for values forwarded through a
    cell without computation).
    """

    # Pure data movement / pseudo ops
    CONST = "const"
    INPUT = "input"
    OUTPUT = "output"
    PHI = "phi"
    ROUTE = "route"
    # Integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    # Bitwise / shifts
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Comparisons (produce 0/1)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Predication / selection
    SELECT = "select"
    # Memory
    LOAD = "load"
    STORE = "store"

    @property
    def arity(self) -> int:
        """Number of operand slots this opcode requires."""
        return _ARITY[self]

    @property
    def latency(self) -> int:
        """Latency in cycles on the reference cell model."""
        return _LATENCY[self]

    @property
    def is_memory(self) -> bool:
        """True for operations that touch the data memory."""
        return self in (Op.LOAD, Op.STORE)

    @property
    def is_pseudo(self) -> bool:
        """True for nodes that do not occupy a functional unit slot.

        ``INPUT``/``OUTPUT`` mark live-in/live-out interface points and
        ``CONST`` values come from the configuration word itself; none
        of them consume an issue slot on the fabric.
        """
        return self in (Op.CONST, Op.INPUT, Op.OUTPUT)

    @property
    def commutative(self) -> bool:
        return self in (
            Op.ADD,
            Op.MUL,
            Op.AND,
            Op.OR,
            Op.XOR,
            Op.MIN,
            Op.MAX,
            Op.EQ,
            Op.NE,
        )


_ARITY = {
    Op.CONST: 0,
    Op.INPUT: 0,
    Op.OUTPUT: 1,
    Op.PHI: 2,
    Op.ROUTE: 1,
    Op.ADD: 2,
    Op.SUB: 2,
    Op.MUL: 2,
    Op.DIV: 2,
    Op.MOD: 2,
    Op.NEG: 1,
    Op.ABS: 1,
    Op.MIN: 2,
    Op.MAX: 2,
    Op.AND: 2,
    Op.OR: 2,
    Op.XOR: 2,
    Op.NOT: 1,
    Op.SHL: 2,
    Op.SHR: 2,
    Op.EQ: 2,
    Op.NE: 2,
    Op.LT: 2,
    Op.LE: 2,
    Op.GT: 2,
    Op.GE: 2,
    Op.SELECT: 3,
    Op.LOAD: 1,
    Op.STORE: 2,
}

# Single-cycle cells are the common template (Fig. 2 of the survey shows
# one); we keep every op at latency 1 except the ones virtually every
# published model gives more weight to.
_LATENCY = {op: 1 for op in Op}
_LATENCY[Op.MUL] = 1
_LATENCY[Op.DIV] = 1
_LATENCY[Op.LOAD] = 1
_LATENCY[Op.STORE] = 1
_LATENCY[Op.CONST] = 0
_LATENCY[Op.INPUT] = 0
_LATENCY[Op.OUTPUT] = 0


@dataclass
class Node:
    """A DFG node: one operation instance.

    Attributes:
        nid: integer id, unique within the DFG.
        op: opcode.
        name: optional human-readable label (live-in names, array
            names for memory ops, …).
        value: constant value for ``CONST`` nodes.
        array: for ``LOAD``/``STORE``, the name of the array accessed
            (used by the memory-aware mapping layer for bank analysis).
        pred: predicate polarity for predicated execution (full
            predication, §III-B1).  When set, the node carries one
            extra operand edge at port ``op.arity`` delivering the
            predicate value; the node commits only when that value's
            truthiness equals ``pred``.  ``None`` = always execute.
    """

    nid: int
    op: Op
    name: str | None = None
    value: int | None = None
    array: str | None = None
    pred: bool | None = None

    def label(self) -> str:
        if self.op is Op.CONST:
            return f"#{self.value}"
        if self.name:
            return f"{self.op.value}:{self.name}"
        return f"{self.op.value}@{self.nid}"


@dataclass(frozen=True)
class Edge:
    """A data dependence ``src -> dst`` feeding operand slot ``port``.

    ``dist`` is the dependence distance in iterations (0 for
    intra-iteration edges).
    """

    src: int
    dst: int
    port: int = 0
    dist: int = 0


class DFG:
    """A data flow graph.

    Nodes are created with :meth:`add` (or the convenience operator
    helpers) and connected with :meth:`connect`.  The class is a plain
    adjacency-list structure rather than a :mod:`networkx` graph so the
    hot paths used by mappers (predecessor/successor iteration) stay
    allocation-free; :meth:`to_networkx` exports a view for algorithms
    that want the library.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        op: Op,
        *operands: int,
        name: str | None = None,
        value: int | None = None,
        array: str | None = None,
    ) -> int:
        """Add a node and connect ``operands`` to its ports in order.

        Returns the new node id.
        """
        nid = self._next_id
        self._next_id += 1
        self._nodes[nid] = Node(nid, op, name=name, value=value, array=array)
        self._out[nid] = []
        self._in[nid] = []
        for port, src in enumerate(operands):
            self.connect(src, nid, port=port)
        return nid

    def const(self, value: int, name: str | None = None) -> int:
        return self.add(Op.CONST, name=name, value=value)

    def input(self, name: str) -> int:
        return self.add(Op.INPUT, name=name)

    def output(self, src: int, name: str) -> int:
        return self.add(Op.OUTPUT, src, name=name)

    def connect(self, src: int, dst: int, port: int = 0, dist: int = 0) -> Edge:
        """Add the dependence edge ``src -> dst`` at operand ``port``."""
        if src not in self._nodes:
            raise DFGError(f"unknown source node {src}")
        if dst not in self._nodes:
            raise DFGError(f"unknown destination node {dst}")
        if dist < 0:
            raise DFGError(f"negative dependence distance {dist}")
        edge = Edge(src, dst, port=port, dist=dist)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def remove_node(self, nid: int) -> None:
        """Remove a node and every edge incident to it."""
        if nid not in self._nodes:
            raise DFGError(f"unknown node {nid}")
        for e in list(self._in[nid]):
            self._out[e.src].remove(e)
        for e in list(self._out[nid]):
            self._in[e.dst].remove(e)
        del self._nodes[nid], self._in[nid], self._out[nid]

    def remove_edge(self, edge: Edge) -> None:
        self._out[edge.src].remove(edge)
        self._in[edge.dst].remove(edge)

    def rewire(self, old_src: int, new_src: int) -> None:
        """Redirect every out-edge of ``old_src`` to come from ``new_src``."""
        for e in list(self._out[old_src]):
            self.remove_edge(e)
            self.connect(new_src, e.dst, port=e.port, dist=e.dist)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, nid: int) -> bool:
        return nid in self._nodes

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def node(self, nid: int) -> Node:
        return self._nodes[nid]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_ids(self) -> list[int]:
        return list(self._nodes)

    def edges(self) -> Iterator[Edge]:
        for es in self._out.values():
            yield from es

    def num_edges(self) -> int:
        return sum(len(es) for es in self._out.values())

    def in_edges(self, nid: int) -> Sequence[Edge]:
        return self._in[nid]

    def out_edges(self, nid: int) -> Sequence[Edge]:
        return self._out[nid]

    def preds(self, nid: int, *, include_carried: bool = True) -> list[int]:
        return [
            e.src for e in self._in[nid] if include_carried or e.dist == 0
        ]

    def succs(self, nid: int, *, include_carried: bool = True) -> list[int]:
        return [
            e.dst for e in self._out[nid] if include_carried or e.dist == 0
        ]

    def operand(self, nid: int, port: int) -> Edge | None:
        """The edge feeding ``port`` of ``nid``, or None."""
        for e in self._in[nid]:
            if e.port == port:
                return e
        return None

    def op_count(self, *, include_pseudo: bool = False) -> int:
        """Number of operations that occupy a functional-unit slot."""
        return sum(
            1
            for n in self._nodes.values()
            if include_pseudo or not n.op.is_pseudo
        )

    def memory_ops(self) -> list[int]:
        return [n.nid for n in self._nodes.values() if n.op.is_memory]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topo_order(self) -> list[int]:
        """Topological order over intra-iteration (dist=0) edges.

        Raises :class:`DFGError` if those edges form a cycle.
        """
        indeg = {nid: 0 for nid in self._nodes}
        for e in self.edges():
            if e.dist == 0:
                indeg[e.dst] += 1
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        order: list[int] = []
        # Pop smallest id first: deterministic order for reproducibility.
        import heapq

        heapq.heapify(ready)
        while ready:
            nid = heapq.heappop(ready)
            order.append(nid)
            for e in self._out[nid]:
                if e.dist == 0:
                    indeg[e.dst] -= 1
                    if indeg[e.dst] == 0:
                        heapq.heappush(ready, e.dst)
        if len(order) != len(self._nodes):
            raise DFGError("dist=0 edges form a cycle")
        return order

    def check(self) -> None:
        """Validate structural invariants; raise :class:`DFGError` if broken.

        * every operand port of every node is fed exactly once,
        * ports are within the opcode's arity,
        * dist=0 edges form a DAG,
        * CONST nodes carry a value.
        """
        for nid, node in self._nodes.items():
            ports = sorted(e.port for e in self._in[nid])
            arity = node.op.arity + (1 if node.pred is not None else 0)
            expect = list(range(arity))
            if ports != expect:
                raise DFGError(
                    f"node {nid} ({node.op.value}) has operand ports {ports},"
                    f" expected {expect}"
                )
            if node.op is Op.CONST and node.value is None:
                raise DFGError(f"CONST node {nid} has no value")
        self.topo_order()  # raises on cycle

    def critical_path(self) -> int:
        """Length (in cycles, by op latency) of the longest dist=0 path."""
        dist: dict[int, int] = {}
        for nid in self.topo_order():
            lat = self._nodes[nid].op.latency
            best = 0
            for e in self._in[nid]:
                if e.dist == 0:
                    best = max(best, dist[e.src])
            dist[nid] = best + lat
        return max(dist.values(), default=0)

    def recurrence_cycles(self) -> list[list[int]]:
        """Simple cycles through loop-carried edges (for RecMII).

        Returns node-id cycles of the full graph (all edges).  Uses
        networkx's simple_cycles on the exported multigraph.
        """
        import networkx as nx

        g = self.to_networkx()
        return [list(c) for c in nx.simple_cycles(nx.DiGraph(g))]

    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph`.

        Node attributes: ``op`` (the :class:`Op`), ``name``, ``value``.
        Edge attributes: ``port``, ``dist``.
        """
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for nid, node in self._nodes.items():
            g.add_node(
                nid, op=node.op, name=node.name, value=node.value,
                array=node.array,
            )
        for e in self.edges():
            g.add_edge(e.src, e.dst, port=e.port, dist=e.dist)
        return g

    def copy(self, name: str | None = None) -> "DFG":
        """Deep-copy the graph (node ids are preserved)."""
        out = DFG(name or self.name)
        out._next_id = self._next_id
        for nid, node in self._nodes.items():
            out._nodes[nid] = Node(
                nid, node.op, name=node.name, value=node.value,
                array=node.array, pred=node.pred,
            )
            out._out[nid] = []
            out._in[nid] = []
        for e in self.edges():
            out.connect(e.src, e.dst, port=e.port, dist=e.dist)
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def pretty(self) -> str:
        """A compact multi-line description (one node per line)."""
        lines = [f"DFG {self.name}: {len(self)} nodes, {self.num_edges()} edges"]
        for nid in self.topo_order():
            node = self._nodes[nid]
            ins = ", ".join(
                f"n{e.src}" + (f"[d{e.dist}]" if e.dist else "")
                for e in sorted(self._in[nid], key=lambda e: e.port)
            )
            lines.append(f"  n{nid}: {node.label()}({ins})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DFG(name={self.name!r}, nodes={len(self)},"
            f" edges={self.num_edges()})"
        )
