"""Command-line interface.

The survey closes §IV-A with open-source frameworks that "provide a
ready for use tool to democratize the CGRAs" — so the package is also
a tool::

    python -m repro list mappers
    python -m repro map dot_product --arch simple4x4 \\
                        --mapper dresc --show-contexts
    python -m repro map dotprod --arch 4x4 --mapper sa_spatial --profile
    python -m repro compare --kernels dot_product,sobel_x \\
                            --mappers list_sched,dresc,ilp --trace out.jsonl
    python -m repro compare --jobs 4 --timeout 60
    python -m repro table1
    python -m repro timeline
    python -m repro dse --cache
    python -m repro cache stats --dir ~/.cache/repro-mappings
    python -m repro fuzz --seeds 0:200 --jobs 4 --timeout 15
    python -m repro fuzz --seeds 0:50 --mapper sat --arch hetero4x4 \\
                         --log failures.jsonl --emit-dir repros/
    python -m repro bench record --note "before refactor"
    python -m repro bench compare last

Every subcommand prints plain text and exits non-zero on failure, so
the CLI scripts cleanly.  ``--profile`` prints the per-phase
time/counter breakdown recorded by :mod:`repro.obs` (plus ASCII
convergence plots when the run emitted progress series); ``--trace
FILE`` writes the spans as JSONL with a provenance manifest on line 0;
``--metrics`` collects process metrics and prints the Prometheus text
exposition.  ``bench record``/``bench compare`` drive the
perf-regression ledger (:mod:`repro.bench.history`).  ``-v``/
``--verbose`` turns on DEBUG logging for the ``repro.*`` hierarchy
(WARNING otherwise).

Kernel, architecture, and mapper names resolve leniently: exact name
first, then case/underscore-insensitive, then unique prefix (the
shortest candidate wins when one is a prefix of all others, so
``dotprod`` means ``dot_product``), then unique substring; a bare
architecture size like ``4x4`` selects the ``simple`` preset.
"""

from __future__ import annotations

import argparse
import logging
import sys
from contextlib import nullcontext

__all__ = ["main"]


# ---------------------------------------------------------------------------
def _normalize(name: str) -> str:
    return name.lower().replace("_", "").replace("-", "")


def resolve_name(name: str, candidates: list[str], what: str) -> str:
    """Resolve a user-supplied name against known ``candidates``."""
    if name in candidates:
        return name
    norm = _normalize(name)
    by_norm = {_normalize(c): c for c in candidates}
    if norm in by_norm:
        return by_norm[norm]
    if "simple" + norm in by_norm:  # bare size -> the simple mesh preset
        return by_norm["simple" + norm]

    def pick(matches: list[str]) -> str | None:
        if len(matches) == 1:
            return matches[0]
        if matches:
            # Unambiguous if the shortest match is a stem of the rest.
            shortest = min(matches, key=lambda c: len(_normalize(c)))
            stem = _normalize(shortest)
            if all(_normalize(m).startswith(stem) for m in matches):
                return shortest
        return None

    chosen = pick([c for c in candidates if _normalize(c).startswith(norm)])
    if chosen is None:
        chosen = pick([c for c in candidates if norm in _normalize(c)])
    if chosen is None:
        raise SystemExit(
            f"unknown {what} {name!r}; available: {sorted(candidates)}"
        )
    return chosen


def _resolve_kernel(name: str) -> str:
    from repro.ir import kernels

    if ":" in name:  # generator spec, e.g. layered:200:1:1 — no fuzzing
        try:
            kernels.kernel(name)
        except KeyError as ex:
            raise SystemExit(str(ex.args[0])) from None
        return name
    return resolve_name(name, list(kernels.kernel_names()), "kernel")


def _resolve_arch(name: str) -> str:
    from repro.arch import presets

    return resolve_name(name, sorted(presets.PRESETS), "architecture")


def _resolve_mapper(name: str) -> str:
    from repro.core.registry import names

    return resolve_name(name, names(), "mapper")


def _obs_context(args):
    """A ``tracing()`` context when ``--trace``/``--profile`` ask for it."""
    from repro.obs import tracing

    if getattr(args, "trace", None) or getattr(args, "profile", False):
        return tracing()
    return nullcontext()


def _emit_obs(args, tracer) -> None:
    """Print the profile and/or write the JSONL trace, when requested."""
    if tracer is None:
        return
    if getattr(args, "profile", False):
        from repro.obs import render_profile

        print("\n" + render_profile(tracer))
    if getattr(args, "trace", None):
        print("\n" + _write_trace(tracer, args.trace))


def _write_trace(source, path: str) -> str:
    from repro.obs import write_jsonl

    try:
        n = write_jsonl(source, path)
    except OSError as ex:
        raise SystemExit(f"error: cannot write trace {path!r}: {ex}")
    return f"trace: wrote {n} records to {path}"


def _metrics_context(args):
    """A ``metrics_scope()`` context when ``--metrics`` asks for it."""
    from repro.obs import metrics_scope

    if getattr(args, "metrics", False):
        return metrics_scope()
    return nullcontext()


def _emit_metrics(registry) -> None:
    """Print the Prometheus exposition of a collected registry."""
    if registry is None:
        return
    from repro.obs import render_prometheus

    text = render_prometheus(registry)
    if text:
        print("\n" + text)


def _cache_option(args):
    """Translate --cache/--no-cache/--cache-dir into the ``cache``
    argument of :func:`repro.cache.cache_scope`."""
    flag = getattr(args, "cache", None)
    if flag is False:
        return False
    directory = getattr(args, "cache_dir", None)
    if directory:
        return directory  # a directory implies --cache
    if flag:
        return True
    return None  # follow the environment (off by default)


def _emit_cache_stats(active) -> None:
    if active is not None:
        print(f"cache: {active.stats.describe()}")


# ---------------------------------------------------------------------------
def _cmd_list(args) -> int:
    if args.what == "mappers":
        from repro.core.registry import catalog

        for name, meta in catalog().items():
            kinds = "/".join(meta["kinds"])
            tag = "exact" if meta["exact"] else meta["family"]
            print(
                f"{name:14s} {tag:13s} {meta['subfamily']:18s}"
                f" {kinds:16s} after {meta['modeled_after']}"
            )
    elif args.what == "kernels":
        from repro.ir import kernels

        for name in kernels.kernel_names():
            g = kernels.kernel(name)
            print(
                f"{name:16s} {g.op_count():3d} ops,"
                f" {g.num_edges():3d} deps,"
                f" {len(g.memory_ops()):2d} memory ops"
            )
    elif args.what == "archs":
        from repro.arch import presets

        for name in sorted(presets.PRESETS):
            cgra = presets.by_name(name)
            print(
                f"{name:14s} {cgra.width}x{cgra.height},"
                f" {len(cgra.links)} links,"
                f" contexts={cgra.n_contexts}"
            )
    return 0


def _cmd_map(args) -> int:
    from repro.api import map_dfg
    from repro.arch import presets
    from repro.cache import cache_scope
    from repro.core.exceptions import MapFailure
    from repro.core.metrics import metrics_of
    from repro.ir import kernels

    arch = _resolve_arch(args.arch)
    mapper = _resolve_mapper(args.mapper)
    cgra = presets.by_name(arch)
    tracer = None
    with _obs_context(args) as ctx, cache_scope(
        _cache_option(args)
    ) as cache, _metrics_context(args) as reg:
        if ctx is not None:
            tracer = ctx
        try:
            if args.source:
                from repro.api import compile_source

                with open(args.source) as fh:
                    src = fh.read()
                mapping = compile_source(src, cgra, mapper=mapper)
            else:
                kernel = _resolve_kernel(args.kernel)
                dfg = kernels.kernel(kernel)
                mapping = map_dfg(
                    dfg, cgra, mapper=mapper, ii=args.ii
                )
        except MapFailure as ex:
            print(f"mapping failed: {ex}", file=sys.stderr)
            _emit_obs(args, tracer)
            _emit_metrics(reg)
            return 1
    print(mapping.describe())
    print(f"\nmetrics: {metrics_of(mapping).row()}")
    if args.show_contexts and mapping.kind == "modulo":
        from repro.sim.configgen import render_contexts

        print("\n" + render_contexts(mapping))
    _emit_cache_stats(cache)
    _emit_obs(args, tracer)
    _emit_metrics(reg)
    return 0


def _cmd_compare(args) -> int:
    from repro.arch import presets
    from repro.bench import ascii_table, run_matrix
    from repro.cache import cache_scope

    arch = _resolve_arch(args.arch)
    mappers = [_resolve_mapper(m) for m in args.mappers.split(",")]
    kernels = [_resolve_kernel(k) for k in args.kernels.split(",")]
    cgra = presets.by_name(arch)
    want_obs = bool(args.trace or args.profile)
    with cache_scope(_cache_option(args)) as cache, _metrics_context(
        args
    ) as reg:
        results = run_matrix(
            mappers, kernels, cgra, trace=want_obs,
            jobs=args.jobs, timeout=args.timeout,
        )
    _emit_cache_stats(cache)
    print(
        ascii_table(
            [r.row() for r in results],
            title=f"mapper x kernel on {cgra.name}",
        )
    )
    if want_obs:
        roots = [r.trace for r in results if r.trace is not None]
        if args.profile:
            from repro.obs import render_convergence, render_summary

            print()
            print(
                render_summary(
                    roots, title="per-phase summary (all cells)"
                )
            )
            convergence = render_convergence(roots)
            if convergence:
                print()
                print(convergence)
        if args.trace:
            print("\n" + _write_trace(roots, args.trace))
    _emit_metrics(reg)
    return 0 if all(r.ok for r in results) else 1


def _cmd_cache(args) -> int:
    import os

    from repro.cache import CACHE_DIR_ENV, CACHE_ENV, DiskStore

    directory = args.dir or os.environ.get(CACHE_DIR_ENV)
    if not directory:
        # A path-valued REPRO_CACHE doubles as the directory.
        value = os.environ.get(CACHE_ENV, "").strip()
        if value and value.lower() not in (
            "0", "off", "false", "no", "1", "on", "true", "yes"
        ):
            directory = value
    if not directory:
        print(
            "no cache directory configured; pass --dir, or set"
            f" {CACHE_DIR_ENV} or a path-valued {CACHE_ENV}",
            file=sys.stderr,
        )
        return 1
    store = DiskStore(directory)
    if args.action == "stats":
        st = store.stats()
        print(f"directory: {st['directory']}")
        print(f"entries:   {st['entries']}")
        print(
            f"bytes:     {st['bytes']}"
            f" (cap {st['max_bytes']})"
        )
    else:  # clear
        removed = store.clear()
        print(f"cleared {removed} entr(y/ies) from {directory}")
    return 0


def _parse_seeds(spec: str) -> range:
    """``A:B`` -> range(A, B); a bare ``N`` -> range(0, N)."""
    try:
        if ":" in spec:
            lo_s, hi_s = spec.split(":", 1)
            lo, hi = int(lo_s or 0), int(hi_s)
        else:
            lo, hi = 0, int(spec)
    except ValueError:
        raise SystemExit(f"bad --seeds {spec!r}; expected N or A:B")
    if hi <= lo:
        raise SystemExit(f"empty seed range {spec!r}")
    return range(lo, hi)


def _cmd_fuzz(args) -> int:
    from repro.check import run_fuzz
    from repro.core.registry import names

    seeds = _parse_seeds(args.seeds)
    mappers = None
    if args.mapper:
        mappers = [
            _resolve_mapper(m)
            for spec in args.mapper
            for m in spec.split(",")
        ]
    archs = None
    if args.arch:
        archs = [
            _resolve_arch(a)
            for spec in args.arch
            for a in spec.split(",")
        ]
    tracer = None
    with _obs_context(args) as ctx:
        if ctx is not None:
            tracer = ctx
        report = run_fuzz(
            seeds,
            mappers,
            archs,
            n_iters=args.iters,
            shrink=not args.no_shrink,
            timeout=args.timeout,
            log=args.log,
            fail_fast=args.fail_fast,
            jobs=args.jobs,
            metamorphic=not args.oracle_only,
        )
    n_mappers = len(mappers or names())
    print(
        f"fuzz: seeds {seeds.start}:{seeds.stop} rotating over"
        f" {n_mappers} mapper(s)"
    )
    print(f"fuzz: {report.summary()}")
    for d in report.divergences:
        print(f"  {d.headline()}")
        if d.shrunk_pretty:
            indented = "\n".join(
                "    " + line for line in d.shrunk_pretty.splitlines()
            )
            print(f"    shrunk to:\n{indented}")
    if args.emit_dir and report.divergences:
        import os

        os.makedirs(args.emit_dir, exist_ok=True)
        written = 0
        for d in report.divergences:
            if not d.reproducer:
                continue
            path = os.path.join(
                args.emit_dir,
                f"test_repro_seed{d.seed}_{d.mapper}.py",
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(d.reproducer)
            written += 1
        print(f"fuzz: wrote {written} reproducer(s) to {args.emit_dir}")
    if args.log and report.divergences:
        print(f"fuzz: appended failure log to {args.log}")
    _emit_obs(args, tracer)
    return 0 if report.ok else 1


def _cmd_table1(args) -> int:
    from repro.survey.taxonomy import (
        executable_table1,
        literature_table1,
        render_table1,
    )

    print(render_table1(literature_table1(), title="Table I (literature)"))
    print()
    print(render_table1(executable_table1(), title="Table I (this package)"))
    return 0


def _cmd_timeline(args) -> int:
    from repro.survey.timeline import render_timeline

    print(render_timeline())
    return 0


def _cmd_dse(args) -> int:
    from repro.bench import ascii_table
    from repro.cache import cache_scope
    from repro.dse import default_space, explore, pareto_front

    tracer = None
    with _obs_context(args) as ctx, cache_scope(
        _cache_option(args)
    ) as cache, _metrics_context(args) as reg:
        if ctx is not None:
            tracer = ctx
        points = explore(
            default_space() if args.full else None,
            jobs=args.jobs, timeout=args.timeout,
        )
    _emit_cache_stats(cache)
    rows = [
        {
            "architecture": p.label(),
            "perf": round(p.performance, 3),
            "cost": round(p.cost, 0),
            "mapped": f"{100 * p.success_rate:.0f}%",
        }
        for p in points
    ]
    print(ascii_table(rows, title="design-space sweep"))
    print("\nPareto frontier:")
    for p in pareto_front(points):
        print(f"  {p.label():30s} perf={p.performance:.3f} cost={p.cost:.0f}")
    _emit_obs(args, tracer)
    _emit_metrics(reg)
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.arch import presets
    from repro.bench import history

    arch = _resolve_arch(args.arch)
    # Non-default slices keep their own ledger files: the parallel
    # slice's timings measure the pool's steady state and the place
    # slice runs different cells on a different fabric class; neither
    # may be diffed against serial default entries.
    suffix = "" if args.slice == "default" else f"-{args.slice}"
    jobs = args.jobs if args.slice in ("parallel", "serve") else 1
    cells = {
        "place": history.PLACE_SLICE,
        "route": history.ROUTE_SLICE,
    }.get(args.slice, history.DEFAULT_SLICE)
    path = os.path.join(args.history_dir, f"{arch}{suffix}.jsonl")
    if args.action == "list":
        try:
            entries = history.load_entries(path)
        except ValueError as ex:  # corrupt ledger line
            print(f"error: {ex}", file=sys.stderr)
            return 2
        if not entries:
            print(f"no ledger at {path}", file=sys.stderr)
            return 1
        print(history.render_entries(entries))
        return 0

    def fresh_entry(note=None):
        if args.slice == "serve":
            return history.run_serve_slice(
                arch, repeats=args.repeats, label=note, jobs=jobs
            )
        return history.run_slice(
            presets.by_name(arch), cells=cells, repeats=args.repeats,
            label=note, jobs=jobs,
        )

    if args.action == "record":
        entry = fresh_entry(args.note)
        history.append_entry(entry, path)
        try:
            print(history.render_entries(history.load_entries(path)))
        except ValueError as ex:  # older line is corrupt; entry stands
            print(f"warning: {ex}", file=sys.stderr)
        print(f"\nrecorded entry -> {path}")
        return 0

    # compare: fresh slice vs a recorded baseline.
    try:
        base = history.select_baseline(
            history.load_entries(path), args.baseline
        )
    except ValueError as ex:
        print(f"error: {ex}", file=sys.stderr)
        return 2
    fresh = fresh_entry()
    tolerances = {}
    if args.time_tolerance is not None:
        tolerances["time"] = (
            args.time_tolerance, history.TOLERANCES["time"][1]
        )
    if args.count_tolerance is not None:
        tolerances["count"] = (
            args.count_tolerance, history.TOLERANCES["count"][1]
        )
    comparisons = history.compare_entries(
        base, fresh, tolerances=tolerances
    )
    print(history.render_comparison(comparisons, all_rows=args.all))
    if any(c.regressed for c in comparisons) and not args.warn_only:
        return 3
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.cache import cache_scope
    from repro.serve import MappingServer

    server = MappingServer(
        args.host, args.port, jobs=args.jobs, timeout=args.timeout
    )

    def _ready(srv: MappingServer) -> None:
        # A parseable readiness line: the CI smoke (and any wrapper
        # script) waits for it before submitting.
        print(
            f"serve: listening on {srv.host}:{srv.bound_port}",
            flush=True,
        )

    async def _main() -> None:
        with cache_scope(_cache_option(args)):
            await server.run_until_signalled(
                grace=args.grace, ready=_ready
            )

    asyncio.run(_main())
    print("serve: drained and stopped", flush=True)
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.serve.client import iter_submit

    if args.kernel:
        request = {
            "kernel": _resolve_kernel(args.kernel),
            "arch": _resolve_arch(args.arch),
            "mapper": _resolve_mapper(args.mapper),
        }
        if args.ii is not None:
            request["ii"] = args.ii
        if args.deadline_ms is not None:
            request["deadline_ms"] = args.deadline_ms
        requests = [request]
    else:
        if args.file and args.file != "-":
            try:
                with open(args.file) as fh:
                    text = fh.read()
            except OSError as ex:
                print(f"error: {ex}", file=sys.stderr)
                return 2
        else:
            text = sys.stdin.read()
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as ex:
            print(f"error: batch is not valid JSON: {ex}", file=sys.stderr)
            return 2
        if isinstance(doc, list):
            requests = doc
        elif isinstance(doc, dict) and isinstance(
            doc.get("requests"), list
        ):
            requests = doc["requests"]
        else:
            print(
                "error: expected a JSON array of requests or an object"
                " with a 'requests' array",
                file=sys.stderr,
            )
            return 2

    failed = False
    try:
        for resp in iter_submit(
            requests, host=args.host, port=args.port,
            timeout=args.connect_timeout,
        ):
            print(json.dumps(resp, sort_keys=True), flush=True)
            if "batch" not in resp and not resp.get("ok"):
                failed = True
    except (ConnectionError, OSError) as ex:
        print(
            f"error: cannot reach {args.host}:{args.port}: {ex}",
            file=sys.stderr,
        )
        return 2
    return 1 if failed else 0


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (1 = serial, the default)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget; overruns become failure rows",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="enable the content-addressed mapping cache",
    )
    group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="force caching off, overriding REPRO_CACHE",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache to DIR on disk as well (implies --cache)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write the span trace as JSONL to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase time/counter breakdown and"
             " convergence plots",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect process metrics; print the Prometheus exposition",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A canonical CGRA mapping framework (see README.md).",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="DEBUG logging for the repro.* hierarchy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list mappers, kernels or archs")
    p.add_argument("what", choices=["mappers", "kernels", "archs"])
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("map", help="map a kernel onto an architecture")
    p.add_argument(
        "kernel", nargs="?", default=None,
        help="kernel name (same as --kernel)",
    )
    p.add_argument("--kernel", dest="kernel_opt", default="dot_product")
    p.add_argument("--source", help="kernel-language source file instead")
    p.add_argument("--arch", default="simple4x4")
    p.add_argument("--mapper", default="list_sched")
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--show-contexts", action="store_true")
    _add_cache_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_map)

    p = sub.add_parser("compare", help="mapper x kernel matrix")
    p.add_argument("--kernels", default="dot_product,sobel_x")
    p.add_argument("--mappers", default="list_sched,edge_centric")
    p.add_argument("--arch", default="simple4x4")
    _add_parallel_flags(p)
    _add_cache_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser(
        "cache", help="inspect or clear the on-disk mapping cache"
    )
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument(
        "--dir", metavar="DIR", default=None,
        help="cache directory (default: REPRO_CACHE_DIR / REPRO_CACHE)",
    )
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzz: mappers vs the interpreter",
    )
    p.add_argument(
        "--seeds", default="0:50", metavar="A:B",
        help="seed range (half-open; a bare N means 0:N; default 0:50)",
    )
    p.add_argument(
        "--mapper", action="append", default=None, metavar="NAME",
        help="restrict to these mappers (repeatable / comma lists;"
             " default: every registered mapper, rotating with the seed)",
    )
    p.add_argument(
        "--arch", action="append", default=None, metavar="NAME",
        help="restrict to these presets (default: simple4x4, adres4x4,"
             " hycube4x4)",
    )
    p.add_argument(
        "--iters", type=int, default=4, metavar="N",
        help="iterations the semantic oracle observes (default 4)",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="report failures raw instead of delta-debugging them",
    )
    p.add_argument(
        "--oracle-only", action="store_true",
        help="skip metamorphic invariants (relabel/passes/fork replay)",
    )
    p.add_argument(
        "--log", metavar="FILE", default=None,
        help="append divergences to FILE as JSONL",
    )
    p.add_argument(
        "--emit-dir", metavar="DIR", default=None,
        help="write shrunk pytest reproducers into DIR",
    )
    p.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first unexplained divergence",
    )
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="perf-regression ledger: record runs, diff against them",
    )
    p.add_argument("action", choices=["record", "compare", "list"])
    p.add_argument(
        "baseline", nargs="?", default="last",
        help="for compare: 'last' (default), an entry index, or a"
             " git-sha prefix",
    )
    p.add_argument("--arch", default="simple4x4")
    p.add_argument(
        "--history-dir", metavar="DIR",
        default="benchmarks/history",
        help="ledger directory (one JSONL file per architecture)",
    )
    p.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="runs per cell; the ledger records the median (default 3)",
    )
    p.add_argument(
        "--slice",
        choices=["default", "parallel", "place", "route", "serve"],
        default="default",
        help="'parallel' runs the slice over the pre-warmed worker"
             " pool and keeps its own per-arch ledger file, so pool"
             " regressions are tracked separately from mapper ones;"
             " 'place' runs the large-fabric placement cells (pair"
             " with --arch simple16x16); 'serve' benchmarks warm"
             " batches through the in-process mapping daemon",
    )
    p.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for --slice parallel/serve (default 2)",
    )
    p.add_argument(
        "--note", default=None, metavar="TEXT",
        help="label stored in the recorded entry's manifest",
    )
    p.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soft mode)",
    )
    p.add_argument(
        "--all", action="store_true",
        help="show every compared quantity, not just regressions",
    )
    p.add_argument(
        "--time-tolerance", type=float, default=None, metavar="RTOL",
        help="relative tolerance for timing metrics (default 0.75)",
    )
    p.add_argument(
        "--count-tolerance", type=float, default=None, metavar="RTOL",
        help="relative tolerance for work counts (default 0.02)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="batch mapping daemon over the persistent worker pool",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 = pick a free one; default 8642)",
    )
    p.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="pool workers mapping requests (default 2)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline when a request carries no"
             " deadline_ms (default: none)",
    )
    p.add_argument(
        "--grace", type=float, default=None, metavar="SECONDS",
        help="per-rung budget of the pool's shutdown escalation"
             " ladder on SIGTERM/SIGINT",
    )
    _add_cache_flags(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a mapping batch to a running daemon"
    )
    p.add_argument(
        "file", nargs="?", default=None,
        help="batch JSON file ('-' or omitted = stdin; ignored with"
             " --kernel)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--kernel", default=None,
        help="build a one-request batch instead of reading a file",
    )
    p.add_argument("--arch", default="simple4x4")
    p.add_argument("--mapper", default="list_sched")
    p.add_argument("--ii", type=int, default=None)
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline for --kernel submissions",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="SECONDS",
        help="socket connect/read timeout (default 30)",
    )
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("table1", help="regenerate the survey's Table I")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("timeline", help="regenerate the survey's Fig. 4")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("dse", help="architecture design-space sweep")
    p.add_argument("--full", action="store_true")
    _add_parallel_flags(p)
    _add_cache_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_dse)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(
        logging.DEBUG if args.verbose else logging.WARNING
    )
    if args.fn is _cmd_map:
        # The positional kernel wins over the --kernel default.
        args.kernel = args.kernel or args.kernel_opt
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro list kernels | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
