"""Command-line interface.

The survey closes §IV-A with open-source frameworks that "provide a
ready for use tool to democratize the CGRAs" — so the package is also
a tool::

    python -m repro list mappers
    python -m repro map --kernel dot_product --arch simple4x4 \\
                        --mapper dresc --show-contexts
    python -m repro compare --kernels dot_product,sobel_x \\
                            --mappers list_sched,dresc,ilp
    python -m repro table1
    python -m repro timeline
    python -m repro dse

Every subcommand prints plain text and exits non-zero on failure, so
the CLI scripts cleanly.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_list(args) -> int:
    if args.what == "mappers":
        from repro.core.registry import catalog

        for name, meta in catalog().items():
            kinds = "/".join(meta["kinds"])
            tag = "exact" if meta["exact"] else meta["family"]
            print(
                f"{name:14s} {tag:13s} {meta['subfamily']:18s}"
                f" {kinds:16s} after {meta['modeled_after']}"
            )
    elif args.what == "kernels":
        from repro.ir import kernels

        for name in kernels.kernel_names():
            g = kernels.kernel(name)
            print(
                f"{name:16s} {g.op_count():3d} ops,"
                f" {g.num_edges():3d} deps,"
                f" {len(g.memory_ops()):2d} memory ops"
            )
    elif args.what == "archs":
        from repro.arch import presets

        for name in sorted(presets.PRESETS):
            cgra = presets.by_name(name)
            print(
                f"{name:14s} {cgra.width}x{cgra.height},"
                f" {len(cgra.links)} links,"
                f" contexts={cgra.n_contexts}"
            )
    return 0


def _cmd_map(args) -> int:
    from repro.api import map_dfg
    from repro.arch import presets
    from repro.core.exceptions import MapFailure
    from repro.core.metrics import metrics_of
    from repro.ir import kernels

    if args.source:
        from repro.api import compile_source

        cgra = presets.by_name(args.arch)
        with open(args.source) as fh:
            src = fh.read()
        try:
            mapping = compile_source(src, cgra, mapper=args.mapper)
        except MapFailure as ex:
            print(f"mapping failed: {ex}", file=sys.stderr)
            return 1
    else:
        dfg = kernels.kernel(args.kernel)
        cgra = presets.by_name(args.arch)
        try:
            mapping = map_dfg(
                dfg, cgra, mapper=args.mapper, ii=args.ii
            )
        except MapFailure as ex:
            print(f"mapping failed: {ex}", file=sys.stderr)
            return 1
    print(mapping.describe())
    print(f"\nmetrics: {metrics_of(mapping).row()}")
    if args.show_contexts and mapping.kind == "modulo":
        from repro.sim.configgen import render_contexts

        print("\n" + render_contexts(mapping))
    return 0


def _cmd_compare(args) -> int:
    from repro.arch import presets
    from repro.bench import ascii_table, run_matrix

    cgra = presets.by_name(args.arch)
    results = run_matrix(
        args.mappers.split(","), args.kernels.split(","), cgra
    )
    print(
        ascii_table(
            [r.row() for r in results],
            title=f"mapper x kernel on {cgra.name}",
        )
    )
    return 0 if all(r.ok for r in results) else 1


def _cmd_table1(args) -> int:
    from repro.survey.taxonomy import (
        executable_table1,
        literature_table1,
        render_table1,
    )

    print(render_table1(literature_table1(), title="Table I (literature)"))
    print()
    print(render_table1(executable_table1(), title="Table I (this package)"))
    return 0


def _cmd_timeline(args) -> int:
    from repro.survey.timeline import render_timeline

    print(render_timeline())
    return 0


def _cmd_dse(args) -> int:
    from repro.bench import ascii_table
    from repro.dse import default_space, explore, pareto_front

    points = explore(default_space() if args.full else None)
    rows = [
        {
            "architecture": p.label(),
            "perf": round(p.performance, 3),
            "cost": round(p.cost, 0),
            "mapped": f"{100 * p.success_rate:.0f}%",
        }
        for p in points
    ]
    print(ascii_table(rows, title="design-space sweep"))
    print("\nPareto frontier:")
    for p in pareto_front(points):
        print(f"  {p.label():30s} perf={p.performance:.3f} cost={p.cost:.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A canonical CGRA mapping framework (see README.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list mappers, kernels or archs")
    p.add_argument("what", choices=["mappers", "kernels", "archs"])
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("map", help="map a kernel onto an architecture")
    p.add_argument("--kernel", default="dot_product")
    p.add_argument("--source", help="kernel-language source file instead")
    p.add_argument("--arch", default="simple4x4")
    p.add_argument("--mapper", default="list_sched")
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--show-contexts", action="store_true")
    p.set_defaults(fn=_cmd_map)

    p = sub.add_parser("compare", help="mapper x kernel matrix")
    p.add_argument("--kernels", default="dot_product,sobel_x")
    p.add_argument("--mappers", default="list_sched,edge_centric")
    p.add_argument("--arch", default="simple4x4")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("table1", help="regenerate the survey's Table I")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("timeline", help="regenerate the survey's Fig. 4")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("dse", help="architecture design-space sweep")
    p.add_argument("--full", action="store_true")
    p.set_defaults(fn=_cmd_dse)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro list kernels | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
