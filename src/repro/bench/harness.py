"""Sweep runner and table renderer for the benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.metrics import metrics_of
from repro.core.registry import create
from repro.ir import kernels as kernel_lib

__all__ = ["MatrixResult", "ascii_table", "run_matrix"]


@dataclass
class MatrixResult:
    """Outcome of one (mapper, kernel) cell."""

    mapper: str
    kernel: str
    ok: bool
    ii: int | None = None
    schedule_length: int = 0
    utilization: float = 0.0
    route_steps: int = 0
    time_ms: float = 0.0
    error: str = ""

    def row(self) -> dict[str, Any]:
        return {
            "mapper": self.mapper,
            "kernel": self.kernel,
            "ok": "yes" if self.ok else "FAIL",
            "II": self.ii if self.ii is not None else "-",
            "len": self.schedule_length or "-",
            "util%": round(100 * self.utilization, 1) if self.ok else "-",
            "routes": self.route_steps if self.ok else "-",
            "time_ms": round(self.time_ms, 1),
        }


def run_matrix(
    mappers: Sequence[str],
    kernels: Sequence[str],
    cgra: CGRA,
    *,
    ii: int | None = None,
    mapper_opts: dict[str, dict] | None = None,
) -> list[MatrixResult]:
    """Run every mapper on every kernel; failures become rows, not errors."""
    out: list[MatrixResult] = []
    opts = mapper_opts or {}
    for mname in mappers:
        for kname in kernels:
            dfg = kernel_lib.kernel(kname)
            t0 = time.perf_counter()
            try:
                mapping = create(mname, **opts.get(mname, {})).map(
                    dfg, cgra, ii=ii
                )
                met = metrics_of(mapping)
                out.append(
                    MatrixResult(
                        mapper=mname,
                        kernel=kname,
                        ok=met.valid,
                        ii=mapping.ii,
                        schedule_length=met.schedule_length,
                        utilization=met.utilization,
                        route_steps=met.route_steps,
                        time_ms=1000 * (time.perf_counter() - t0),
                    )
                )
            except MapFailure as ex:
                out.append(
                    MatrixResult(
                        mapper=mname,
                        kernel=kname,
                        ok=False,
                        time_ms=1000 * (time.perf_counter() - t0),
                        error=str(ex),
                    )
                )
    return out


def ascii_table(
    rows: Sequence[dict[str, Any]], *, title: str = ""
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return title
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in cols
    }

    def fmt(vals):
        return " | ".join(
            str(v).ljust(widths[c]) for c, v in zip(cols, vals)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cols))
    lines.append("-+-".join("-" * widths[c] for c in cols))
    lines.extend(fmt([r.get(c, "") for c in cols]) for r in rows)
    return "\n".join(lines)
