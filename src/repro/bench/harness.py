"""Sweep runner and table renderer for the benchmarks.

``run_matrix`` runs serially by default; with ``jobs=N`` the cells
fan out over :func:`repro.parallel.pmap` — deterministic row order,
per-cell ``timeout`` overruns surfacing as failure rows, and traces
pickled back from the workers.  ``cache`` opts a sweep into the
content-addressed mapping cache (:mod:`repro.cache`): repeated cells
hit instead of re-mapping, workers share the disk tier, their
hit/miss deltas are folded back into the parent's stats, and
identical cells *within* one parallel batch dedupe onto a single
execution (keyed by the cache's content address).
"""

from __future__ import annotations

import logging
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from os import PathLike
from typing import Any, Sequence

from repro.arch.cgra import CGRA
from repro.cache import MappingCache, cache_scope, get_cache
from repro.core.exceptions import MapFailure
from repro.core.metrics import metrics_of
from repro.core.registry import create
from repro.ir import kernels as kernel_lib
from repro.obs.metrics import MATRIX_CELLS_TOTAL, get_metrics
from repro.obs.tracer import Span, Tracer, tracing
from repro.parallel import TaskTimeout, pmap, time_limit

__all__ = ["MatrixResult", "ascii_table", "run_matrix"]

_log = logging.getLogger("repro.bench.harness")

#: width budget of the ``error`` column in :meth:`MatrixResult.row`
ERROR_COLUMN_WIDTH = 48


def _truncate(text: str, width: int = ERROR_COLUMN_WIDTH) -> str:
    text = " ".join(text.split())  # collapse newlines/runs for the table
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


@dataclass
class MatrixResult:
    """Outcome of one (mapper, kernel) cell.

    ``time_ms`` is the mapper's own wall-clock (``Mapping.map_time``);
    ``total_ms`` additionally includes kernel construction, metric
    extraction, and — on failure — the whole failed attempt.
    """

    mapper: str
    kernel: str
    ok: bool
    ii: int | None = None
    schedule_length: int = 0
    utilization: float = 0.0
    route_steps: int = 0
    time_ms: float = 0.0
    total_ms: float = 0.0
    error: str = ""
    trace: Span | None = field(default=None, repr=False, compare=False)

    def row(self) -> dict[str, Any]:
        return {
            "mapper": self.mapper,
            "kernel": self.kernel,
            "ok": "yes" if self.ok else "FAIL",
            "II": self.ii if self.ii is not None else "-",
            "len": self.schedule_length or "-",
            "util%": round(100 * self.utilization, 1) if self.ok else "-",
            "routes": self.route_steps if self.ok else "-",
            "time_ms": round(self.time_ms, 1),
            "error": _truncate(self.error),
        }


def _run_cell(
    mname: str,
    kname: str,
    cgra: CGRA,
    ii: int | None,
    opts: dict,
    trace: bool,
    timeout: float | None = None,
) -> MatrixResult:
    """One (mapper, kernel) cell — shared by the serial and pool paths."""
    get_metrics().counter(MATRIX_CELLS_TOTAL).inc()
    dfg = kernel_lib.kernel(kname)
    # Built outside the timed region: the first create() of a process
    # triggers the registry's lazy mapper/solver imports, and an alarm
    # landing mid-import corrupts the half-imported modules instead of
    # timing out the cell.  The budget covers the mapping run only.
    mapper = create(mname, **opts)
    tracer = Tracer() if trace else None
    ctx = tracing(tracer) if trace else nullcontext()
    t0 = time.perf_counter()
    try:
        with ctx:
            with time_limit(timeout):
                mapping = mapper.map(dfg, cgra, ii=ii)
        total_ms = 1000 * (time.perf_counter() - t0)
        met = metrics_of(mapping)
        return MatrixResult(
            mapper=mname,
            kernel=kname,
            ok=met.valid,
            ii=mapping.ii,
            schedule_length=met.schedule_length,
            utilization=met.utilization,
            route_steps=met.route_steps,
            time_ms=1000 * mapping.map_time,
            total_ms=total_ms,
            trace=mapping.trace,
        )
    except (MapFailure, TaskTimeout) as ex:
        total_ms = 1000 * (time.perf_counter() - t0)
        _log.warning(
            "run_matrix: %s on %s failed: %s", mname, kname, ex
        )
        return MatrixResult(
            mapper=mname,
            kernel=kname,
            ok=False,
            time_ms=total_ms,
            total_ms=total_ms,
            error=str(ex),
            trace=tracer.root if tracer is not None else None,
        )


def _cell_task(
    cgra: CGRA, task: tuple
) -> tuple[MatrixResult, dict | None]:
    """pmap payload: unpack one cell (module-level for pickling).

    The architecture rides in as the batch-``shared`` value — shipped
    to each worker once per batch instead of once per cell.  Returns
    the result plus this cell's cache-stats delta so the parent can
    fold worker hits/misses into its own totals (workers get a fresh
    per-batch cache; only the disk tier is shared, the counters are
    not).
    """
    mname, kname, ii, opts, trace = task
    cache = get_cache()
    before = cache.stats.snapshot() if cache is not None else None
    result = _run_cell(mname, kname, cgra, ii, opts, trace)
    delta = (
        cache.stats.delta_since(before) if cache is not None else None
    )
    return result, delta


def _cell_keys(
    cells: Sequence[tuple], cgra: CGRA, active: MappingCache | None
) -> list[str | None] | None:
    """Content-addressed dedup keys for a parallel sweep's cells.

    Only computed when the mapping cache is on — the cache key *is*
    the content address (canonical DFG + arch digests, mapper name,
    seed, requested II, config token), so two cells with equal keys
    would produce byte-identical mappings and in-batch dedup is safe.
    With caching off every cell runs, keeping parallel work (and so
    metrics totals) exactly equal to the serial sweep's.  A cell whose
    key cannot be computed (unknown kernel, bad opts) gets None and
    runs normally — its error surfaces from the worker like any other.
    """
    if active is None:
        return None
    keys: list[str | None] = []
    for mname, kname, ii, opts, _trace in cells:
        try:
            mapper = create(mname, **opts)
            keys.append(
                active.key(
                    kernel_lib.kernel(kname),
                    cgra,
                    mapper=mapper.info.name,
                    seed=mapper.seed,
                    ii=ii,
                    token=mapper.cache_token(),
                )
            )
        except Exception:
            keys.append(None)
    return keys


def run_matrix(
    mappers: Sequence[str],
    kernels: Sequence[str],
    cgra: CGRA,
    *,
    ii: int | None = None,
    mapper_opts: dict[str, dict] | None = None,
    trace: bool = False,
    jobs: int = 1,
    timeout: float | None = None,
    cache: bool | str | PathLike | MappingCache | None = None,
) -> list[MatrixResult]:
    """Run every mapper on every kernel; failures become rows, not errors.

    With ``trace=True`` each cell runs under its own tracer and the
    resulting root span is attached to :attr:`MatrixResult.trace`.
    ``jobs > 1`` distributes cells over a process pool (same rows, same
    order; only the timing fields differ from a serial run).
    ``timeout`` bounds each cell's wall-clock in seconds; an overrun
    becomes a failure row with a timeout error, never a hung sweep.
    ``cache`` follows :func:`repro.cache.cache_scope` semantics:
    ``None`` inherits the ambient state (default), ``False`` forces
    caching off, ``True`` enables the in-process tier, a path adds a
    disk tier the worker processes share.
    """
    opts = mapper_opts or {}
    cells = [
        (mname, kname, ii, opts.get(mname, {}), trace)
        for mname in mappers
        for kname in kernels
    ]
    with cache_scope(cache) as active:
        if jobs <= 1:
            return [
                _run_cell(
                    mname, kname, cgra, c_ii, c_opts, c_trace,
                    timeout=timeout,
                )
                for mname, kname, c_ii, c_opts, c_trace in cells
            ]
        out: list[MatrixResult] = []
        for res, cell in zip(
            pmap(
                _cell_task, cells, jobs=jobs, timeout=timeout,
                shared=cgra, keys=_cell_keys(cells, cgra, active),
            ),
            cells,
        ):
            if res.ok:
                row, delta = res.value
                if active is not None:
                    if res.deduped:
                        # A serial sweep's duplicate cell performs a
                        # real cache get (a hit, once its primary's
                        # mapping is stored); book the same hit for the
                        # deduped copy so hit/miss totals stay equal
                        # across jobs values.
                        active.stats.hits += 1
                    else:
                        active.stats.merge(delta)
                out.append(row)
                continue
            if not res.timed_out:
                raise res.error  # mirror the serial path: only
                # MapFailure and timeouts become rows; anything else
                # propagates.
            mname, kname = cell[0], cell[1]
            _log.warning(
                "run_matrix: %s on %s failed: %s", mname, kname, res.error
            )
            out.append(
                MatrixResult(
                    mapper=mname,
                    kernel=kname,
                    ok=False,
                    time_ms=1000 * res.elapsed,
                    total_ms=1000 * res.elapsed,
                    error=str(res.error),
                )
            )
    return out


def ascii_table(
    rows: Sequence[dict[str, Any]], *, title: str = ""
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return title
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in cols
    }

    def fmt(vals):
        return " | ".join(
            str(v).ljust(widths[c]) for c, v in zip(cols, vals)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cols))
    lines.append("-+-".join("-" * widths[c] for c in cols))
    lines.extend(fmt([r.get(c, "") for c in cols]) for r in rows)
    return "\n".join(lines)
