"""Sweep runner and table renderer for the benchmarks."""

from __future__ import annotations

import logging
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.metrics import metrics_of
from repro.core.registry import create
from repro.ir import kernels as kernel_lib
from repro.obs.tracer import Span, Tracer, tracing

__all__ = ["MatrixResult", "ascii_table", "run_matrix"]

_log = logging.getLogger("repro.bench.harness")

#: width budget of the ``error`` column in :meth:`MatrixResult.row`
ERROR_COLUMN_WIDTH = 48


def _truncate(text: str, width: int = ERROR_COLUMN_WIDTH) -> str:
    text = " ".join(text.split())  # collapse newlines/runs for the table
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


@dataclass
class MatrixResult:
    """Outcome of one (mapper, kernel) cell.

    ``time_ms`` is the mapper's own wall-clock (``Mapping.map_time``);
    ``total_ms`` additionally includes kernel construction, metric
    extraction, and — on failure — the whole failed attempt.
    """

    mapper: str
    kernel: str
    ok: bool
    ii: int | None = None
    schedule_length: int = 0
    utilization: float = 0.0
    route_steps: int = 0
    time_ms: float = 0.0
    total_ms: float = 0.0
    error: str = ""
    trace: Span | None = field(default=None, repr=False, compare=False)

    def row(self) -> dict[str, Any]:
        return {
            "mapper": self.mapper,
            "kernel": self.kernel,
            "ok": "yes" if self.ok else "FAIL",
            "II": self.ii if self.ii is not None else "-",
            "len": self.schedule_length or "-",
            "util%": round(100 * self.utilization, 1) if self.ok else "-",
            "routes": self.route_steps if self.ok else "-",
            "time_ms": round(self.time_ms, 1),
            "error": _truncate(self.error),
        }


def run_matrix(
    mappers: Sequence[str],
    kernels: Sequence[str],
    cgra: CGRA,
    *,
    ii: int | None = None,
    mapper_opts: dict[str, dict] | None = None,
    trace: bool = False,
) -> list[MatrixResult]:
    """Run every mapper on every kernel; failures become rows, not errors.

    With ``trace=True`` each cell runs under its own tracer and the
    resulting root span is attached to :attr:`MatrixResult.trace`.
    """
    out: list[MatrixResult] = []
    opts = mapper_opts or {}
    for mname in mappers:
        for kname in kernels:
            dfg = kernel_lib.kernel(kname)
            tracer = Tracer() if trace else None
            ctx = tracing(tracer) if trace else nullcontext()
            t0 = time.perf_counter()
            try:
                with ctx:
                    mapping = create(mname, **opts.get(mname, {})).map(
                        dfg, cgra, ii=ii
                    )
                total_ms = 1000 * (time.perf_counter() - t0)
                met = metrics_of(mapping)
                out.append(
                    MatrixResult(
                        mapper=mname,
                        kernel=kname,
                        ok=met.valid,
                        ii=mapping.ii,
                        schedule_length=met.schedule_length,
                        utilization=met.utilization,
                        route_steps=met.route_steps,
                        time_ms=1000 * mapping.map_time,
                        total_ms=total_ms,
                        trace=mapping.trace,
                    )
                )
            except MapFailure as ex:
                total_ms = 1000 * (time.perf_counter() - t0)
                _log.warning(
                    "run_matrix: %s on %s failed: %s", mname, kname, ex
                )
                out.append(
                    MatrixResult(
                        mapper=mname,
                        kernel=kname,
                        ok=False,
                        time_ms=total_ms,
                        total_ms=total_ms,
                        error=str(ex),
                        trace=tracer.root if tracer is not None else None,
                    )
                )
    return out


def ascii_table(
    rows: Sequence[dict[str, Any]], *, title: str = ""
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return title
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in cols
    }

    def fmt(vals):
        return " | ".join(
            str(v).ljust(widths[c]) for c, v in zip(cols, vals)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cols))
    lines.append("-+-".join("-" * widths[c] for c in cols))
    lines.extend(fmt([r.get(c, "") for c in cols]) for r in rows)
    return "\n".join(lines)
