"""The perf-regression ledger: record benchmark runs, diff them later.

A *ledger entry* is one JSON line: the run's provenance manifest
(:func:`repro.obs.manifest.run_manifest` — git sha, seed, python,
wall-clock anchor, architecture fingerprint), the median-of-k timing
of a small fixed slice of (mapper, kernel) cells, and the metrics
snapshot the slice produced (:mod:`repro.obs.metrics`).  ``repro bench
record`` appends one entry per architecture file under
``benchmarks/history/``; ``repro bench compare BASELINE`` re-runs the
slice and diffs it against a recorded entry.

Comparison is **noise-aware**: timings are medians of ``repeats``
runs and judged against a per-class relative tolerance plus an
absolute floor (sub-millisecond cells jitter by large factors), while
deterministic work counts (counters, histogram event counts, cell II)
get a tight tolerance — an II regression or a 2x blowup in explored
candidates is a real regression even when the wall-clock got lucky.
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.arch.cgra import CGRA
from repro.bench.harness import MatrixResult, _run_cell, ascii_table
from repro.obs.manifest import run_manifest
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.parallel import pmap, warm_pool

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_REPEATS",
    "DEFAULT_SLICE",
    "PLACE_SLICE",
    "ROUTE_SLICE",
    "SERVE_BATCH",
    "Comparison",
    "append_entry",
    "compare_entries",
    "load_entries",
    "render_comparison",
    "render_entries",
    "run_serve_slice",
    "run_slice",
    "select_baseline",
]

#: Ledger entry schema version (bump on incompatible shape changes).
ENTRY_SCHEMA = 1

DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")

#: The fixed slice: cheap, deterministic cells covering a constructive
#: heuristic, a routing-aware method, and an annealer — enough signal
#: to catch a hot-path regression without a minutes-long sweep.
DEFAULT_SLICE = (
    ("list_sched", "dot_product"),
    ("edge_centric", "sobel_x"),
    ("dresc", "dot_product"),
)

#: The large-fabric placement slice (``repro bench record --slice
#: place --arch simple16x16``): the clustered two-phase placer on a
#: 200-op dataflow chain — the scale the flat annealer cannot reach —
#: plus the flat annealer on the same instance as the contrast cell
#: (recorded failing; a baseline where it *starts* succeeding is also
#: a change worth noticing).  Guards the partition -> analytical seed
#: -> batched-refine pipeline's wall-clock, which no 4x4 cell
#: exercises.
PLACE_SLICE = (
    ("cluster", "layered:200:1:1"),
    ("cluster", "layered:120:1:7"),
    ("sa_spatial", "layered:200:1:1"),
)

#: The negotiated-routing slice (``repro bench record --slice route
#: --arch simple16x16|simple32x32``): clustered placement of long
#: dataflow chains, whose route-repair loop leans on the flat
#: PathFinder negotiation (:mod:`repro.mappers.routecore`) — the
#: wall-clock these cells guard is dominated by spatial routing, not
#: placement.  All three cells succeed on both fabrics, so ``.ok``
#: flips are real regressions.
ROUTE_SLICE = (
    ("cluster", "layered:150:1:1"),
    ("cluster", "layered:120:1:5"),
    ("cluster", "layered:200:1:1"),
)

#: The serving-slice batch (``repro bench record --slice serve``): a
#: mixed warm batch through the in-process daemon — three distinct
#: problems, two byte-identical duplicates (exercising in-batch
#: dedup), and one same-kernel/different-mapper request that must NOT
#: collapse.  ``run_serve_slice`` appends the target ``arch`` to each.
SERVE_BATCH = (
    {"kernel": "dot_product"},
    {"kernel": "fir4"},
    {"kernel": "sobel_x"},
    {"kernel": "dot_product"},
    {"kernel": "fir4"},
    {"kernel": "dot_product", "mapper": "edge_centric"},
)

DEFAULT_REPEATS = 3

#: (relative tolerance, absolute floor) per metric class.  Timings are
#: noisy — medians still wobble under machine load — so the bar is
#: high; event counts are deterministic, so it is tight.
TOLERANCES = {
    "time": (0.75, 10.0),
    "count": (0.02, 0.0),
}


def _metric_class(name: str) -> str:
    return "time" if name.endswith("_ms") or name.endswith("_sum") else "count"


# ---------------------------------------------------------------------------
def _slice_cell(cgra: CGRA, cell: tuple[str, str]) -> MatrixResult:
    """pmap payload for the parallel slice (module-level for pickling)."""
    mname, kname = cell
    return _run_cell(mname, kname, cgra, None, {}, False)


def run_slice(
    cgra: CGRA,
    *,
    cells: Sequence[tuple[str, str]] = DEFAULT_SLICE,
    repeats: int = DEFAULT_REPEATS,
    label: str | None = None,
    jobs: int = 1,
) -> dict[str, Any]:
    """Run the slice and build one (not yet appended) ledger entry.

    Each cell runs ``repeats`` times; the entry records the median
    mapper wall-clock per cell, and the metrics snapshot of the whole
    slice (every repeat counted — comparisons normalise by
    ``repeats``).

    ``jobs > 1`` runs each repeat's cells over the persistent worker
    pool (warmed *before* the timed region, so the entry measures the
    steady state this ledger slice exists to guard).  Work counts stay
    identical to the serial slice; only the timings reflect the pool.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if jobs > 1:
        warm_pool(jobs)
    registry = MetricsRegistry()
    rows: list[dict[str, Any]] = []
    with metrics_scope(registry):
        cells = list(cells)
        per_cell: list[list[MatrixResult]] = [[] for _ in cells]
        for _ in range(repeats):
            if jobs > 1:
                for ci, res in enumerate(
                    pmap(_slice_cell, cells, jobs=jobs, shared=cgra)
                ):
                    if not res.ok:
                        raise res.error
                    per_cell[ci].append(res.value)
            else:
                for ci, (mname, kname) in enumerate(cells):
                    per_cell[ci].append(
                        _run_cell(mname, kname, cgra, None, {}, False)
                    )
        for (mname, kname), runs in zip(cells, per_cell):
            times = sorted(r.time_ms for r in runs)
            rep = runs[0]
            rows.append(
                {
                    "mapper": mname,
                    "kernel": kname,
                    "ok": all(r.ok for r in runs),
                    "ii": rep.ii,
                    "time_ms": round(statistics.median(times), 3),
                    "time_ms_min": round(times[0], 3),
                }
            )
    entry: dict[str, Any] = {
        "schema": ENTRY_SCHEMA,
        "manifest": run_manifest(cgra=cgra, label=label),
        "repeats": repeats,
        "jobs": jobs,
        "cells": rows,
        "metrics": registry.snapshot(),
    }
    return entry


# ---------------------------------------------------------------------------
def run_serve_slice(
    arch: str,
    *,
    repeats: int = DEFAULT_REPEATS,
    label: str | None = None,
    jobs: int = 2,
) -> dict[str, Any]:
    """Run the serving slice and build one (not yet appended) entry.

    Boots an in-process :class:`~repro.serve.daemon.MappingServer`,
    submits :data:`SERVE_BATCH` through the real client ``repeats``
    times, and records three cells the generic comparator understands:

    * ``serve/batchN`` — client wall-clock for the warm mixed batch
      (validation + dedup + pool dispatch + streaming, end to end);
    * ``serve/single`` — a one-request batch, the per-batch overhead
      floor (its ``ii`` is recorded, so an II regression in the served
      mapping is caught like any other cell's);
    * ``direct/batchN`` — the same requests mapped serially in
      process, no daemon and no dedup: the contrast cell that says
      what serving costs (or saves) over calling the library.

    A throwaway warm-up server takes the pool-fork and first-import
    costs before anything is timed; the entry's metrics snapshot then
    covers exactly the timed repeats, so the SERVE_* and pool counters
    diff deterministically under ``compare_entries``.
    """
    import asyncio
    import time

    from repro.api import map_dfg
    from repro.arch import presets
    from repro.ir import kernels
    from repro.serve.client import submit
    from repro.serve.daemon import MappingServer

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cgra = presets.by_name(arch)
    batch = [dict(req, arch=arch) for req in SERVE_BATCH]
    single = [{"kernel": "dot_product", "arch": arch}]
    batch_cell = f"batch{len(batch)}"
    registry = MetricsRegistry()

    async def drive() -> dict[str, Any]:
        loop = asyncio.get_running_loop()

        def timed_submit(port: int, reqs: list) -> tuple:
            t0 = time.perf_counter()
            responses, summary = submit(reqs, port=port)
            return 1000.0 * (time.perf_counter() - t0), responses, summary

        async with MappingServer(jobs=jobs) as warm:
            await loop.run_in_executor(
                None, timed_submit, warm.bound_port, batch
            )
        times: dict[str, list[float]] = {batch_cell: [], "single": []}
        ok = {batch_cell: True, "single": True}
        single_ii: int | None = None
        async with MappingServer(jobs=jobs, registry=registry) as server:
            port = server.bound_port
            for _ in range(repeats):
                for cell, reqs in ((batch_cell, batch), ("single", single)):
                    ms, responses, summary = await loop.run_in_executor(
                        None, timed_submit, port, reqs
                    )
                    times[cell].append(ms)
                    if summary["errors"]:
                        ok[cell] = False
                    if cell == "single" and responses[0].get("ok"):
                        single_ii = responses[0]["ii"]
        return {"times": times, "ok": ok, "single_ii": single_ii}

    served = asyncio.run(drive())

    direct_times: list[float] = []
    direct_ok = True
    with metrics_scope(registry):
        for _ in range(repeats):
            t0 = time.perf_counter()
            for req in batch:
                try:
                    map_dfg(
                        kernels.kernel(req["kernel"]), cgra,
                        mapper=req.get("mapper", "list_sched"),
                    )
                except Exception:
                    direct_ok = False
            direct_times.append(1000.0 * (time.perf_counter() - t0))

    def row(mapper: str, kernel: str, runs: list[float],
            okay: bool, ii: int | None) -> dict[str, Any]:
        runs = sorted(runs)
        return {
            "mapper": mapper,
            "kernel": kernel,
            "ok": okay,
            "ii": ii,
            "time_ms": round(statistics.median(runs), 3),
            "time_ms_min": round(runs[0], 3),
        }

    return {
        "schema": ENTRY_SCHEMA,
        "manifest": run_manifest(cgra=cgra, label=label),
        "repeats": repeats,
        "jobs": jobs,
        "cells": [
            row("serve", batch_cell, served["times"][batch_cell],
                served["ok"][batch_cell], None),
            row("serve", "single", served["times"]["single"],
                served["ok"]["single"], served["single_ii"]),
            row("direct", batch_cell, direct_times, direct_ok, None),
        ],
        "metrics": registry.snapshot(),
    }


# ---------------------------------------------------------------------------
def append_entry(entry: dict[str, Any], path: str) -> None:
    """Append one entry to the JSONL ledger at ``path`` (dirs created)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_entries(path: str) -> list[dict[str, Any]]:
    """All ledger entries at ``path`` (oldest first; [] when absent).

    A line that is not valid JSON — a truncated append, a botched
    hand-edit — raises a ValueError naming the file and line so the
    CLI can report it instead of tracebacking.
    """
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as ex:
                raise ValueError(
                    f"corrupt ledger entry at {path}:{lineno} ({ex.msg})"
                    " — fix or remove that line and re-record"
                ) from None
    return entries


def select_baseline(
    entries: Sequence[dict[str, Any]], spec: str = "last"
) -> dict[str, Any]:
    """Pick a baseline entry: ``"last"``, an integer index (negative
    counts from the end), or a git-sha prefix (newest match wins)."""
    if not entries:
        raise ValueError("ledger is empty — run `repro bench record` first")
    if spec == "last":
        return entries[-1]
    try:
        return entries[int(spec)]
    except (ValueError, IndexError) as ex:
        if isinstance(ex, IndexError):
            raise ValueError(
                f"ledger has {len(entries)} entries, no index {spec}"
            ) from None
    for entry in reversed(entries):
        sha = (entry.get("manifest") or {}).get("git_sha") or ""
        if sha.startswith(spec):
            return entry
    raise ValueError(f"no ledger entry with git sha prefix {spec!r}")


# ---------------------------------------------------------------------------
@dataclass
class Comparison:
    """One compared quantity; ``regressed`` drives the exit code."""

    metric: str
    cls: str  #: tolerance class, "time" or "count"
    base: float
    new: float
    regressed: bool

    @property
    def delta_pct(self) -> float:
        if self.base == 0:
            return 0.0 if self.new == 0 else float("inf")
        return 100.0 * (self.new - self.base) / self.base

    def row(self) -> dict[str, Any]:
        pct = self.delta_pct
        return {
            "metric": self.metric,
            "class": self.cls,
            "base": round(self.base, 3),
            "new": round(self.new, 3),
            "delta": "inf" if pct == float("inf") else f"{pct:+.1f}%",
            "verdict": "REGRESSED" if self.regressed else "ok",
        }


def _exceeds(new: float, base: float, tol: tuple[float, float]) -> bool:
    rtol, atol = tol
    return new > base * (1.0 + rtol) + atol


def _flat_metrics(
    metrics: dict[str, Any], repeats: int
) -> dict[str, tuple[str, float]]:
    """Snapshot -> {flat name: (class, per-repeat value)} for diffing.

    Counters and histogram event counts are deterministic per repeat;
    histogram sums of ``*_ms`` metrics are timings.  Gauges are
    point-in-time readings, not work, and are skipped.
    """
    flat: dict[str, tuple[str, float]] = {}
    scale = 1.0 / max(1, repeats)
    for name, data in (metrics or {}).items():
        kind = data.get("type")
        if kind == "counter":
            flat[name] = (_metric_class(name), data["value"] * scale)
        elif kind == "histogram":
            flat[f"{name}.count"] = ("count", data["count"] * scale)
            flat[f"{name}.sum"] = (
                _metric_class(f"{name}_sum" if not name.endswith("_ms") else name),
                data["sum"] * scale,
            )
    return flat


def compare_entries(
    base: dict[str, Any],
    new: dict[str, Any],
    *,
    tolerances: dict[str, tuple[float, float]] | None = None,
) -> list[Comparison]:
    """Diff two ledger entries; returns one :class:`Comparison` per
    quantity, regressions flagged per the class tolerances.

    Compared: per-cell median time (time class), per-cell II and
    success (exact — a lost mapping or a worse II always regresses),
    and the per-repeat metric totals (count class, except ``*_ms``
    histogram sums).  Cells or metrics present on only one side are
    reported with the other side as 0.
    """
    tol = dict(TOLERANCES)
    tol.update(tolerances or {})
    out: list[Comparison] = []

    base_cells = {
        (c["mapper"], c["kernel"]): c for c in base.get("cells", [])
    }
    new_cells = {
        (c["mapper"], c["kernel"]): c for c in new.get("cells", [])
    }
    for key in sorted(base_cells.keys() | new_cells.keys()):
        b, n = base_cells.get(key), new_cells.get(key)
        cell = f"{key[0]}/{key[1]}"
        if b is None or n is None:
            out.append(
                Comparison(
                    f"{cell}.present", "count",
                    float(b is not None), float(n is not None),
                    regressed=n is None,
                )
            )
            continue
        out.append(
            Comparison(
                f"{cell}.ok", "count",
                float(b["ok"]), float(n["ok"]),
                regressed=bool(b["ok"]) and not n["ok"],
            )
        )
        if b.get("ii") is not None or n.get("ii") is not None:
            bii = float(b.get("ii") or 0)
            nii = float(n.get("ii") or 0)
            out.append(
                Comparison(
                    f"{cell}.ii", "count", bii, nii,
                    regressed=nii > bii,
                )
            )
        out.append(
            Comparison(
                f"{cell}.time_ms", "time",
                b["time_ms"], n["time_ms"],
                regressed=_exceeds(n["time_ms"], b["time_ms"], tol["time"]),
            )
        )

    base_flat = _flat_metrics(base.get("metrics"), base.get("repeats", 1))
    new_flat = _flat_metrics(new.get("metrics"), new.get("repeats", 1))
    for name in sorted(base_flat.keys() | new_flat.keys()):
        cls, bval = base_flat.get(name, (None, 0.0))
        ncls, nval = new_flat.get(name, (None, 0.0))
        cls = cls or ncls or "count"
        out.append(
            Comparison(
                name, cls, bval, nval,
                regressed=_exceeds(nval, bval, tol[cls]),
            )
        )
    return out


def render_comparison(
    comparisons: Iterable[Comparison], *, all_rows: bool = False
) -> str:
    """ASCII report; by default only regressions plus a one-line tally."""
    comparisons = list(comparisons)
    regressed = [c for c in comparisons if c.regressed]
    shown = comparisons if all_rows else regressed
    parts = []
    if shown:
        parts.append(
            ascii_table([c.row() for c in shown], title="bench compare")
        )
    parts.append(
        f"{len(regressed)} regression(s) across"
        f" {len(comparisons)} compared quantities"
    )
    return "\n".join(parts)


def render_entries(entries: Sequence[dict[str, Any]]) -> str:
    """One ledger line per entry: index, sha, time, slice summary."""
    rows = []
    for i, entry in enumerate(entries):
        manifest = entry.get("manifest") or {}
        cells = entry.get("cells", [])
        total = sum(c.get("time_ms", 0.0) for c in cells)
        rows.append(
            {
                "idx": i,
                "git_sha": (manifest.get("git_sha") or "?")[:12],
                "unix_time": int(manifest.get("unix_time") or 0),
                "label": manifest.get("label") or "",
                "cells": len(cells),
                "ok": sum(1 for c in cells if c.get("ok")),
                "total_ms": round(total, 1),
            }
        )
    return ascii_table(rows, title="bench history")
