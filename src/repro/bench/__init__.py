"""Benchmark harness utilities.

:func:`run_matrix` sweeps mapper x kernel grids and collects the
metrics the survey's quality criteria name (II, utilisation, mapping
time, success); :func:`ascii_table` renders result rows the way the
paper prints its tables.
"""

from repro.bench.harness import MatrixResult, ascii_table, run_matrix

__all__ = ["MatrixResult", "ascii_table", "run_matrix"]
