"""Benchmark harness utilities.

:func:`run_matrix` sweeps mapper x kernel grids and collects the
metrics the survey's quality criteria name (II, utilisation, mapping
time, success); :func:`ascii_table` renders result rows the way the
paper prints its tables.  :mod:`repro.bench.history` is the
perf-regression ledger behind ``repro bench record`` / ``compare``.
"""

from repro.bench.harness import MatrixResult, ascii_table, run_matrix
from repro.bench.history import (
    DEFAULT_HISTORY_DIR,
    DEFAULT_SLICE,
    append_entry,
    compare_entries,
    load_entries,
    render_comparison,
    render_entries,
    run_slice,
    select_baseline,
)

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_SLICE",
    "MatrixResult",
    "append_entry",
    "ascii_table",
    "compare_entries",
    "load_entries",
    "render_comparison",
    "render_entries",
    "run_matrix",
    "run_slice",
    "select_baseline",
]
