"""Space-time resource accounting.

One :class:`Occupancy` instance tracks who uses what on the folded
(modulo) or plain time axis — the same structure serves

* the validator (:meth:`repro.core.mapping.Mapping.validate` replays a
  finished mapping through it), and
* constructive mappers/routers, which query ``can_*`` before committing
  and ``release_*`` when tearing moves apart (simulated annealing).

Resources per ``(cell, slot)`` (slot = absolute cycle mod II for
modulo mappings):

==========  ======================================  ===================
resource    consumed by                             capacity
==========  ======================================  ===================
``fu``      the op scheduled there; route steps     1
            too when ``cgra.route_shares_fu``
``bypass``  route steps when the fabric has         ``cgra.bypass_capacity``
            dedicated bypass muxes
``rf``      hold steps (value parked one cycle)     ``cell.rf_size``
``link``    a value crossing ``src -> dst``         1 distinct value
==========  ======================================  ===================

All route/hold/link usage is *deduplicated by value* (the producing
node id): a value fanning out to several consumers through the same
wire or slot pays once, which is how real mux fabrics behave.

Layout
------

Storage is *flat*: one preallocated list per resource class, indexed
``slot * n_cells + cell`` (links: ``slot * n_links + link_id`` with
the dense ids of :meth:`repro.arch.cgra.CGRA.link_index`).  The
``can_*`` calls in every mapper's innermost loop therefore cost one
multiply-add and a list index — no tuple construction, no hashing —
and :meth:`Occupancy.copy` is list slicing.  With ``ii`` set the slot
axis is exactly ``ii`` entries; without it the axis grows on demand
(appending whole slots keeps existing indices valid).

The slot-major layout is deliberate: growing the time axis appends,
so indices computed before a growth stay correct.

A reference ``dict``-keyed implementation with identical semantics is
kept in :mod:`repro.core.refimpl` for the equivalence suite and the
hot-path microbenchmark.
"""

from __future__ import annotations

from repro.arch.cgra import CGRA

__all__ = ["Occupancy"]

#: initial slot-axis capacity for unfolded (``ii=None``) accounting
_INITIAL_SLOTS = 16

#: number of resource classes aggregated by :meth:`Occupancy.pressure`
_N_CLASSES = 4


class Occupancy:
    """Mutable resource usage on a (possibly modulo-folded) time axis.

    Args:
        cgra: the target array.
        ii: modulo period for slot folding; ``None`` disables folding
            (plain TEC accounting).
    """

    __slots__ = (
        "cgra",
        "ii",
        "fu",
        "routed",
        "rf",
        "link",
        "_n_cells",
        "_n_links",
        "_n_slots",
        "_link_idx",
        "_rf_sizes",
        "_shares_fu",
        "_bypass",
        "_used_fu",
        "_used_routed",
        "_used_rf",
        "_used_link",
    )

    def __init__(self, cgra: CGRA, ii: int | None = None) -> None:
        self.cgra = cgra
        self.ii = ii
        self._n_cells = cgra.n_cells
        self._link_idx = cgra.link_table
        self._n_links = len(self._link_idx)
        self._rf_sizes = [c.rf_size for c in cgra.cells]
        self._shares_fu = cgra.route_shares_fu
        self._bypass = cgra.bypass_capacity
        self._n_slots = ii if ii else _INITIAL_SLOTS
        # slot-major flat arrays; dicts (value -> edge refcount) are
        # allocated lazily per occupied entry.
        self.fu: list[int | None] = [None] * (self._n_slots * self._n_cells)
        self.routed: list[dict[int, int] | None] = [None] * len(self.fu)
        self.rf: list[dict[int, int] | None] = [None] * len(self.fu)
        self.link: list[dict[int, int] | None] = (
            [None] * (self._n_slots * self._n_links)
        )
        # Occupied-entry counts per class, kept incrementally so
        # pressure() is O(1) (it sits in SA cost functions).
        self._used_fu = 0
        self._used_routed = 0
        self._used_rf = 0
        self._used_link = 0

    def slot(self, t: int) -> int:
        if self.ii:
            return t % self.ii
        if t < 0:
            raise ValueError(f"negative cycle {t} on an unfolded axis")
        return t

    def _grow_to(self, s: int) -> None:
        """Extend the slot axis to cover slot ``s`` (``ii=None`` only)."""
        new_slots = max(s + 1, 2 * self._n_slots)
        extra = (new_slots - self._n_slots) * self._n_cells
        self.fu.extend([None] * extra)
        self.routed.extend([None] * extra)
        self.rf.extend([None] * extra)
        self.link.extend(
            [None] * ((new_slots - self._n_slots) * self._n_links)
        )
        self._n_slots = new_slots

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def can_place_op(self, cell: int, t: int) -> bool:
        s = self.slot(t)
        if s >= self._n_slots:
            return True  # untouched slots are free
        i = s * self._n_cells + cell
        if self.fu[i] is not None:
            return False
        if self._shares_fu and self.routed[i]:
            return False
        return True

    def place_op(self, nid: int, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            self._grow_to(s)
        i = s * self._n_cells + cell
        if self.fu[i] is None:
            self._used_fu += 1
        self.fu[i] = nid

    def release_op(self, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            return
        i = s * self._n_cells + cell
        if self.fu[i] is not None:
            self._used_fu -= 1
            self.fu[i] = None

    def op_at(self, cell: int, t: int) -> int | None:
        s = self.slot(t)
        if s >= self._n_slots:
            return None
        return self.fu[s * self._n_cells + cell]

    # ------------------------------------------------------------------
    # Routing (pass-through re-emission)
    # ------------------------------------------------------------------
    def can_route(self, value: int, cell: int, t: int) -> bool:
        s = self.slot(t)
        if s >= self._n_slots:
            return True
        i = s * self._n_cells + cell
        users = self.routed[i]
        if users and value in users:
            return True  # same value already passes here: free fan-out
        if self._shares_fu:
            return self.fu[i] is None and not users
        return (len(users) if users else 0) < self._bypass

    def add_route(self, value: int, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            self._grow_to(s)
        i = s * self._n_cells + cell
        users = self.routed[i]
        if users is None:
            users = self.routed[i] = {}
        if not users:
            self._used_routed += 1
        users[value] = users.get(value, 0) + 1

    def release_route(self, value: int, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            return
        users = self.routed[s * self._n_cells + cell]
        if not users:
            return
        n = users.get(value, 0) - 1
        if n > 0:
            users[value] = n
        elif value in users:
            del users[value]
            if not users:
                self._used_routed -= 1

    # ------------------------------------------------------------------
    # Register-file holds
    # ------------------------------------------------------------------
    def can_hold(self, value: int, cell: int, t: int) -> bool:
        s = self.slot(t)
        if s >= self._n_slots:
            return self._rf_sizes[cell] > 0
        users = self.rf[s * self._n_cells + cell]
        if users and value in users:
            return True
        return (len(users) if users else 0) < self._rf_sizes[cell]

    def add_hold(self, value: int, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            self._grow_to(s)
        i = s * self._n_cells + cell
        users = self.rf[i]
        if users is None:
            users = self.rf[i] = {}
        if not users:
            self._used_rf += 1
        users[value] = users.get(value, 0) + 1

    def release_hold(self, value: int, cell: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            return
        users = self.rf[s * self._n_cells + cell]
        if not users:
            return
        n = users.get(value, 0) - 1
        if n > 0:
            users[value] = n
        elif value in users:
            del users[value]
            if not users:
                self._used_rf -= 1

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def can_use_link(self, value: int, src: int, dst: int, t: int) -> bool:
        s = self.slot(t)
        if s >= self._n_slots:
            return True
        users = self.link[s * self._n_links + self._link_idx[(src, dst)]]
        if not users:
            return True
        return value in users

    def add_link(self, value: int, src: int, dst: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            self._grow_to(s)
        i = s * self._n_links + self._link_idx[(src, dst)]
        users = self.link[i]
        if users is None:
            users = self.link[i] = {}
        if not users:
            self._used_link += 1
        users[value] = users.get(value, 0) + 1

    def release_link(self, value: int, src: int, dst: int, t: int) -> None:
        s = self.slot(t)
        if s >= self._n_slots:
            return
        users = self.link[s * self._n_links + self._link_idx[(src, dst)]]
        if not users:
            return
        n = users.get(value, 0) - 1
        if n > 0:
            users[value] = n
        elif value in users:
            del users[value]
            if not users:
                self._used_link -= 1

    # ------------------------------------------------------------------
    # Flat fast-path queries (repro.mappers.routecore)
    #
    # The routing engine asks the same can_* question for every
    # neighbour at one cycle; folding the slot and bounds check per
    # *query* wastes most of the work.  time_base()/link_time_base()
    # do the fold once per cycle and the *_i variants take the flat
    # index directly — same semantics as their tuple counterparts,
    # pinned by the equivalence suite.  A base of -1 means the slot
    # lies beyond the allocated axis: everything there is free and the
    # caller short-circuits without touching the arrays.
    # ------------------------------------------------------------------
    def time_base(self, t: int) -> int:
        """``slot(t) * n_cells``, or ``-1`` when the slot is untouched
        (every cell resource at that cycle is free)."""
        s = self.slot(t)
        if s >= self._n_slots:
            return -1
        return s * self._n_cells

    def link_time_base(self, t: int) -> int:
        """``slot(t) * n_links``, or ``-1`` when the slot is untouched."""
        s = self.slot(t)
        if s >= self._n_slots:
            return -1
        return s * self._n_links

    def can_route_i(self, value: int, i: int) -> bool:
        """:meth:`can_route` for flat index ``i = time_base(t) + cell``
        (caller guarantees ``time_base(t) >= 0``)."""
        users = self.routed[i]
        if users and value in users:
            return True
        if self._shares_fu:
            return self.fu[i] is None and not users
        return (len(users) if users else 0) < self._bypass

    def can_hold_i(self, value: int, cell: int, i: int) -> bool:
        """:meth:`can_hold` for flat index ``i = time_base(t) + cell``."""
        users = self.rf[i]
        if users and value in users:
            return True
        return (len(users) if users else 0) < self._rf_sizes[cell]

    def can_use_link_i(self, value: int, i: int) -> bool:
        """:meth:`can_use_link` for ``i = link_time_base(t) + link_id``
        (dense ids from :attr:`repro.arch.cgra.CGRA.link_table`)."""
        users = self.link[i]
        return not users or value in users

    # ------------------------------------------------------------------
    # Introspection (tests, debugging; not hot paths)
    # ------------------------------------------------------------------
    def holds_at(self, cell: int, t: int) -> set[int]:
        """Values parked in ``cell``'s RF at cycle ``t``."""
        s = self.slot(t)
        if s >= self._n_slots:
            return set()
        users = self.rf[s * self._n_cells + cell]
        return set(users) if users else set()

    def routed_at(self, cell: int, t: int) -> set[int]:
        """Values re-emitted through ``cell`` at cycle ``t``."""
        s = self.slot(t)
        if s >= self._n_slots:
            return set()
        users = self.routed[s * self._n_cells + cell]
        return set(users) if users else set()

    def link_users(self, src: int, dst: int, t: int) -> set[int]:
        """Values crossing link ``src -> dst`` at cycle ``t``."""
        s = self.slot(t)
        if s >= self._n_slots:
            return set()
        users = self.link[s * self._n_links + self._link_idx[(src, dst)]]
        return set(users) if users else set()

    # ------------------------------------------------------------------
    def used_entries(self) -> int:
        """Total occupied (resource, slot) entries across all classes."""
        return (
            self._used_fu
            + self._used_routed
            + self._used_rf
            + self._used_link
        )

    def pressure(self) -> float:
        """A congestion summary: mean occupied slots per resource class.

        The counts are maintained incrementally, so this is O(1) —
        negotiated-congestion routers poll it as a progress signal and
        SA cost functions fold it in per move.  Dividing the raw entry
        count by the (constant) number of classes keeps the signal
        monotone in every individual allocation.
        """
        return self.used_entries() / _N_CLASSES

    def copy(self) -> "Occupancy":
        out = Occupancy.__new__(Occupancy)
        out.cgra = self.cgra
        out.ii = self.ii
        out._n_cells = self._n_cells
        out._n_links = self._n_links
        out._n_slots = self._n_slots
        out._link_idx = self._link_idx
        out._rf_sizes = self._rf_sizes
        out._shares_fu = self._shares_fu
        out._bypass = self._bypass
        out.fu = self.fu[:]
        out.routed = [d.copy() if d else None for d in self.routed]
        out.rf = [d.copy() if d else None for d in self.rf]
        out.link = [d.copy() if d else None for d in self.link]
        out._used_fu = self._used_fu
        out._used_routed = self._used_routed
        out._used_rf = self._used_rf
        out._used_link = self._used_link
        return out
