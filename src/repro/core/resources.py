"""Space-time resource accounting.

One :class:`Occupancy` instance tracks who uses what on the folded
(modulo) or plain time axis — the same structure serves

* the validator (:meth:`repro.core.mapping.Mapping.validate` replays a
  finished mapping through it), and
* constructive mappers/routers, which query ``can_*`` before committing
  and ``release_*`` when tearing moves apart (simulated annealing).

Resources per ``(cell, slot)`` (slot = absolute cycle mod II for
modulo mappings):

==========  ======================================  ===================
resource    consumed by                             capacity
==========  ======================================  ===================
``fu``      the op scheduled there; route steps     1
            too when ``cgra.route_shares_fu``
``bypass``  route steps when the fabric has         ``cgra.bypass_capacity``
            dedicated bypass muxes
``rf``      hold steps (value parked one cycle)     ``cell.rf_size``
``link``    a value crossing ``src -> dst``         1 distinct value
==========  ======================================  ===================

All route/hold/link usage is *deduplicated by value* (the producing
node id): a value fanning out to several consumers through the same
wire or slot pays once, which is how real mux fabrics behave.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from repro.arch.cgra import CGRA

__all__ = ["Occupancy"]


class Occupancy:
    """Mutable resource usage on a (possibly modulo-folded) time axis.

    Args:
        cgra: the target array.
        ii: modulo period for slot folding; ``None`` disables folding
            (plain TEC accounting).
    """

    def __init__(self, cgra: CGRA, ii: int | None = None) -> None:
        self.cgra = cgra
        self.ii = ii
        # (cell, slot) -> op node id occupying the FU.
        self.fu: dict[tuple[int, int], int] = {}
        # (cell, slot) -> value -> refcount (shares fu or bypass).
        # Counts are per *edge* using the resource; capacities count
        # distinct values, so fan-out shares are free but releasing one
        # edge's route never frees a slot another edge still uses.
        self.routed: dict[tuple[int, int], Counter] = defaultdict(Counter)
        # (cell, slot) -> value -> refcount of RF holds.
        self.rf: dict[tuple[int, int], Counter] = defaultdict(Counter)
        # (src, dst, slot) -> value -> refcount on the link.
        self.link: dict[tuple[int, int, int], Counter] = defaultdict(Counter)

    def slot(self, t: int) -> int:
        return t % self.ii if self.ii else t

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def can_place_op(self, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if key in self.fu:
            return False
        if self.cgra.route_shares_fu and self.routed.get(key):
            return False
        return True

    def place_op(self, nid: int, cell: int, t: int) -> None:
        key = (cell, self.slot(t))
        self.fu[key] = nid

    def release_op(self, cell: int, t: int) -> None:
        self.fu.pop((cell, self.slot(t)), None)

    def op_at(self, cell: int, t: int) -> int | None:
        return self.fu.get((cell, self.slot(t)))

    # ------------------------------------------------------------------
    # Routing (pass-through re-emission)
    # ------------------------------------------------------------------
    def can_route(self, value: int, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if value in self.routed[key]:
            return True  # same value already passes here: free fan-out
        if self.cgra.route_shares_fu:
            return key not in self.fu and not self.routed[key]
        return len(self.routed[key]) < self.cgra.bypass_capacity

    def add_route(self, value: int, cell: int, t: int) -> None:
        self.routed[(cell, self.slot(t))][value] += 1

    def release_route(self, value: int, cell: int, t: int) -> None:
        key = (cell, self.slot(t))
        self.routed[key][value] -= 1
        if self.routed[key][value] <= 0:
            del self.routed[key][value]

    # ------------------------------------------------------------------
    # Register-file holds
    # ------------------------------------------------------------------
    def can_hold(self, value: int, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if value in self.rf[key]:
            return True
        return len(self.rf[key]) < self.cgra.cell(cell).rf_size

    def add_hold(self, value: int, cell: int, t: int) -> None:
        self.rf[(cell, self.slot(t))][value] += 1

    def release_hold(self, value: int, cell: int, t: int) -> None:
        key = (cell, self.slot(t))
        self.rf[key][value] -= 1
        if self.rf[key][value] <= 0:
            del self.rf[key][value]

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def can_use_link(self, value: int, src: int, dst: int, t: int) -> bool:
        key = (src, dst, self.slot(t))
        users = self.link[key]
        return value in users or not users

    def add_link(self, value: int, src: int, dst: int, t: int) -> None:
        self.link[(src, dst, self.slot(t))][value] += 1

    def release_link(self, value: int, src: int, dst: int, t: int) -> None:
        key = (src, dst, self.slot(t))
        self.link[key][value] -= 1
        if self.link[key][value] <= 0:
            del self.link[key][value]

    # ------------------------------------------------------------------
    def pressure(self) -> float:
        """A congestion summary: mean occupied slots per resource class.

        Used by negotiated-congestion routers as a progress signal.
        """
        used = (
            len(self.fu)
            + sum(1 for v in self.routed.values() if v)
            + sum(1 for v in self.rf.values() if v)
            + sum(1 for v in self.link.values() if v)
        )
        return float(used)

    def copy(self) -> "Occupancy":
        out = Occupancy(self.cgra, self.ii)
        out.fu = dict(self.fu)
        out.routed = defaultdict(
            Counter, {k: Counter(v) for k, v in self.routed.items()}
        )
        out.rf = defaultdict(
            Counter, {k: Counter(v) for k, v in self.rf.items()}
        )
        out.link = defaultdict(
            Counter, {k: Counter(v) for k, v in self.link.items()}
        )
        return out
