"""The mapping object and its validity checker.

"When the problem is solved, the output of the process is a valid
mapping, i.e. a binding (and scheduling) of operations of the
application on the hardware resources while guaranteeing the
dependencies" (§II-B).  :class:`Mapping` is that output;
:meth:`Mapping.validate` is the package's single source of truth for
what *valid* means, and every mapper's result goes through it in the
test suite.

Two mapping kinds exist, mirroring the survey's spatial/temporal
distinction:

* ``spatial`` — binding only.  Every operation owns its cell for the
  whole execution (an FPGA-like fully pipelined dataflow); values
  travel over dedicated route cells.  No schedule.
* ``modulo`` — binding + schedule with an initiation interval.  A
  plain (non-overlapped) temporal mapping is the special case
  ``ii == schedule length``, so one validator covers both; mappers
  that do not software-pipeline simply emit that degenerate II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD, ROUTE, Step
from repro.core.exceptions import ValidationError
from repro.core.resources import Occupancy
from repro.ir.dfg import DFG, Edge, Op

__all__ = ["Mapping"]


@dataclass
class Mapping:
    """A (candidate) solution of the mapping problem.

    Attributes:
        dfg: the application graph.
        cgra: the target array.
        kind: ``"spatial"`` or ``"modulo"``.
        binding: node id -> cell id, for every non-pseudo node.
        schedule: node id -> absolute issue cycle (modulo mappings).
        routes: DFG edge -> the route/hold steps carrying the value
            from the producer's emission to the cycle before (spatial:
            the cells before) the consumer reads it.  Edges that are
            satisfied by direct neighbour/self reads have no entry.
        ii: initiation interval (modulo mappings).
        mapper: name of the mapper that produced this.
        map_time: wall-clock seconds the mapper spent.
        coexec: dual-issue pairs (§III-B1): each frozenset of two node
            ids may share one FU slot because the hardware issues only
            one of the two configurations at run time.
        trace: the root :class:`repro.obs.Span` of the mapper run when
            tracing was enabled, else None.  Not serialized.
    """

    dfg: DFG
    cgra: CGRA
    kind: str = "modulo"
    binding: dict[int, int] = field(default_factory=dict)
    schedule: dict[int, int] = field(default_factory=dict)
    routes: dict[Edge, list[Step]] = field(default_factory=dict)
    ii: int | None = None
    mapper: str = "?"
    map_time: float = 0.0
    coexec: set[frozenset[int]] = field(default_factory=set)
    trace: object | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def real_nodes(self) -> list[int]:
        """Nodes that occupy fabric resources (non-pseudo)."""
        return [n.nid for n in self.dfg.nodes() if not n.op.is_pseudo]

    @property
    def schedule_length(self) -> int:
        """Makespan in cycles (0 for spatial mappings)."""
        if not self.schedule:
            return 0
        return max(self.schedule.values()) + 1

    def cells_used(self) -> set[int]:
        return set(self.binding.values())

    def route_step_count(self) -> int:
        return sum(len(p) for p in self.routes.values())

    # ------------------------------------------------------------------
    def validate(self, *, raise_on_error: bool = True) -> list[str]:
        """Check every constraint of the execution model.

        Returns the list of violations (empty when valid); raises
        :class:`ValidationError` instead when ``raise_on_error``.
        """
        if self.kind == "spatial":
            violations = self._validate_spatial()
        elif self.kind == "modulo":
            violations = self._validate_modulo()
        else:
            violations = [f"unknown mapping kind {self.kind!r}"]
        if violations and raise_on_error:
            raise ValidationError(violations)
        return violations

    @property
    def is_valid(self) -> bool:
        return not self.validate(raise_on_error=False)

    # ------------------------------------------------------------------
    def _check_binding(self) -> list[str]:
        """Shared checks: every real node bound to a supporting cell."""
        v: list[str] = []
        for nid in self.real_nodes():
            node = self.dfg.node(nid)
            if nid not in self.binding:
                v.append(f"node n{nid} ({node.op.value}) is not bound")
                continue
            cid = self.binding[nid]
            if not (0 <= cid < self.cgra.n_cells):
                v.append(f"node n{nid} bound to unknown cell {cid}")
                continue
            if not self.cgra.cell(cid).supports(node.op):
                v.append(
                    f"cell {cid} cannot execute {node.op.value} (n{nid})"
                )
        return v

    def _check_const_edges(self) -> list[str]:
        v: list[str] = []
        for e in self.dfg.edges():
            if self.dfg.node(e.src).op is not Op.CONST:
                continue
            dst_node = self.dfg.node(e.dst)
            if dst_node.op.is_pseudo:
                continue
            if e.dst not in self.binding:
                continue  # reported by _check_binding
            cell = self.cgra.cell(self.binding[e.dst])
            value = self.dfg.node(e.src).value or 0
            if not cell.can_hold_constant(value):
                v.append(
                    f"constant {value} (n{e.src}) does not fit the"
                    f" immediate field of cell {cell.cid} (n{e.dst})"
                )
        return v

    def _routable_edge(self, e: Edge) -> bool:
        """Edges that consume fabric routing (real producer+consumer)."""
        return (
            not self.dfg.node(e.src).op.is_pseudo
            and not self.dfg.node(e.dst).op.is_pseudo
        )

    # ------------------------------------------------------------------
    def _validate_spatial(self) -> list[str]:
        v = self._check_binding() + self._check_const_edges()
        # One op per cell.
        owner: dict[int, int] = {}
        for nid in self.real_nodes():
            cid = self.binding.get(nid)
            if cid is None:
                continue
            if cid in owner:
                v.append(
                    f"cells are exclusive in spatial mapping: cell {cid}"
                    f" hosts n{owner[cid]} and n{nid}"
                )
            else:
                owner[cid] = nid

        route_owner: dict[int, int] = {}  # route cell -> value
        for e in self.dfg.edges():
            if not self._routable_edge(e):
                continue
            if e.src not in self.binding or e.dst not in self.binding:
                continue
            src_c = self.binding[e.src]
            dst_c = self.binding[e.dst]
            path = self.routes.get(e, [])
            prev = src_c
            for step in path:
                if step.kind != ROUTE:
                    v.append(
                        f"edge n{e.src}->n{e.dst}: spatial paths use ROUTE"
                        f" steps only, got {step.kind}"
                    )
                if not self.cgra.has_link(prev, step.cell):
                    v.append(
                        f"edge n{e.src}->n{e.dst}: no link"
                        f" {prev}->{step.cell}"
                    )
                if step.cell in owner:
                    v.append(
                        f"edge n{e.src}->n{e.dst}: route cell {step.cell}"
                        f" hosts op n{owner[step.cell]}"
                    )
                held = route_owner.get(step.cell)
                if held is not None and held != e.src:
                    v.append(
                        f"route cell {step.cell} carries two values"
                        f" (n{held} and n{e.src})"
                    )
                route_owner[step.cell] = e.src
                prev = step.cell
            if prev != dst_c and not self.cgra.has_link(prev, dst_c):
                v.append(
                    f"edge n{e.src}->n{e.dst}: endpoint cell {dst_c} not"
                    f" reachable from {prev}"
                )
        return v

    # ------------------------------------------------------------------
    def _validate_modulo(self) -> list[str]:
        v = self._check_binding() + self._check_const_edges()
        ii = self.ii
        if ii is None or ii < 1:
            v.append(f"modulo mapping needs ii >= 1, got {ii}")
            return v
        if ii > self.cgra.n_contexts:
            v.append(
                f"ii={ii} exceeds context memory depth"
                f" ({self.cgra.n_contexts})"
            )

        for nid in self.real_nodes():
            if nid not in self.schedule:
                v.append(f"node n{nid} is not scheduled")
            elif self.schedule[nid] < 0:
                v.append(f"node n{nid} scheduled at negative cycle")
        if v:
            return v

        occ = Occupancy(self.cgra, ii)
        for nid in self.real_nodes():
            c, t = self.binding[nid], self.schedule[nid]
            if not occ.can_place_op(c, t):
                other = occ.op_at(c, t)
                if (
                    other is not None
                    and frozenset((other, nid)) in self.coexec
                ):
                    continue  # dual-issue pair sharing the slot
                v.append(
                    f"FU conflict at cell {c}, slot {occ.slot(t)}:"
                    f" n{other} vs n{nid}"
                )
            occ.place_op(nid, c, t)

        for e in self.dfg.edges():
            v.extend(self._check_modulo_edge(e, occ, ii))
        return v

    def _check_modulo_edge(
        self, e: Edge, occ: Occupancy, ii: int
    ) -> list[str]:
        v: list[str] = []
        if not self._routable_edge(e):
            return v
        tag = f"edge n{e.src}->n{e.dst}"
        src_c = self.binding[e.src]
        dst_c = self.binding[e.dst]
        t_u = self.schedule[e.src]
        lat = self.dfg.node(e.src).op.latency
        t_consume = self.schedule[e.dst] + e.dist * ii
        if t_consume < t_u + lat:
            return [
                f"{tag}: consumer fires at {t_consume} before the value"
                f" exists (producer at {t_u}, latency {lat})"
            ]
        path = self.routes.get(e, [])
        expected_len = t_consume - t_u - lat
        if len(path) != expected_len:
            return [
                f"{tag}: path must cover cycles {t_u + lat}..{t_consume - 1}"
                f" ({expected_len} steps), got {len(path)}"
            ]
        value = e.src
        prev = Step(src_c, t_u + lat - 1, ROUTE)  # the emission itself
        for step in path:
            if step.time != prev.time + 1:
                v.append(
                    f"{tag}: step at cycle {step.time}, expected"
                    f" {prev.time + 1}"
                )
                return v
            if step.kind == HOLD:
                if step.cell != prev.cell:
                    v.append(
                        f"{tag}: HOLD must stay on cell {prev.cell},"
                        f" got {step.cell}"
                    )
                    return v
                if not occ.can_hold(value, step.cell, step.time):
                    v.append(
                        f"{tag}: RF of cell {step.cell} full at slot"
                        f" {occ.slot(step.time)}"
                    )
                occ.add_hold(value, step.cell, step.time)
            elif step.kind == ROUTE:
                if prev.kind == HOLD and step.cell != prev.cell:
                    # Re-emitting a held value to a neighbour reads the
                    # RF and drives the output in one cycle: allowed,
                    # but the hop still needs the link (checked below).
                    pass
                if step.cell != prev.cell and not self.cgra.has_link(
                    prev.cell, step.cell
                ):
                    v.append(
                        f"{tag}: no link {prev.cell}->{step.cell}"
                    )
                    return v
                if step.cell != prev.cell:
                    if not occ.can_use_link(
                        value, prev.cell, step.cell, step.time
                    ):
                        v.append(
                            f"{tag}: link {prev.cell}->{step.cell}"
                            f" busy at slot {occ.slot(step.time)}"
                        )
                    occ.add_link(value, prev.cell, step.cell, step.time)
                if not occ.can_route(value, step.cell, step.time):
                    v.append(
                        f"{tag}: cell {step.cell} cannot route at slot"
                        f" {occ.slot(step.time)} (busy)"
                    )
                occ.add_route(value, step.cell, step.time)
            else:
                v.append(f"{tag}: unknown step kind {step.kind!r}")
                return v
            prev = step

        # Terminal read: consumer at (dst_c, t_consume) reads `prev`.
        if prev.kind == HOLD:
            if prev.cell != dst_c:
                v.append(
                    f"{tag}: held value on cell {prev.cell} is not"
                    f" readable by cell {dst_c}"
                )
        else:
            if prev.cell != dst_c:
                if not self.cgra.has_link(prev.cell, dst_c):
                    v.append(
                        f"{tag}: consumer cell {dst_c} not adjacent to"
                        f" emission at cell {prev.cell}"
                    )
                else:
                    if not occ.can_use_link(
                        value, prev.cell, dst_c, t_consume
                    ):
                        v.append(
                            f"{tag}: link {prev.cell}->{dst_c} busy at"
                            f" slot {occ.slot(t_consume)}"
                        )
                    occ.add_link(value, prev.cell, dst_c, t_consume)
        return v

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary."""
        lines = [
            f"Mapping of {self.dfg.name} on {self.cgra.name}"
            f" [{self.kind}] by {self.mapper}"
        ]
        if self.kind == "modulo":
            lines.append(
                f"  II={self.ii}, makespan={self.schedule_length},"
                f" route steps={self.route_step_count()}"
            )
        for nid in sorted(self.binding):
            c = self.binding[nid]
            t = self.schedule.get(nid)
            where = f"cell {c}" + ("" if t is None else f" @ t={t}")
            lines.append(
                f"  n{nid} ({self.dfg.node(nid).op.value}) -> {where}"
            )
        return "\n".join(lines)
