"""The mapping problem formulation — the survey's §II-C as code.

"Bind in place and schedule in time operations of the application on
the CGRA while guaranteeing the dependencies and in a short time, such
that the application executes as fast as possible."

* :class:`~repro.core.problem.MappingProblem` — DFG + CGRA (+ II),
  with the MII lower bounds (ResMII / RecMII);
* :class:`~repro.core.mapping.Mapping` — binding + schedule + routing,
  and :meth:`~repro.core.mapping.Mapping.validate`, the single source
  of truth for mapping legality in this package;
* :class:`~repro.core.resources.Occupancy` — the shared space-time
  resource accounting (FU slots, bypass slots, register files, links);
* :class:`~repro.core.mapper.Mapper` — the mapper interface, and the
  registry (:mod:`repro.core.registry`) whose metadata *is* Table I.
"""

from repro.core.exceptions import MapFailure, MappingError, ValidationError
from repro.core.mapping import Mapping
from repro.core.mapper import Mapper, MapperInfo
from repro.core.metrics import MappingMetrics, metrics_of
from repro.core.problem import MappingProblem
from repro.core.resources import Occupancy

__all__ = [
    "MapFailure",
    "Mapper",
    "MapperInfo",
    "Mapping",
    "MappingError",
    "MappingMetrics",
    "MappingProblem",
    "Occupancy",
    "ValidationError",
    "metrics_of",
]
