"""Exceptions shared across the mapping framework."""

from __future__ import annotations

__all__ = ["MappingError", "MapFailure", "ValidationError"]


class MappingError(Exception):
    """Base class for mapping-related errors."""


class MapFailure(MappingError):
    """A mapper could not produce a valid mapping.

    The survey singles this out: "mapping might fail, which is of
    course unconceivable from the user point of view."  Mappers raise
    this (rather than returning partial results) when their search is
    exhausted; callers like the benchmark harness catch it and record
    the failure.
    """

    def __init__(self, message: str, *, mapper: str = "?", attempts: int = 0):
        super().__init__(message)
        self.mapper = mapper
        self.attempts = attempts


class ValidationError(MappingError):
    """A produced mapping violates the execution model.

    Carries the full list of violations so tests and debugging see
    everything at once, not just the first broken constraint.
    """

    def __init__(self, violations: list[str]):
        self.violations = violations
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"{len(violations)} violation(s): {preview}{more}")
