"""Reference (pre-fast-path) resource accounting.

:class:`DictOccupancy` is the original tuple-keyed ``dict``/``Counter``
implementation of :class:`repro.core.resources.Occupancy`, kept as an
executable specification:

* the equivalence suite (``tests/core/test_equivalence.py``) drives
  both implementations through identical operation sequences and whole
  mapper runs and asserts byte-identical outcomes;
* ``benchmarks/bench_hotpath.py`` measures the flat-array speedup
  against it.

It is **not** used by any mapper — production code imports the flat
implementation from :mod:`repro.core.resources`.  The two must keep
identical observable semantics; when the contract changes, change both
(the suite fails loudly otherwise).

:class:`ReferenceRouter` likewise keeps the original search strategies
— plain breadth-first :meth:`~ReferenceRouter.find` and plain-Dijkstra
:meth:`~ReferenceRouter.find_negotiated`, no distance pruning, no A*
ordering — modulo the (intentional) terminal-link bugfix shared with
the production router, so "fast path equals slow path" stays a
meaningful assertion.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import heapq

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD, ROUTE, Step
from repro.mappers.routing import Router
from repro.obs.tracer import CANDIDATES_EXPLORED, get_tracer

__all__ = ["DictOccupancy", "ReferenceRouter"]


class DictOccupancy:
    """Dict-keyed reference of the Occupancy contract (slow path)."""

    def __init__(self, cgra: CGRA, ii: int | None = None) -> None:
        self.cgra = cgra
        self.ii = ii
        # (cell, slot) -> op node id occupying the FU.
        self.fu: dict[tuple[int, int], int] = {}
        # (cell, slot) -> value -> refcount (shares fu or bypass).
        self.routed: dict[tuple[int, int], Counter] = defaultdict(Counter)
        # (cell, slot) -> value -> refcount of RF holds.
        self.rf: dict[tuple[int, int], Counter] = defaultdict(Counter)
        # (src, dst, slot) -> value -> refcount on the link.
        self.link: dict[tuple[int, int, int], Counter] = defaultdict(Counter)

    def slot(self, t: int) -> int:
        return t % self.ii if self.ii else t

    # -- functional units ----------------------------------------------
    def can_place_op(self, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if key in self.fu:
            return False
        if self.cgra.route_shares_fu and self.routed.get(key):
            return False
        return True

    def place_op(self, nid: int, cell: int, t: int) -> None:
        self.fu[(cell, self.slot(t))] = nid

    def release_op(self, cell: int, t: int) -> None:
        self.fu.pop((cell, self.slot(t)), None)

    def op_at(self, cell: int, t: int) -> int | None:
        return self.fu.get((cell, self.slot(t)))

    # -- routing --------------------------------------------------------
    def can_route(self, value: int, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if value in self.routed[key]:
            return True
        if self.cgra.route_shares_fu:
            return key not in self.fu and not self.routed[key]
        return len(self.routed[key]) < self.cgra.bypass_capacity

    def add_route(self, value: int, cell: int, t: int) -> None:
        self.routed[(cell, self.slot(t))][value] += 1

    def release_route(self, value: int, cell: int, t: int) -> None:
        key = (cell, self.slot(t))
        self.routed[key][value] -= 1
        if self.routed[key][value] <= 0:
            del self.routed[key][value]

    # -- register-file holds -------------------------------------------
    def can_hold(self, value: int, cell: int, t: int) -> bool:
        key = (cell, self.slot(t))
        if value in self.rf[key]:
            return True
        return len(self.rf[key]) < self.cgra.cell(cell).rf_size

    def add_hold(self, value: int, cell: int, t: int) -> None:
        self.rf[(cell, self.slot(t))][value] += 1

    def release_hold(self, value: int, cell: int, t: int) -> None:
        key = (cell, self.slot(t))
        self.rf[key][value] -= 1
        if self.rf[key][value] <= 0:
            del self.rf[key][value]

    # -- links ----------------------------------------------------------
    def can_use_link(self, value: int, src: int, dst: int, t: int) -> bool:
        key = (src, dst, self.slot(t))
        users = self.link[key]
        return value in users or not users

    def add_link(self, value: int, src: int, dst: int, t: int) -> None:
        self.link[(src, dst, self.slot(t))][value] += 1

    def release_link(self, value: int, src: int, dst: int, t: int) -> None:
        key = (src, dst, self.slot(t))
        self.link[key][value] -= 1
        if self.link[key][value] <= 0:
            del self.link[key][value]

    # -- introspection (mirror of the flat API) ------------------------
    def holds_at(self, cell: int, t: int) -> set[int]:
        return set(self.rf.get((cell, self.slot(t)), ()))

    def routed_at(self, cell: int, t: int) -> set[int]:
        return set(self.routed.get((cell, self.slot(t)), ()))

    def link_users(self, src: int, dst: int, t: int) -> set[int]:
        return set(self.link.get((src, dst, self.slot(t)), ()))

    # ------------------------------------------------------------------
    def used_entries(self) -> int:
        return (
            len(self.fu)
            + sum(1 for v in self.routed.values() if v)
            + sum(1 for v in self.rf.values() if v)
            + sum(1 for v in self.link.values() if v)
        )

    def pressure(self) -> float:
        """Mean occupied slots per resource class (same as the flat
        implementation — the documented contract)."""
        return self.used_entries() / 4

    def copy(self) -> "DictOccupancy":
        out = DictOccupancy(self.cgra, self.ii)
        out.fu = dict(self.fu)
        out.routed = defaultdict(
            Counter, {k: Counter(v) for k, v in self.routed.items()}
        )
        out.rf = defaultdict(
            Counter, {k: Counter(v) for k, v in self.rf.items()}
        )
        out.link = defaultdict(
            Counter, {k: Counter(v) for k, v in self.link.items()}
        )
        return out


class ReferenceRouter(Router):
    """The original (pre-fast-path) route search, kept as the spec.

    Exhaustive layer-BFS for :meth:`find` and plain Dijkstra with
    ``(cost, state)`` heap keys for :meth:`find_negotiated` — exactly
    the seed algorithms the pruned/A* production router must replicate
    step for step.  Shares the expansion and terminal rules with
    :class:`~repro.mappers.routing.Router` so only the search strategy
    differs.
    """

    def __init__(self, cgra, *, allow_hold=True, max_hold=64, **_ignored):
        super().__init__(
            cgra,
            allow_hold=allow_hold,
            max_hold=max_hold,
            prune=False,
            engine="scalar",
        )

    def find(self, occ, req):
        span = req.t_consume - req.t_emit - 1
        if span < 0:
            return None
        if span == 0:
            if self._final_ok(occ, req, Step(req.src_cell, req.t_emit, ROUTE)):
                return []
            return None
        start = (req.src_cell, ROUTE)
        frontier = {start: []}
        explored = 0
        for k in range(span):
            t = req.t_emit + 1 + k
            last = k == span - 1
            nxt = {}
            for (cell, kind), path in frontier.items():
                for step in self._expansions(occ, req.value, cell, kind, t):
                    explored += 1
                    key = (step.cell, step.kind)
                    if key in nxt:
                        continue
                    cand = path + [step]
                    if last:
                        if self._final_ok(occ, req, step):
                            get_tracer().count(
                                CANDIDATES_EXPLORED, explored
                            )
                            return cand
                    nxt[key] = cand
            if not nxt:
                get_tracer().count(CANDIDATES_EXPLORED, explored)
                return None
            frontier = nxt
        get_tracer().count(CANDIDATES_EXPLORED, explored)
        return None

    def find_negotiated(self, occ, req, *, history=None, penalty=10.0):
        span = req.t_consume - req.t_emit - 1
        if span < 0:
            return None
        history = history or {}

        def step_cost(step):
            key = (step.cell, occ.slot(step.time), step.kind)
            base = 1.0 + history.get(key, 0.0)
            free = (
                occ.can_hold(req.value, step.cell, step.time)
                if step.kind == HOLD
                else occ.can_route(req.value, step.cell, step.time)
            )
            return base if free else base + penalty

        if span == 0:
            if self._final_ok(occ, req, Step(req.src_cell, req.t_emit, ROUTE)):
                return [], 0.0
            return None

        start = (req.src_cell, ROUTE, 0)
        dist = {start: 0.0}
        prev = {start: None}
        steps_at = {start: None}
        heap = [(0.0, start)]
        best = None
        explored = 0
        while heap:
            d, state = heapq.heappop(heap)
            if d > dist.get(state, float("inf")):
                continue
            explored += 1
            cell, kind, layer = state
            if layer == span:
                # Same terminal discipline as the production router
                # (the span>0 terminal-link fix is shared): the
                # terminal link must exist *and* be free.
                last = steps_at[state]
                ok = last is not None and self._final_ok(occ, req, last)
                if ok:
                    best = state
                    break
                continue
            t = req.t_emit + 1 + layer
            candidates = [
                Step(nxt, t, ROUTE) for nxt in self._reach[cell]
            ] + [Step(cell, t, HOLD)]
            for step in candidates:
                nd = d + step_cost(step)
                ns = (step.cell, step.kind, layer + 1)
                if nd < dist.get(ns, float("inf")):
                    dist[ns] = nd
                    prev[ns] = state
                    steps_at[ns] = step
                    heapq.heappush(heap, (nd, ns))
        get_tracer().count(CANDIDATES_EXPLORED, explored)
        if best is None:
            return None
        out = []
        s = best
        while s is not None and steps_at[s] is not None:
            out.append(steps_at[s])
            s = prev[s]
        out.reverse()
        return out, dist[best]
