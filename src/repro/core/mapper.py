"""The mapper interface and its taxonomy metadata.

Every mapping method in :mod:`repro.mappers` subclasses
:class:`Mapper` and declares a :class:`MapperInfo` — the machine-
readable version of its cell in the survey's Table I: technique family
(heuristic / meta-heuristic / exact-ILP-B&B / exact-CSP), subfamily
(SA, GA, QEA, ILP, SAT, CP, ...), which mapping kinds it solves
(spatial / temporal), and whether it can prove optimality.

The registry (:mod:`repro.core.registry`) collects these, and the
Table I benchmark renders the classification *from the registry*, so
taxonomy and code cannot drift apart.
"""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.mapping import Mapping
from repro.core.problem import MappingProblem
from repro.ir.dfg import DFG
from repro.obs.metrics import (
    MAP_FAILURES_TOTAL,
    MAP_LATENCY_MS,
    MAPS_TOTAL,
    get_metrics,
)
from repro.obs.tracer import II_ATTEMPTS, Tracer, get_tracer

__all__ = ["Mapper", "MapperInfo"]

_log = logging.getLogger("repro.core.mapper")

FAMILIES = ("heuristic", "metaheuristic", "exact")
KINDS = ("spatial", "temporal")


@dataclass(frozen=True)
class MapperInfo:
    """One row of the executable Table I.

    Attributes:
        name: registry key.
        family: ``heuristic`` / ``metaheuristic`` / ``exact``.
        subfamily: the technique label the survey uses in the cell
            (e.g. ``"SA"``, ``"GA"``, ``"ILP"``, ``"SAT"``, ``"CP"``,
            ``"B&B"``, ``"list"``, ``"graph"``).
        kinds: mapping kinds supported (``"spatial"``, ``"temporal"``).
        exact: can prove optimality / infeasibility.
        solves: which sub-problems are addressed together
            (``"binding+scheduling"``, ``"binding"``, ``"scheduling"``,
            or ``"binding"`` alone for spatial).
        modeled_after: the literature reference(s) the implementation
            follows (survey citation numbers).
        year: publication year of the modelled technique.
    """

    name: str
    family: str
    subfamily: str
    kinds: tuple[str, ...]
    exact: bool = False
    solves: str = "binding+scheduling"
    modeled_after: str = ""
    year: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"bad family {self.family!r}")
        for k in self.kinds:
            if k not in KINDS:
                raise ValueError(f"bad mapping kind {k!r}")


class Mapper(abc.ABC):
    """Abstract mapping method.

    Subclasses implement :meth:`_map`; the public :meth:`map` wraps it
    with input checking, wall-clock accounting and result stamping.

    Args:
        seed: RNG seed for stochastic methods (all mappers accept it so
            harness code can treat them uniformly).
    """

    info: MapperInfo

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------
    def map(
        self, dfg: DFG, cgra: CGRA, ii: int | None = None
    ) -> Mapping:
        """Produce a validated mapping or raise :class:`MapFailure`.

        When tracing is enabled (:func:`repro.obs.tracing`) the call
        runs under a root span named ``map`` and the resulting
        :attr:`Mapping.trace` carries that span tree.

        When a mapping cache is active (:func:`repro.cache.mapping_cache`
        or the ``REPRO_CACHE`` environment variable — off by default),
        the call first consults it under the canonical problem key; a
        validated hit returns without running the algorithm, and a
        fresh result is stored for the next identical call.
        """
        # Imported lazily: repro.cache serializes/validates through
        # repro.core, so a module-level import would be circular.
        from repro.cache import get_cache

        dfg.check()
        tracer = get_tracer()
        metrics = get_metrics()
        cache = get_cache()
        t0 = time.perf_counter()
        key = None
        try:
            with tracer.span(
                "map", mapper=self.info.name, dfg=dfg.name, cgra=cgra.name
            ) as root:
                if cache is not None:
                    key = cache.key(
                        dfg, cgra, mapper=self.info.name, seed=self.seed,
                        ii=ii, token=self.cache_token(),
                    )
                    with tracer.span("cache_lookup", key=key):
                        hit = cache.get(key, dfg, cgra)
                    if hit is not None:
                        hit.mapper = self.info.name
                        hit.map_time = time.perf_counter() - t0
                        if tracer.enabled:
                            root.tag(
                                ii=hit.ii, kind=hit.kind, cached=True
                            )
                            hit.trace = root
                        metrics.counter(MAPS_TOTAL).inc()
                        metrics.histogram(MAP_LATENCY_MS).observe(
                            1000 * hit.map_time
                        )
                        return hit
                mapping = self._map(dfg, cgra, ii)
        except MapFailure:
            metrics.counter(MAP_FAILURES_TOTAL).inc()
            raise
        mapping.mapper = self.info.name
        mapping.map_time = time.perf_counter() - t0
        if tracer.enabled:
            root.tag(ii=mapping.ii, kind=mapping.kind)
            mapping.trace = root
        if cache is not None:
            cache.put(key, mapping)
        metrics.counter(MAPS_TOTAL).inc()
        metrics.histogram(MAP_LATENCY_MS).observe(
            1000 * mapping.map_time
        )
        return mapping

    @abc.abstractmethod
    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        """The actual mapping algorithm."""

    def cache_token(self) -> str:
        """Configuration identity beyond (name, seed) for cache keys.

        Mappers whose constructor options change the produced mapping
        (solver engine, entrant list, iteration budgets, ...) override
        this so differently-configured instances do not alias in the
        mapping cache.  The default — no extra identity — is right for
        mappers whose output is fixed by (dfg, cgra, seed, ii).
        """
        return ""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def ii_range(
        self, dfg: DFG, cgra: CGRA, ii: int | None, *, slack: int = 0
    ) -> Iterable[int]:
        """II values to try: requested II, or MII..min(2*MII+ops, contexts).

        ``slack`` widens the upper end for mappers that need routing
        headroom.  With tracing enabled, iterating records one ``ii``
        span per attempted II (wrapping the loop body that consumes
        the value) and bumps the ``ii_attempts`` counter; disabled, the
        plain range comes back untouched.
        """
        if ii is not None:
            values = range(ii, ii + 1)
        else:
            prob = MappingProblem(dfg, cgra)
            lo = prob.mii
            hi = min(
                cgra.n_contexts, max(2 * lo + dfg.op_count(), lo) + slack
            )
            values = range(lo, hi + 1)
        tracer = get_tracer()
        if not tracer.enabled:
            return values
        return _traced_ii_iter(values, tracer)

    def fail(self, message: str, attempts: int = 0) -> MapFailure:
        """Build a MapFailure tagged with this mapper's name."""
        _log.warning(
            "%s: giving up after %d attempt(s): %s",
            self.info.name, attempts, message,
        )
        return MapFailure(
            f"{self.info.name}: {message}",
            mapper=self.info.name,
            attempts=attempts,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


def _traced_ii_iter(values: range, tracer: Tracer) -> Iterator[int]:
    """Yield IIs, wrapping each consumer loop body in an ``ii`` span.

    The span opens before the yield and closes when the consumer
    advances (or abandons) the loop, so the mapper's work for that II
    lands inside it.
    """
    for value in values:
        tracer.count(II_ATTEMPTS)
        with tracer.span("ii", ii=value):
            yield value
