"""The mapper interface and its taxonomy metadata.

Every mapping method in :mod:`repro.mappers` subclasses
:class:`Mapper` and declares a :class:`MapperInfo` — the machine-
readable version of its cell in the survey's Table I: technique family
(heuristic / meta-heuristic / exact-ILP-B&B / exact-CSP), subfamily
(SA, GA, QEA, ILP, SAT, CP, ...), which mapping kinds it solves
(spatial / temporal), and whether it can prove optimality.

The registry (:mod:`repro.core.registry`) collects these, and the
Table I benchmark renders the classification *from the registry*, so
taxonomy and code cannot drift apart.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

from repro.arch.cgra import CGRA
from repro.core.exceptions import MapFailure
from repro.core.mapping import Mapping
from repro.core.problem import MappingProblem
from repro.ir.dfg import DFG

__all__ = ["Mapper", "MapperInfo"]

FAMILIES = ("heuristic", "metaheuristic", "exact")
KINDS = ("spatial", "temporal")


@dataclass(frozen=True)
class MapperInfo:
    """One row of the executable Table I.

    Attributes:
        name: registry key.
        family: ``heuristic`` / ``metaheuristic`` / ``exact``.
        subfamily: the technique label the survey uses in the cell
            (e.g. ``"SA"``, ``"GA"``, ``"ILP"``, ``"SAT"``, ``"CP"``,
            ``"B&B"``, ``"list"``, ``"graph"``).
        kinds: mapping kinds supported (``"spatial"``, ``"temporal"``).
        exact: can prove optimality / infeasibility.
        solves: which sub-problems are addressed together
            (``"binding+scheduling"``, ``"binding"``, ``"scheduling"``,
            or ``"binding"`` alone for spatial).
        modeled_after: the literature reference(s) the implementation
            follows (survey citation numbers).
        year: publication year of the modelled technique.
    """

    name: str
    family: str
    subfamily: str
    kinds: tuple[str, ...]
    exact: bool = False
    solves: str = "binding+scheduling"
    modeled_after: str = ""
    year: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"bad family {self.family!r}")
        for k in self.kinds:
            if k not in KINDS:
                raise ValueError(f"bad mapping kind {k!r}")


class Mapper(abc.ABC):
    """Abstract mapping method.

    Subclasses implement :meth:`_map`; the public :meth:`map` wraps it
    with input checking, wall-clock accounting and result stamping.

    Args:
        seed: RNG seed for stochastic methods (all mappers accept it so
            harness code can treat them uniformly).
    """

    info: MapperInfo

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------
    def map(
        self, dfg: DFG, cgra: CGRA, ii: int | None = None
    ) -> Mapping:
        """Produce a validated mapping or raise :class:`MapFailure`."""
        dfg.check()
        t0 = time.perf_counter()
        mapping = self._map(dfg, cgra, ii)
        mapping.mapper = self.info.name
        mapping.map_time = time.perf_counter() - t0
        return mapping

    @abc.abstractmethod
    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        """The actual mapping algorithm."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def ii_range(
        self, dfg: DFG, cgra: CGRA, ii: int | None, *, slack: int = 0
    ) -> range:
        """II values to try: requested II, or MII..min(2*MII+ops, contexts).

        ``slack`` widens the upper end for mappers that need routing
        headroom.
        """
        if ii is not None:
            return range(ii, ii + 1)
        prob = MappingProblem(dfg, cgra)
        lo = prob.mii
        hi = min(cgra.n_contexts, max(2 * lo + dfg.op_count(), lo) + slack)
        return range(lo, hi + 1)

    def fail(self, message: str, attempts: int = 0) -> MapFailure:
        """Build a MapFailure tagged with this mapper's name."""
        return MapFailure(
            f"{self.info.name}: {message}",
            mapper=self.info.name,
            attempts=attempts,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"
