"""Mapper registry — the executable Table I.

Mappers self-register at import via the :func:`register` decorator;
:func:`catalog` returns their taxonomy metadata, and the Table I
benchmark groups that metadata by (family x mapping kind) to regenerate
the survey's classification from the living code.
"""

from __future__ import annotations

from typing import Any, Type

from repro.core.mapper import Mapper

__all__ = ["register", "create", "get", "names", "catalog"]

_REGISTRY: dict[str, Type[Mapper]] = {}


def register(cls: Type[Mapper]) -> Type[Mapper]:
    """Class decorator adding a mapper to the registry."""
    info = getattr(cls, "info", None)
    if info is None:
        raise TypeError(f"{cls.__name__} has no MapperInfo")
    if info.name in _REGISTRY:
        raise ValueError(f"duplicate mapper name {info.name!r}")
    _REGISTRY[info.name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the mapper package so registration side effects run."""
    import repro.mappers  # noqa: F401


def names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get(name: str) -> Type[Mapper]:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown mapper {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def create(name: str, **opts: Any) -> Mapper:
    """Instantiate a registered mapper."""
    return get(name)(**opts)


def catalog() -> dict[str, dict[str, Any]]:
    """Taxonomy metadata of every registered mapper, keyed by name."""
    _ensure_loaded()
    out = {}
    for name, cls in sorted(_REGISTRY.items()):
        info = cls.info
        out[name] = {
            "family": info.family,
            "subfamily": info.subfamily,
            "kinds": list(info.kinds),
            "exact": info.exact,
            "solves": info.solves,
            "modeled_after": info.modeled_after,
            "year": info.year,
        }
    return out
