"""Mapping quality metrics.

The survey's quality criteria (§II-C): "high quality solution with
fast compilation time" — solution quality for loops is the initiation
interval; spatial quality is utilisation and route overhead; and the
compilation time is always reported next to them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import Mapping

__all__ = ["MappingMetrics", "metrics_of"]


@dataclass(frozen=True)
class MappingMetrics:
    """Summary numbers for one mapping."""

    kind: str
    ops: int
    ii: int | None
    schedule_length: int
    cells_used: int
    route_steps: int
    utilization: float      #: FU slots used / FU slots available per II
    route_overhead: float   #: route steps per operation
    map_time: float         #: mapper wall-clock seconds
    valid: bool

    def row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "kind": self.kind,
            "ops": self.ops,
            "II": self.ii if self.ii is not None else "-",
            "len": self.schedule_length,
            "cells": self.cells_used,
            "util%": round(100 * self.utilization, 1),
            "routes": self.route_steps,
            "time_ms": round(1000 * self.map_time, 2),
            "valid": self.valid,
        }


def metrics_of(mapping: Mapping) -> MappingMetrics:
    """Compute the metrics of a mapping (validates without raising)."""
    ops = mapping.dfg.op_count()
    n_compute = len(mapping.cgra.compute_cells())
    if mapping.kind == "modulo" and mapping.ii:
        capacity = n_compute * mapping.ii
    else:
        capacity = n_compute
    utilization = ops / capacity if capacity else 0.0
    return MappingMetrics(
        kind=mapping.kind,
        ops=ops,
        ii=mapping.ii,
        schedule_length=mapping.schedule_length,
        cells_used=len(mapping.cells_used()),
        route_steps=mapping.route_step_count(),
        utilization=utilization,
        route_overhead=mapping.route_step_count() / ops if ops else 0.0,
        map_time=mapping.map_time,
        valid=not mapping.validate(raise_on_error=False),
    )
