"""Mapping (and DFG) serialization.

A framework is only adoptable if its artifacts travel: tool A maps,
tool B simulates, a colleague inspects.  This module round-trips a
:class:`~repro.core.mapping.Mapping` through plain JSON — binding,
schedule, routes, II, dual-issue pairs — with enough architecture and
DFG fingerprinting to refuse loading against the wrong substrate.

The DFG and CGRA themselves are *not* serialized in a mapping doc
(they are code-level objects with factories); the fingerprint ties a
mapping file to the (dfg, cgra) pair it was produced for.  Since
format 2 the fingerprint is the canonical one from
:mod:`repro.cache.fingerprint`: the DFG half is isomorphism-invariant,
and the architecture half covers everything that affects feasibility
(context depth, RF sizes, memory ports, routing discipline) — format 1
hashed rendered text and silently collided on presets differing only
in ``n_contexts``.

The dict-level entry points (:func:`mapping_to_doc` /
:func:`mapping_from_doc`) accept an optional ``node_map`` that
relabels node ids on the way through; the mapping cache uses it to
store documents in canonical-id space so one entry replays onto any
isomorphic DFG regardless of node numbering.

Documents arriving over the wire (``repro serve``) are attacker- and
truncation-shaped, so :func:`mapping_from_doc` validates structure
before touching a field and raises :class:`ValueError` naming the
offending key (``mapping document: routes[3].edge ...``) instead of
leaking a raw ``KeyError``/``TypeError`` from the middle of
reconstruction.

:func:`dfg_to_doc`/:func:`dfg_from_doc` round-trip a
:class:`~repro.ir.dfg.DFG` itself — the inline problem form a mapping
*request* carries when the kernel is not in the library.
"""

from __future__ import annotations

import json
from typing import Any, Mapping as MappingT

from repro.arch.cgra import CGRA
from repro.arch.tec import Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG, DFGError, Op

__all__ = [
    "dfg_from_doc",
    "dfg_to_doc",
    "fingerprint",
    "mapping_from_doc",
    "mapping_from_json",
    "mapping_to_doc",
    "mapping_to_json",
]

FORMAT_VERSION = 2

#: Mapping kinds a document may declare (see :class:`Mapping`).
_KINDS = ("spatial", "modulo")


def fingerprint(dfg: DFG, cgra: CGRA) -> str:
    """A stable digest of the (application, architecture) pair.

    Isomorphism-invariant over the DFG and exhaustive over the
    architecture parameters that affect feasibility.
    """
    # Imported lazily: repro.cache.store serializes through this module.
    from repro.cache.fingerprint import problem_fingerprint

    return problem_fingerprint(dfg, cgra)


def _ident(nid: int) -> int:
    return nid


def mapping_to_doc(
    mapping: Mapping, *, node_map: MappingT[int, int] | None = None
) -> dict[str, Any]:
    """Serialize a mapping (of either kind) to a plain-JSON dict.

    ``node_map`` relabels every node id in the document (binding and
    schedule keys, route edge endpoints, dual-issue pairs); identity
    when omitted.
    """
    nm = node_map.__getitem__ if node_map is not None else _ident
    return {
        "format": FORMAT_VERSION,
        "fingerprint": fingerprint(mapping.dfg, mapping.cgra),
        "dfg": mapping.dfg.name,
        "cgra": mapping.cgra.name,
        "kind": mapping.kind,
        "ii": mapping.ii,
        "mapper": mapping.mapper,
        "binding": {str(nm(k)): v for k, v in mapping.binding.items()},
        "schedule": {str(nm(k)): v for k, v in mapping.schedule.items()},
        "routes": [
            {
                "edge": [nm(e.src), nm(e.dst), e.port, e.dist],
                "steps": [[s.cell, s.time, s.kind] for s in steps],
            }
            for e, steps in mapping.routes.items()
        ],
        "coexec": [sorted(nm(n) for n in p) for p in mapping.coexec],
    }


# ---------------------------------------------------------------------------
# Document validation
# ---------------------------------------------------------------------------
def _doc_error(field: str, detail: str) -> ValueError:
    return ValueError(f"mapping document: {field} {detail}")


def _require(doc: dict[str, Any], field: str) -> Any:
    if field not in doc:
        raise _doc_error(field, "is missing")
    return doc[field]


def _int_or_fail(value: Any, field: str) -> int:
    # bool is an int subclass but never a legal id/cycle/port value.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _doc_error(field, f"must be an integer, got {value!r}")
    return value


def _int_keyed(value: Any, field: str) -> dict[int, int]:
    """Parse a ``{"<node id>": int}`` JSON object."""
    if not isinstance(value, dict):
        raise _doc_error(field, f"must be an object, got {type(value).__name__}")
    out: dict[int, int] = {}
    for key, val in value.items():
        try:
            nid = int(key)
        except (TypeError, ValueError):
            raise _doc_error(
                field, f"has non-integer node id key {key!r}"
            ) from None
        out[nid] = _int_or_fail(val, f"{field}[{key!r}]")
    return out


def _checked_routes(value: Any) -> list[tuple[tuple, list]]:
    """Validate the ``routes`` array shape; returns (edge, steps) pairs."""
    if not isinstance(value, list):
        raise _doc_error(
            "routes", f"must be an array, got {type(value).__name__}"
        )
    out: list[tuple[tuple, list]] = []
    for i, entry in enumerate(value):
        where = f"routes[{i}]"
        if not isinstance(entry, dict):
            raise _doc_error(
                where, f"must be an object, got {type(entry).__name__}"
            )
        edge = entry.get("edge")
        if not isinstance(edge, (list, tuple)) or len(edge) != 4:
            raise _doc_error(
                f"{where}.edge",
                f"must be a [src, dst, port, dist] list, got {edge!r}",
            )
        src, dst, port, dist = (
            _int_or_fail(v, f"{where}.edge[{j}]") for j, v in enumerate(edge)
        )
        steps = entry.get("steps")
        if not isinstance(steps, list):
            raise _doc_error(
                f"{where}.steps",
                f"must be an array, got {type(steps).__name__}",
            )
        checked_steps = []
        for j, step in enumerate(steps):
            if not isinstance(step, (list, tuple)) or len(step) != 3:
                raise _doc_error(
                    f"{where}.steps[{j}]",
                    f"must be a [cell, time, kind] triple, got {step!r}",
                )
            cell = _int_or_fail(step[0], f"{where}.steps[{j}][0]")
            time_ = _int_or_fail(step[1], f"{where}.steps[{j}][1]")
            kind = step[2]
            if not isinstance(kind, str):
                raise _doc_error(
                    f"{where}.steps[{j}][2]",
                    f"must be a step-kind string, got {kind!r}",
                )
            checked_steps.append((cell, time_, kind))
        out.append(((src, dst, port, dist), checked_steps))
    return out


def mapping_from_doc(
    doc: dict[str, Any],
    dfg: DFG,
    cgra: CGRA,
    *,
    node_map: MappingT[int, int] | None = None,
    verify: bool = True,
    validate: bool = True,
) -> Mapping:
    """Rebuild a mapping against its (dfg, cgra) pair from a dict.

    The document's structure is checked field by field first — a
    malformed or truncated doc raises :class:`ValueError` naming the
    offending key, never a raw ``KeyError``/``TypeError`` (documents
    arrive over the wire in ``repro serve``).  Raises ValueError when
    the document's fingerprint does not match the supplied substrate
    (unless ``verify=False``), or on an unknown format version.
    ``node_map`` translates the document's node ids into the live
    DFG's (identity when omitted); the result is re-validated before
    returning unless ``validate=False``.
    """
    if not isinstance(doc, dict):
        raise ValueError(
            "mapping document: expected a JSON object,"
            f" got {type(doc).__name__}"
        )
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported mapping format {doc.get('format')!r}"
        )
    fp = _require(doc, "fingerprint")
    if not isinstance(fp, str):
        raise _doc_error("fingerprint", f"must be a string, got {fp!r}")
    if verify and fp != fingerprint(dfg, cgra):
        raise ValueError(
            "mapping fingerprint mismatch: this file was produced for"
            f" a different (DFG, CGRA) pair (file: {doc.get('dfg')!r} on"
            f" {doc.get('cgra')!r})"
        )
    kind = _require(doc, "kind")
    if kind not in _KINDS:
        raise _doc_error("kind", f"must be one of {_KINDS}, got {kind!r}")
    ii = _require(doc, "ii")
    if ii is not None:
        ii = _int_or_fail(ii, "ii")
        if ii < 1:
            raise _doc_error("ii", f"must be >= 1, got {ii}")
    binding = _int_keyed(_require(doc, "binding"), "binding")
    schedule = _int_keyed(_require(doc, "schedule"), "schedule")
    route_entries = _checked_routes(_require(doc, "routes"))
    coexec_doc = doc.get("coexec", [])
    if not isinstance(coexec_doc, list):
        raise _doc_error(
            "coexec", f"must be an array, got {type(coexec_doc).__name__}"
        )
    for i, pair in enumerate(coexec_doc):
        if not isinstance(pair, list):
            raise _doc_error(
                f"coexec[{i}]", f"must be an array, got {pair!r}"
            )
        for j, n in enumerate(pair):
            _int_or_fail(n, f"coexec[{i}][{j}]")

    nm = node_map.__getitem__ if node_map is not None else _ident

    def remap(nid: int, field: str) -> int:
        try:
            return nm(nid)
        except KeyError:
            raise _doc_error(
                field, f"references unknown node id {nid}"
            ) from None

    from repro.ir.dfg import Edge

    routes = {}
    for i, ((src, dst, port, dist), steps) in enumerate(route_entries):
        edge = Edge(
            remap(src, f"routes[{i}].edge"),
            remap(dst, f"routes[{i}].edge"),
            port=port,
            dist=dist,
        )
        routes[edge] = [Step(cell, time, kind) for cell, time, kind in steps]
    mapping = Mapping(
        dfg,
        cgra,
        kind=kind,
        binding={remap(k, "binding"): v for k, v in binding.items()},
        schedule={remap(k, "schedule"): v for k, v in schedule.items()},
        routes=routes,
        ii=ii,
        mapper=doc.get("mapper", "?"),
        coexec={
            frozenset(remap(n, f"coexec[{i}]") for n in pair)
            for i, pair in enumerate(coexec_doc)
        },
    )
    if validate:
        mapping.validate()
    return mapping


def mapping_to_json(mapping: Mapping, *, indent: int | None = 2) -> str:
    """Serialize a mapping (of either kind) to a JSON string."""
    return json.dumps(
        mapping_to_doc(mapping), indent=indent, sort_keys=True
    )


def mapping_from_json(
    text: str, dfg: DFG, cgra: CGRA, *, verify: bool = True
) -> Mapping:
    """Rebuild a mapping against its (dfg, cgra) pair from JSON text."""
    return mapping_from_doc(json.loads(text), dfg, cgra, verify=verify)


# ---------------------------------------------------------------------------
# DFG documents (inline problem graphs in serve requests)
# ---------------------------------------------------------------------------
def dfg_to_doc(dfg: DFG) -> dict[str, Any]:
    """Serialize a DFG to a plain-JSON dict.

    Node ids are preserved exactly (a mapping produced for the doc
    replays onto the original graph without relabeling).
    """
    return {
        "name": dfg.name,
        "nodes": [
            {
                "id": n.nid,
                "op": n.op.value,
                **({"name": n.name} if n.name is not None else {}),
                **({"value": n.value} if n.value is not None else {}),
                **({"array": n.array} if n.array is not None else {}),
                **({"pred": n.pred} if n.pred is not None else {}),
            }
            for n in sorted(dfg.nodes(), key=lambda n: n.nid)
        ],
        "edges": [
            [e.src, e.dst, e.port, e.dist] for e in sorted(
                dfg.edges(), key=lambda e: (e.src, e.dst, e.port, e.dist)
            )
        ],
    }


def _dfg_error(field: str, detail: str) -> ValueError:
    return ValueError(f"dfg document: {field} {detail}")


def dfg_from_doc(doc: dict[str, Any]) -> DFG:
    """Rebuild a DFG from :func:`dfg_to_doc`'s form.

    Validates structure with field-naming :class:`ValueError` (the doc
    arrives over the wire in serve requests) and runs
    :meth:`~repro.ir.dfg.DFG.check` on the result.
    """
    if not isinstance(doc, dict):
        raise ValueError(
            f"dfg document: expected a JSON object, got {type(doc).__name__}"
        )
    name = doc.get("name", "dfg")
    if not isinstance(name, str):
        raise _dfg_error("name", f"must be a string, got {name!r}")
    nodes = doc.get("nodes")
    if not isinstance(nodes, list):
        raise _dfg_error(
            "nodes", f"must be an array, got {type(nodes).__name__}"
        )
    edges = doc.get("edges", [])
    if not isinstance(edges, list):
        raise _dfg_error(
            "edges", f"must be an array, got {type(edges).__name__}"
        )
    dfg = DFG(name)
    seen: set[int] = set()
    for i, entry in enumerate(nodes):
        where = f"nodes[{i}]"
        if not isinstance(entry, dict):
            raise _dfg_error(
                where, f"must be an object, got {type(entry).__name__}"
            )
        nid = entry.get("id")
        if isinstance(nid, bool) or not isinstance(nid, int) or nid < 0:
            raise _dfg_error(
                f"{where}.id", f"must be a non-negative integer, got {nid!r}"
            )
        if nid in seen:
            raise _dfg_error(f"{where}.id", f"{nid} appears twice")
        seen.add(nid)
        opname = entry.get("op")
        try:
            op = Op(opname)
        except ValueError:
            raise _dfg_error(
                f"{where}.op", f"unknown opcode {opname!r}"
            ) from None
        for key, types in (
            ("name", str), ("array", str), ("value", int), ("pred", bool)
        ):
            val = entry.get(key)
            if val is not None and not isinstance(val, types):
                raise _dfg_error(
                    f"{where}.{key}",
                    f"must be a {types.__name__}, got {val!r}",
                )
        from repro.ir.dfg import Node

        dfg._nodes[nid] = Node(
            nid, op,
            name=entry.get("name"),
            value=entry.get("value"),
            array=entry.get("array"),
            pred=entry.get("pred"),
        )
        dfg._out[nid] = []
        dfg._in[nid] = []
    dfg._next_id = max(seen, default=-1) + 1
    for i, entry in enumerate(edges):
        where = f"edges[{i}]"
        if not isinstance(entry, (list, tuple)) or len(entry) != 4:
            raise _dfg_error(
                where, f"must be a [src, dst, port, dist] list, got {entry!r}"
            )
        src, dst, port, dist = entry
        for label, v in (("src", src), ("dst", dst), ("port", port),
                         ("dist", dist)):
            if isinstance(v, bool) or not isinstance(v, int):
                raise _dfg_error(
                    f"{where}.{label}", f"must be an integer, got {v!r}"
                )
        try:
            dfg.connect(src, dst, port=port, dist=dist)
        except DFGError as ex:
            raise _dfg_error(where, str(ex)) from None
    try:
        dfg.check()
    except DFGError as ex:
        raise ValueError(f"dfg document: {ex}") from None
    return dfg
