"""Mapping serialization.

A framework is only adoptable if its artifacts travel: tool A maps,
tool B simulates, a colleague inspects.  This module round-trips a
:class:`~repro.core.mapping.Mapping` through plain JSON — binding,
schedule, routes, II, dual-issue pairs — with enough architecture and
DFG fingerprinting to refuse loading against the wrong substrate.

The DFG and CGRA themselves are *not* serialized (they are code-level
objects with factories); the fingerprint ties a mapping file to the
(dfg, cgra) pair it was produced for.
"""

from __future__ import annotations

import hashlib
import json

from repro.arch.cgra import CGRA
from repro.arch.tec import Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG

__all__ = ["mapping_to_json", "mapping_from_json", "fingerprint"]

FORMAT_VERSION = 1


def fingerprint(dfg: DFG, cgra: CGRA) -> str:
    """A stable digest of the (application, architecture) pair."""
    h = hashlib.sha256()
    h.update(dfg.pretty().encode())
    h.update(cgra.render().encode())
    h.update(str(sorted(cgra.links)).encode())
    return h.hexdigest()[:16]


def mapping_to_json(mapping: Mapping, *, indent: int | None = 2) -> str:
    """Serialize a mapping (of either kind) to a JSON string."""
    doc = {
        "format": FORMAT_VERSION,
        "fingerprint": fingerprint(mapping.dfg, mapping.cgra),
        "dfg": mapping.dfg.name,
        "cgra": mapping.cgra.name,
        "kind": mapping.kind,
        "ii": mapping.ii,
        "mapper": mapping.mapper,
        "binding": {str(k): v for k, v in mapping.binding.items()},
        "schedule": {str(k): v for k, v in mapping.schedule.items()},
        "routes": [
            {
                "edge": [e.src, e.dst, e.port, e.dist],
                "steps": [[s.cell, s.time, s.kind] for s in steps],
            }
            for e, steps in mapping.routes.items()
        ],
        "coexec": [sorted(p) for p in mapping.coexec],
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def mapping_from_json(
    text: str, dfg: DFG, cgra: CGRA, *, verify: bool = True
) -> Mapping:
    """Rebuild a mapping against its (dfg, cgra) pair.

    Raises ValueError when the file's fingerprint does not match the
    supplied substrate (unless ``verify=False``), or on an unknown
    format version.  The result is re-validated before returning.
    """
    doc = json.loads(text)
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported mapping format {doc.get('format')!r}"
        )
    if verify and doc["fingerprint"] != fingerprint(dfg, cgra):
        raise ValueError(
            "mapping fingerprint mismatch: this file was produced for"
            f" a different (DFG, CGRA) pair (file: {doc['dfg']!r} on"
            f" {doc['cgra']!r})"
        )
    from repro.ir.dfg import Edge

    routes = {}
    for entry in doc["routes"]:
        src, dst, port, dist = entry["edge"]
        edge = Edge(src, dst, port=port, dist=dist)
        routes[edge] = [
            Step(cell, time, kind) for cell, time, kind in entry["steps"]
        ]
    mapping = Mapping(
        dfg,
        cgra,
        kind=doc["kind"],
        binding={int(k): v for k, v in doc["binding"].items()},
        schedule={int(k): v for k, v in doc["schedule"].items()},
        routes=routes,
        ii=doc["ii"],
        mapper=doc.get("mapper", "?"),
        coexec={frozenset(p) for p in doc.get("coexec", [])},
    )
    mapping.validate()
    return mapping
