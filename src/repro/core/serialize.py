"""Mapping serialization.

A framework is only adoptable if its artifacts travel: tool A maps,
tool B simulates, a colleague inspects.  This module round-trips a
:class:`~repro.core.mapping.Mapping` through plain JSON — binding,
schedule, routes, II, dual-issue pairs — with enough architecture and
DFG fingerprinting to refuse loading against the wrong substrate.

The DFG and CGRA themselves are *not* serialized (they are code-level
objects with factories); the fingerprint ties a mapping file to the
(dfg, cgra) pair it was produced for.  Since format 2 the fingerprint
is the canonical one from :mod:`repro.cache.fingerprint`: the DFG half
is isomorphism-invariant, and the architecture half covers everything
that affects feasibility (context depth, RF sizes, memory ports,
routing discipline) — format 1 hashed rendered text and silently
collided on presets differing only in ``n_contexts``.

The dict-level entry points (:func:`mapping_to_doc` /
:func:`mapping_from_doc`) accept an optional ``node_map`` that
relabels node ids on the way through; the mapping cache uses it to
store documents in canonical-id space so one entry replays onto any
isomorphic DFG regardless of node numbering.
"""

from __future__ import annotations

import json
from typing import Any, Mapping as MappingT

from repro.arch.cgra import CGRA
from repro.arch.tec import Step
from repro.core.mapping import Mapping
from repro.ir.dfg import DFG

__all__ = [
    "fingerprint",
    "mapping_from_doc",
    "mapping_from_json",
    "mapping_to_doc",
    "mapping_to_json",
]

FORMAT_VERSION = 2


def fingerprint(dfg: DFG, cgra: CGRA) -> str:
    """A stable digest of the (application, architecture) pair.

    Isomorphism-invariant over the DFG and exhaustive over the
    architecture parameters that affect feasibility.
    """
    # Imported lazily: repro.cache.store serializes through this module.
    from repro.cache.fingerprint import problem_fingerprint

    return problem_fingerprint(dfg, cgra)


def _ident(nid: int) -> int:
    return nid


def mapping_to_doc(
    mapping: Mapping, *, node_map: MappingT[int, int] | None = None
) -> dict[str, Any]:
    """Serialize a mapping (of either kind) to a plain-JSON dict.

    ``node_map`` relabels every node id in the document (binding and
    schedule keys, route edge endpoints, dual-issue pairs); identity
    when omitted.
    """
    nm = node_map.__getitem__ if node_map is not None else _ident
    return {
        "format": FORMAT_VERSION,
        "fingerprint": fingerprint(mapping.dfg, mapping.cgra),
        "dfg": mapping.dfg.name,
        "cgra": mapping.cgra.name,
        "kind": mapping.kind,
        "ii": mapping.ii,
        "mapper": mapping.mapper,
        "binding": {str(nm(k)): v for k, v in mapping.binding.items()},
        "schedule": {str(nm(k)): v for k, v in mapping.schedule.items()},
        "routes": [
            {
                "edge": [nm(e.src), nm(e.dst), e.port, e.dist],
                "steps": [[s.cell, s.time, s.kind] for s in steps],
            }
            for e, steps in mapping.routes.items()
        ],
        "coexec": [sorted(nm(n) for n in p) for p in mapping.coexec],
    }


def mapping_from_doc(
    doc: dict[str, Any],
    dfg: DFG,
    cgra: CGRA,
    *,
    node_map: MappingT[int, int] | None = None,
    verify: bool = True,
    validate: bool = True,
) -> Mapping:
    """Rebuild a mapping against its (dfg, cgra) pair from a dict.

    Raises ValueError when the document's fingerprint does not match
    the supplied substrate (unless ``verify=False``), or on an unknown
    format version.  ``node_map`` translates the document's node ids
    into the live DFG's (identity when omitted); the result is
    re-validated before returning unless ``validate=False``.
    """
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported mapping format {doc.get('format')!r}"
        )
    if verify and doc["fingerprint"] != fingerprint(dfg, cgra):
        raise ValueError(
            "mapping fingerprint mismatch: this file was produced for"
            f" a different (DFG, CGRA) pair (file: {doc['dfg']!r} on"
            f" {doc['cgra']!r})"
        )
    nm = node_map.__getitem__ if node_map is not None else _ident
    from repro.ir.dfg import Edge

    routes = {}
    for entry in doc["routes"]:
        src, dst, port, dist = entry["edge"]
        edge = Edge(nm(src), nm(dst), port=port, dist=dist)
        routes[edge] = [
            Step(cell, time, kind) for cell, time, kind in entry["steps"]
        ]
    mapping = Mapping(
        dfg,
        cgra,
        kind=doc["kind"],
        binding={nm(int(k)): v for k, v in doc["binding"].items()},
        schedule={nm(int(k)): v for k, v in doc["schedule"].items()},
        routes=routes,
        ii=doc["ii"],
        mapper=doc.get("mapper", "?"),
        coexec={frozenset(nm(n) for n in p) for p in doc.get("coexec", [])},
    )
    if validate:
        mapping.validate()
    return mapping


def mapping_to_json(mapping: Mapping, *, indent: int | None = 2) -> str:
    """Serialize a mapping (of either kind) to a JSON string."""
    return json.dumps(
        mapping_to_doc(mapping), indent=indent, sort_keys=True
    )


def mapping_from_json(
    text: str, dfg: DFG, cgra: CGRA, *, verify: bool = True
) -> Mapping:
    """Rebuild a mapping against its (dfg, cgra) pair from JSON text."""
    return mapping_from_doc(json.loads(text), dfg, cgra, verify=verify)
