"""The mapping problem and its lower bounds.

§II-C extracts one general formulation from twenty years of papers:
given an application DFG and a CGRA model, *bind in place and schedule
in time*.  :class:`MappingProblem` packages the two inputs and computes
the classic initiation-interval lower bounds every modulo scheduler
starts from:

* **ResMII** — resource-constrained minimum II: enough slots must
  exist for every operation (compute ops over compute cells, memory
  ops over memory-port cells);
* **RecMII** — recurrence-constrained minimum II: every dependence
  cycle must fit within ``II x distance`` cycles.

``MII = max(ResMII, RecMII)`` is where II search begins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.arch.cgra import CGRA
from repro.ir.dfg import DFG

__all__ = ["MappingProblem"]


@dataclass(frozen=True)
class MappingProblem:
    """An instance of the CGRA mapping problem."""

    dfg: DFG
    cgra: CGRA

    @cached_property
    def n_ops(self) -> int:
        return self.dfg.op_count()

    @cached_property
    def res_mii(self) -> int:
        """Resource-constrained minimum II."""
        compute_cells = len(self.cgra.compute_cells())
        if compute_cells == 0:
            raise ValueError(f"{self.cgra.name} has no compute cells")
        bound = math.ceil(self.n_ops / compute_cells) if self.n_ops else 1
        mem_ops = len(self.dfg.memory_ops())
        if mem_ops:
            mem_cells = len(self.cgra.memory_cells())
            if mem_cells == 0:
                raise ValueError(
                    f"{self.dfg.name} has memory ops but {self.cgra.name}"
                    " has no memory cells"
                )
            bound = max(bound, math.ceil(mem_ops / mem_cells))
        return max(1, bound)

    @cached_property
    def rec_mii(self) -> int:
        """Recurrence-constrained minimum II.

        ``max over cycles of ceil(sum(latency) / sum(distance))``.
        Parallel edges between the same node pair are collapsed to the
        minimum distance, which is the binding variant for the bound.
        """
        import networkx as nx

        g = nx.DiGraph()
        for nid in self.dfg:
            g.add_node(nid)
        for e in self.dfg.edges():
            if g.has_edge(e.src, e.dst):
                g[e.src][e.dst]["dist"] = min(
                    g[e.src][e.dst]["dist"], e.dist
                )
            else:
                g.add_edge(e.src, e.dst, dist=e.dist)

        best = 1
        for cycle in nx.simple_cycles(g):
            lat = sum(self.dfg.node(n).op.latency for n in cycle)
            dist = sum(
                g[cycle[i]][cycle[(i + 1) % len(cycle)]]["dist"]
                for i in range(len(cycle))
            )
            if dist == 0:
                # Impossible: dist-0 cycles are rejected by DFG.check().
                raise ValueError("zero-distance dependence cycle")
            best = max(best, math.ceil(lat / dist))
        return best

    @cached_property
    def mii(self) -> int:
        """The minimum initiation interval (start of every II search)."""
        return max(self.res_mii, self.rec_mii)

    def fits_spatially(self) -> bool:
        """Necessary condition for spatial mapping: one cell per op."""
        return self.n_ops <= len(self.cgra.compute_cells())

    def describe(self) -> str:
        return (
            f"{self.dfg.name} ({self.n_ops} ops,"
            f" {self.dfg.num_edges()} deps) on {self.cgra.name}"
            f" ({self.cgra.n_cells} cells):"
            f" ResMII={self.res_mii}, RecMII={self.rec_mii},"
            f" MII={self.mii}"
        )
