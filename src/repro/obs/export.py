"""JSONL trace export / import.

One record per line.  Line 0 is normally a **manifest** — the
provenance header (:func:`repro.obs.manifest.run_manifest`) carrying a
wall-clock anchor, git sha, python/platform, and (when known) problem
fingerprints — followed by one span record per span, pre-order, with
explicit ``id``/``parent``/``depth`` so a trace survives as a flat
stream (greppable, appendable, loadable by any JSONL reader) yet
rebuilds into the original span tree.  Counters recorded while no span
was open are emitted as one trailing synthetic record, so nothing the
tracer saw is dropped from the export.

Record shapes::

    {"type": "manifest", "format": 2, "unix_time": ..., "perf_anchor":
     ..., "git_sha": ..., ...}
    {"id": 0, "parent": null, "depth": 0, "name": "map",
     "start": 12.345, "end": 12.456, "dur_ms": 111.0,
     "tags": {"mapper": "dresc"}, "counters": {"ii_attempts": 3},
     "progress": {"dresc.best_cost": {"name": ..., "samples": ...}}}
    {"type": "counters", "counters": {"check_cases": 7}}

``start``/``end`` are ``time.perf_counter`` readings; the manifest's
``perf_anchor``/``unix_time`` pair converts them to absolute time
(``unix_time + reading - perf_anchor``).  Readers accept files with
*or* without the header — format-1 traces (bare span records) keep
loading.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.manifest import run_manifest
from repro.obs.progress import ProgressSeries
from repro.obs.tracer import Span, Tracer

__all__ = [
    "manifest_of",
    "read_jsonl",
    "spans_from_records",
    "to_records",
    "untraced_counters_of",
    "write_jsonl",
]


def _roots_of(source: Tracer | Span | Sequence[Span]) -> list[Span]:
    if isinstance(source, Span):
        return [source]
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    return list(source)


def to_records(source: Tracer | Span | Sequence[Span]) -> list[dict[str, Any]]:
    """Flatten a tracer / span tree / list of roots into JSONL records.

    Span records come first (pre-order, ``id``/``parent`` linked); a
    tracer's loose counters — recorded while no span was open — follow
    as one ``{"type": "counters"}`` record so they survive the export.
    """
    records: list[dict[str, Any]] = []

    def emit(span: Span, parent: int | None, depth: int) -> None:
        sid = len(records)
        rec = {
            "id": sid,
            "parent": parent,
            "depth": depth,
            "name": span.name,
            "start": span.t_start,
            "end": span.t_end,
            "dur_ms": round(span.dur_ms, 3),
            "tags": dict(span.tags),
            "counters": dict(span.counters),
        }
        if span.progress:
            rec["progress"] = {
                name: series.to_dict()
                for name, series in sorted(span.progress.items())
            }
        records.append(rec)
        for child in span.children:
            emit(child, sid, depth + 1)

    for root in _roots_of(source):
        emit(root, None, 0)
    loose = dict(getattr(source, "counters", None) or {})
    if loose:
        records.append({"type": "counters", "counters": loose})
    return records


def write_jsonl(
    source: Tracer | Span | Sequence[Span],
    path: str,
    *,
    manifest: dict[str, Any] | bool = True,
) -> int:
    """Write ``source`` to ``path``; returns the record count.

    ``manifest=True`` (default) writes a freshly built provenance
    header as line 0; pass a dict to use a caller-built manifest (one
    with problem fingerprints, say), or ``False`` to write a bare
    format-1 trace.
    """
    records = to_records(source)
    if manifest is True:
        records.insert(0, run_manifest())
    elif manifest:
        records.insert(0, manifest)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into records (blank lines skipped)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def manifest_of(
    records: Iterable[dict[str, Any]]
) -> dict[str, Any] | None:
    """The provenance header of a record stream, or None (format 1)."""
    for rec in records:
        if rec.get("type") == "manifest":
            return rec
    return None


def untraced_counters_of(
    records: Iterable[dict[str, Any]]
) -> dict[str, int]:
    """Counters recorded outside any span, folded over the stream."""
    out: dict[str, int] = {}
    for rec in records:
        if rec.get("type") == "counters":
            for name, n in (rec.get("counters") or {}).items():
                out[name] = out.get(name, 0) + n
    return out


def spans_from_records(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild the span forest from flat records; returns the roots.

    Non-span records — the manifest header, untraced-counter records,
    any future typed record — are skipped, so format-1 and format-2
    files both round-trip.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for rec in records:
        if rec.get("type") not in (None, "span") or "name" not in rec:
            continue
        span = Span(rec["name"], rec.get("tags") or {})
        span.counters = dict(rec.get("counters") or {})
        span.t_start = float(rec.get("start", 0.0))
        span.t_end = float(rec.get("end", 0.0))
        if rec.get("progress"):
            span.progress = {
                name: ProgressSeries.from_dict(data)
                for name, data in rec["progress"].items()
            }
        by_id[rec["id"]] = span
        parent = rec.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots
