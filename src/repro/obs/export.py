"""JSONL trace export / import.

One span per line, pre-order, with explicit ``id``/``parent``/``depth``
so a trace survives as a flat stream (greppable, appendable, loadable
by any JSONL reader) yet rebuilds into the original span tree.

Record shape::

    {"id": 0, "parent": null, "depth": 0, "name": "map",
     "start": 12.345, "end": 12.456, "dur_ms": 111.0,
     "tags": {"mapper": "dresc"}, "counters": {"ii_attempts": 3}}

``start``/``end`` are ``time.perf_counter`` readings — meaningful as
differences within one trace, not as absolute timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.tracer import Span, Tracer

__all__ = [
    "read_jsonl",
    "spans_from_records",
    "to_records",
    "write_jsonl",
]


def _roots_of(source: Tracer | Span | Sequence[Span]) -> list[Span]:
    if isinstance(source, Span):
        return [source]
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    return list(source)


def to_records(source: Tracer | Span | Sequence[Span]) -> list[dict[str, Any]]:
    """Flatten a tracer / span tree / list of roots into JSONL records."""
    records: list[dict[str, Any]] = []

    def emit(span: Span, parent: int | None, depth: int) -> None:
        sid = len(records)
        records.append(
            {
                "id": sid,
                "parent": parent,
                "depth": depth,
                "name": span.name,
                "start": span.t_start,
                "end": span.t_end,
                "dur_ms": round(span.dur_ms, 3),
                "tags": dict(span.tags),
                "counters": dict(span.counters),
            }
        )
        for child in span.children:
            emit(child, sid, depth + 1)

    for root in _roots_of(source):
        emit(root, None, 0)
    return records


def write_jsonl(
    source: Tracer | Span | Sequence[Span], path: str
) -> int:
    """Write every span of ``source`` to ``path``; returns the span count."""
    records = to_records(source)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into records (blank lines skipped)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_from_records(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild the span forest from flat records; returns the roots."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for rec in records:
        span = Span(rec["name"], rec.get("tags") or {})
        span.counters = dict(rec.get("counters") or {})
        span.t_start = float(rec.get("start", 0.0))
        span.t_end = float(rec.get("end", 0.0))
        by_id[rec["id"]] = span
        parent = rec.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots
