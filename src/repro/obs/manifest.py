"""Run manifests: the provenance header of every traced run.

A trace whose timestamps are raw ``perf_counter`` readings is only
meaningful to the process that wrote it; a benchmark number without
the git revision, seed, and architecture that produced it cannot gate
a regression.  :func:`run_manifest` assembles the provenance record
that fixes both:

* **wall-clock anchor** — ``unix_time`` (``time.time()``) captured at
  the same instant as ``perf_anchor`` (``time.perf_counter()``), so
  any perf-counter reading in the same process converts to an
  absolute timestamp: ``unix_time + (reading - perf_anchor)``;
* **code provenance** — package version and git revision (best
  effort: absent outside a checkout);
* **environment** — python version, platform, machine;
* **problem identity** — the isomorphism-invariant DFG and
  architecture fingerprints from :mod:`repro.cache.fingerprint`, when
  a problem is in scope.

The manifest is line 0 of trace JSONL files
(:func:`repro.obs.export.write_jsonl`) and is embedded in every
perf-ledger entry (:mod:`repro.bench.history`).  The record carries
``{"type": "manifest", "format": TRACE_FORMAT}``; readers must treat
files *without* a header as format 1 (pre-manifest) and keep parsing.
"""

from __future__ import annotations

import platform
import subprocess
import time
from typing import Any

from repro._version import __version__

__all__ = ["TRACE_FORMAT", "git_revision", "run_manifest"]

#: Trace JSONL schema version.  1 = bare span records (PR 1);
#: 2 = manifest header + typed non-span records (this module).
TRACE_FORMAT = 2

_GIT_UNSET = "\0unset"
_git_sha: str | None = _GIT_UNSET  # type: ignore[assignment]


def git_revision() -> str | None:
    """The current checkout's HEAD sha, or None outside a repo.

    Cached per process — provenance does not change mid-run, and the
    subprocess is too slow for per-trace use otherwise.
    """
    global _git_sha
    if _git_sha != _GIT_UNSET:
        return _git_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
        _git_sha = out.stdout.strip() if out.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        _git_sha = None
    return _git_sha


def run_manifest(
    *,
    dfg: Any = None,
    cgra: Any = None,
    seed: int | None = None,
    label: str | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the provenance record for one run.

    ``dfg``/``cgra`` add content-addressed problem fingerprints (the
    same digests the mapping cache keys on, so a ledger entry and a
    cache entry for the same problem agree by construction).
    """
    rec: dict[str, Any] = {
        "type": "manifest",
        "format": TRACE_FORMAT,
        "unix_time": time.time(),
        "perf_anchor": time.perf_counter(),
        "version": __version__,
        "git_sha": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    if seed is not None:
        rec["seed"] = seed
    if label is not None:
        rec["label"] = label
    if dfg is not None:
        # Imported lazily: repro.cache pulls in repro.core, which
        # imports repro.obs — a module-level import would be circular.
        from repro.cache.fingerprint import dfg_fingerprint

        rec["dfg"] = getattr(dfg, "name", None)
        rec["dfg_fingerprint"] = dfg_fingerprint(dfg)
    if cgra is not None:
        from repro.cache.fingerprint import arch_fingerprint

        rec["arch"] = getattr(cgra, "name", None)
        rec["arch_fingerprint"] = arch_fingerprint(cgra)
    if extra:
        for key, value in extra.items():
            rec.setdefault(key, value)
    return rec
