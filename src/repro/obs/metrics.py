"""Mergeable process metrics: counters, gauges, log-bucketed histograms.

Spans (:mod:`repro.obs.tracer`) answer "where did *this run's* time
go"; this module answers the distribution questions a fleet of runs
raises — "what is p95 map latency across the matrix?", "how many maps
has this process served?" — the numbers a ``repro serve`` daemon must
expose and a perf-regression ledger must record.

Three typed instruments live in a :class:`MetricsRegistry`:

* :class:`Counter` — monotonic totals (``maps_total``).
* :class:`Gauge` — last-written value (queue depth, pool size).
* :class:`Histogram` — **log-bucketed** with exact per-bucket counts:
  bucket boundaries grow geometrically (:data:`GROWTH` per bucket,
  ~9% relative width), so any two histograms over the same value
  domain share the same bucket grid and **merge associatively and
  commutatively by adding counts** — the property that lets forked
  :func:`repro.parallel.pmap` workers ship snapshot *deltas* back in
  their :class:`~repro.parallel.PMapResult` and the parent fold them
  in exactly (mirroring the mapping cache's stats-delta merge).
  Quantile readouts (p50/p90/p99) come from the bucket grid with the
  bucket's relative-width error bound.

**Snapshots are plain dicts** (JSON-clean, stable key order), so they
pickle across processes, append to JSONL ledgers, and diff/merge
without the live objects: :func:`merge_snapshots` is the associative
fold, :meth:`MetricsRegistry.delta_since` the subtraction.

**No-op-when-disabled contract.**  Like :data:`~repro.obs.tracer.NULL_TRACER`,
the module-level active registry defaults to :data:`NULL_REGISTRY`,
whose instrument getters return shared do-nothing singletons —
instrumented hot paths pay one method call per event and allocate
nothing.  Enable per region with::

    with metrics_scope() as reg:
        run_matrix(...)
    print(render_prometheus(reg))
    print(reg.histogram(MAP_LATENCY_MS).percentile(0.95))
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from types import MappingProxyType
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "GROWTH",
    "Histogram",
    "INSTRUMENTS",
    "MAP_FAILURES_TOTAL",
    "MAP_LATENCY_MS",
    "MAPS_TOTAL",
    "MATRIX_CELLS_TOTAL",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "POOL_DEDUP_TOTAL",
    "POOL_RESPAWNS_TOTAL",
    "SAT_CONFLICTS",
    "SERVE_BATCHES_TOTAL",
    "SERVE_ERRORS_TOTAL",
    "SERVE_INFLIGHT",
    "SERVE_REQUEST_LATENCY_MS",
    "SERVE_REQUESTS_TOTAL",
    "get_metrics",
    "merge_snapshots",
    "metrics_scope",
    "render_prometheus",
    "set_metrics",
]

# ---------------------------------------------------------------------------
# Instrument-name vocabulary.  Like the tracer's COUNTERS, sites use
# these constants so names cannot drift from the renderers/ledger.
MAPS_TOTAL = "maps_total"                  #: successful Mapper.map calls
MAP_FAILURES_TOTAL = "map_failures_total"  #: Mapper.map MapFailure raises
MAP_LATENCY_MS = "map_latency_ms"          #: histogram of Mapping.map_time
MATRIX_CELLS_TOTAL = "matrix_cells_total"  #: run_matrix cells executed
SAT_CONFLICTS = "sat_conflicts"            #: histogram of conflicts/solve
POOL_RESPAWNS_TOTAL = "pool_respawns_total"  #: pool workers replaced after a crash/hard timeout
POOL_DEDUP_TOTAL = "pool_dedup_total"      #: in-batch duplicate tasks collapsed onto a primary
SERVE_REQUESTS_TOTAL = "serve_requests_total"  #: requests accepted by the daemon
SERVE_ERRORS_TOTAL = "serve_errors_total"  #: requests answered with a structured error
SERVE_BATCHES_TOTAL = "serve_batches_total"  #: request batches executed over the pool
SERVE_REQUEST_LATENCY_MS = "serve_request_latency_ms"  #: histogram of accept-to-settle wall time
SERVE_INFLIGHT = "serve_inflight"          #: gauge of requests accepted but not yet settled

INSTRUMENTS = (
    MAPS_TOTAL,
    MAP_FAILURES_TOTAL,
    MAP_LATENCY_MS,
    MATRIX_CELLS_TOTAL,
    SAT_CONFLICTS,
    POOL_RESPAWNS_TOTAL,
    POOL_DEDUP_TOTAL,
    SERVE_REQUESTS_TOTAL,
    SERVE_ERRORS_TOTAL,
    SERVE_BATCHES_TOTAL,
    SERVE_REQUEST_LATENCY_MS,
    SERVE_INFLIGHT,
)

#: Geometric bucket growth factor: 2**(1/4), four buckets per octave,
#: so a bucket's bounds differ by ~19% and a quantile readout is
#: within ~9% of the true value.  Every histogram shares this grid —
#: the precondition for exact associative merging.
GROWTH = 2.0 ** 0.25

#: Bucket index for values <= 0 (latencies and counts are
#: non-negative; 0 is common and gets its own exact bucket).
_ZERO_BUCKET = -(2 ** 30)

_LOG_GROWTH = math.log(GROWTH)


def _bucket_of(value: float) -> int:
    if value <= 0.0:
        return _ZERO_BUCKET
    return math.floor(math.log(value) / _LOG_GROWTH)


def bucket_upper(index: int) -> float:
    """The inclusive upper bound of bucket ``index``."""
    if index == _ZERO_BUCKET:
        return 0.0
    return GROWTH ** (index + 1)


# ---------------------------------------------------------------------------
class Counter:
    """A monotonic counter."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def merge(self, snap: dict[str, Any]) -> None:
        self.value += snap.get("value", 0)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-write-wins value (merge order: submission order)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def merge(self, snap: dict[str, Any]) -> None:
        if "value" in snap:
            self.value = snap["value"]

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Log-bucketed histogram with exact counts and associative merge.

    Tracks ``count``, ``sum`` and per-bucket counts only; min/max and
    quantiles are *read out* of the bucket grid (within the bucket's
    ~9% relative width), which keeps snapshots subtractable — a delta
    between two snapshots of one histogram is itself a valid
    histogram, so forked workers can ship exactly what they observed.
    """

    __slots__ = ("name", "count", "total", "buckets")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        idx = _bucket_of(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value

    # -- readouts ------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The upper bound of the bucket holding the q-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                return bucket_upper(idx)
        return bucket_upper(max(self.buckets))  # pragma: no cover

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": round(self.percentile(0.50), 3),
            "p90": round(self.percentile(0.90), 3),
            "p99": round(self.percentile(0.99), 3),
        }

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            # JSON object keys are strings; sorted for determinism.
            "buckets": {
                str(idx): self.buckets[idx]
                for idx in sorted(self.buckets)
            },
        }

    def merge(self, snap: dict[str, Any]) -> None:
        self.count += snap.get("count", 0)
        self.total += snap.get("sum", 0.0)
        for key, n in (snap.get("buckets") or {}).items():
            idx = int(key)
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# ---------------------------------------------------------------------------
class MetricsRegistry:
    """A named set of instruments with dict snapshots and exact merge."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__},"
                f" not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """The whole registry as a plain, JSON-clean, sorted dict."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def merge(self, snap: dict[str, dict[str, Any]] | None) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry."""
        if not snap:
            return
        for name in sorted(snap):
            data = snap[name]
            cls = _KINDS.get(data.get("type"))
            if cls is None:
                raise ValueError(
                    f"snapshot entry {name!r} has unknown type"
                    f" {data.get('type')!r}"
                )
            self._get(name, cls).merge(data)

    def delta_since(
        self, before: dict[str, dict[str, Any]]
    ) -> dict[str, dict[str, Any]]:
        """What happened since ``before = registry.snapshot()``.

        The result is itself a snapshot: counters/histograms carry the
        subtracted totals (exact — counts are monotonic), gauges carry
        their current value (last-write-wins under merge).
        """
        out: dict[str, dict[str, Any]] = {}
        for name, now in self.snapshot().items():
            prev = before.get(name)
            if now["type"] == "gauge":
                if prev is None or now["value"] != prev["value"]:
                    out[name] = now
                continue
            if prev is None:
                if _snapshot_nonzero(now):
                    out[name] = now
                continue
            delta = _subtract(now, prev)
            if _snapshot_nonzero(delta):
                out[name] = delta
        return out


def _snapshot_nonzero(snap: dict[str, Any]) -> bool:
    if snap["type"] == "counter":
        return bool(snap["value"])
    if snap["type"] == "histogram":
        return bool(snap["count"])
    return True


def _subtract(now: dict[str, Any], prev: dict[str, Any]) -> dict[str, Any]:
    if now["type"] != prev["type"]:
        raise ValueError(
            f"cannot subtract {prev['type']} snapshot from {now['type']}"
        )
    if now["type"] == "counter":
        return {"type": "counter", "value": now["value"] - prev["value"]}
    buckets: dict[str, int] = {}
    old = prev.get("buckets") or {}
    for key, n in (now.get("buckets") or {}).items():
        d = n - old.get(key, 0)
        if d:
            buckets[key] = d
    return {
        "type": "histogram",
        "count": now["count"] - prev["count"],
        "sum": now["sum"] - prev["sum"],
        "buckets": buckets,
    }


def merge_snapshots(
    a: dict[str, dict[str, Any]], b: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Merge two snapshots into a new one (associative; commutative for
    counters and histograms, last-write-wins for gauges)."""
    reg = MetricsRegistry()
    reg.merge(a)
    reg.merge(b)
    return reg.snapshot()


# ---------------------------------------------------------------------------
class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    buckets: Any = MappingProxyType({})

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {}

    def snapshot(self) -> dict:
        return {}

    def __repr__(self) -> str:
        return "NULL_INSTRUMENT"


class NullRegistry:
    """The disabled registry: instrument getters return shared no-ops.

    Like :class:`~repro.obs.tracer.NullTracer`, the *object* is the
    off switch — instrumented code never branches on a flag.
    """

    enabled = False

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def merge(self, snap) -> None:
        pass

    def delta_since(self, before) -> dict:
        return {}

    def __repr__(self) -> str:
        return "NULL_REGISTRY"


NULL_INSTRUMENT = _NullInstrument()
NULL_REGISTRY = NullRegistry()

_ACTIVE: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_metrics() -> MetricsRegistry | NullRegistry:
    """The active registry (the no-op singleton unless one is installed)."""
    return _ACTIVE


def set_metrics(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` (None = disable); returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def metrics_scope(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Collect metrics for a region; restores the previous registry on
    exit.  Forked :func:`repro.parallel.pmap` workers inherit the
    active registry and ship their deltas back automatically.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(active)
    try:
        yield active
    finally:
        set_metrics(previous)


# ---------------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return prefix + safe


def render_prometheus(
    source: MetricsRegistry | dict[str, dict[str, Any]],
    *,
    prefix: str = "repro_",
) -> str:
    """Prometheus text exposition (v0.0.4) of a registry or snapshot.

    Histograms render the standard cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count``; the exposition is what a future
    ``repro serve`` daemon returns from ``/metrics``.
    """
    snap = source.snapshot() if hasattr(source, "snapshot") else source
    lines: list[str] = []
    for name in sorted(snap):
        data = snap[name]
        kind = data.get("type")
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{pname} {data['value']:g}")
            continue
        cum = 0
        for key in sorted(
            (data.get("buckets") or {}), key=int
        ):
            cum += data["buckets"][key]
            le = bucket_upper(int(key))
            lines.append(f'{pname}_bucket{{le="{le:.6g}"}} {cum}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{pname}_sum {data['sum']:g}")
        lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines)
