"""Observability: tracing, typed counters, trace export, logging.

The survey's §II-C names the mapping quality criterion as "high
quality solution with fast compilation time"; this subsystem makes the
second half measurable *per stage* instead of as one opaque
``map_time``.  Four pieces:

* :mod:`repro.obs.tracer` — nested context-manager spans with
  wall-clock, tags, and typed counters; disabled by default through
  no-op singletons (near-zero overhead on every hot path);
* :mod:`repro.obs.export` — JSONL trace writer/reader that round-trips
  the span tree;
* :mod:`repro.obs.render` — ASCII flame view and per-phase summary
  (the CLI's ``--profile`` report);
* :mod:`repro.obs.logwire` — the stdlib ``repro.*`` logger hierarchy
  (silent by default, ``-v`` wires DEBUG).

Instrumentation already threaded through the package: every
``Mapper.map`` call opens a root span, the II search records one span
per attempted II, the three solver backends report model sizes and
conflict/node counters, the pass manager records per-pass spans, and
the mapper inner loops emit ``candidates_explored`` / ``backtracks`` /
``routing_attempts``.
"""

from repro.obs.export import (
    read_jsonl,
    spans_from_records,
    to_records,
    write_jsonl,
)
from repro.obs.logwire import configure_logging, get_logger
from repro.obs.render import render_flame, render_profile, render_summary
from repro.obs.tracer import (
    BACKTRACKS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_VALIDATION_FAILURES,
    CANDIDATES_EXPLORED,
    CHECK_CASES,
    CHECK_DIVERGENCES,
    COUNTERS,
    II_ATTEMPTS,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    ROUTING_ATTEMPTS,
    SHRINK_ROUNDS,
    SOLVER_CLAUSES,
    SOLVER_CONFLICTS,
    SOLVER_DECISIONS,
    SOLVER_NODES,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BACKTRACKS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_VALIDATION_FAILURES",
    "CANDIDATES_EXPLORED",
    "CHECK_CASES",
    "CHECK_DIVERGENCES",
    "COUNTERS",
    "II_ATTEMPTS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ROUTING_ATTEMPTS",
    "SHRINK_ROUNDS",
    "SOLVER_CLAUSES",
    "SOLVER_CONFLICTS",
    "SOLVER_DECISIONS",
    "SOLVER_NODES",
    "Span",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_tracer",
    "read_jsonl",
    "render_flame",
    "render_profile",
    "render_summary",
    "set_tracer",
    "spans_from_records",
    "to_records",
    "tracing",
    "write_jsonl",
]
