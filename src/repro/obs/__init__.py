"""Observability: tracing, metrics, convergence telemetry, manifests.

The survey's §II-C names the mapping quality criterion as "high
quality solution with fast compilation time"; this subsystem makes the
second half measurable *per stage*, *per distribution*, and *over
time* instead of as one opaque ``map_time``.  Six pieces:

* :mod:`repro.obs.tracer` — nested context-manager spans with
  wall-clock, tags, typed counters, and convergence samples; disabled
  by default through no-op singletons (near-zero overhead on every
  hot path);
* :mod:`repro.obs.metrics` — process-wide mergeable metrics: monotonic
  counters, gauges, and log-bucketed histograms (p50/p90/p99) whose
  snapshots fold deterministically across fork workers, plus a
  Prometheus text exposition;
* :mod:`repro.obs.progress` — bounded, thinned time-series of search
  progress (best cost, solver conflicts) for anytime/convergence
  reporting;
* :mod:`repro.obs.manifest` — the provenance header (git sha, seed,
  python, wall-clock anchor, problem fingerprints) every traced run
  and ledger entry carries;
* :mod:`repro.obs.export` — JSONL trace writer/reader: manifest line
  0, span records, untraced-counter records; round-trips the span
  tree and reads headerless format-1 files;
* :mod:`repro.obs.render` — ASCII flame view, per-phase summary, and
  convergence plots (the CLI's ``--profile`` report);
* :mod:`repro.obs.logwire` — the stdlib ``repro.*`` logger hierarchy
  (silent by default, ``-v`` wires DEBUG).

Instrumentation already threaded through the package: every
``Mapper.map`` call opens a root span and feeds the latency histogram,
the II search records one span per attempted II, the solver backends
report model sizes, conflict/node counters, and conflict-curve
progress, the pass manager records per-pass spans, the iterative
mappers emit best-cost convergence series, and the inner loops emit
``candidates_explored`` / ``backtracks`` / ``routing_attempts``.
"""

from repro.obs.export import (
    manifest_of,
    read_jsonl,
    spans_from_records,
    to_records,
    untraced_counters_of,
    write_jsonl,
)
from repro.obs.logwire import configure_logging, get_logger
from repro.obs.manifest import TRACE_FORMAT, git_revision, run_manifest
from repro.obs.metrics import (
    INSTRUMENTS,
    MAP_FAILURES_TOTAL,
    MAP_LATENCY_MS,
    MAPS_TOTAL,
    MATRIX_CELLS_TOTAL,
    NULL_REGISTRY,
    SAT_CONFLICTS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_metrics,
    merge_snapshots,
    metrics_scope,
    render_prometheus,
    set_metrics,
)
from repro.obs.progress import ProgressSeries
from repro.obs.render import (
    render_convergence,
    render_flame,
    render_profile,
    render_summary,
)
from repro.obs.tracer import (
    BACKTRACKS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_VALIDATION_FAILURES,
    CANDIDATES_EXPLORED,
    CHECK_CASES,
    CHECK_DIVERGENCES,
    COUNTERS,
    II_ATTEMPTS,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    ROUTING_ATTEMPTS,
    SHRINK_ROUNDS,
    SOLVER_CLAUSES,
    SOLVER_CONFLICTS,
    SOLVER_DECISIONS,
    SOLVER_NODES,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BACKTRACKS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_VALIDATION_FAILURES",
    "CANDIDATES_EXPLORED",
    "CHECK_CASES",
    "CHECK_DIVERGENCES",
    "COUNTERS",
    "Counter",
    "Gauge",
    "Histogram",
    "II_ATTEMPTS",
    "INSTRUMENTS",
    "MAPS_TOTAL",
    "MAP_FAILURES_TOTAL",
    "MAP_LATENCY_MS",
    "MATRIX_CELLS_TOTAL",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProgressSeries",
    "ROUTING_ATTEMPTS",
    "SAT_CONFLICTS",
    "SHRINK_ROUNDS",
    "SOLVER_CLAUSES",
    "SOLVER_CONFLICTS",
    "SOLVER_DECISIONS",
    "SOLVER_NODES",
    "Span",
    "TRACE_FORMAT",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "git_revision",
    "manifest_of",
    "merge_snapshots",
    "metrics_scope",
    "read_jsonl",
    "render_convergence",
    "render_flame",
    "render_profile",
    "render_prometheus",
    "render_summary",
    "run_manifest",
    "set_metrics",
    "set_tracer",
    "spans_from_records",
    "to_records",
    "tracing",
    "untraced_counters_of",
    "write_jsonl",
]
