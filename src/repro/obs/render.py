"""ASCII renderers for traces: flame view and per-phase summary.

Both render plain text, like every other report in the package, and
both reuse :func:`repro.bench.harness.ascii_table` (imported lazily —
the bench harness itself records traces, so the import must not be
circular at module load).
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.tracer import Span, Tracer

__all__ = ["render_flame", "render_profile", "render_summary"]

_BAR_WIDTH = 24


def _roots_of(source: Tracer | Span | Sequence[Span]) -> list[Span]:
    if isinstance(source, Span):
        return [source]
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    return list(source)


def _fmt_tags(span: Span) -> str:
    return " ".join(f"{k}={v}" for k, v in span.tags.items())


def render_flame(source: Tracer | Span | Sequence[Span]) -> str:
    """Indented span tree with duration bars — a text flame graph.

    Bar length is proportional to each span's share of its root's
    wall-clock, so hot phases are visible at a glance.
    """
    lines: list[str] = []
    for root in _roots_of(source):
        scale = root.duration or 1.0
        for depth, span in root.walk():
            frac = min(1.0, span.duration / scale)
            bar = "#" * max(1, round(frac * _BAR_WIDTH))
            label = "  " * depth + span.name
            tags = _fmt_tags(span)
            counters = " ".join(
                f"{k}={v}" for k, v in sorted(span.counters.items())
            )
            detail = " ".join(x for x in (tags, counters) if x)
            lines.append(
                f"{label:<32s} {span.dur_ms:>9.2f} ms"
                f" {bar:<{_BAR_WIDTH}s} {detail}".rstrip()
            )
    return "\n".join(lines)


def render_summary(
    source: Tracer | Span | Sequence[Span], *, title: str = "per-phase summary"
) -> str:
    """Aggregate spans by name: calls, total/self time, counters."""
    from repro.bench.harness import ascii_table

    order: list[str] = []
    agg: dict[str, dict] = {}
    for root in _roots_of(source):
        for _, span in root.walk():
            if span.name not in agg:
                order.append(span.name)
                agg[span.name] = {
                    "calls": 0, "total": 0.0, "self": 0.0, "counters": {},
                }
            a = agg[span.name]
            a["calls"] += 1
            a["total"] += span.duration
            a["self"] += span.self_duration
            for k, v in span.counters.items():
                a["counters"][k] = a["counters"].get(k, 0) + v

    rows = []
    for name in order:
        a = agg[name]
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(a["counters"].items())
        )
        rows.append(
            {
                "phase": name,
                "calls": a["calls"],
                "total_ms": round(1000 * a["total"], 2),
                "self_ms": round(1000 * a["self"], 2),
                "counters": counters,
            }
        )
    return ascii_table(rows, title=title)


def render_profile(source: Tracer | Span | Sequence[Span]) -> str:
    """The ``--profile`` report: flame view plus per-phase summary."""
    roots = _roots_of(source)
    if not roots:
        return "(no spans recorded)"
    parts = [render_flame(roots), "", render_summary(roots)]
    totals: dict[str, int] = {}
    for root in roots:
        for k, v in root.totals().items():
            totals[k] = totals.get(k, 0) + v
    if totals:
        parts.append("")
        parts.append(
            "counters: "
            + " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        )
    return "\n".join(parts)
