"""ASCII renderers for traces: flame view and per-phase summary.

Both render plain text, like every other report in the package, and
both reuse :func:`repro.bench.harness.ascii_table` (imported lazily —
the bench harness itself records traces, so the import must not be
circular at module load).
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.progress import ProgressSeries
from repro.obs.tracer import Span, Tracer

__all__ = [
    "render_convergence",
    "render_flame",
    "render_profile",
    "render_summary",
]

_BAR_WIDTH = 24

#: Canvas of one convergence plot (plus axis gutters).
_PLOT_WIDTH = 56
_PLOT_HEIGHT = 8

#: Plots rendered per profile before summarising the rest.
_MAX_PLOTS = 6


def _roots_of(source: Tracer | Span | Sequence[Span]) -> list[Span]:
    if isinstance(source, Span):
        return [source]
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    return list(source)


def _fmt_tags(span: Span) -> str:
    return " ".join(f"{k}={v}" for k, v in span.tags.items())


def render_flame(source: Tracer | Span | Sequence[Span]) -> str:
    """Indented span tree with duration bars — a text flame graph.

    Bar length is proportional to each span's share of its root's
    wall-clock, so hot phases are visible at a glance.
    """
    lines: list[str] = []
    for root in _roots_of(source):
        scale = root.duration or 1.0
        for depth, span in root.walk():
            frac = min(1.0, span.duration / scale)
            bar = "#" * max(1, round(frac * _BAR_WIDTH))
            label = "  " * depth + span.name
            tags = _fmt_tags(span)
            counters = " ".join(
                f"{k}={v}" for k, v in sorted(span.counters.items())
            )
            detail = " ".join(x for x in (tags, counters) if x)
            lines.append(
                f"{label:<32s} {span.dur_ms:>9.2f} ms"
                f" {bar:<{_BAR_WIDTH}s} {detail}".rstrip()
            )
    return "\n".join(lines)


def render_summary(
    source: Tracer | Span | Sequence[Span], *, title: str = "per-phase summary"
) -> str:
    """Aggregate spans by name: calls, total/self time, counters."""
    from repro.bench.harness import ascii_table

    order: list[str] = []
    agg: dict[str, dict] = {}
    for root in _roots_of(source):
        for _, span in root.walk():
            if span.name not in agg:
                order.append(span.name)
                agg[span.name] = {
                    "calls": 0, "total": 0.0, "self": 0.0, "counters": {},
                }
            a = agg[span.name]
            a["calls"] += 1
            a["total"] += span.duration
            a["self"] += span.self_duration
            for k, v in span.counters.items():
                a["counters"][k] = a["counters"].get(k, 0) + v

    rows = []
    for name in order:
        a = agg[name]
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(a["counters"].items())
        )
        rows.append(
            {
                "phase": name,
                "calls": a["calls"],
                "total_ms": round(1000 * a["total"], 2),
                "self_ms": round(1000 * a["self"], 2),
                "counters": counters,
            }
        )
    return ascii_table(rows, title=title)


def _series_of(
    source: Tracer | Span | Sequence[Span],
) -> list[ProgressSeries]:
    """Every progress series in ``source``: span-attached (walked in
    tree order) plus any loose tracer-level series."""
    out: list[ProgressSeries] = []
    for root in _roots_of(source):
        for _, span in root.walk():
            if span.progress:
                out.extend(
                    span.progress[name] for name in sorted(span.progress)
                )
    loose = getattr(source, "series", None)
    if loose:
        out.extend(loose[name] for name in sorted(loose))
    return out


def _plot_series(series: ProgressSeries) -> str:
    """One ASCII convergence plot: value (y) against run time (x)."""
    pts = series.samples
    header = (
        f"{series.name}  n={len(pts)}"
        f"  t={series.duration * 1000:.1f}ms"
        + (f"  final={series.final:g}" if series.final is not None else "")
    )
    if not pts:
        return header
    values = [v for _, v in pts]
    vmin, vmax = min(values), max(values)
    t_end = pts[-1][0]
    width, height = _PLOT_WIDTH, _PLOT_HEIGHT
    if vmax == vmin or len(pts) == 1:
        return header + f"\n  (flat at {vmin:g})"
    grid = [[" "] * width for _ in range(height)]
    # Staircase: each column shows the latest sample at or before its
    # time, so anytime behaviour ("how fast does best cost fall") is
    # visible even with few samples.
    si = 0
    level: float | None = None
    for col in range(width):
        t = t_end * col / (width - 1)
        while si < len(pts) and pts[si][0] <= t:
            level = pts[si][1]
            si += 1
        if level is None:
            continue
        row = round(
            (height - 1) * (vmax - level) / (vmax - vmin)
        )
        grid[row][col] = "*"
    lo, hi = f"{vmin:g}", f"{vmax:g}"
    gutter = max(len(lo), len(hi))
    lines = [header]
    for row in range(height):
        label = hi if row == 0 else lo if row == height - 1 else ""
        lines.append(f"  {label:>{gutter}s} |{''.join(grid[row])}")
    lines.append(
        f"  {'':>{gutter}s} +{'-' * width} {series.duration * 1000:.1f}ms"
    )
    return "\n".join(lines)


def render_convergence(
    source: Tracer | Span | Sequence[Span], *, max_plots: int = _MAX_PLOTS
) -> str:
    """ASCII convergence plots for every progress series in ``source``.

    At most ``max_plots`` are drawn (tree order); the rest are listed
    as one-line summaries, so a wide sweep cannot flood the terminal.
    """
    series = _series_of(source)
    if not series:
        return ""
    parts = ["convergence:"]
    for s in series[:max_plots]:
        parts.append(_plot_series(s))
    for s in series[max_plots:]:
        parts.append(
            f"{s.name}  n={len(s)}  t={s.duration * 1000:.1f}ms"
            + (f"  final={s.final:g}" if s.final is not None else "")
        )
    return "\n\n".join(parts)


def render_profile(source: Tracer | Span | Sequence[Span]) -> str:
    """The ``--profile`` report: flame view, per-phase summary,
    convergence plots, and counter totals (span-attached and loose)."""
    roots = _roots_of(source)
    loose = dict(getattr(source, "counters", None) or {})
    if not roots and not loose:
        return "(no spans recorded)"
    parts = []
    if roots:
        parts = [render_flame(roots), "", render_summary(roots)]
    convergence = render_convergence(source)
    if convergence:
        parts.append("")
        parts.append(convergence)
    totals: dict[str, int] = {}
    for root in roots:
        for k, v in root.totals().items():
            totals[k] = totals.get(k, 0) + v
    if totals:
        parts.append("")
        parts.append(
            "counters: "
            + " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        )
    if loose:
        # Counters recorded while no span was open — without this line
        # they would silently vanish from the report.
        parts.append("")
        parts.append(
            "counters (untraced): "
            + " ".join(f"{k}={v}" for k, v in sorted(loose.items()))
        )
    return "\n".join(parts)
