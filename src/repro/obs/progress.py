"""Convergence telemetry: thinned time-series of search progress.

The exact-method papers the repo reproduces (SAT-MapIt, Tirelli et
al.'s SAT-based exact modulo scheduling) report *convergence data* —
conflicts, restarts, time-to-best-II — not single wall-clock numbers,
and the survey's anytime methods (DRESC's annealer, the QEA) are
characterised by how fast their best cost falls.  A
:class:`ProgressSeries` records exactly that: time-stamped
``(t_rel, value)`` samples of one quantity ("best cost", "conflicts")
with deterministic reservoir-style thinning, so a runaway search can
emit millions of events and the series stays bounded.

Emission goes through :meth:`repro.obs.tracer.Tracer.progress` — a
no-op on the disabled :data:`~repro.obs.tracer.NULL_TRACER` — and the
series attach to the *root span* of the run, so they travel with
:attr:`Mapping.trace` across fork workers and into the JSONL export.
:func:`repro.obs.render.render_convergence` draws them as ASCII plots
under ``--profile``.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["DEFAULT_MAX_SAMPLES", "ProgressSeries"]

#: Sample cap per series; on overflow every second old sample is
#: dropped (endpoints kept), halving resolution instead of growing.
DEFAULT_MAX_SAMPLES = 512


class ProgressSeries:
    """One named, bounded, time-stamped sample stream."""

    __slots__ = ("name", "samples", "max_samples", "t0")

    def __init__(
        self,
        name: str,
        *,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if max_samples < 4:
            raise ValueError("max_samples must be at least 4")
        self.name = name
        self.max_samples = max_samples
        #: ``perf_counter`` reading of the first sample; sample times
        #: are relative to it (comparable within one run — absolute
        #: anchoring is the trace manifest's job).
        self.t0: float | None = None
        self.samples: list[tuple[float, float]] = []

    def note(self, value: float, *, t: float | None = None) -> None:
        """Record one sample (``t``: perf_counter override for tests)."""
        now = time.perf_counter() if t is None else t
        if self.t0 is None:
            self.t0 = now
        self.samples.append((now - self.t0, float(value)))
        if len(self.samples) > self.max_samples:
            self._thin()

    def _thin(self) -> None:
        # Deterministic decimation: keep every second old sample plus
        # the newest, preserving both endpoints and the overall shape.
        last = self.samples[-1]
        kept = self.samples[:-1:2]
        kept.append(last)
        self.samples = kept

    # -- readouts ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def final(self) -> float | None:
        return self.samples[-1][1] if self.samples else None

    @property
    def best(self) -> float | None:
        """The minimum value seen (progress values are costs)."""
        return min((v for _, v in self.samples), default=None)

    @property
    def duration(self) -> float:
        return self.samples[-1][0] if self.samples else 0.0

    # -- (de)serialization --------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "samples": [[round(t, 6), v] for t, v in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProgressSeries":
        series = cls(data["name"])
        series.samples = [
            (float(t), float(v)) for t, v in data.get("samples", [])
        ]
        if series.samples:
            series.t0 = 0.0
        return series

    def __repr__(self) -> str:
        return (
            f"ProgressSeries({self.name!r}, n={len(self.samples)},"
            f" {self.duration:.3f}s)"
        )
