"""stdlib ``logging`` wiring for the ``repro`` logger hierarchy.

The library logs under the ``repro.*`` namespace and attaches a
``NullHandler`` to the root of that hierarchy, so importing the
package never prints anything: embedding applications opt in with
their own logging config, and the CLI opts in via
:func:`configure_logging` (``-v`` / ``--verbose`` selects DEBUG).

Convention inside the package:

* WARNING — fallback and retry paths (a mapper giving up, a route
  round escalating, a DSE point charged the sequential fallback);
* DEBUG — per-attempt detail (II escalation, restart progress).
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

__all__ = ["ROOT_LOGGER", "configure_logging", "get_logger"]

ROOT_LOGGER = "repro"

# Library etiquette: silence by default, never touch the global root.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

_HANDLER_FLAG = "_repro_cli_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``name`` may omit the prefix)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: int = logging.WARNING, *, stream: TextIO | None = None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` hierarchy.

    Idempotent: calling it again replaces the previously installed
    handler instead of stacking duplicates.  Returns the root logger
    of the hierarchy.
    """
    log = logging.getLogger(ROOT_LOGGER)
    for handler in list(log.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            log.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    log.addHandler(handler)
    log.setLevel(level)
    return log
