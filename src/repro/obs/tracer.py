"""Span/Tracer API — the package's tracing and metrics core.

The survey's quality criterion (§II-C) is a *pair*: "high quality
solution with fast compilation time".  Mappers therefore need to show
not just *how long* a mapping took but *where* the time went — II
escalation, placement retries, routing, solver calls — the per-stage
data the exact-method papers (SAT-MapIt, the ILP mappers) report.

Two objects:

* :class:`Span` — one timed region with a name, a tag dict, typed
  counters, and children.  Spans nest; the tree under a root span is
  the trace of one mapping run.
* :class:`Tracer` — the span stack.  ``with tracer.span("x"): ...``
  opens/closes spans; ``tracer.count(name)`` increments a counter on
  the innermost open span.

**No-op-when-disabled contract.**  The module-level active tracer
defaults to :data:`NULL_TRACER`, a singleton whose ``span`` returns
the shared :data:`NULL_SPAN` context manager and whose ``count`` does
nothing.  The disabled path allocates no spans and performs no clock
reads — instrumented hot loops pay one no-op method call per event,
nothing more.  Enable tracing for a region with::

    with tracing() as tr:
        mapping = mapper.map(dfg, cgra)
    print(tr.root.dur_ms, tr.root.totals())

Counter names are typed as module constants (:data:`COUNTERS`) so
instrumentation sites and report renderers cannot drift apart.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from types import MappingProxyType
from typing import Any, Iterator

from repro.obs.progress import ProgressSeries

__all__ = [
    "BACKTRACKS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_VALIDATION_FAILURES",
    "CANDIDATES_EXPLORED",
    "CHECK_CASES",
    "CHECK_DIVERGENCES",
    "COUNTERS",
    "II_ATTEMPTS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ROUTING_ATTEMPTS",
    "SOLVER_CLAUSES",
    "SOLVER_CONFLICTS",
    "SOLVER_DECISIONS",
    "SHRINK_ROUNDS",
    "SOLVER_NODES",
    "SOLVER_RESTARTS",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
]

# ---------------------------------------------------------------------------
# Typed counter names.  Instrumentation sites use these constants; the
# renderers aggregate over exactly this vocabulary.
CANDIDATES_EXPLORED = "candidates_explored"  #: slots/moves proposed
BACKTRACKS = "backtracks"                    #: undone decisions/reverted moves
ROUTING_ATTEMPTS = "routing_attempts"        #: router invocations
II_ATTEMPTS = "ii_attempts"                  #: IIs tried in the II search
SOLVER_CLAUSES = "solver_clauses"            #: clauses/constraints in a model
SOLVER_CONFLICTS = "solver_conflicts"        #: SAT conflicts
SOLVER_DECISIONS = "solver_decisions"        #: SAT decisions
SOLVER_NODES = "solver_nodes"                #: B&B / CSP search nodes
SOLVER_RESTARTS = "solver_restarts"          #: CDCL restarts
CACHE_HITS = "cache_hits"                    #: mapping cache hits
CACHE_MISSES = "cache_misses"                #: mapping cache misses
CACHE_VALIDATION_FAILURES = "cache_validation_failures"  #: poisoned entries
CHECK_CASES = "check_cases"                  #: conformance cases executed
CHECK_DIVERGENCES = "check_divergences"      #: oracle-chain failures found
SHRINK_ROUNDS = "shrink_rounds"              #: accepted shrink mutations

COUNTERS = (
    CANDIDATES_EXPLORED,
    BACKTRACKS,
    ROUTING_ATTEMPTS,
    II_ATTEMPTS,
    SOLVER_CLAUSES,
    SOLVER_CONFLICTS,
    SOLVER_DECISIONS,
    SOLVER_NODES,
    SOLVER_RESTARTS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_VALIDATION_FAILURES,
    CHECK_CASES,
    CHECK_DIVERGENCES,
    SHRINK_ROUNDS,
)


# ---------------------------------------------------------------------------
class Span:
    """One timed, tagged, counted region of a trace."""

    __slots__ = (
        "name", "tags", "counters", "children", "t_start", "t_end",
        "progress",
    )

    def __init__(self, name: str, tags: dict[str, Any] | None = None) -> None:
        self.name = name
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.t_start = 0.0
        self.t_end = 0.0
        #: convergence telemetry attached to this span (root spans
        #: carry the run's series); None until the first sample.
        self.progress: dict[str, ProgressSeries] | None = None

    # -- accounting ----------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` on this span by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def tag(self, **tags: Any) -> None:
        """Attach/overwrite tags on this span."""
        self.tags.update(tags)

    # -- timing --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return max(0.0, self.t_end - self.t_start)

    @property
    def dur_ms(self) -> float:
        return 1000.0 * self.duration

    @property
    def self_duration(self) -> float:
        """Seconds not attributed to any child span."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    # -- tree ----------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Pre-order (depth, span) over the subtree rooted here."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (self included)."""
        return [s for _, s in self.walk() if s.name == name]

    def total(self, counter: str) -> int:
        """Aggregate one counter over the whole subtree."""
        return sum(s.counters.get(counter, 0) for _, s in self.walk())

    def totals(self) -> dict[str, int]:
        """Aggregate every counter over the whole subtree."""
        out: dict[str, int] = {}
        for _, s in self.walk():
            for k, v in s.counters.items():
                out[k] = out.get(k, 0) + v
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.dur_ms:.2f}ms,"
            f" children={len(self.children)})"
        )


class _SpanCtx:
    """Context manager that opens a :class:`Span` on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_tags", "span")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self.span: Span | None = None

    def __enter__(self) -> Span:
        tr = self._tracer
        span = Span(self._name, self._tags)
        parent = tr._stack[-1] if tr._stack else None
        (parent.children if parent is not None else tr.roots).append(span)
        tr._stack.append(span)
        self.span = span
        span.t_start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.t_end = time.perf_counter()
        if exc_type is not None:
            span.tags.setdefault("error", exc_type.__name__)
        # Pop back to this span even if a nested span was left open.
        stack = self._tracer._stack
        while stack and stack.pop() is not span:
            pass
        return False


class Tracer:
    """An enabled tracer: a stack of open spans plus finished roots."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: counters recorded while no span was open
        self.counters: dict[str, int] = {}
        #: progress series recorded while no span was open
        self.series: dict[str, ProgressSeries] = {}

    def span(self, name: str, **tags: Any) -> _SpanCtx:
        """``with tracer.span("phase", key=val) as sp:`` — a child span."""
        return _SpanCtx(self, name, tags)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        """The first root span recorded, or None."""
        return self.roots[0] if self.roots else None

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter on the innermost open span."""
        if self._stack:
            self._stack[-1].count(name, n)
        else:
            self.counters[name] = self.counters.get(name, 0) + n

    def tag(self, **tags: Any) -> None:
        """Tag the innermost open span (no-op when none is open)."""
        if self._stack:
            self._stack[-1].tags.update(tags)

    def progress(self, name: str, value: float) -> None:
        """Record one convergence sample on series ``name``.

        Series attach to the *root* of the currently open span stack
        (so they travel with ``Mapping.trace`` across workers and into
        the JSONL export); with no span open they live on the tracer,
        like loose counters.  Samples are time-stamped and the series
        thins itself (:class:`~repro.obs.progress.ProgressSeries`), so
        emission sites need no rate limiting of their own.
        """
        if self._stack:
            root = self._stack[0]
            if root.progress is None:
                root.progress = {}
            store = root.progress
        else:
            store = self.series
        series = store.get(name)
        if series is None:
            series = store[name] = ProgressSeries(name)
        series.note(value)


# ---------------------------------------------------------------------------
class _NullSpan:
    """Shared do-nothing span/context-manager for the disabled path."""

    __slots__ = ()

    name = "null"
    # Read-only empties so accidental mutation fails loudly instead of
    # silently recording onto a shared singleton.
    tags: Any = MappingProxyType({})
    counters: Any = MappingProxyType({})
    children: tuple = ()
    progress = None
    t_start = 0.0
    t_end = 0.0
    duration = 0.0
    dur_ms = 0.0
    self_duration = 0.0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def tag(self, **tags: Any) -> None:
        pass

    def walk(self, depth: int = 0):
        return iter(())

    def find(self, name: str) -> list:
        return []

    def total(self, counter: str) -> int:
        return 0

    def totals(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


class NullTracer:
    """The disabled tracer: every method is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is the active
    tracer by default, so instrumented code never branches on a flag —
    the *object* is the off switch.
    """

    enabled = False
    roots: tuple = ()
    counters: Any = MappingProxyType({})
    series: Any = MappingProxyType({})
    current = None
    root = None

    __slots__ = ()

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def tag(self, **tags: Any) -> None:
        pass

    def progress(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_TRACER"


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the no-op singleton unless one is installed)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (None = disable); returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for a region; restores the previous tracer on exit.

    ::

        with tracing() as tr:
            mapper.map(dfg, cgra)
        write_jsonl(tr, "trace.jsonl")
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
