"""Wire framing for the serve daemon: NDJSON and minimal HTTP/1.1.

One port speaks both protocols — the first line of a connection
decides.  A line opening with ``{`` is newline-delimited JSON: each
line is one batch document, answered with one response line per
request (streamed as each settles) plus a closing ``{"batch": ...}``
summary line, and the connection stays open for further batches.
Anything else is parsed as an HTTP/1.1 request line:

* ``POST /map`` — body is a batch document; the response streams the
  same NDJSON lines as ``application/x-ndjson`` with
  ``Connection: close`` (the close delimits the stream).
* ``GET /metrics`` — Prometheus text exposition of the daemon's
  registry.
* ``GET /healthz`` — liveness probe.

Everything here is framing only: no request semantics, no pool.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "HttpError",
    "ndjson_line",
    "parse_request_line",
    "read_headers",
    "read_body",
    "response_head",
    "simple_response",
]

#: cap on header block and body sizes — the daemon maps kernels, it
#: does not accept arbitrary uploads.
MAX_HEADER_LINES = 64
MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpError(Exception):
    """A malformed or oversized HTTP request; carries the status."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


def ndjson_line(doc: dict[str, Any]) -> bytes:
    """One response document as a newline-terminated JSON line."""
    return json.dumps(doc, sort_keys=True).encode() + b"\n"


def parse_request_line(line: bytes) -> tuple[str, str]:
    """``b"POST /map HTTP/1.1"`` -> ``("POST", "/map")``."""
    try:
        method, path, version = line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported version {version!r}")
    return method.upper(), path


async def read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    """Read the header block up to the blank line; lowercased names."""
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    raise HttpError(431, "too many header fields")


async def read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    """Read a Content-Length body (chunked encoding is not accepted)."""
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked bodies not supported; send"
                             " Content-Length")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds the"
                             f" {MAX_BODY_BYTES}-byte cap")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as ex:
        raise HttpError(400, "body shorter than Content-Length") from ex


def response_head(
    status: int,
    reason: str,
    *,
    content_type: str,
    length: int | None = None,
) -> bytes:
    """An HTTP/1.1 response head; no Content-Length means the close
    delimits the body (streamed responses)."""
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def simple_response(
    status: int, reason: str, body: str,
    *, content_type: str = "text/plain; charset=utf-8",
) -> bytes:
    """A complete small response (probes, errors)."""
    payload = body.encode()
    return response_head(
        status, reason, content_type=content_type, length=len(payload)
    ) + payload
