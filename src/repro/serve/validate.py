"""Request validation for the serve daemon.

A request is a JSON *problem document*: what to map (a kernel spec or
an inline DFG document), where (an architecture preset name), how (a
mapper name plus constructor options), and under what constraints
(requested II, per-request deadline).  Validation happens before any
work is scheduled, and every defect is a :class:`RequestError` naming
the offending field — one malformed request never kills its batch.

Validation also computes each request's in-batch dedup key.  The base
is the mapping cache's content address (canonical DFG + architecture
digests, mapper identity, seed, II, config token) — the invariant
that equal keys produce equal *mappings*.  That address is
isomorphism-invariant, but serve responses must be byte-identical to
what the client's exact node ids deserve, so the key gets an
exact-label suffix (the kernel spec, or a digest of the canonical DFG
document): only requests whose response documents would be
byte-identical collapse onto one execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.arch import presets
from repro.cache import MappingCache
from repro.core.registry import create, names
from repro.core.serialize import dfg_from_doc, dfg_to_doc
from repro.ir import kernels as kernel_lib

__all__ = [
    "Prepared",
    "RequestError",
    "validate_batch",
    "validate_request",
]

#: the fields a request document may carry
_FIELDS = frozenset(
    ("id", "kernel", "dfg", "arch", "mapper", "ii", "options",
     "deadline_ms")
)

#: key computation only — never stores; shares the WL-refinement memo
#: across the requests of one batch.
_KEYER = MappingCache()


class RequestError(ValueError):
    """A malformed request, naming the offending field."""

    def __init__(self, field: str, detail: str) -> None:
        super().__init__(f"{field}: {detail}")
        self.field = field
        self.detail = detail


@dataclass
class Prepared:
    """One validated request, ready to shard over the pool."""

    rid: str
    index: int
    arch: str
    mapper: str
    ii: int | None
    options: dict[str, Any]
    budget: float | None  # seconds; None = no deadline
    kernel: str | None    # kernel spec, or None for an inline DFG
    dfg_doc: dict | None  # canonical DFG doc, or None for a kernel
    key: str              # in-batch dedup key

    def item(self) -> tuple:
        """The picklable pool-task payload."""
        if self.kernel is not None:
            return ("kernel", self.kernel, self.arch, self.mapper,
                    self.ii, self.options)
        return ("dfg", self.dfg_doc, self.arch, self.mapper,
                self.ii, self.options)


def validate_request(
    doc: Any, index: int, *, default_budget: float | None = None
) -> Prepared:
    """Validate one request document; raises :class:`RequestError`."""
    where = f"requests[{index}]"
    if not isinstance(doc, dict):
        raise RequestError(
            where, f"must be a JSON object, got {type(doc).__name__}"
        )
    for field in doc:
        if field not in _FIELDS:
            raise RequestError(f"{where}.{field}", "unknown field")

    rid = doc.get("id", str(index))
    if not isinstance(rid, str):
        raise RequestError(f"{where}.id", f"must be a string, got {rid!r}")

    kernel = doc.get("kernel")
    dfg_doc = doc.get("dfg")
    if (kernel is None) == (dfg_doc is None):
        raise RequestError(
            f"{where}.kernel",
            "exactly one of 'kernel' or 'dfg' is required",
        )
    if kernel is not None:
        if not isinstance(kernel, str):
            raise RequestError(
                f"{where}.kernel",
                f"must be a kernel name string, got {kernel!r}",
            )
        try:
            dfg = kernel_lib.kernel(kernel)
        except KeyError as ex:
            raise RequestError(
                f"{where}.kernel", str(ex.args[0])
            ) from None
        except Exception as ex:  # bad generator spec
            raise RequestError(f"{where}.kernel", str(ex)) from None
    else:
        try:
            dfg = dfg_from_doc(dfg_doc)
        except ValueError as ex:
            raise RequestError(f"{where}.dfg", str(ex)) from None

    arch = doc.get("arch")
    if not isinstance(arch, str):
        raise RequestError(
            f"{where}.arch",
            f"must be a preset name string, got {arch!r}",
        )
    if arch not in presets.PRESETS:
        raise RequestError(
            f"{where}.arch",
            f"unknown preset {arch!r};"
            f" available: {sorted(presets.PRESETS)}",
        )
    cgra = presets.by_name(arch)

    mapper_name = doc.get("mapper", "list_sched")
    if not isinstance(mapper_name, str) or mapper_name not in names():
        raise RequestError(
            f"{where}.mapper",
            f"unknown mapper {mapper_name!r}; available: {names()}",
        )
    options = doc.get("options", {})
    if not isinstance(options, dict):
        raise RequestError(
            f"{where}.options",
            f"must be a JSON object, got {type(options).__name__}",
        )
    try:
        mapper = create(mapper_name, **options)
    except Exception as ex:
        raise RequestError(f"{where}.options", str(ex)) from None

    ii = doc.get("ii")
    if ii is not None and (
        isinstance(ii, bool) or not isinstance(ii, int) or ii < 1
    ):
        raise RequestError(
            f"{where}.ii", f"must be a positive integer, got {ii!r}"
        )

    deadline = doc.get("deadline_ms")
    if deadline is None:
        budget = default_budget
    elif (
        isinstance(deadline, bool)
        or not isinstance(deadline, (int, float))
        or deadline <= 0
    ):
        raise RequestError(
            f"{where}.deadline_ms",
            f"must be a positive number of milliseconds, got {deadline!r}",
        )
    else:
        budget = float(deadline) / 1000.0

    canon = dfg_to_doc(dfg) if kernel is None else None
    base = _KEYER.key(
        dfg, cgra, mapper=mapper.info.name, seed=mapper.seed,
        ii=ii, token=mapper.cache_token(),
    )
    if kernel is not None:
        key = f"{base}+k:{kernel}"
    else:
        digest = hashlib.sha256(
            json.dumps(
                canon, sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()[:16]
        key = f"{base}+d:{digest}"

    return Prepared(
        rid=rid, index=index, arch=arch, mapper=mapper_name, ii=ii,
        options=options, budget=budget, kernel=kernel, dfg_doc=canon,
        key=key,
    )


def validate_batch(
    doc: Any, *, default_budget: float | None = None
) -> tuple[list[Prepared], list[tuple[int, str, RequestError]]]:
    """Validate a batch document.

    Returns ``(prepared, bad)``: the requests that will run, and
    ``(index, request id, error)`` for each one that will not.  A
    mis-shaped batch *envelope* raises :class:`RequestError` instead —
    there are no per-request indices to report against.
    """
    if not isinstance(doc, dict):
        raise RequestError(
            "batch", f"must be a JSON object, got {type(doc).__name__}"
        )
    requests = doc.get("requests")
    if not isinstance(requests, list):
        raise RequestError(
            "batch.requests",
            f"must be an array of request objects,"
            f" got {type(requests).__name__}",
        )
    prepared: list[Prepared] = []
    bad: list[tuple[int, str, RequestError]] = []
    for i, entry in enumerate(requests):
        try:
            prepared.append(
                validate_request(entry, i, default_budget=default_budget)
            )
        except RequestError as ex:
            rid = (
                entry.get("id")
                if isinstance(entry, dict)
                and isinstance(entry.get("id"), str)
                else str(i)
            )
            bad.append((i, rid, ex))
    return prepared, bad
