"""Pool-facing batch execution for the serve daemon.

One batch of validated requests becomes one
:meth:`~repro.parallel.pool.WorkerPool.run_batch` call: per-request
deadlines ride in as per-task budgets (worker-side SIGALRM plus the
parent's head-of-line backstop), content-addressed keys collapse
identical in-flight requests onto one execution, and every result
streams out through ``on_result`` the moment it settles — the daemon
never waits for the batch barrier.

The worker payload rebuilds the problem from its picklable spec
(kernel name or DFG document — never live graph objects) and returns
the *serialized* mapping document, so a response's bytes are decided
in the worker and a deduped copy is byte-identical to its primary.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Sequence

from repro.cache import get_cache
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.core.serialize import dfg_from_doc, mapping_to_doc
from repro.ir import kernels as kernel_lib
from repro.parallel import PMapResult, get_pool
from repro.parallel.tasks import fold_worker_metrics
from repro.serve.validate import Prepared

__all__ = ["map_batch", "response_of"]

_log = logging.getLogger("repro.serve.scheduler")


def _map_task(item: tuple) -> tuple:
    """Pool payload: map one request (module-level for pickling).

    Returns ``("ok", mapping_doc, meta, cache_delta)`` or
    ``("map_failure", detail, None, cache_delta)``; timeouts and
    crashes surface through the :class:`PMapResult` envelope instead.
    """
    kind, spec, arch, mapper_name, ii, options = item
    from repro.arch import presets

    cgra = presets.by_name(arch)
    dfg = (
        kernel_lib.kernel(spec) if kind == "kernel"
        else dfg_from_doc(spec)
    )
    mapper = create(mapper_name, **options)
    cache = get_cache()
    before = cache.stats.snapshot() if cache is not None else None
    try:
        mapping = mapper.map(dfg, cgra, ii=ii)
    except MapFailure as ex:
        delta = (
            cache.stats.delta_since(before) if cache is not None else None
        )
        return ("map_failure", str(ex), None, delta)
    delta = (
        cache.stats.delta_since(before) if cache is not None else None
    )
    meta = {
        "ii": mapping.ii,
        "map_time_ms": round(1000 * mapping.map_time, 3),
    }
    return ("ok", mapping_to_doc(mapping), meta, delta)


def response_of(p: Prepared, res: PMapResult) -> dict[str, Any]:
    """Translate one settled pool result into a response document."""
    base: dict[str, Any] = {"id": p.rid, "index": p.index}
    if res.ok:
        status, payload, meta, _delta = res.value
        if status == "ok":
            return {
                **base,
                "ok": True,
                "mapping": payload,
                "ii": meta["ii"],
                "map_time_ms": meta["map_time_ms"],
                "elapsed_ms": round(1000 * res.elapsed, 3),
                "deduped": res.deduped,
            }
        return {
            **base,
            "ok": False,
            "deduped": res.deduped,
            "error": {"type": "map_failure", "detail": payload},
        }
    if res.timed_out:
        detail = (
            f"deadline of {p.budget:g}s exceeded"
            if p.budget is not None else str(res.error)
        )
        return {
            **base,
            "ok": False,
            "error": {"type": "timeout", "detail": detail},
        }
    return {
        **base,
        "ok": False,
        "error": {"type": "internal", "detail": str(res.error)},
    }


def map_batch(
    prepared: Sequence[Prepared],
    *,
    jobs: int,
    on_settle: Callable[[dict[str, Any]], None],
) -> list[PMapResult]:
    """Run validated requests over the persistent pool.

    ``on_settle`` receives each response document as its request
    settles (duplicates settle with their primary).  Blocking — the
    daemon calls this in an executor thread; per-request budgets stay
    enforced because the tasks run on pool workers' *main* threads,
    where SIGALRM works, with the parent backstop behind them.
    """
    items = [p.item() for p in prepared]
    pool = get_pool(max(1, min(jobs, len(items))))
    results = pool.run_batch(
        _map_task,
        items,
        jobs=jobs,
        timeouts=[p.budget for p in prepared],
        keys=[p.key for p in prepared],
        on_result=lambda i, res: on_settle(response_of(prepared[i], res)),
    )
    fold_worker_metrics(results)
    active = get_cache()
    if active is not None:
        for res in results:
            if res is None or not res.ok:
                continue
            if res.deduped:
                # The duplicate's serial run would have performed a
                # real cache get (a hit, once its primary stored);
                # book the same hit so totals match a serial pass.
                active.stats.hits += 1
            else:
                active.stats.merge(res.value[3])
    return results
