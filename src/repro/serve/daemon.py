"""The asyncio mapping daemon.

A single process, a single port, no dependencies beyond the stdlib:
``asyncio.start_server`` accepts connections, :mod:`.protocol`
decides NDJSON vs HTTP, :mod:`.validate` turns batch documents into
validated requests, and :mod:`.scheduler` runs them over the
persistent worker pool.  Results stream back per request as they
settle.

Concurrency model: the event loop owns all sockets and all serve
metrics; pool batches run one at a time (the pool is neither
thread-safe nor reentrant) in an executor thread, guarded by an
``asyncio.Lock``, and hand each settled response back to the loop via
``call_soon_threadsafe``.  Connections multiplex freely — a second
batch arriving mid-execution queues on the lock, its validation
errors answered immediately.

Deadline semantics: a request's ``deadline_ms`` (or the daemon-wide
default) becomes the pool task's wall-clock budget — SIGALRM inside
the worker, the head-of-line backstop behind it — so an over-deadline
request settles as a structured ``timeout`` error while the rest of
its batch proceeds.

Shutdown: SIGTERM/SIGINT stop the listener, in-flight batches drain
(their responses still stream out), then the worker pool tears down
through its bounded escalation ladder — no orphaned workers.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import signal
import time
from typing import Any, Awaitable, Callable

from repro.obs.metrics import (
    MetricsRegistry,
    SERVE_BATCHES_TOTAL,
    SERVE_ERRORS_TOTAL,
    SERVE_INFLIGHT,
    SERVE_REQUEST_LATENCY_MS,
    SERVE_REQUESTS_TOTAL,
    render_prometheus,
    set_metrics,
)
from repro.parallel import shutdown as pool_shutdown, warm_pool
from repro.serve import protocol
from repro.serve.scheduler import map_batch
from repro.serve.validate import RequestError, validate_batch

__all__ = ["MappingServer"]

_log = logging.getLogger("repro.serve.daemon")

Send = Callable[[dict[str, Any]], Awaitable[None]]


class MappingServer:
    """The serve daemon; see the module docstring for the model.

    Use as an async context manager, or ``start()``/``aclose()``
    explicitly; ``run_until_signalled()`` is the CLI entry point.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 2,
        timeout: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.default_budget = timeout
        self.registry = registry if registry is not None else MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._lock = asyncio.Lock()
        self._prev_registry: Any = None
        self._closed = False
        self._conns: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------
    @property
    def bound_port(self) -> int:
        """The actual port (after binding port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        # Fork the workers before the loop breeds threads: forking
        # from a threaded parent risks inheriting a lock mid-hold.
        warm_pool(self.jobs)
        self._prev_registry = set_metrics(self.registry)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        _log.info("serve: listening on %s:%s", self.host, self.bound_port)

    async def aclose(
        self, *, stop_pool: bool = False, grace: float | None = None
    ) -> None:
        """Stop accepting, drain the in-flight batch, tear down.

        ``stop_pool=True`` additionally shuts the worker pool down
        (the CLI path — its atexit re-run is a no-op); in-process test
        servers leave the shared pool running.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        async with self._lock:  # drain: wait out the running batch
            pass
        # Nudge idle keep-alive connections: their handlers see EOF
        # and finish; streamed batch responses already went out.
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:
                pass
        set_metrics(self._prev_registry)
        if stop_pool:
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(pool_shutdown, grace)
            )

    async def __aenter__(self) -> "MappingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def run_until_signalled(
        self, *, grace: float | None = None, ready: Callable | None = None
    ) -> None:
        """Serve until SIGTERM/SIGINT, then drain and stop the pool."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        try:
            if ready is not None:
                ready(self)
            await stop.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
            await self.aclose(stop_pool=True, grace=grace)

    # -- connection handling -------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            first = await reader.readline()
            if not first:
                return
            if first.lstrip()[:1] in (b"{", b"["):
                await self._serve_ndjson(first, reader, writer)
            else:
                await self._serve_http(first, reader, writer)
        except (
            ConnectionResetError, BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # loop teardown mid-connection; just close below
        except Exception:
            _log.exception("serve: connection handler failed")
        finally:
            self._conns.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                pass  # already closing; ending non-cancelled keeps
                # asyncio's stream callback from logging the teardown

    async def _serve_ndjson(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        async def send(doc: dict[str, Any]) -> None:
            writer.write(protocol.ndjson_line(doc))
            await writer.drain()

        line = first
        while line:
            text = line.strip()
            if text:
                await self._serve_batch_text(text, send)
            line = await reader.readline()

    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, path = protocol.parse_request_line(first)
            headers = await protocol.read_headers(reader)
            if method == "POST" and path == "/map":
                body = await protocol.read_body(reader, headers)
                writer.write(protocol.response_head(
                    200, "OK", content_type="application/x-ndjson"
                ))

                async def send(doc: dict[str, Any]) -> None:
                    writer.write(protocol.ndjson_line(doc))
                    await writer.drain()

                await self._serve_batch_text(body, send)
                return
            if method == "GET" and path == "/metrics":
                writer.write(protocol.simple_response(
                    200, "OK", render_prometheus(self.registry) + "\n"
                ))
                return
            if method == "GET" and path in ("/healthz", "/health"):
                writer.write(protocol.simple_response(200, "OK", "ok\n"))
                return
            writer.write(protocol.simple_response(
                404, "Not Found", f"no route {method} {path}\n"
            ))
        except protocol.HttpError as ex:
            writer.write(protocol.simple_response(
                ex.status, ex.reason, ex.reason + "\n"
            ))
        await writer.drain()

    # -- batch execution -----------------------------------------------
    async def _serve_batch_text(self, raw: bytes, send: Send) -> None:
        """Parse and run one batch; every defect becomes a response."""
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as ex:
            await self._send_batch_error(
                send, "batch", f"not valid JSON: {ex}"
            )
            return
        try:
            await self._run_batch(doc, send)
        except RequestError as ex:  # mis-shaped batch envelope
            await self._send_batch_error(send, ex.field, ex.detail)

    async def _send_batch_error(
        self, send: Send, field: str, detail: str
    ) -> None:
        self.registry.counter(SERVE_ERRORS_TOTAL).inc()
        await send({
            "ok": False,
            "error": {
                "type": "validation", "field": field, "detail": detail,
            },
        })
        await send({"batch": {
            "requests": 0, "ok": 0, "errors": 1, "deduped": 0,
        }})

    async def _run_batch(self, doc: Any, send: Send) -> None:
        t0 = time.monotonic()
        reg = self.registry
        prepared, bad = validate_batch(
            doc, default_budget=self.default_budget
        )
        reg.counter(SERVE_REQUESTS_TOTAL).inc(len(prepared) + len(bad))
        n_ok, n_err, n_dedup = 0, 0, 0
        for index, rid, ex in bad:
            reg.counter(SERVE_ERRORS_TOTAL).inc()
            n_err += 1
            await send({
                "id": rid,
                "index": index,
                "ok": False,
                "error": {
                    "type": "validation",
                    "field": ex.field,
                    "detail": ex.detail,
                },
            })
        if prepared:
            loop = asyncio.get_running_loop()
            queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
            accepted = {p.index: time.monotonic() for p in prepared}

            def on_settle(resp: dict[str, Any]) -> None:
                loop.call_soon_threadsafe(queue.put_nowait, resp)

            async with self._lock:
                reg.gauge(SERVE_INFLIGHT).inc(len(prepared))
                try:
                    batch_fut = loop.run_in_executor(
                        None,
                        functools.partial(
                            map_batch, prepared,
                            jobs=self.jobs, on_settle=on_settle,
                        ),
                    )
                    for _ in range(len(prepared)):
                        resp = await queue.get()
                        reg.histogram(SERVE_REQUEST_LATENCY_MS).observe(
                            1000 * (
                                time.monotonic()
                                - accepted[resp["index"]]
                            )
                        )
                        reg.gauge(SERVE_INFLIGHT).dec()
                        if resp.get("ok"):
                            n_ok += 1
                        else:
                            reg.counter(SERVE_ERRORS_TOTAL).inc()
                            n_err += 1
                        if resp.get("deduped"):
                            n_dedup += 1
                        await send(resp)
                    await batch_fut
                finally:
                    reg.gauge(SERVE_INFLIGHT).set(0.0)
            reg.counter(SERVE_BATCHES_TOTAL).inc()
        await send({"batch": {
            "requests": len(prepared) + len(bad),
            "ok": n_ok,
            "errors": n_err,
            "deduped": n_dedup,
            "elapsed_ms": round(1000 * (time.monotonic() - t0), 3),
        }})
