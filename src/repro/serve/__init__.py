"""Mapping-as-a-service: the ``repro serve`` daemon.

The survey's closing argument is that mapping is the *compilation
service* a CGRA toolchain ultimately exposes — mappings are
consumable artifacts produced on request, not values inside one
Python process.  This package puts a daemon in front of the
libraries the previous PRs built:

* :mod:`repro.serve.validate` — JSON problem documents (kernel spec
  or inline DFG doc + arch preset + mapper + options) checked with
  field-naming errors before any work is scheduled;
* :mod:`repro.serve.scheduler` — batches shard over the persistent
  pre-warmed worker pool (:mod:`repro.parallel.pool`) with
  per-request deadlines and content-addressed in-batch dedup, each
  result streaming out the moment it settles;
* :mod:`repro.serve.daemon` — a single-process asyncio TCP server
  speaking newline-delimited JSON and minimal HTTP/1.1 on one port
  (stdlib only), with ``/metrics`` Prometheus exposition and a
  graceful SIGTERM/SIGINT drain;
* :mod:`repro.serve.client` — a blocking socket client used by the
  ``repro submit`` subcommand, the e2e tests, and the bench slice.
"""

from repro.serve.client import iter_submit, submit
from repro.serve.daemon import MappingServer
from repro.serve.validate import Prepared, RequestError, validate_batch

__all__ = [
    "MappingServer",
    "Prepared",
    "RequestError",
    "iter_submit",
    "submit",
    "validate_batch",
]
