"""Blocking client for the serve daemon's NDJSON protocol.

Used by the ``repro submit`` subcommand, the e2e tests, and the bench
serve slice.  One call, one batch, responses yielded as the daemon
streams them (settle order, not submission order); the closing
``{"batch": ...}`` summary ends the iteration.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterator, Sequence

__all__ = ["iter_submit", "submit"]


def iter_submit(
    requests: Sequence[dict[str, Any]],
    *,
    host: str = "127.0.0.1",
    port: int,
    timeout: float | None = None,
) -> Iterator[dict[str, Any]]:
    """Submit one batch; yield each response line as it arrives.

    Yields one document per request (in settle order — match them to
    requests by ``id``/``index``) and finally the batch summary line
    (the document with a ``"batch"`` key).  Raises
    :class:`ConnectionError` if the server closes mid-batch.
    """
    batch = json.dumps({"requests": list(requests)}).encode() + b"\n"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rwb")
        stream.write(batch)
        stream.flush()
        while True:
            line = stream.readline()
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-batch"
                )
            doc = json.loads(line)
            yield doc
            if "batch" in doc:
                return


def submit(
    requests: Sequence[dict[str, Any]],
    *,
    host: str = "127.0.0.1",
    port: int,
    timeout: float | None = None,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Submit one batch and collect it: ``(responses, summary)``.

    ``responses`` holds one document per request in *submission*
    order (re-sorted by ``index``); ``summary`` is the closing batch
    line's payload.
    """
    responses: list[dict[str, Any]] = []
    summary: dict[str, Any] = {}
    for doc in iter_submit(
        requests, host=host, port=port, timeout=timeout
    ):
        if "batch" in doc:
            summary = doc["batch"]
        else:
            responses.append(doc)
    responses.sort(key=lambda d: d.get("index", -1))
    return responses, summary
