"""Configuration (context) generation.

The back end's final product: "a configuration must hold all the
values of a set of signals that select the correct input of a
multiplexer" (§II-B).  :func:`generate_contexts` derives, for every
``(cell, slot)`` of a modulo mapping, the context word: opcode,
operand-mux selects, immediate field, route/hold actions — precisely
the Fig. 2(c) register contents, and the contract the simulator and
hardware would share.

Mux select encoding: operand sources are named ``self`` (own output
register), ``rf`` (own register file), ``imm`` (immediate field),
``in`` (live-in bus), or the *direction* of the emitting neighbour
(``N``/``S``/``E``/``W``/…) derived from the link geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD
from repro.core.mapping import Mapping
from repro.ir.dfg import Op

__all__ = ["ContextWord", "generate_contexts", "render_contexts"]


def _direction(cgra: CGRA, src: int, dst: int) -> str:
    """Compass label of the link src -> dst as seen from dst."""
    sx, sy = cgra.coords(src)
    dx, dy = cgra.coords(dst)
    ew = {1: "W", 2: "WW", -1: "E", -2: "EE"}.get(dx - sx, "")
    ns = {1: "N", 2: "NN", -1: "S", -2: "SS"}.get(dy - sy, "")
    return (ns + ew) or f"cell{src}"


@dataclass
class ContextWord:
    """One cell's configuration for one slot of the II window."""

    cell: int
    slot: int
    opcode: str = "nop"
    operands: list[str] = field(default_factory=list)
    imm: int | None = None
    routes: list[str] = field(default_factory=list)  #: pass-throughs
    rf_writes: int = 0                               #: holds started/kept

    def encode(self) -> str:
        """A flat textual encoding (the 'raw values' of the context)."""
        ops = ",".join(self.operands) or "-"
        rts = ",".join(self.routes) or "-"
        imm = "-" if self.imm is None else str(self.imm)
        return (
            f"{self.opcode}|src={ops}|imm={imm}|route={rts}"
            f"|rf={self.rf_writes}"
        )


def _operand_source(
    mapping: Mapping, cgra: CGRA, nid: int, port: int
) -> str:
    dfg = mapping.dfg
    e = dfg.operand(nid, port)
    src = dfg.node(e.src)
    if src.op is Op.CONST:
        return "imm"
    if src.op is Op.INPUT:
        return "in"
    cell = mapping.binding[nid]
    steps = mapping.routes.get(e, [])
    if steps:
        last = steps[-1]
        if last.kind == HOLD:
            return "rf"
        if last.cell == cell:
            return "self"
        return _direction(cgra, last.cell, cell)
    src_cell = mapping.binding[e.src]
    if src_cell == cell:
        return "self"
    return _direction(cgra, src_cell, cell)


def generate_contexts(mapping: Mapping) -> dict[tuple[int, int], ContextWord]:
    """Context words for every active (cell, slot) of a modulo mapping."""
    if mapping.kind != "modulo":
        raise ValueError("context generation targets modulo mappings")
    mapping.validate()
    cgra = mapping.cgra
    ii = mapping.ii or 1
    words: dict[tuple[int, int], ContextWord] = {}

    def word(cell: int, slot: int) -> ContextWord:
        key = (cell, slot)
        if key not in words:
            words[key] = ContextWord(cell, slot)
        return words[key]

    dfg = mapping.dfg
    for nid in mapping.binding:
        node = dfg.node(nid)
        cell = mapping.binding[nid]
        slot = mapping.schedule[nid] % ii
        w = word(cell, slot)
        w.opcode = node.op.value
        n_ports = node.op.arity + (1 if node.pred is not None else 0)
        w.operands = [
            _operand_source(mapping, cgra, nid, p) for p in range(n_ports)
        ]
        imms = [
            dfg.node(e.src).value
            for e in dfg.in_edges(nid)
            if dfg.node(e.src).op is Op.CONST
        ]
        if imms:
            w.imm = imms[0]

    for e, steps in mapping.routes.items():
        prev_cell = mapping.binding[e.src]
        for s in steps:
            w = word(s.cell, s.time % ii)
            if s.kind == HOLD:
                w.rf_writes += 1
            else:
                src = (
                    "self"
                    if s.cell == prev_cell
                    else _direction(cgra, prev_cell, s.cell)
                )
                tag = f"v{e.src}<-{src}"
                if tag not in w.routes:
                    w.routes.append(tag)
            prev_cell = s.cell
    return words


def render_contexts(mapping: Mapping) -> str:
    """Fig. 2(c)-style listing of the configuration memory."""
    words = generate_contexts(mapping)
    ii = mapping.ii or 1
    lines = [
        f"configuration of {mapping.dfg.name} on {mapping.cgra.name}"
        f" (II={ii}, {len(words)} active context words)"
    ]
    for (cell, slot), w in sorted(words.items()):
        lines.append(f"  cell {cell:>2} slot {slot}: {w.encode()}")
    return "\n".join(lines)
