"""Execution: cycle-accurate simulation and configuration generation.

"Whether it be a context or an instruction, the importance from the
compilation point of view is to know what to produce as the format
defines the contract between the hardware and the software to reach a
valid execution" (§II-B).  This package closes that loop:

* :mod:`repro.sim.configgen` — turns a mapping into per-cell context
  words (opcode, operand mux selects, immediate, write-enables), the
  Fig. 2(c) artifact;
* :mod:`repro.sim.machine` — executes a modulo mapping cycle by
  cycle, overlapping iterations exactly as the schedule says, checks
  memory-ordering hazards the sequential interpreter cannot see, and
  is cross-checked against :class:`repro.ir.interp.DFGInterpreter`;
* :mod:`repro.sim.archcompare` — the Fig. 1 trade-off models (CPU /
  VLIW / CGRA / FPGA-like / ASIC-like) sharing one kernel suite.
"""

from repro.sim.configgen import ContextWord, generate_contexts, render_contexts
from repro.sim.machine import SimResult, simulate_mapping

__all__ = [
    "ContextWord",
    "SimResult",
    "generate_contexts",
    "render_contexts",
    "simulate_mapping",
]
