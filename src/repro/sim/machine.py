"""Cycle-accurate execution of a modulo mapping.

The machine replays the software pipeline the mapping describes:
iteration ``k`` of operation ``v`` fires at absolute cycle
``schedule[v] + k * II``, exactly as the context sequencer would issue
it.  Execution order is *cycle order*, not iteration order, so the
simulator observes what the overlapped pipeline actually does — in
particular memory accesses from different iterations interleave, and
:class:`SimResult.hazards` reports any load that would have read a
location an in-flight earlier-iteration store had not yet written
(a reordering the purely sequential reference interpreter can never
exhibit).

Outputs are cross-checked against :class:`repro.ir.interp
.DFGInterpreter` in the test suite: mapping + simulation must equal
direct interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping as TMapping, Sequence

from repro.core.mapping import Mapping
from repro.ir.dfg import DFGError, Op
from repro.ir.interp import apply_op, broadcast_series

__all__ = ["SimResult", "simulate_mapping"]


@dataclass
class SimResult:
    """What the machine did.

    Attributes:
        outputs: OUTPUT series per name (one value per iteration).
        cycles: total cycles simulated (prologue + steady + drain).
        issue_slots: FU issue events (op executions).
        route_events: route re-emissions performed.
        hold_events: register-file hold cycles.
        hazards: memory-ordering violations observed (description
            strings); empty for hazard-free mappings.
        busy_cells: distinct (cell, cycle) pairs doing anything — the
            activity base for energy proxies.
        memory: final contents of every array after the run.
    """

    outputs: dict[str, list[int]]
    cycles: int
    issue_slots: int = 0
    route_events: int = 0
    hold_events: int = 0
    hazards: list[str] = field(default_factory=list)
    busy_cells: int = 0
    memory: dict[str, list[int]] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Iterations per cycle over the simulated window."""
        n = max((len(v) for v in self.outputs.values()), default=0)
        return n / self.cycles if self.cycles else 0.0


def simulate_mapping(
    mapping: Mapping,
    n_iters: int,
    inputs: TMapping[str, Any] | None = None,
    memory: TMapping[str, Sequence[int]] | None = None,
    init: TMapping[int, int] | None = None,
) -> SimResult:
    """Execute ``n_iters`` overlapped iterations of a modulo mapping."""
    if mapping.kind != "modulo":
        raise ValueError("simulate_mapping runs modulo mappings")
    mapping.validate()
    dfg = mapping.dfg
    ii = mapping.ii or 1

    ins = {
        name: broadcast_series(v, n_iters, name)
        for name, v in (inputs or {}).items()
    }
    for node in dfg.nodes():
        if node.op is Op.INPUT and node.name not in ins:
            raise ValueError(f"missing input series for {node.name!r}")
    mem = {name: list(vals) for name, vals in (memory or {}).items()}
    init = dict(init or {})

    # Event list: (cycle, topo_rank, nid, k).
    topo_rank = {nid: i for i, nid in enumerate(dfg.topo_order())}
    events: list[tuple[int, int, int, int]] = []
    for node in dfg.nodes():
        if node.op.is_pseudo:
            continue
        for k in range(n_iters):
            events.append(
                (
                    mapping.schedule[node.nid] + k * ii,
                    topo_rank[node.nid],
                    node.nid,
                    k,
                )
            )
    events.sort()

    values: dict[tuple[int, int], int] = {}
    store_done: dict[tuple[int, int], bool] = {}
    hazards: list[str] = []
    issue_slots = 0

    def operand(nid: int, port: int, k: int) -> int | None:
        e = dfg.operand(nid, port)
        src = dfg.node(e.src)
        kk = k - e.dist
        if src.op is Op.CONST:
            return int(src.value)
        if src.op is Op.INPUT:
            if kk < 0:
                return init.get(e.src, 0)
            return ins[src.name][kk]
        if kk < 0:
            return init.get(e.src, 0)
        return values[(e.src, kk)]

    last_cycle = 0
    for cycle, _, nid, k in events:
        last_cycle = max(last_cycle, cycle)
        node = dfg.node(nid)
        issue_slots += 1
        arity = node.op.arity
        args = [operand(nid, p, k) for p in range(arity)]
        enabled = True
        if node.pred is not None:
            pv = operand(nid, arity, k)
            enabled = bool(pv) == node.pred
        if not enabled:
            values[(nid, k)] = 0
            continue
        if node.op is Op.LOAD:
            arr = mem[node.array]
            addr = args[0]
            # Hazard check: an earlier iteration's store to this
            # array that has not executed yet (its cycle is later).
            for other in dfg.nodes():
                if (
                    other.op is Op.STORE
                    and other.array == node.array
                ):
                    for kk in range(k):
                        key = (other.nid, kk)
                        if key in store_done:
                            continue
                        hazards.append(
                            f"load n{nid}@it{k} (cycle {cycle}) may"
                            f" race store n{other.nid}@it{kk}"
                        )
            values[(nid, k)] = arr[addr]
            continue
        if node.op is Op.STORE:
            arr = mem[node.array]
            arr[args[0]] = args[1]
            store_done[(nid, k)] = True
            values[(nid, k)] = args[1]
            continue
        if node.op is Op.PHI:
            raise DFGError(
                "PHI nodes must be lowered before machine simulation"
            )
        values[(nid, k)] = apply_op(node.op, args)

    # Collect OUTPUT series (pseudo: read their operand's value).
    # Mirror operand(): the producer may be a CONST or INPUT pseudo,
    # which never writes into `values`.
    outputs: dict[str, list[int]] = {}
    for node in dfg.nodes():
        if node.op is not Op.OUTPUT:
            continue
        e = dfg.operand(node.nid, 0)
        src = dfg.node(e.src)
        series = []
        for k in range(n_iters):
            kk = k - e.dist
            if src.op is Op.CONST:
                series.append(int(src.value))
            elif kk < 0:
                series.append(init.get(e.src, 0))
            elif src.op is Op.INPUT:
                series.append(ins[src.name][kk])
            else:
                series.append(values[(e.src, kk)])
        outputs[node.name or f"out{node.nid}"] = series

    route_events = sum(
        sum(1 for s in steps if s.kind == "route")
        for steps in mapping.routes.values()
    ) * n_iters
    hold_events = sum(
        sum(1 for s in steps if s.kind == "hold")
        for steps in mapping.routes.values()
    ) * n_iters

    cycles = last_cycle + 1 if events else 0
    return SimResult(
        outputs=outputs,
        cycles=cycles,
        issue_slots=issue_slots,
        route_events=route_events,
        hold_events=hold_events,
        hazards=hazards,
        busy_cells=issue_slots + route_events,
        memory=mem,
    )
