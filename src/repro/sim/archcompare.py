"""The Fig. 1 trade-off, quantified.

Fig. 1 (after Liu et al. [3]) places architecture classes on a
flexibility / performance / energy-efficiency triangle.  This module
executes the *same kernel suite* under five architecture models so the
triangle's shape can be regenerated from numbers rather than redrawn:

* **CPU** — one op per cycle, sequential issue (a single-issue scalar
  core);
* **VLIW** — ``width`` ops per cycle, but operands move only through a
  shared register file (no spatial forwarding; the §II-C contrast:
  "VLIW processors share data through a register file only");
* **CGRA** — a modulo mapping on the reference 4x4 array (this
  package's subject);
* **FPGA-like** — fully spatial pipeline: II = 1 whenever a spatial
  mapping exists, plus a large reconfiguration cost;
* **ASIC-like** — idealised dataflow: II = 1 always, no flexibility.

Energy proxy: active units per iteration x a per-class cost weight
(control/decode overhead), normalised so the shapes — not absolute
joules — carry the comparison.  Flexibility: 1 - (retarget cost /
worst case), with CPU=1 by construction and ASIC=0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch import presets
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels
from repro.ir.dfg import DFG

__all__ = ["ArchPoint", "compare_architectures", "DEFAULT_SUITE"]

DEFAULT_SUITE = [
    "dot_product",
    "vector_add",
    "fir4",
    "sobel_x",
    "sad",
    "if_select",
]

#: Per-active-unit energy weight: instruction fetch/decode overhead for
#: processors, near-zero control for hardwired datapaths.
ENERGY_WEIGHT = {
    "CPU": 3.0,
    "VLIW": 2.0,
    "CGRA": 1.0,
    "FPGA": 0.8,
    "ASIC": 0.4,
}

#: Retargeting cost (normalised): how hard is running a *new* kernel.
FLEXIBILITY = {
    "CPU": 1.0,
    "VLIW": 0.9,
    "CGRA": 0.6,
    "FPGA": 0.3,
    "ASIC": 0.0,
}


@dataclass(frozen=True)
class ArchPoint:
    """One architecture's aggregate over the kernel suite."""

    name: str
    performance: float        #: mean iterations per cycle
    energy_per_iter: float    #: mean weighted active units per iter
    flexibility: float

    @property
    def efficiency(self) -> float:
        """Performance per energy — the survey's energy-efficiency axis."""
        return self.performance / self.energy_per_iter


def _cpu_cycles_per_iter(dfg: DFG) -> float:
    return float(dfg.op_count())


def _vliw_cycles_per_iter(dfg: DFG, width: int = 4) -> float:
    """List schedule with `width` slots, latency-constrained."""
    from repro.mappers.schedule import asap

    t = asap(dfg, ii=10**6)  # plain dependence levels
    levels: dict[int, int] = {}
    for node in dfg.nodes():
        if node.op.is_pseudo:
            continue
        levels[t[node.nid]] = levels.get(t[node.nid], 0) + 1
    cycles = sum(math.ceil(n / width) for n in levels.values())
    return float(max(cycles, 1))


def compare_architectures(
    suite: list[str] | None = None,
    *,
    cgra_mapper: str = "list_sched",
    vliw_width: int = 4,
) -> list[ArchPoint]:
    """Run the suite under every model; returns one point per class."""
    names = suite or DEFAULT_SUITE
    cgra = presets.simple_cgra(4, 4)
    perf: dict[str, list[float]] = {k: [] for k in ENERGY_WEIGHT}
    energy: dict[str, list[float]] = {k: [] for k in ENERGY_WEIGHT}

    for kname in names:
        dfg = kernels.kernel(kname)
        ops = dfg.op_count()

        cpu_c = _cpu_cycles_per_iter(dfg)
        perf["CPU"].append(1.0 / cpu_c)
        energy["CPU"].append(ops * ENERGY_WEIGHT["CPU"])

        vliw_c = _vliw_cycles_per_iter(dfg, vliw_width)
        perf["VLIW"].append(1.0 / vliw_c)
        energy["VLIW"].append(ops * ENERGY_WEIGHT["VLIW"])

        try:
            m = create(cgra_mapper).map(dfg, cgra)
            active = ops + m.route_step_count()
            perf["CGRA"].append(1.0 / m.ii)
            energy["CGRA"].append(active * ENERGY_WEIGHT["CGRA"])
        except MapFailure:
            perf["CGRA"].append(1.0 / ops)  # fall back to host
            energy["CGRA"].append(ops * ENERGY_WEIGHT["CPU"])

        # FPGA-like: spatial pipeline when it fits.
        try:
            sm = create("graph_drawing").map(dfg, cgra)
            active = ops + sm.route_step_count()
            perf["FPGA"].append(1.0)
            energy["FPGA"].append(active * ENERGY_WEIGHT["FPGA"])
        except MapFailure:
            perf["FPGA"].append(1.0 / ops)
            energy["FPGA"].append(ops * ENERGY_WEIGHT["CPU"])

        perf["ASIC"].append(1.0)
        energy["ASIC"].append(ops * ENERGY_WEIGHT["ASIC"])

    out = []
    for name in ("CPU", "VLIW", "CGRA", "FPGA", "ASIC"):
        out.append(
            ArchPoint(
                name=name,
                performance=sum(perf[name]) / len(perf[name]),
                energy_per_iter=sum(energy[name]) / len(energy[name]),
                flexibility=FLEXIBILITY[name],
            )
        )
    return out
