"""Shared parallel-execution layer.

One process pool abstraction serves every sweep in the package:
:func:`repro.bench.run_matrix` (mapper x kernel grids),
:func:`repro.dse.explore` (architecture sweeps), and the ``portfolio``
mapper (racing several mappers on one kernel).  The contract:

* **Determinism** — results come back in submission order regardless
  of completion order, and ``jobs=1`` callers keep their exact serial
  code path (they never enter this module's pool).
* **Timeouts are data, not hangs** — every task runs under a
  SIGALRM-based :func:`time_limit` inside its worker, so a runaway
  mapper raises :class:`TaskTimeout` in-process and comes back as a
  failed :class:`PMapResult`; a parent-side backstop (for workers
  stuck outside the interpreter) terminates the pool rather than
  joining it forever.
* **No nested pools** — workers are marked (:func:`in_worker`), and
  parallel entry points degrade to their serial paths inside one, so
  a ``portfolio`` mapper inside a parallel ``run_matrix`` sweep does
  not fork a second pool per cell.
* **Traces travel** — values are pickled back whole, including any
  :class:`repro.obs.Span` trees a task attached, so ``--profile``
  aggregates child work in the parent.
* **Metrics merge exactly** — when a metrics registry is active
  (:func:`repro.obs.metrics.metrics_scope`), each forked worker ships
  the snapshot *delta* it accrued back in its :class:`PMapResult` and
  the parent folds the deltas in, in submission order (the same
  pattern as the mapping cache's stats-delta merge), so a ``jobs=N``
  sweep reports the same counter totals and histogram counts as the
  serial run.

Workers are forked (POSIX), so an architecture or registry built in
the parent is visible in the children without re-imports.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import get_metrics

__all__ = [
    "PMapResult",
    "TaskTimeout",
    "in_worker",
    "pmap",
    "race",
    "time_limit",
]

#: Parent-side backstop slack (seconds) beyond the in-worker alarm —
#: only reached when a worker hangs outside the interpreter, where
#: SIGALRM cannot unwind it.
BACKSTOP_SLACK = 10.0

_IN_WORKER = False


class TaskTimeout(BaseException):
    """A task exceeded its wall-clock budget.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so an
    ``except Exception`` on the interrupted path — a logging handler's
    emit guard, an import hook, a library's defensive catch — cannot
    swallow the one-shot alarm and let the task run on unbounded.
    Catch it by name.
    """


def in_worker() -> bool:
    """True inside a :func:`pmap` worker process."""
    return _IN_WORKER


def _worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


@contextmanager
def time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`TaskTimeout` in the block after ``seconds``.

    SIGALRM-based, so it interrupts pure-Python compute loops (the
    usual way a mapper hangs).  A no-op when ``seconds`` is None/0 or
    when not on the main thread (signals cannot be delivered there);
    pool workers run tasks on their main thread, so the limit is
    always live in parallel sweeps.  Do not nest: the inner limit
    replaces the outer timer.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _alarm(signum, frame):
        raise TaskTimeout(f"timeout after {seconds:g}s")

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


# ---------------------------------------------------------------------------
@dataclass
class PMapResult:
    """Outcome of one :func:`pmap` task, in submission order.

    ``ok`` tasks carry their return value; failed ones carry the
    raised exception (``timed_out`` distinguishes budget overruns from
    genuine errors, so harnesses can turn the former into failure rows
    and re-raise the latter like their serial paths would).
    ``metrics`` is the worker's metrics-snapshot delta for this task
    (None when no registry was active or the task ran in-process);
    the parent folds it into its own registry.
    """

    index: int
    ok: bool
    value: Any = None
    error: BaseException | None = None
    timed_out: bool = False
    elapsed: float = 0.0
    metrics: dict | None = None


def _run_task(payload: tuple) -> PMapResult:
    """Worker body: apply fn under the task's time budget.

    In a forked worker with a metrics registry active, the snapshot
    delta accrued by the task (on success *and* failure — partial work
    counts) rides back on the result; in-process runs ship nothing,
    since their metrics already landed in the live registry.
    """
    fn, item, index, timeout = payload
    registry = get_metrics()
    before = (
        registry.snapshot()
        if in_worker() and registry.enabled
        else None
    )

    def delta() -> dict | None:
        return (
            registry.delta_since(before) if before is not None else None
        )

    t0 = time.perf_counter()
    try:
        with time_limit(timeout):
            value = fn(item)
        return PMapResult(
            index=index, ok=True, value=value,
            elapsed=time.perf_counter() - t0, metrics=delta(),
        )
    except TaskTimeout as ex:
        return PMapResult(
            index=index, ok=False, error=ex, timed_out=True,
            elapsed=time.perf_counter() - t0, metrics=delta(),
        )
    except BaseException as ex:  # pickled back; parent decides
        try:
            return PMapResult(
                index=index, ok=False, error=ex,
                elapsed=time.perf_counter() - t0, metrics=delta(),
            )
        except Exception:  # unpicklable exception: degrade to repr
            return PMapResult(
                index=index, ok=False, error=RuntimeError(repr(ex)),
                elapsed=time.perf_counter() - t0, metrics=delta(),
            )


def _fold_worker_metrics(
    results: Sequence[PMapResult | None],
) -> None:
    """Merge worker metric deltas into the parent registry, in
    submission order (deterministic regardless of completion order)."""
    registry = get_metrics()
    if not registry.enabled:
        return
    for res in results:
        if res is not None and res.metrics:
            registry.merge(res.metrics)


def pmap(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int,
    timeout: float | None = None,
) -> list[PMapResult]:
    """Apply ``fn`` to every item over a process pool.

    Args:
        fn: a picklable (module-level) callable of one argument.
        items: the work list; results come back in this order.
        jobs: worker processes.  ``jobs <= 1`` (or a call from inside
            a worker) runs serially in-process — same semantics, no
            pool.
        timeout: per-task wall-clock budget in seconds (None = none).

    Returns:
        One :class:`PMapResult` per item, submission-ordered.  The
        call itself only raises for infrastructure failures; task
        exceptions are returned, not raised.
    """
    items = list(items)
    payloads = [
        (fn, item, i, timeout) for i, item in enumerate(items)
    ]
    if jobs <= 1 or in_worker() or len(items) <= 1:
        return [_run_task(p) for p in payloads]

    ctx = multiprocessing.get_context("fork")
    results: list[PMapResult | None] = [None] * len(items)
    executor = ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        mp_context=ctx,
        initializer=_worker_init,
    )
    poisoned = False
    try:
        futures = [executor.submit(_run_task, p) for p in payloads]
        backstop = None if timeout is None else timeout + BACKSTOP_SLACK
        for i, fut in enumerate(futures):
            if poisoned:
                # Pool already torn down; drain without waiting.
                wait = 0.1
            else:
                wait = backstop
            try:
                results[i] = fut.result(timeout=wait)
            except FutureTimeout:
                # Worker wedged beyond the in-process alarm (or pool
                # gone): record the overrun and stop trusting the pool.
                fut.cancel()
                results[i] = PMapResult(
                    index=i, ok=False, timed_out=True,
                    error=TaskTimeout(
                        f"hard timeout: worker unresponsive after"
                        f" {wait:g}s"
                    ),
                )
                if not poisoned:
                    poisoned = True
                    for p in list(executor._processes.values()):
                        p.terminate()
            except BaseException as ex:
                # BrokenProcessPool & friends: fail this task, keep
                # draining the rest without blocking.
                results[i] = PMapResult(index=i, ok=False, error=ex)
                poisoned = True
    finally:
        executor.shutdown(wait=not poisoned, cancel_futures=True)
    _fold_worker_metrics(results)
    return results  # type: ignore[return-value]


def race(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int,
    timeout: float | None = None,
    accept: Callable[[PMapResult], bool] | None = None,
) -> list[PMapResult | None]:
    """Run items concurrently; the lowest-index accepted result wins.

    Results are examined in submission order, so the winner is
    deterministic regardless of completion order: the first result
    ``accept`` approves (default: :attr:`PMapResult.ok`) stops the
    race, later tasks are cancelled and their workers terminated.
    Serially (``jobs <= 1``, inside a worker, or one item) losers past
    the winner are simply never started.

    Returns the submission-ordered result list with ``None`` for every
    task past the winner (losers whose outcome was discarded).
    """
    accept = accept if accept is not None else (lambda r: r.ok)
    items = list(items)
    payloads = [
        (fn, item, i, timeout) for i, item in enumerate(items)
    ]
    results: list[PMapResult | None] = [None] * len(items)
    if jobs <= 1 or in_worker() or len(items) <= 1:
        for i, p in enumerate(payloads):
            results[i] = _run_task(p)
            if accept(results[i]):
                break
        return results

    ctx = multiprocessing.get_context("fork")
    executor = ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        mp_context=ctx,
        initializer=_worker_init,
    )
    torn_down = False
    try:
        futures = [executor.submit(_run_task, p) for p in payloads]
        backstop = None if timeout is None else timeout + BACKSTOP_SLACK
        for i, fut in enumerate(futures):
            try:
                results[i] = fut.result(timeout=backstop)
            except FutureTimeout:
                fut.cancel()
                results[i] = PMapResult(
                    index=i, ok=False, timed_out=True,
                    error=TaskTimeout(
                        f"hard timeout: worker unresponsive after"
                        f" {backstop:g}s"
                    ),
                )
                break  # pool no longer trustworthy; losers stay None
            except BaseException as ex:
                results[i] = PMapResult(index=i, ok=False, error=ex)
                break
            if accept(results[i]):
                break
        else:
            # Every entrant examined, none accepted: clean finish.
            executor.shutdown(wait=True, cancel_futures=True)
            torn_down = True
            _fold_worker_metrics(results)
            return results
        # A winner (or a broken pool): cancel losers, stop their work.
        for fut in futures:
            fut.cancel()
        for p in list(executor._processes.values()):
            p.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        torn_down = True
        # Only examined entrants' metrics merge; cancelled losers'
        # partial work is discarded with them (deterministic either
        # way — the examined prefix is fixed by submission order).
        _fold_worker_metrics(results)
        return results
    finally:
        if not torn_down:
            executor.shutdown(wait=False, cancel_futures=True)
