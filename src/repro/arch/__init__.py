"""The CGRA architecture model.

Follows the survey's §II-A/§II-B: a CGRA is a 2-D array of cells
(PEs / RCs) joined by an interconnect topology, exposing both *spatial*
parallelism (many cells per cycle) and *temporal* parallelism (cells
reconfigured every cycle by a context).  The model is parametric —
"the great majority of works considers a model of the CGRA as input of
the compilation flow" — and every mapper in :mod:`repro.mappers`
targets it rather than a hard-coded machine.

* :mod:`repro.arch.cell` — the reconfigurable cell: functional unit,
  register file, memory port;
* :mod:`repro.arch.topology` — interconnect generators (mesh, torus,
  diagonal/king, one-hop, ring, crossbar);
* :mod:`repro.arch.cgra` — the array itself;
* :mod:`repro.arch.presets` — named architectures from the literature;
* :mod:`repro.arch.tec` — the time-extended CGRA (TEC) graph;
* :mod:`repro.arch.mrrg` — the modulo routing resource graph (MRRG).
"""

from repro.arch.cell import Cell, CellKind
from repro.arch.cgra import CGRA, Link
from repro.arch.topology import TOPOLOGIES, topology_links
from repro.arch import presets
from repro.arch.tec import TEC
from repro.arch.mrrg import MRRG

__all__ = [
    "CGRA",
    "Cell",
    "CellKind",
    "Link",
    "MRRG",
    "TEC",
    "TOPOLOGIES",
    "presets",
    "topology_links",
]
