"""The CGRA array model.

A :class:`CGRA` is a set of :class:`~repro.arch.cell.Cell`\\ s plus a
directed link set.  It answers the questions every mapper asks:

* which cells can execute a given opcode (:meth:`CGRA.candidates`,
  memoized per opcode via :meth:`CGRA.supporting_cells`),
* which cells are adjacent (:meth:`CGRA.neighbors_out` /
  :meth:`CGRA.neighbors_in`),
* how far apart two cells are (:meth:`CGRA.distance`, precomputed
  all-pairs BFS; :meth:`CGRA.distance_table` exposes the whole table
  so routers can prune against it without per-call indirection),

plus the dense indices the resource fast paths are built on: every
link owns a stable integer id (:meth:`CGRA.link_index`), so occupancy
tables can be flat arrays instead of tuple-keyed dicts,

and carries the execution-model parameters the survey's §II-B calls
out as the "contract between the hardware and the software":

* ``route_shares_fu`` — whether forwarding a value through a cell
  consumes its issue slot that cycle (true for the classic ADRES-like
  model; false for architectures with dedicated bypass muxes);
* ``n_contexts`` — depth of the context memory, i.e. the maximum
  schedule length / II a temporal mapping may use;
* ``hw_loop`` — whether the array has hardware loop support (§III-B2),
  which removes the host-driven loop-control overhead cycles modelled
  by the simulator.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterable, Sequence

from repro.arch.cell import Cell, CellKind
from repro.ir.dfg import Op

__all__ = ["CGRA", "Link"]

Link = tuple[int, int]

#: Module-level all-pairs distance tables keyed by arch fingerprint.
#: Preset factories build a fresh CGRA per call, so per-instance
#: memoization alone recomputes the O(cells^2) BFS sweep every time a
#: fuzzer or benchmark harness instantiates the same preset; equal
#: arrays share one table here instead.  Bounded LRU — a sweep over
#: every preset stays far under the cap.  Tables are shared, so
#: callers must treat :meth:`CGRA.distance_table` rows as read-only
#: (they always had to: the per-instance cache was shared across call
#: sites too).
_DIST_TABLES: OrderedDict[str, list[list[int]]] = OrderedDict()
_DIST_TABLES_MAX = 32


def _shared_distance_table(cgra: CGRA) -> list[list[int]]:
    try:
        # Local import: repro.cache.fingerprint imports this module.
        from repro.cache.fingerprint import arch_fingerprint

        fp = arch_fingerprint(cgra)
    except Exception:  # pragma: no cover - fingerprint unavailable
        fp = None
    if fp is not None:
        hit = _DIST_TABLES.get(fp)
        if hit is not None:
            _DIST_TABLES.move_to_end(fp)
            return hit
    table = [cgra._bfs(c.cid) for c in cgra.cells]
    if fp is not None:
        _DIST_TABLES[fp] = table
        while len(_DIST_TABLES) > _DIST_TABLES_MAX:
            _DIST_TABLES.popitem(last=False)
    return table


class CGRA:
    """A coarse-grained reconfigurable array.

    Build either via :func:`repro.arch.presets` helpers or directly::

        cells = [make_cell(i, i % 4, i // 4, CellKind.ALU) for i in range(16)]
        cgra = CGRA("mesh4x4", 4, 4, cells, topology_links("mesh", 4, 4))
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        cells: Sequence[Cell],
        links: Iterable[Link],
        *,
        route_shares_fu: bool = True,
        bypass_capacity: int = 4,
        n_contexts: int = 32,
        hw_loop: bool = False,
        memory_banks: int = 1,
    ) -> None:
        if len(cells) != width * height:
            raise ValueError(
                f"expected {width * height} cells, got {len(cells)}"
            )
        self.name = name
        self.width = width
        self.height = height
        self.cells: list[Cell] = list(cells)
        self.route_shares_fu = route_shares_fu
        self.bypass_capacity = bypass_capacity
        self.n_contexts = n_contexts
        self.hw_loop = hw_loop
        self.memory_banks = memory_banks

        ids = {c.cid for c in cells}
        if ids != set(range(len(cells))):
            raise ValueError("cell ids must be 0..n-1")

        self._out: dict[int, list[int]] = {c.cid: [] for c in cells}
        self._in: dict[int, list[int]] = {c.cid: [] for c in cells}
        self.links: set[Link] = set()
        for src, dst in links:
            if src not in ids or dst not in ids:
                raise ValueError(f"link ({src},{dst}) references unknown cell")
            if src == dst:
                raise ValueError(f"self-link on cell {src}")
            if (src, dst) in self.links:
                continue
            self.links.add((src, dst))
            self._out[src].append(dst)
            self._in[dst].append(src)
        for adj in self._out.values():
            adj.sort()
        for adj in self._in.values():
            adj.sort()

        # Dense link ids in sorted (src, dst) order: stable across
        # equal-topology instances, so flat occupancy arrays built on
        # one CGRA line up with any equal copy of it.
        self._link_index: dict[Link, int] = {
            link: i for i, link in enumerate(sorted(self.links))
        }

        self._dist: list[list[int]] | None = None
        self._support: dict[object, tuple[int, ...]] = {}
        self._reach: list[list[int]] | None = None

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell(self, cid: int) -> Cell:
        return self.cells[cid]

    def cell_at(self, x: int, y: int) -> Cell:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"({x},{y}) outside {self.width}x{self.height}")
        return self.cells[y * self.width + x]

    def coords(self, cid: int) -> tuple[int, int]:
        c = self.cells[cid]
        return (c.x, c.y)

    def neighbors_out(self, cid: int) -> list[int]:
        """Cells reachable from ``cid`` over one link."""
        return self._out[cid]

    def neighbors_in(self, cid: int) -> list[int]:
        """Cells with a link *into* ``cid``."""
        return self._in[cid]

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self.links

    @property
    def n_links(self) -> int:
        return len(self.links)

    def link_index(self, src: int, dst: int) -> int:
        """Dense id of link ``src -> dst`` (KeyError when absent)."""
        return self._link_index[(src, dst)]

    @property
    def link_table(self) -> dict[Link, int]:
        """The full ``(src, dst) -> dense id`` map (do not mutate)."""
        return self._link_index

    def reach_lists(self) -> list[list[int]]:
        """Per cell: itself plus its out-neighbours (routers' one-step
        reach under the re-emission model).  Cached; do not mutate."""
        if self._reach is None:
            self._reach = [
                [c.cid, *self._out[c.cid]] for c in self.cells
            ]
        return self._reach

    def supporting_cells(self, op: Op) -> tuple[int, ...]:
        """Cells whose FU can execute ``op``, ascending, memoized.

        The per-opcode answer never changes for a given array, and the
        constructive mappers ask it once per candidate scan — callers
        that need to reorder must copy (``list(...)``).
        """
        cached = self._support.get(op)
        if cached is None:
            cached = tuple(
                c.cid for c in self.cells if c.supports(op)
            )
            self._support[op] = cached
        return cached

    def candidates(self, op: Op) -> list[int]:
        """Cells whose FU can execute ``op``."""
        return list(self.supporting_cells(op))

    def compute_cells(self) -> list[int]:
        return [c.cid for c in self.cells if c.is_compute]

    def memory_cells(self) -> list[int]:
        return [c.cid for c in self.cells if c.has_memory_port]

    # ------------------------------------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Hop distance over links (BFS, cached all-pairs)."""
        return self.distance_table()[src][dst]

    def distance_table(self) -> list[list[int]]:
        """The all-pairs hop-distance table (computed once, cached).

        ``table[src][dst]`` is the minimum number of links from
        ``src`` to ``dst`` (``10**9`` when unreachable).  Routers use
        the rows directly for admissible distance pruning; rows are
        shared between equal arrays (see ``_DIST_TABLES``) and must
        not be mutated.
        """
        if self._dist is None:
            self._dist = _shared_distance_table(self)
        return self._dist

    def flat_graph(self):
        """CSR adjacency / dense link ids / distance rows for the flat
        routing engine (:class:`repro.mappers.routecore.FlatGraph`).

        Built once per topology and shared between equal arrays by
        arch fingerprint — the same discipline as
        :meth:`distance_table`.  Treat every array as read-only.
        """
        # Local import: mappers import arch, not the other way round.
        from repro.mappers.routecore import flat_graph

        return flat_graph(self)

    def _bfs(self, start: int) -> list[int]:
        INF = 10**9
        dist = [INF] * self.n_cells
        dist[start] = 0
        q = deque([start])
        while q:
            u = q.popleft()
            for v in self._out[u]:
                if dist[v] == INF:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return dist

    def is_connected(self) -> bool:
        """Every cell reaches every other cell (strongly connected).

        Two linear BFS sweeps (forward from cell 0 and backward to
        it), not the all-pairs distance table — connectivity checks on
        large fabrics must not trigger the O(V^2) sweep.
        """
        n = self.n_cells
        for adj in (self._out, self._in):
            seen = bytearray(n)
            seen[0] = 1
            frontier = [0]
            reached = 1
            while frontier:
                nxt = []
                for c in frontier:
                    for d in adj[c]:
                        if not seen[d]:
                            seen[d] = 1
                            reached += 1
                            nxt.append(d)
                frontier = nxt
            if reached != n:
                return False
        return True

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII picture of the array (kinds per cell), Fig. 2-style."""
        marks = {
            CellKind.ALU: "A",
            CellKind.MEM: "M",
            CellKind.ALU_MEM: "X",
            CellKind.ROUTE: ".",
        }
        rows = []
        for y in range(self.height):
            row = " ".join(
                marks[self.cell_at(x, y).kind] for x in range(self.width)
            )
            rows.append(row)
        header = (
            f"{self.name}: {self.width}x{self.height},"
            f" {len(self.links)} links,"
            f" contexts={self.n_contexts}"
        )
        return "\n".join([header, *rows])

    def __repr__(self) -> str:
        return (
            f"CGRA({self.name!r}, {self.width}x{self.height},"
            f" links={len(self.links)})"
        )
