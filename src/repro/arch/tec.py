"""The time-extended CGRA (TEC).

Temporal mapping "amounts to identifying the spatial and temporal
coordinates of every node and arc" (§II-C); the coordinate system is
the CGRA replicated along a time axis — the TEC [28], also called the
time-space graph [29].

Execution model
---------------

This package uses the synchronous nearest-neighbour model common to
the surveyed mappers (DRESC/EPIMap/HyCube style):

* an operation scheduled on cell ``c`` at cycle ``t`` *emits* its
  result at the end of cycle ``t`` (all FU latencies are one cycle);
* an emission at ``(c, t)`` is readable during cycle ``t+1`` by ``c``
  itself and by every cell ``c'`` with a link ``c -> c'``;
* a cell may *route* (re-emit) a value it can read — consuming its FU
  slot that cycle when ``cgra.route_shares_fu`` is true, or one of its
  dedicated bypass slots otherwise;
* a cell may *hold* a value in its local register file for any number
  of cycles (one RF slot per cycle); a held value is readable only by
  that cell until re-emitted.

A routing path for a DFG edge is therefore a chain of ``route`` /
``hold`` steps, one cycle each, from the producer's emission to the
cycle before the consumer fires.  :class:`TEC` exposes exactly these
transitions; :class:`~repro.arch.mrrg.MRRG` is the same graph with
resource accounting folded modulo the initiation interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.arch.cgra import CGRA

__all__ = ["TEC", "Step", "ROUTE", "HOLD"]

ROUTE = "route"
HOLD = "hold"


@dataclass(frozen=True)
class Step:
    """One cycle of a routing path.

    ``kind`` is :data:`ROUTE` (value re-emitted from ``cell``, visible
    to neighbours next cycle) or :data:`HOLD` (value parked in
    ``cell``'s RF, visible only locally).  ``time`` is the *absolute*
    cycle of the step.
    """

    cell: int
    time: int
    kind: str


class TEC:
    """The time-extended CGRA for a finite schedule horizon.

    Args:
        cgra: the array being extended.
        horizon: number of cycles (defaults to ``cgra.n_contexts``).
    """

    def __init__(self, cgra: CGRA, horizon: int | None = None) -> None:
        self.cgra = cgra
        self.horizon = horizon if horizon is not None else cgra.n_contexts
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        # Cells readable from an emission at c (c itself + out-neighbours).
        self._reach = {
            c.cid: [c.cid, *cgra.neighbors_out(c.cid)] for c in cgra.cells
        }

    # ------------------------------------------------------------------
    @property
    def wrap(self) -> int | None:
        """Modulo period for resource accounting; None for a plain TEC."""
        return None

    def slot(self, t: int) -> int:
        """The resource slot that absolute cycle ``t`` maps to."""
        return t

    def in_horizon(self, t: int) -> bool:
        return 0 <= t < self.horizon

    def nodes(self) -> Iterator[tuple[int, int]]:
        """All ``(cell, cycle)`` coordinates."""
        for t in range(self.horizon):
            for c in range(self.cgra.n_cells):
                yield (c, t)

    def n_nodes(self) -> int:
        return self.cgra.n_cells * self.horizon

    # ------------------------------------------------------------------
    def readable_from(self, cell: int) -> list[int]:
        """Cells that can read an emission at ``cell`` (next cycle)."""
        return self._reach[cell]

    def emitters_into(self, cell: int) -> list[int]:
        """Cells whose emission ``cell`` can read (prev cycle)."""
        return [cell, *self.cgra.neighbors_in(cell)]

    def successors(
        self, cell: int, time: int, *, was_hold: bool = False
    ) -> Iterator[Step]:
        """Possible next steps for a value sitting at ``(cell, time)``.

        ``was_hold`` is accepted for symmetry; in this model a held
        value can be re-emitted or keep being held, the same as a
        routed one, so it does not restrict the transition set.
        """
        t = time + 1
        if not self.in_horizon(self.slot_time(t)):
            return
        for nxt in self._reach[cell]:
            yield Step(nxt, t, ROUTE)
        yield Step(cell, t, HOLD)

    def slot_time(self, t: int) -> int:
        """Clamp/fold an absolute time for horizon checks."""
        return t

    def can_consume(
        self, last: Step | tuple[int, int, str], consumer_cell: int
    ) -> bool:
        """May an op on ``consumer_cell`` read the value after ``last``?

        A ROUTE (or the producing op itself, which behaves like one) is
        readable by the emitting cell and its out-neighbours; a HOLD is
        readable only by its own cell.
        """
        cell = last.cell if isinstance(last, Step) else last[0]
        kind = last.kind if isinstance(last, Step) else last[2]
        if kind == HOLD:
            return cell == consumer_cell
        return consumer_cell in self._reach[cell]

    def __repr__(self) -> str:
        return f"TEC({self.cgra.name}, horizon={self.horizon})"
