"""Named architecture presets.

Parameter sets that echo the recurring machines of the surveyed
literature.  None claims cycle-level fidelity to the original silicon;
each reproduces the *shape* that matters to mapping: topology,
heterogeneity (which cells reach memory), register file size, and
routing discipline.

* :func:`simple_cgra` — the minimal homogeneous mesh of the survey's
  Fig. 2: every cell an ALU, nearest-neighbour links;
* :func:`adres_like` — ADRES/DRESC-style: memory ports on the first
  column, mesh + diagonal interconnect, larger RFs;
* :func:`morphosys_like` — MorphoSys-style: mesh + one-hop express
  lanes, small RFs;
* :func:`hycube_like` — HyCube-style: mesh with single-cycle multi-hop
  (modelled as one-hop links) and bypass routing that does *not* steal
  the FU slot;
* :func:`heterogeneous` — an explicitly heterogeneous array with pure
  routing cells, to exercise binding constraints.
"""

from __future__ import annotations

from repro.arch.cell import CellKind, make_cell
from repro.arch.cgra import CGRA
from repro.arch.topology import topology_links

__all__ = [
    "PRESETS",
    "adres_like",
    "by_name",
    "heterogeneous",
    "hycube_like",
    "morphosys_like",
    "simple_cgra",
]


def simple_cgra(
    width: int = 4,
    height: int = 4,
    *,
    topology: str = "mesh",
    rf_size: int = 4,
    n_contexts: int = 32,
    mem_cells: str = "all",
) -> CGRA:
    """The minimal CGRA of the survey's Fig. 2.

    Homogeneous ALU cells on a mesh.  ``mem_cells`` selects where
    LOAD/STORE may bind: ``"all"``, ``"left"`` (first column),
    ``"none"``.
    """
    cells = []
    for cid in range(width * height):
        x, y = cid % width, cid // width
        if mem_cells == "all" or (mem_cells == "left" and x == 0):
            kind = CellKind.ALU_MEM
        else:
            kind = CellKind.ALU
        cells.append(make_cell(cid, x, y, kind, rf_size=rf_size))
    return CGRA(
        f"simple{width}x{height}",
        width,
        height,
        cells,
        topology_links(topology, width, height),
        n_contexts=n_contexts,
    )


def adres_like(width: int = 4, height: int = 4) -> CGRA:
    """ADRES-flavoured array: left-column memory, 8-neighbour links.

    DRESC's target: temporal execution, routing through cells shares
    the FU slot, generous register files for routing in time.
    """
    cells = []
    for cid in range(width * height):
        x, y = cid % width, cid // width
        kind = CellKind.ALU_MEM if x == 0 else CellKind.ALU
        cells.append(make_cell(cid, x, y, kind, rf_size=8))
    return CGRA(
        f"adres{width}x{height}",
        width,
        height,
        cells,
        topology_links("diagonal", width, height),
        route_shares_fu=True,
        n_contexts=32,
    )


def morphosys_like(width: int = 8, height: int = 8) -> CGRA:
    """MorphoSys-flavoured array: mesh + express lanes, small RFs."""
    cells = []
    for cid in range(width * height):
        x, y = cid % width, cid // width
        kind = CellKind.ALU_MEM if y == 0 else CellKind.ALU
        cells.append(make_cell(cid, x, y, kind, rf_size=2))
    return CGRA(
        f"morphosys{width}x{height}",
        width,
        height,
        cells,
        topology_links("one_hop", width, height),
        route_shares_fu=True,
        n_contexts=16,
    )


def hycube_like(width: int = 4, height: int = 4) -> CGRA:
    """HyCube-flavoured array: bypass routing does not steal FU slots."""
    cells = []
    for cid in range(width * height):
        x, y = cid % width, cid // width
        cells.append(make_cell(cid, x, y, CellKind.ALU_MEM, rf_size=4))
    return CGRA(
        f"hycube{width}x{height}",
        width,
        height,
        cells,
        topology_links("one_hop", width, height),
        route_shares_fu=False,
        n_contexts=32,
        hw_loop=True,
    )


def heterogeneous(width: int = 4, height: int = 4) -> CGRA:
    """A deliberately constrained array to stress binding.

    Column 0: memory-only cells.  Interior checkerboard: every other
    cell is route-only.  Forces mappers to respect op-compatibility.
    """
    cells = []
    for cid in range(width * height):
        x, y = cid % width, cid // width
        if x == 0:
            kind = CellKind.MEM
        elif (x + y) % 2 == 0:
            kind = CellKind.ALU
        else:
            kind = CellKind.ROUTE
        cells.append(make_cell(cid, x, y, kind, rf_size=4))
    return CGRA(
        f"hetero{width}x{height}",
        width,
        height,
        cells,
        topology_links("mesh", width, height),
        n_contexts=32,
    )


PRESETS = {
    "simple4x4": lambda: simple_cgra(4, 4),
    "simple2x2": lambda: simple_cgra(2, 2),
    "simple8x8": lambda: simple_cgra(8, 8),
    "simple16x16": lambda: simple_cgra(16, 16),
    "simple32x32": lambda: simple_cgra(32, 32),
    "simple64x64": lambda: simple_cgra(64, 64),
    "adres4x4": lambda: adres_like(4, 4),
    "morphosys8x8": lambda: morphosys_like(8, 8),
    "hycube4x4": lambda: hycube_like(4, 4),
    "hetero4x4": lambda: heterogeneous(4, 4),
    "hetero16x16": lambda: heterogeneous(16, 16),
}


def by_name(name: str) -> CGRA:
    """Instantiate a preset architecture by registry name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
