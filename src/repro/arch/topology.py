"""Interconnect topology generators.

Each generator returns the set of *directed* links of a ``width x
height`` array as ``(src_cid, dst_cid)`` pairs with row-major cell ids
(``cid = y * width + x``).  The shapes cover the topologies that recur
across the surveyed architectures:

* ``mesh``      — 4-neighbour nearest (MorphoSys/ADRES baseline mesh),
* ``torus``     — mesh with wrap-around links,
* ``diagonal``  — mesh plus the 4 diagonals (8-neighbour / king),
* ``one_hop``   — mesh plus links that skip one cell (MorphoSys
  "express" lanes, HyCube-style multi-hop in one cycle),
* ``ring``      — row-major ring (the degenerate 1-D case),
* ``crossbar``  — full connectivity (an idealised upper bound used in
  ablations to isolate routing effects).

All links are symmetric in these generators (both directions present),
but the :class:`~repro.arch.cgra.CGRA` model accepts arbitrary
directed link sets.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = ["TOPOLOGIES", "topology_links"]


def _cid(x: int, y: int, width: int) -> int:
    return y * width + x


def _in_bounds(x: int, y: int, width: int, height: int) -> bool:
    return 0 <= x < width and 0 <= y < height


def _offsets_links(
    width: int, height: int, offsets: Iterable[tuple[int, int]]
) -> set[tuple[int, int]]:
    links: set[tuple[int, int]] = set()
    for y in range(height):
        for x in range(width):
            for dx, dy in offsets:
                nx, ny = x + dx, y + dy
                if _in_bounds(nx, ny, width, height):
                    links.add((_cid(x, y, width), _cid(nx, ny, width)))
    return links


def mesh(width: int, height: int) -> set[tuple[int, int]]:
    """4-neighbour mesh."""
    return _offsets_links(width, height, [(1, 0), (-1, 0), (0, 1), (0, -1)])


def torus(width: int, height: int) -> set[tuple[int, int]]:
    """Mesh plus wrap-around links on both axes."""
    links = mesh(width, height)
    if width > 1:
        for y in range(height):
            links.add((_cid(width - 1, y, width), _cid(0, y, width)))
            links.add((_cid(0, y, width), _cid(width - 1, y, width)))
    if height > 1:
        for x in range(width):
            links.add((_cid(x, height - 1, width), _cid(x, 0, width)))
            links.add((_cid(x, 0, width), _cid(x, height - 1, width)))
    return links


def diagonal(width: int, height: int) -> set[tuple[int, int]]:
    """8-neighbour (king) connectivity: mesh plus diagonals."""
    return _offsets_links(
        width,
        height,
        [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1) if (dx, dy) != (0, 0)],
    )


def one_hop(width: int, height: int) -> set[tuple[int, int]]:
    """Mesh plus distance-2 express links along rows and columns."""
    return mesh(width, height) | _offsets_links(
        width, height, [(2, 0), (-2, 0), (0, 2), (0, -2)]
    )


def ring(width: int, height: int) -> set[tuple[int, int]]:
    """Bidirectional row-major ring over all cells."""
    n = width * height
    links: set[tuple[int, int]] = set()
    for i in range(n):
        j = (i + 1) % n
        if i != j:
            links.add((i, j))
            links.add((j, i))
    return links


def crossbar(width: int, height: int) -> set[tuple[int, int]]:
    """Every cell talks to every other cell (idealised)."""
    n = width * height
    return {(i, j) for i in range(n) for j in range(n) if i != j}


TOPOLOGIES: dict[str, Callable[[int, int], set[tuple[int, int]]]] = {
    "mesh": mesh,
    "torus": torus,
    "diagonal": diagonal,
    "one_hop": one_hop,
    "ring": ring,
    "crossbar": crossbar,
}


def topology_links(
    name: str, width: int, height: int
) -> set[tuple[int, int]]:
    """Links of the named topology; raises KeyError for unknown names."""
    try:
        gen = TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: {sorted(TOPOLOGIES)}"
        ) from None
    if width < 1 or height < 1:
        raise ValueError("topology dimensions must be positive")
    return gen(width, height)
