"""The modulo routing resource graph (MRRG).

Modulo scheduling overlaps loop iterations every II cycles, so two
events ``II`` cycles apart contend for the *same* physical resource.
The MRRG [59], [61] captures this by folding the time axis of the TEC
modulo II: resource accounting happens on ``(cell, t mod II)`` slots
while dependence arithmetic stays in absolute cycles.

:class:`MRRG` therefore *is* a :class:`~repro.arch.tec.TEC` whose
``slot`` function wraps, and whose horizon bounds the absolute schedule
length (contexts still limit how many distinct configurations exist —
``n_contexts`` must be >= II).
"""

from __future__ import annotations

from repro.arch.cgra import CGRA
from repro.arch.tec import TEC

__all__ = ["MRRG"]


class MRRG(TEC):
    """Modulo-folded time-extended CGRA for a given II.

    Args:
        cgra: the target array.
        ii: initiation interval (>= 1, <= ``cgra.n_contexts``).
        horizon: absolute-cycle bound for schedules/routes; defaults to
            a generous multiple of II so routes may spill over several
            stages of the software pipeline.
    """

    def __init__(self, cgra: CGRA, ii: int, horizon: int | None = None) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        if ii > cgra.n_contexts:
            raise ValueError(
                f"II={ii} exceeds the context memory depth"
                f" ({cgra.n_contexts})"
            )
        super().__init__(cgra, horizon if horizon is not None else 8 * ii)
        self.ii = ii

    @property
    def wrap(self) -> int | None:
        return self.ii

    def slot(self, t: int) -> int:
        return t % self.ii

    def n_slots(self) -> int:
        """Distinct resource slots: cells x II."""
        return self.cgra.n_cells * self.ii

    def __repr__(self) -> str:
        return f"MRRG({self.cgra.name}, ii={self.ii}, horizon={self.horizon})"
