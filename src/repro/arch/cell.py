"""The reconfigurable cell (PE / RC / tile / FU).

The survey (§II-A) prefers *cell* as the generic term because CGRAs may
be heterogeneous — some cells compute, some access memory, some only
route.  A :class:`Cell` here carries:

* a :class:`CellKind` and the set of opcodes its functional unit
  implements,
* a local register file size (how many live values it can hold per
  cycle — what temporal mappers use for routing-in-time),
* whether it owns a memory port (LOAD/STORE capable), and
* whether its configuration word can supply immediate constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.dfg import Op

__all__ = ["Cell", "CellKind", "ALU_OPS", "MEM_OPS", "ALL_OPS"]

# Opcode groups used to describe what a cell's FU implements.
MEM_OPS = frozenset({Op.LOAD, Op.STORE})
ALU_OPS = frozenset(
    op
    for op in Op
    if op not in MEM_OPS and not op.is_pseudo
)
ALL_OPS = ALU_OPS | MEM_OPS


class CellKind(enum.Enum):
    """Coarse cell classes found across the surveyed architectures."""

    ALU = "alu"          #: compute-only cell
    MEM = "mem"          #: memory-access cell (still routes)
    ALU_MEM = "alu_mem"  #: compute + memory port (ADRES first column)
    ROUTE = "route"      #: pure routing cell (no FU)


@dataclass(frozen=True)
class Cell:
    """One reconfigurable cell of the array.

    Attributes:
        cid: cell id, unique in the array (row-major by convention).
        x, y: grid coordinates.
        kind: coarse class (drives ``ops`` defaults in the builders).
        ops: opcodes the FU implements; empty for pure-route cells.
        rf_size: local register file capacity (values held per cycle).
        has_memory_port: True if LOAD/STORE may be bound here.
        const_width: bit-width of the immediate field in the context
            (0 means constants must be routed in from elsewhere).
    """

    cid: int
    x: int
    y: int
    kind: CellKind = CellKind.ALU
    ops: frozenset[Op] = field(default_factory=lambda: ALU_OPS)
    rf_size: int = 4
    has_memory_port: bool = False
    const_width: int = 16

    def supports(self, op: Op) -> bool:
        """Can this cell's FU execute ``op``?

        Pseudo ops (CONST/INPUT/OUTPUT) never occupy an FU and are
        supported anywhere; ROUTE needs no FU either (it uses the
        cell's bypass path).
        """
        if op.is_pseudo or op is Op.ROUTE:
            return True
        if op.is_memory:
            return self.has_memory_port and op in self.ops
        return op in self.ops

    def can_hold_constant(self, value: int) -> bool:
        """Does ``value`` fit the context's immediate field?"""
        if self.const_width <= 0:
            return False
        lo = -(1 << (self.const_width - 1))
        hi = (1 << (self.const_width - 1)) - 1
        return lo <= value <= hi

    @property
    def is_compute(self) -> bool:
        return bool(self.ops)

    def describe(self) -> str:
        tags = [self.kind.value, f"rf={self.rf_size}"]
        if self.has_memory_port:
            tags.append("mem")
        return f"cell{self.cid}({self.x},{self.y})[{','.join(tags)}]"


def make_cell(
    cid: int,
    x: int,
    y: int,
    kind: CellKind,
    *,
    rf_size: int = 4,
    const_width: int = 16,
    ops: frozenset[Op] | None = None,
) -> Cell:
    """Build a cell with kind-appropriate defaults for ``ops``/ports."""
    if ops is None:
        if kind is CellKind.ALU:
            ops = ALU_OPS
        elif kind is CellKind.MEM:
            ops = MEM_OPS
        elif kind is CellKind.ALU_MEM:
            ops = ALL_OPS
        else:  # ROUTE
            ops = frozenset()
    return Cell(
        cid=cid,
        x=x,
        y=y,
        kind=kind,
        ops=ops,
        rf_size=rf_size,
        has_memory_port=kind in (CellKind.MEM, CellKind.ALU_MEM),
        const_width=const_width,
    )
