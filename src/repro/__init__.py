"""repro — a canonical CGRA mapping framework.

This package reproduces, as one coherent library, the field surveyed in

    Kevin J. M. Martin, "Twenty Years of Automated Methods for Mapping
    Applications on CGRA", IPDPSW (CGRA4HPC) 2022.

It provides:

* an application intermediate representation (:mod:`repro.ir`) — data
  flow graphs (DFG), control flow graphs (CFG) and their combination
  (CDFG) — plus a tiny C-like front end (:mod:`repro.frontend`) and
  classic middle-end passes (:mod:`repro.passes`);
* a parametric CGRA architecture model (:mod:`repro.arch`) including
  the time-extended CGRA (TEC) and the modulo routing resource graph
  (MRRG) abstractions that temporal mappers search;
* exact optimisation substrates written from scratch
  (:mod:`repro.solvers`): a 0/1 ILP solver by branch and bound over LP
  relaxations, a DPLL SAT solver, and an AC-3 CSP solver;
* the mapping problem formulation and validity checker
  (:mod:`repro.core`), together with a mapper registry that carries the
  survey's Table I taxonomy as machine-readable metadata;
* twenty mapper implementations (:mod:`repro.mappers`) spanning every
  cell of that taxonomy — heuristics, meta-heuristics (SA / GA / QEA),
  ILP / branch-and-bound, and CSP / SAT formulations, for both spatial
  and temporal mapping;
* control-flow support (:mod:`repro.controlflow`): full and partial
  predication, dual-issue single execution, direct CDFG mapping, and
  hardware loops;
* data mapping (:mod:`repro.memory`): multi-bank scratchpads, array
  partitioning, and register allocation;
* a cycle-accurate functional simulator (:mod:`repro.sim`) that
  executes generated configuration contexts; and
* the survey's own dataset (:mod:`repro.survey`): a structured
  bibliography from which the paper's Table I and Fig. 4 are
  regenerated.

Quickstart::

    from repro import kernels, presets, map_dfg

    dfg = kernels.dot_product()
    cgra = presets.simple_cgra(4, 4)
    mapping = map_dfg(dfg, cgra, mapper="dresc")
    print(mapping.ii, mapping.schedule_length)
"""

from repro._version import __version__
from repro.api import available_mappers, compile_source, map_dfg

__all__ = [
    "__version__",
    "available_mappers",
    "compile_source",
    "map_dfg",
]
