"""A finite-domain constraint satisfaction solver.

Backs the CP mapper (Table I "CSP -> CP", Raffin et al.).  Variables
have explicit finite domains; constraints are predicates over variable
scopes.  The solver runs:

* **AC-3** arc consistency as a preprocessing step (binary
  constraints),
* backtracking search with **MRV** (minimum remaining values) variable
  ordering, **least-constraining-value** ordering, and **forward
  checking** over constraints whose scope is fully/almost assigned.

``AllDifferent`` gets a dedicated pruning rule (a value assigned to one
variable leaves the domains of its peers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.obs.tracer import SOLVER_NODES, get_tracer

__all__ = ["CSP", "CSPUnsat", "CSPTimeout"]

Value = Hashable


class CSPUnsat(Exception):
    """The constraint problem has no solution."""


class CSPTimeout(Exception):
    """Search exceeded its budget before finding a solution."""


@dataclass
class _Constraint:
    scope: tuple[str, ...]
    pred: Callable[..., bool]
    name: str = ""


class CSP:
    """A finite-domain CSP.

    Example::

        csp = CSP()
        csp.add_var("x", range(4))
        csp.add_var("y", range(4))
        csp.add_constraint(("x", "y"), lambda x, y: x < y)
        sol = csp.solve()
    """

    def __init__(self, name: str = "csp") -> None:
        self.name = name
        self.domains: dict[str, list[Value]] = {}
        self.constraints: list[_Constraint] = []
        self._alldiff_groups: list[list[str]] = []
        self.stats_nodes = 0

    # ------------------------------------------------------------------
    def add_var(self, name: str, domain: Iterable[Value]) -> None:
        if name in self.domains:
            raise ValueError(f"duplicate variable {name!r}")
        dom = list(domain)
        if not dom:
            raise CSPUnsat(f"variable {name!r} has an empty domain")
        self.domains[name] = dom

    def add_constraint(
        self,
        scope: Sequence[str],
        pred: Callable[..., bool],
        name: str = "",
    ) -> None:
        """``pred(*values)`` must hold for the variables in ``scope``."""
        for v in scope:
            if v not in self.domains:
                raise KeyError(f"unknown variable {v!r}")
        self.constraints.append(_Constraint(tuple(scope), pred, name))

    def add_all_different(self, scope: Sequence[str]) -> None:
        """All variables in ``scope`` take pairwise distinct values."""
        for v in scope:
            if v not in self.domains:
                raise KeyError(f"unknown variable {v!r}")
        self._alldiff_groups.append(list(scope))

    # ------------------------------------------------------------------
    def _ac3(self, domains: dict[str, list[Value]]) -> bool:
        """Arc consistency over binary constraints; False if wiped out."""
        binary = [c for c in self.constraints if len(c.scope) == 2]
        if not binary:
            return True
        arcs: list[tuple[str, str, _Constraint]] = []
        for c in binary:
            x, y = c.scope
            arcs.append((x, y, c))
            arcs.append((y, x, c))
        queue = list(arcs)
        neighbours: dict[str, list[tuple[str, str, _Constraint]]] = {}
        for arc in arcs:
            neighbours.setdefault(arc[1], []).append(arc)

        def consistent(c: _Constraint, x: str, vx: Value, y: str, vy: Value):
            if c.scope == (x, y):
                return c.pred(vx, vy)
            return c.pred(vy, vx)

        while queue:
            x, y, c = queue.pop()
            revised = False
            keep = []
            for vx in domains[x]:
                if any(consistent(c, x, vx, y, vy) for vy in domains[y]):
                    keep.append(vx)
                else:
                    revised = True
            if revised:
                domains[x] = keep
                if not keep:
                    return False
                queue.extend(
                    a for a in neighbours.get(x, []) if a[0] != y
                )
        return True

    # ------------------------------------------------------------------
    def solve(
        self,
        *,
        node_limit: int = 1_000_000,
        time_limit: float | None = None,
        use_ac3: bool = True,
        value_hints: dict[str, Value] | None = None,
    ) -> dict[str, Value]:
        """Find one solution; raises :class:`CSPUnsat` / :class:`CSPTimeout`.

        ``value_hints`` maps variables to preferred values (e.g. the
        previous II's assignment): a hinted value still in the domain
        is tried first, warm-starting the search without affecting
        completeness.

        With tracing enabled the search runs under a ``csp_solve``
        span tagged with the model size, counting ``solver_nodes``
        (search nodes, recorded even when the search fails).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_impl(
                node_limit=node_limit,
                time_limit=time_limit,
                use_ac3=use_ac3,
                value_hints=value_hints,
            )
        with tracer.span(
            "csp_solve",
            model=self.name,
            vars=len(self.domains),
            constraints=len(self.constraints),
        ) as span:
            try:
                solution = self._solve_impl(
                    node_limit=node_limit,
                    time_limit=time_limit,
                    use_ac3=use_ac3,
                    value_hints=value_hints,
                )
            except CSPUnsat:
                span.tag(status="unsat")
                raise
            except CSPTimeout:
                span.tag(status="timeout")
                raise
            else:
                span.tag(status="sat")
                return solution
            finally:
                span.count(SOLVER_NODES, self.stats_nodes)

    def _solve_impl(
        self,
        *,
        node_limit: int,
        time_limit: float | None,
        use_ac3: bool,
        value_hints: dict[str, Value] | None = None,
    ) -> dict[str, Value]:
        self.stats_nodes = 0
        domains = {v: list(d) for v, d in self.domains.items()}
        if use_ac3 and not self._ac3(domains):
            raise CSPUnsat(f"{self.name}: AC-3 wiped out a domain")

        self.stats_nodes = 0
        t0 = time.perf_counter()
        assignment: dict[str, Value] = {}

        by_var: dict[str, list[_Constraint]] = {v: [] for v in domains}
        for c in self.constraints:
            for v in c.scope:
                by_var[v].append(c)
        diff_peers: dict[str, list[str]] = {v: [] for v in domains}
        for group in self._alldiff_groups:
            for v in group:
                diff_peers[v].extend(u for u in group if u != v)

        def check(var: str, val: Value) -> bool:
            """Constraints on ``var`` whose scope is now fully assigned."""
            for c in by_var[var]:
                vals = []
                ok = True
                for u in c.scope:
                    if u == var:
                        vals.append(val)
                    elif u in assignment:
                        vals.append(assignment[u])
                    else:
                        ok = False
                        break
                if ok and not c.pred(*vals):
                    return False
            for peer in diff_peers[var]:
                if assignment.get(peer) == val:
                    return False
            return True

        def forward(var: str, val: Value) -> dict[str, list[Value]] | None:
            """Prune future domains; None on wipe-out."""
            pruned: dict[str, list[Value]] = {}
            # AllDifferent pruning.
            for peer in diff_peers[var]:
                if peer in assignment:
                    continue
                if val in domains[peer]:
                    pruned.setdefault(peer, []).append(val)
            # Binary-constraint forward checking.
            for c in by_var[var]:
                if len(c.scope) != 2:
                    continue
                other = c.scope[0] if c.scope[1] == var else c.scope[1]
                if other in assignment or other == var:
                    continue
                for vo in domains[other]:
                    if vo in pruned.get(other, []):
                        continue
                    args = (
                        (val, vo) if c.scope[0] == var else (vo, val)
                    )
                    if not c.pred(*args):
                        pruned.setdefault(other, []).append(vo)
            for u, removed in pruned.items():
                if len(removed) == len(domains[u]):
                    return None
            for u, removed in pruned.items():
                dom = domains[u]
                for r in removed:
                    dom.remove(r)
            return pruned

        def undo(pruned: dict[str, list[Value]]) -> None:
            for u, removed in pruned.items():
                domains[u].extend(removed)

        def select_var() -> str | None:
            best = None
            best_size = None
            for v, dom in domains.items():
                if v in assignment:
                    continue
                if best_size is None or len(dom) < best_size:
                    best, best_size = v, len(dom)
            return best

        def backtrack() -> bool:
            self.stats_nodes += 1
            if self.stats_nodes > node_limit:
                raise CSPTimeout(f"{self.name}: node limit")
            if time_limit is not None and time.perf_counter() - t0 > time_limit:
                raise CSPTimeout(f"{self.name}: time limit")
            var = select_var()
            if var is None:
                return True
            vals = list(domains[var])
            if value_hints is not None:
                hint = value_hints.get(var)
                if hint is not None and hint in vals:
                    vals.remove(hint)
                    vals.insert(0, hint)
            for val in vals:
                if not check(var, val):
                    continue
                assignment[var] = val
                pruned = forward(var, val)
                if pruned is not None:
                    if backtrack():
                        return True
                    undo(pruned)
                del assignment[var]
            return False

        if backtrack():
            return dict(assignment)
        raise CSPUnsat(f"{self.name}: exhausted search space")
