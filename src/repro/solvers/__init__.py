"""Exact optimisation substrates, written from scratch.

The survey's Table I puts ILP / branch-and-bound and constraint
satisfaction (CP, SAT, SMT) formulations in the "exact methods" column
— "the main feature of the exact based methods is that they can prove
the optimality".  Commercial solvers back the published work; none is
available here, so this package implements the three substrates the
exact mappers need:

* :mod:`repro.solvers.ilp` — a 0/1-and-bounded-integer linear program
  solver by best-first branch and bound over :func:`scipy.optimize
  .linprog` LP relaxations (cross-checked against ``scipy.optimize
  .milp`` in the test suite);
* :mod:`repro.solvers.sat` — a DPLL SAT solver with two-watched-literal
  unit propagation, conflict-bumped activity branching and
  chronological backtracking, plus CNF-building helpers
  (at-most-one / exactly-one encodings);
* :mod:`repro.solvers.csp` — a finite-domain CSP solver: backtracking
  with MRV variable choice, forward checking and AC-3 propagation.
"""

from repro.solvers.ilp import ILP, ILPResult, ILPStatus
from repro.solvers.sat import CNF, SatResult, SatSolver
from repro.solvers.csp import CSP, CSPUnsat

__all__ = [
    "CNF",
    "CSP",
    "CSPUnsat",
    "ILP",
    "ILPResult",
    "ILPStatus",
    "SatResult",
    "SatSolver",
]
