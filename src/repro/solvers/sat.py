"""SAT solvers backing the exact mappers.

Two engines share the :class:`SatResult` interface:

* :class:`SatSolver` — a **CDCL** core (conflict-driven clause
  learning): 1-UIP conflict analysis with non-chronological
  backjumping, VSIDS branching with decay (heap-based pick), phase
  saving, and Luby restarts.  It is *incremental*: learned clauses,
  activities, and saved phases survive across calls, clauses appended
  to the underlying :class:`CNF` between calls are picked up, and
  ``solve(assumptions=[...])`` solves under temporary unit
  assumptions — the machinery the II-escalation loops of the exact
  mappers use to avoid re-encoding (SAT-MapIt-style incremental modulo
  scheduling).
* :class:`DPLLSolver` — the retained chronological-DPLL reference
  (two-watched-literal propagation, activity-bumped branching).  Small
  and predictable; the equivalence/fuzz suites check the CDCL engine's
  sat/unsat verdicts against it.

Literals are non-zero integers in DIMACS convention: ``+v`` is the
positive literal of variable ``v`` (1-based), ``-v`` its negation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations

from repro.obs.metrics import SAT_CONFLICTS, get_metrics
from repro.obs.tracer import (
    SOLVER_CLAUSES,
    SOLVER_CONFLICTS,
    SOLVER_DECISIONS,
    SOLVER_RESTARTS,
    get_tracer,
)

__all__ = ["CNF", "SatSolver", "DPLLSolver", "SatResult"]

#: Largest group still encoded pairwise by :meth:`CNF.at_most_one`.
#: Pairwise needs n(n-1)/2 clauses and no auxiliaries; the sequential
#: (ladder) encoding needs ~3n clauses and n-1 auxiliaries.  They cross
#: near n = 7; staying pairwise a little past that avoids auxiliaries
#: on the many small groups the mapping encodings emit.
AMO_PAIRWISE_MAX = 8

#: Luby restart base interval (conflicts).
_LUBY_UNIT = 64


@dataclass
class SatResult:
    sat: bool
    assignment: dict[int, bool] | None = None  #: var -> value when sat
    conflicts: int = 0
    decisions: int = 0
    #: True when the search stopped on ``conflict_limit`` — the
    #: formula's status is then *undetermined*, not proven UNSAT.
    limit_reached: bool = False
    restarts: int = 0


class CNF:
    """A CNF formula builder with the standard mapping-encoding helpers."""

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self._names: dict[str, int] = {}

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable (returns its 1-based index)."""
        self.n_vars += 1
        if name is not None:
            if name in self._names:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[name] = self.n_vars
        return self.n_vars

    def var(self, name: str) -> int:
        return self._names[name]

    def add(self, *lits: int) -> None:
        """Add one clause (a disjunction of literals)."""
        if not lits:
            raise ValueError("empty clause makes the formula trivially unsat")
        for l in lits:
            if l == 0 or abs(l) > self.n_vars:
                raise ValueError(f"literal {l} out of range")
        self.clauses.append(list(lits))

    def at_most_one(self, lits: list[int], *, guard: int | None = None) -> None:
        """At-most-one over ``lits``.

        Small groups (<= :data:`AMO_PAIRWISE_MAX`) use the pairwise
        encoding; larger ones the sequential (ladder/Sinz) encoding,
        which is linear in clauses at the price of ``len(lits) - 1``
        auxiliary variables.  ``guard`` (a literal) conditions every
        emitted clause: the constraint only binds when ``guard`` is
        true — the hook the II-parameterised incremental encodings use.
        """
        g = () if guard is None else (-guard,)
        if len(lits) <= AMO_PAIRWISE_MAX:
            for a, b in combinations(lits, 2):
                self.add(*g, -a, -b)
            return
        # Sequential: s_i == "some x_j with j <= i is true".
        s_prev: int | None = None
        for i, x in enumerate(lits):
            last = i == len(lits) - 1
            s = None if last else self.new_var()
            if s is not None:
                self.add(*g, -x, s)
                if s_prev is not None:
                    self.add(*g, -s_prev, s)
            if s_prev is not None:
                self.add(*g, -x, -s_prev)
            s_prev = s

    def exactly_one(self, lits: list[int], *, guard: int | None = None) -> None:
        if guard is None:
            self.add(*lits)
        else:
            self.add(-guard, *lits)
        self.at_most_one(lits, guard=guard)

    def implies(self, a: int, b: int) -> None:
        """a -> b."""
        self.add(-a, b)

    def implies_all(self, a: int, bs: list[int]) -> None:
        for b in bs:
            self.implies(a, b)

    def implies_any(self, a: int, bs: list[int], *, guard: int | None = None) -> None:
        """a -> (b1 | b2 | ...)."""
        if guard is None:
            self.add(-a, *bs)
        else:
            self.add(-guard, -a, *bs)


def _luby(x: int) -> int:
    """The x-th term (0-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """Incremental CDCL over a :class:`CNF`.

    The solver keeps its clause database (problem + learned), variable
    activities, and saved phases between :meth:`solve` calls.  Clauses
    and variables added to the wrapped :class:`CNF` after construction
    are synced in on the next call, so the pattern::

        solver = SatSolver(cnf)
        solver.solve(assumptions=[a1])
        cnf.add(...); cnf.new_var()
        solver.solve(assumptions=[a2])

    reuses everything learned so far.
    """

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self.n = 0
        # Clause database: problem clauses then learned clauses.
        self._clauses: list[list[int]] = []
        self._n_problem = 0
        self._watches: dict[int, list[int]] = {}
        # Per-variable state (index 0 unused).
        self._assign: list[bool | None] = [None]
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._seen = bytearray(1)
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        # Trail.
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._prop_head = 0
        self._unsat = False  # proven UNSAT without assumptions
        self._pending_units: list[int] = []
        self._sync()

    # -- database ------------------------------------------------------
    def _grow(self, n: int) -> None:
        add = n - self.n
        if add <= 0:
            return
        self._assign.extend([None] * add)
        self._level.extend([0] * add)
        self._reason.extend([-1] * add)
        self._activity.extend([0.0] * add)
        self._phase.extend([False] * add)
        self._seen.extend(bytes(add))
        for v in range(self.n + 1, n + 1):
            heapq.heappush(self._heap, (0.0, v))
        self.n = n

    def add_clause(self, lits: list[int]) -> None:
        """Attach one problem clause.

        Must be called with the trail at level 0 (the solver itself
        only syncs between solves).  The clause is simplified against
        the permanent level-0 assignment: satisfied clauses are
        dropped, falsified literals cannot be watched, and a clause
        that is unit under the root assignment is queued for root
        propagation on the next solve.
        """
        unfalse = []
        for l in lits:
            v = self._value(l)
            if v is True:
                return  # satisfied at level 0 forever
            if v is None:
                unfalse.append(l)
        if not unfalse:
            self._unsat = True
            return
        if len(unfalse) == 1:
            self._pending_units.append(unfalse[0])
            return
        ci = len(self._clauses)
        # Watch two non-false literals so future falsifications of
        # either are guaranteed to visit this clause.
        cl = unfalse[:2] + [l for l in lits if l not in unfalse[:2]]
        self._clauses.append(cl)
        for lit in cl[:2]:
            self._watches.setdefault(lit, []).append(ci)

    def _sync(self) -> None:
        """Pull new variables and clauses from the wrapped CNF."""
        self._grow(self.cnf.n_vars)
        for cl in self.cnf.clauses[self._n_problem:]:
            self.add_clause(cl)
        self._n_problem = len(self.cnf.clauses)

    # -- assignment ----------------------------------------------------
    def _value(self, lit: int) -> bool | None:
        v = self._assign[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: int) -> bool:
        v = abs(lit)
        val = lit > 0
        if self._assign[v] is not None:
            return self._assign[v] == val
        self._assign[v] = val
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign, phase = self._assign, self._phase
        heap, activity = self._heap, self._activity
        for lit in self._trail[limit:]:
            v = abs(lit)
            phase[v] = assign[v]  # phase saving
            assign[v] = None
            heapq.heappush(heap, (-activity[v], v))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._prop_head = len(self._trail)

    # -- VSIDS ---------------------------------------------------------
    def _bump(self, v: int) -> None:
        act = self._activity[v] + self._var_inc
        self._activity[v] = act
        if act > 1e100:
            inv = 1e-100
            self._activity = [a * inv for a in self._activity]
            self._var_inc *= inv
            self._heap = [
                (-self._activity[u], u)
                for u in range(1, self.n + 1)
                if self._assign[u] is None
            ]
            heapq.heapify(self._heap)
            return
        heapq.heappush(self._heap, (-act, v))

    def _pick(self) -> int:
        heap, assign = self._heap, self._assign
        while heap:
            _, v = heapq.heappop(heap)
            if assign[v] is None:
                return v
        # Heap exhausted by lazy deletion; rebuild from scratch.
        for v in range(1, self.n + 1):
            if assign[v] is None:
                heapq.heappush(heap, (-self._activity[v], v))
                return v
        return 0

    # -- propagation ---------------------------------------------------
    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1."""
        clauses, watches = self._clauses, self._watches
        trail = self._trail
        value = self._value
        while self._prop_head < len(trail):
            lit = trail[self._prop_head]
            self._prop_head += 1
            neg = -lit
            wl = watches.get(neg)
            if not wl:
                continue
            j = 0
            while j < len(wl):
                ci = wl[j]
                cl = clauses[ci]
                if cl[0] == neg:
                    cl[0], cl[1] = cl[1], cl[0]
                first = cl[0]
                if value(first) is True:
                    j += 1
                    continue
                moved = False
                for k in range(2, len(cl)):
                    if value(cl[k]) is not False:
                        cl[1], cl[k] = cl[k], cl[1]
                        watches.setdefault(cl[1], []).append(ci)
                        wl[j] = wl[-1]
                        wl.pop()
                        moved = True
                        break
                if moved:
                    continue
                if value(first) is False:
                    return ci  # conflict
                self._enqueue(first, ci)
                j += 1
        return -1

    # -- conflict analysis ---------------------------------------------
    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """1-UIP learned clause and its backjump level."""
        learnt: list[int] = [0]  # slot 0: the asserting literal
        seen = self._seen
        to_clear: list[int] = []
        level = len(self._trail_lim)
        counter = 0
        p = 0
        idx = len(self._trail) - 1
        levels, reasons = self._level, self._reason
        while True:
            cl = self._clauses[confl]
            for q in cl:
                if q == p:
                    continue
                v = abs(q)
                if not seen[v] and levels[v] > 0:
                    seen[v] = 1
                    to_clear.append(v)
                    self._bump(v)
                    if levels[v] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[idx])]:
                idx -= 1
            p = self._trail[idx]
            pv = abs(p)
            seen[pv] = 0
            counter -= 1
            idx -= 1
            if counter == 0:
                break
            confl = reasons[pv]
        learnt[0] = -p
        for v in to_clear:
            seen[v] = 0
        if len(learnt) == 1:
            return learnt, 0
        # Second-highest decision level in the clause = backjump target;
        # keep that literal in slot 1 so it is watched.
        max_i = 1
        for i in range(2, len(learnt)):
            if levels[abs(learnt[i])] > levels[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, levels[abs(learnt[1])]

    def _record(self, learnt: list[int]) -> int:
        ci = len(self._clauses)
        self._clauses.append(learnt)
        for lit in learnt[:2]:
            self._watches.setdefault(lit, []).append(ci)
        return ci

    # -- main loop -----------------------------------------------------
    def solve(
        self,
        *,
        assumptions: list[int] | None = None,
        conflict_limit: int | None = None,
    ) -> SatResult:
        """Run CDCL; returns a :class:`SatResult`.

        ``assumptions`` are literals temporarily asserted as the first
        decisions; an UNSAT answer then means "UNSAT under these
        assumptions" (learned clauses remain valid unconditionally).
        ``conflict_limit`` bounds the search: on overrun the result has
        ``sat=False`` **and** ``limit_reached=True`` — callers must
        treat that as *undetermined*, not as a proof of infeasibility.

        With tracing enabled the run is wrapped in a ``sat_solve``
        span tagged with the formula size, counting
        ``solver_clauses`` / ``solver_conflicts`` /
        ``solver_decisions`` / ``solver_restarts``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            result = self._solve_impl(assumptions, conflict_limit)
            get_metrics().histogram(SAT_CONFLICTS).observe(result.conflicts)
            return result
        with tracer.span(
            "sat_solve", vars=self.cnf.n_vars, clauses=len(self.cnf.clauses)
        ) as span:
            result = self._solve_impl(assumptions, conflict_limit)
            span.count(SOLVER_CLAUSES, len(self.cnf.clauses))
            span.count(SOLVER_CONFLICTS, result.conflicts)
            span.count(SOLVER_DECISIONS, result.decisions)
            span.count(SOLVER_RESTARTS, result.restarts)
            span.tag(sat=result.sat, limit_reached=result.limit_reached)
            # Close the conflict curve on the final tally — a run that
            # never restarts still gets a (single-point) series.
            tracer.progress("sat.conflicts", result.conflicts)
            get_metrics().histogram(SAT_CONFLICTS).observe(result.conflicts)
            return result

    def _solve_impl(
        self,
        assumptions: list[int] | None,
        conflict_limit: int | None,
    ) -> SatResult:
        self._cancel_until(0)
        self._sync()
        if self._unsat:
            return SatResult(False)
        # Root-level units (initial + appended since the last call).
        while self._pending_units:
            lit = self._pending_units.pop()
            if not self._enqueue(lit, -1):
                self._unsat = True
                return SatResult(False)
        if self._propagate() != -1:
            self._unsat = True
            return SatResult(False, conflicts=1)

        assume = list(assumptions or [])
        for lit in assume:
            if lit == 0 or abs(lit) > self.n:
                raise ValueError(f"assumption literal {lit} out of range")
        tracer = get_tracer()
        db0 = len(self._clauses)  # learned-clause baseline for telemetry
        conflicts = decisions = restarts = 0
        conflict_budget = _LUBY_UNIT * _luby(0)
        since_restart = 0
        n_assumed = len(assume)

        while True:
            level = len(self._trail_lim)
            if level < n_assumed:
                # Re-assert the next assumption as a decision.
                lit = assume[level]
                val = self._value(lit)
                self._trail_lim.append(len(self._trail))
                if val is False:
                    self._cancel_until(0)
                    return SatResult(
                        False, conflicts=conflicts, decisions=decisions,
                        restarts=restarts,
                    )
                if val is None:
                    self._enqueue(lit, -1)
            else:
                v = self._pick()
                if v == 0:
                    model = {
                        u: bool(self._assign[u]) for u in range(1, self.n + 1)
                    }
                    self._cancel_until(0)
                    return SatResult(
                        True, model, conflicts, decisions, restarts=restarts
                    )
                decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(v if self._phase[v] else -v, -1)

            while True:
                confl = self._propagate()
                if confl == -1:
                    break
                conflicts += 1
                since_restart += 1
                if len(self._trail_lim) <= n_assumed:
                    # Conflict with only assumptions on the trail:
                    # UNSAT under the assumptions (or outright when
                    # there are none).
                    self._cancel_until(0)
                    if n_assumed == 0:
                        self._unsat = True
                    return SatResult(
                        False, conflicts=conflicts, decisions=decisions,
                        restarts=restarts,
                    )
                if conflict_limit is not None and conflicts > conflict_limit:
                    self._cancel_until(0)
                    return SatResult(
                        False, None, conflicts, decisions,
                        limit_reached=True, restarts=restarts,
                    )
                learnt, bt = self._analyze(confl)
                self._var_inc *= self._var_decay
                bt = max(bt, n_assumed)
                self._cancel_until(bt)
                if len(learnt) == 1:
                    # A learned unit is assumption-independent; queue it
                    # so it survives restarts and later solves even when
                    # asserted above level 0 (under assumptions).
                    if bt > 0:
                        self._pending_units.append(learnt[0])
                    self._enqueue(learnt[0], -1)
                else:
                    ci = self._record(learnt)
                    self._enqueue(learnt[0], ci)
            if since_restart >= conflict_budget:
                restarts += 1
                since_restart = 0
                conflict_budget = _LUBY_UNIT * _luby(restarts)
                self._cancel_until(0)
                # Restart boundaries are the natural sampling points
                # for the conflict/learning curves: Luby-spaced, so the
                # series stays sparse even on hard formulas.
                tracer.progress("sat.conflicts", conflicts)
                tracer.progress(
                    "sat.learned_clauses", len(self._clauses) - db0
                )


class DPLLSolver:
    """Chronological DPLL over a :class:`CNF` (the retained reference).

    Two-watched-literal unit propagation and activity-bumped branching,
    no clause learning.  The CDCL engine is checked against this one
    for sat/unsat agreement by the equivalence and fuzz suites.
    """

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self.n = cnf.n_vars

    def solve(self, *, conflict_limit: int | None = None) -> SatResult:
        """Run DPLL; returns a :class:`SatResult` (see :class:`SatSolver`)."""
        tracer = get_tracer()
        if not tracer.enabled:
            result = self._solve_impl(conflict_limit=conflict_limit)
            get_metrics().histogram(SAT_CONFLICTS).observe(result.conflicts)
            return result
        with tracer.span(
            "sat_solve", vars=self.n, clauses=len(self.cnf.clauses)
        ) as span:
            result = self._solve_impl(conflict_limit=conflict_limit)
            span.count(SOLVER_CLAUSES, len(self.cnf.clauses))
            span.count(SOLVER_CONFLICTS, result.conflicts)
            span.count(SOLVER_DECISIONS, result.decisions)
            span.tag(sat=result.sat, limit_reached=result.limit_reached)
            get_metrics().histogram(SAT_CONFLICTS).observe(result.conflicts)
            return result

    def _solve_impl(self, *, conflict_limit: int | None = None) -> SatResult:
        n = self.n
        clauses = [list(c) for c in self.cnf.clauses]
        # assignment[v] in {None, True, False}; trail for backtracking.
        assign: list[bool | None] = [None] * (n + 1)
        trail: list[int] = []  # literals in assignment order
        trail_lim: list[int] = []  # trail length at each decision level
        activity = [0.0] * (n + 1)
        # Explicit propagation state: index of the next trail literal
        # to propagate (everything before it is fully propagated).
        prop_head = 0

        # Two-watched-literal scheme.
        watches: dict[int, list[int]] = {}  # literal -> clause indices
        for ci, cl in enumerate(clauses):
            if len(cl) == 1:
                continue
            for lit in cl[:2]:
                watches.setdefault(lit, []).append(ci)

        def value(lit: int) -> bool | None:
            v = assign[abs(lit)]
            if v is None:
                return None
            return v if lit > 0 else not v

        def enqueue(lit: int) -> bool:
            v = abs(lit)
            val = lit > 0
            if assign[v] is not None:
                return assign[v] == val
            assign[v] = val
            trail.append(lit)
            return True

        conflicts = 0
        decisions = 0

        def propagate() -> bool:
            """Unit propagation from ``prop_head``; False on conflict."""
            nonlocal prop_head
            while prop_head < len(trail):
                lit = trail[prop_head]
                prop_head += 1
                neg = -lit
                wl = watches.get(neg, [])
                j = 0
                while j < len(wl):
                    ci = wl[j]
                    cl = clauses[ci]
                    # Ensure neg is cl[1] (watch the other as cl[0]).
                    if cl[0] == neg:
                        cl[0], cl[1] = cl[1], cl[0]
                    if value(cl[0]) is True:
                        j += 1
                        continue
                    # Find a new literal to watch.
                    moved = False
                    for k in range(2, len(cl)):
                        if value(cl[k]) is not False:
                            cl[1], cl[k] = cl[k], cl[1]
                            watches.setdefault(cl[1], []).append(ci)
                            wl[j] = wl[-1]
                            wl.pop()
                            moved = True
                            break
                    if moved:
                        continue
                    # Clause is unit or conflicting on cl[0].
                    if value(cl[0]) is False:
                        prop_head = len(trail)
                        for l in cl:
                            activity[abs(l)] += 1.0
                        return False
                    enqueue(cl[0])
                    j += 1
            return True

        # Assert unit clauses at level 0.
        for cl in clauses:
            if len(cl) == 1:
                if not enqueue(cl[0]):
                    return SatResult(False, conflicts=0)
        if not propagate():
            return SatResult(False, conflicts=1)

        level = 0
        while True:
            # Pick an unassigned variable with max activity.
            pick = 0
            best = -1.0
            for v in range(1, n + 1):
                if assign[v] is None and activity[v] >= best:
                    best = activity[v]
                    pick = v
            if pick == 0:
                model = {v: bool(assign[v]) for v in range(1, n + 1)}
                return SatResult(True, model, conflicts, decisions)

            decisions += 1
            level += 1
            trail_lim.append(len(trail))
            enqueue(pick)  # try True first

            while not propagate():
                conflicts += 1
                if conflict_limit is not None and conflicts > conflict_limit:
                    return SatResult(
                        False, None, conflicts, decisions, limit_reached=True
                    )
                # Backtrack to the most recent level whose decision
                # literal still has its flip untried.  We encode "flip
                # tried" by the sign of the stored decision literal.
                while True:
                    if level == 0:
                        return SatResult(False, None, conflicts, decisions)
                    # Undo to the start of this level.
                    limit = trail_lim[-1]
                    decision_lit = trail[limit]
                    for l in trail[limit:]:
                        assign[abs(l)] = None
                    del trail[limit:]
                    trail_lim.pop()
                    level -= 1
                    prop_head = len(trail)
                    if decision_lit > 0:
                        # Flip to False at the parent level.
                        level += 1
                        trail_lim.append(len(trail))
                        enqueue(-decision_lit)
                        break
                    # Both polarities failed: keep unwinding.
