"""A DPLL SAT solver with watched literals.

Backs the SAT-based mapper (Table I, "CSP -> SAT", Miyasaka et al.).
Plain iterative DPLL: two-watched-literal unit propagation,
activity-bumped branching (a light VSIDS), and chronological
backtracking.  Small and predictable; the mapping encodings it serves
are a few thousand variables.

Literals are non-zero integers in DIMACS convention: ``+v`` is the
positive literal of variable ``v`` (1-based), ``-v`` its negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.obs.tracer import (
    SOLVER_CLAUSES,
    SOLVER_CONFLICTS,
    SOLVER_DECISIONS,
    get_tracer,
)

__all__ = ["CNF", "SatSolver", "SatResult"]


@dataclass
class SatResult:
    sat: bool
    assignment: dict[int, bool] | None = None  #: var -> value when sat
    conflicts: int = 0
    decisions: int = 0


class CNF:
    """A CNF formula builder with the standard mapping-encoding helpers."""

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self._names: dict[str, int] = {}

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable (returns its 1-based index)."""
        self.n_vars += 1
        if name is not None:
            if name in self._names:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[name] = self.n_vars
        return self.n_vars

    def var(self, name: str) -> int:
        return self._names[name]

    def add(self, *lits: int) -> None:
        """Add one clause (a disjunction of literals)."""
        if not lits:
            raise ValueError("empty clause makes the formula trivially unsat")
        for l in lits:
            if l == 0 or abs(l) > self.n_vars:
                raise ValueError(f"literal {l} out of range")
        self.clauses.append(list(lits))

    def at_most_one(self, lits: list[int]) -> None:
        """Pairwise AMO encoding (fine for the small groups we emit)."""
        for a, b in combinations(lits, 2):
            self.add(-a, -b)

    def exactly_one(self, lits: list[int]) -> None:
        self.add(*lits)
        self.at_most_one(lits)

    def implies(self, a: int, b: int) -> None:
        """a -> b."""
        self.add(-a, b)

    def implies_all(self, a: int, bs: list[int]) -> None:
        for b in bs:
            self.implies(a, b)

    def implies_any(self, a: int, bs: list[int]) -> None:
        """a -> (b1 | b2 | ...)."""
        self.add(-a, *bs)


class SatSolver:
    """Iterative DPLL over a :class:`CNF`."""

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self.n = cnf.n_vars

    def solve(self, *, conflict_limit: int | None = None) -> SatResult:
        """Run DPLL; returns a :class:`SatResult`.

        With tracing enabled the run is wrapped in a ``sat_solve``
        span tagged with the formula size, counting
        ``solver_clauses`` / ``solver_conflicts`` /
        ``solver_decisions``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_impl(conflict_limit=conflict_limit)
        with tracer.span(
            "sat_solve", vars=self.n, clauses=len(self.cnf.clauses)
        ) as span:
            result = self._solve_impl(conflict_limit=conflict_limit)
            span.count(SOLVER_CLAUSES, len(self.cnf.clauses))
            span.count(SOLVER_CONFLICTS, result.conflicts)
            span.count(SOLVER_DECISIONS, result.decisions)
            span.tag(sat=result.sat)
            return result

    def _solve_impl(self, *, conflict_limit: int | None = None) -> SatResult:
        n = self.n
        clauses = [list(c) for c in self.cnf.clauses]
        # assignment[v] in {None, True, False}; trail for backtracking.
        assign: list[bool | None] = [None] * (n + 1)
        level_of: list[int] = [0] * (n + 1)
        trail: list[int] = []  # literals in assignment order
        trail_lim: list[int] = []  # trail length at each decision level
        activity = [0.0] * (n + 1)

        # Two-watched-literal scheme.
        watches: dict[int, list[int]] = {}  # literal -> clause indices
        for ci, cl in enumerate(clauses):
            if len(cl) == 1:
                continue
            for lit in cl[:2]:
                watches.setdefault(lit, []).append(ci)

        def value(lit: int) -> bool | None:
            v = assign[abs(lit)]
            if v is None:
                return None
            return v if lit > 0 else not v

        def enqueue(lit: int, level: int) -> bool:
            v = abs(lit)
            val = lit > 0
            if assign[v] is not None:
                return assign[v] == val
            assign[v] = val
            level_of[v] = level
            trail.append(lit)
            return True

        conflicts = 0
        decisions = 0

        def propagate(level: int) -> bool:
            """Unit propagation; False on conflict."""
            head = 0 if not trail else len(trail) - 1
            # Process newly enqueued literals.
            queue_start = len(trail_lim) and trail_lim[-1] or 0
            i = self._prop_head
            while i < len(trail):
                lit = trail[i]
                i += 1
                neg = -lit
                wl = watches.get(neg, [])
                j = 0
                while j < len(wl):
                    ci = wl[j]
                    cl = clauses[ci]
                    # Ensure neg is cl[1] (watch the other as cl[0]).
                    if cl[0] == neg:
                        cl[0], cl[1] = cl[1], cl[0]
                    if value(cl[0]) is True:
                        j += 1
                        continue
                    # Find a new literal to watch.
                    moved = False
                    for k in range(2, len(cl)):
                        if value(cl[k]) is not False:
                            cl[1], cl[k] = cl[k], cl[1]
                            watches.setdefault(cl[1], []).append(ci)
                            wl[j] = wl[-1]
                            wl.pop()
                            moved = True
                            break
                    if moved:
                        continue
                    # Clause is unit or conflicting on cl[0].
                    if value(cl[0]) is False:
                        self._prop_head = len(trail)
                        for l in cl:
                            activity[abs(l)] += 1.0
                        return False
                    enqueue(cl[0], level)
                    j += 1
            self._prop_head = len(trail)
            return True

        # Assert unit clauses at level 0.
        self._prop_head = 0
        for cl in clauses:
            if len(cl) == 1:
                if not enqueue(cl[0], 0):
                    return SatResult(False, conflicts=0)
        if not propagate(0):
            return SatResult(False, conflicts=1)

        level = 0
        while True:
            # Pick an unassigned variable with max activity.
            pick = 0
            best = -1.0
            for v in range(1, n + 1):
                if assign[v] is None and activity[v] >= best:
                    best = activity[v]
                    pick = v
            if pick == 0:
                model = {v: bool(assign[v]) for v in range(1, n + 1)}
                return SatResult(True, model, conflicts, decisions)

            decisions += 1
            level += 1
            trail_lim.append(len(trail))
            enqueue(pick, level)  # try True first

            while not propagate(level):
                conflicts += 1
                if conflict_limit is not None and conflicts > conflict_limit:
                    return SatResult(False, None, conflicts, decisions)
                # Backtrack to the most recent level whose decision
                # literal still has its flip untried.  We encode "flip
                # tried" by the sign of the stored decision literal.
                while True:
                    if level == 0:
                        return SatResult(False, None, conflicts, decisions)
                    # Undo to the start of this level.
                    limit = trail_lim[-1]
                    decision_lit = trail[limit]
                    for l in trail[limit:]:
                        assign[abs(l)] = None
                    del trail[limit:]
                    trail_lim.pop()
                    level -= 1
                    self._prop_head = len(trail)
                    if decision_lit > 0:
                        # Flip to False at the parent level.
                        level += 1
                        trail_lim.append(len(trail))
                        enqueue(-decision_lit, level)
                        break
                    # Both polarities failed: keep unwinding.
