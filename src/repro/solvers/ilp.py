"""A small integer linear programming solver.

Branch and bound over LP relaxations solved by
:func:`scipy.optimize.linprog` (HiGHS).  Designed for the mapping
formulations in :mod:`repro.mappers` — dense 0/1 models with a few
thousand variables at most — not as a general-purpose MILP engine.

Model form (minimisation)::

    minimise     c @ x
    subject to   A_ub @ x <= b_ub
                 A_eq @ x == b_eq
                 lb <= x <= ub,   x[i] integer for i in integers

Search strategy: best-first on the relaxation bound with most-
fractional branching; an initial depth-first dive finds an incumbent
early so the bound can prune.  Node and time limits make the solver
safe to embed in the II-search loops of the exact mappers.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.obs.tracer import SOLVER_CLAUSES, SOLVER_NODES, get_tracer

__all__ = ["ILP", "ILPResult", "ILPStatus"]

_INT_TOL = 1e-6


class ILPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"   #: best incumbent returned, not proven
    TIME_LIMIT = "time_limit"   #: best incumbent returned, not proven


@dataclass
class ILPResult:
    status: ILPStatus
    x: np.ndarray | None = None
    objective: float | None = None
    nodes: int = 0

    @property
    def ok(self) -> bool:
        """A feasible (possibly unproven-optimal) solution exists."""
        return self.x is not None


class ILP:
    """Incrementally built 0/1 / bounded-integer linear program.

    Example::

        ilp = ILP()
        x = [ilp.add_var(f"x{i}", lb=0, ub=1) for i in range(3)]
        ilp.add_constraint({x[0]: 1, x[1]: 1, x[2]: 1}, "==", 1)
        ilp.set_objective({x[0]: 3.0, x[1]: 1.0, x[2]: 2.0})
        res = ilp.solve()
    """

    def __init__(self, name: str = "ilp") -> None:
        self.name = name
        self._names: list[str] = []
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integer: list[bool] = []
        self._obj: dict[int, float] = {}
        # Constraints as (coeffs dict, sense, rhs).
        self._cons: list[tuple[dict[int, float], str, float]] = []

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str | None = None,
        *,
        lb: float = 0.0,
        ub: float = 1.0,
        integer: bool = True,
    ) -> int:
        """Add a variable; returns its index."""
        idx = len(self._names)
        self._names.append(name or f"v{idx}")
        self._lb.append(lb)
        self._ub.append(ub)
        self._integer.append(integer)
        return idx

    @property
    def n_vars(self) -> int:
        return len(self._names)

    @property
    def n_constraints(self) -> int:
        return len(self._cons)

    def add_constraint(
        self, coeffs: dict[int, float], sense: str, rhs: float
    ) -> None:
        """Add ``sum(coeffs[i] * x[i]) <sense> rhs``; sense in <=, >=, ==."""
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {sense!r}")
        if not coeffs:
            raise ValueError("empty constraint")
        self._cons.append((dict(coeffs), sense, rhs))

    def set_objective(self, coeffs: dict[int, float]) -> None:
        """Minimisation objective (empty = pure feasibility problem)."""
        self._obj = dict(coeffs)

    # ------------------------------------------------------------------
    def _matrices(self):
        n = self.n_vars
        c = np.zeros(n)
        for i, v in self._obj.items():
            c[i] = v
        rows_ub, rhs_ub, rows_eq, rhs_eq = [], [], [], []
        for coeffs, sense, rhs in self._cons:
            row = np.zeros(n)
            for i, v in coeffs.items():
                row[i] = v
            if sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif sense == ">=":
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)
        A_ub = np.array(rows_ub) if rows_ub else None
        b_ub = np.array(rhs_ub) if rhs_ub else None
        A_eq = np.array(rows_eq) if rows_eq else None
        b_eq = np.array(rhs_eq) if rhs_eq else None
        return c, A_ub, b_ub, A_eq, b_eq

    def solve(
        self,
        *,
        node_limit: int = 200_000,
        time_limit: float | None = None,
        warm_start: dict[int, float] | None = None,
    ) -> ILPResult:
        """Run branch and bound; returns an :class:`ILPResult`.

        ``warm_start`` maps variable indices to candidate values (a
        MIP start, e.g. the previous II's solution re-expressed in
        this model's variables).  If the completed vector is feasible
        it becomes the incumbent before the search starts, so the
        bound prunes from node one; an infeasible start is ignored.

        With tracing enabled the run is wrapped in an ``ilp_solve``
        span tagged with the model size, counting ``solver_clauses``
        (constraint rows) and ``solver_nodes`` (B&B nodes).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_impl(
                node_limit=node_limit,
                time_limit=time_limit,
                warm_start=warm_start,
            )
        with tracer.span(
            "ilp_solve",
            model=self.name,
            vars=self.n_vars,
            constraints=self.n_constraints,
        ) as span:
            result = self._solve_impl(
                node_limit=node_limit,
                time_limit=time_limit,
                warm_start=warm_start,
            )
            span.count(SOLVER_CLAUSES, self.n_constraints)
            span.count(SOLVER_NODES, result.nodes)
            span.tag(status=result.status.value)
            return result

    def _warm_incumbent(
        self, warm_start: dict[int, float], c: np.ndarray
    ) -> tuple[np.ndarray, float] | None:
        """The warm start as a feasible incumbent, or None."""
        x = np.array(self._lb, dtype=float)
        for i, v in warm_start.items():
            x[i] = v
        if np.any(x < np.array(self._lb) - _INT_TOL) or np.any(
            x > np.array(self._ub) + _INT_TOL
        ):
            return None
        int_mask = np.array(self._integer, dtype=bool)
        if np.any(np.abs(x - np.round(x))[int_mask] > _INT_TOL):
            return None
        x = np.where(int_mask, np.round(x), x)
        for coeffs, sense, rhs in self._cons:
            lhs = sum(v * x[i] for i, v in coeffs.items())
            if sense == "<=" and lhs > rhs + _INT_TOL:
                return None
            if sense == ">=" and lhs < rhs - _INT_TOL:
                return None
            if sense == "==" and abs(lhs - rhs) > _INT_TOL:
                return None
        return x, float(c @ x)

    def _solve_impl(
        self,
        *,
        node_limit: int,
        time_limit: float | None,
        warm_start: dict[int, float] | None = None,
    ) -> ILPResult:
        c, A_ub, b_ub, A_eq, b_eq = self._matrices()
        lb = np.array(self._lb, dtype=float)
        ub = np.array(self._ub, dtype=float)
        int_mask = np.array(self._integer, dtype=bool)
        t0 = time.perf_counter()

        def relax(lo: np.ndarray, hi: np.ndarray):
            res = linprog(
                c,
                A_ub=A_ub,
                b_ub=b_ub,
                A_eq=A_eq,
                b_eq=b_eq,
                bounds=np.column_stack([lo, hi]),
                method="highs",
            )
            return res

        root = relax(lb, ub)
        if root.status == 2:  # infeasible
            return ILPResult(ILPStatus.INFEASIBLE, nodes=1)
        if root.status == 3:  # unbounded
            return ILPResult(ILPStatus.UNBOUNDED, nodes=1)

        best_x: np.ndarray | None = None
        best_obj = np.inf
        if warm_start is not None:
            incumbent = self._warm_incumbent(warm_start, c)
            if incumbent is not None:
                best_x, best_obj = incumbent
        nodes = 0
        # Heap entries: (bound, tiebreak, lo, hi, x_relax)
        counter = 0
        heap: list = [(root.fun, counter, lb, ub, root.x)]

        def fractional_var(x: np.ndarray) -> int | None:
            frac = np.abs(x - np.round(x))
            frac[~int_mask] = 0.0
            j = int(np.argmax(frac))
            return j if frac[j] > _INT_TOL else None

        while heap:
            nodes += 1
            if nodes > node_limit:
                return ILPResult(
                    ILPStatus.NODE_LIMIT, best_x, _obj_or_none(best_obj),
                    nodes,
                )
            if time_limit is not None and time.perf_counter() - t0 > time_limit:
                return ILPResult(
                    ILPStatus.TIME_LIMIT, best_x, _obj_or_none(best_obj),
                    nodes,
                )
            bound, _, lo, hi, x = heapq.heappop(heap)
            if bound >= best_obj - 1e-9:
                continue  # pruned
            j = fractional_var(x)
            if j is None:
                # Integral solution.
                xi = np.where(int_mask, np.round(x), x)
                obj = float(c @ xi)
                if obj < best_obj - 1e-9:
                    best_obj = obj
                    best_x = xi
                continue
            # Branch on floor/ceil of x[j].
            for lo2, hi2 in _branches(lo, hi, j, x[j]):
                res = relax(lo2, hi2)
                if res.status == 0 and res.fun < best_obj - 1e-9:
                    counter += 1
                    heapq.heappush(
                        heap, (res.fun, counter, lo2, hi2, res.x)
                    )

        if best_x is None:
            return ILPResult(ILPStatus.INFEASIBLE, nodes=nodes)
        return ILPResult(ILPStatus.OPTIMAL, best_x, best_obj, nodes)

    # ------------------------------------------------------------------
    def value(self, result: ILPResult, idx: int) -> float:
        """Variable value in a result (0.0 if result has no solution)."""
        if result.x is None:
            return 0.0
        return float(result.x[idx])

    def __repr__(self) -> str:
        return (
            f"ILP({self.name!r}, vars={self.n_vars},"
            f" cons={self.n_constraints})"
        )


def _branches(lo, hi, j, xj):
    """Floor and ceil child bounds for branching variable ``j``."""
    import math

    lo_a, hi_a = lo.copy(), hi.copy()
    hi_a[j] = math.floor(xj)
    lo_b, hi_b = lo.copy(), hi.copy()
    lo_b[j] = math.ceil(xj)
    out = []
    if lo_a[j] <= hi_a[j]:
        out.append((lo_a, hi_a))
    if lo_b[j] <= hi_b[j]:
        out.append((lo_b, hi_b))
    return out


def _obj_or_none(obj: float):
    return None if obj == np.inf else obj
