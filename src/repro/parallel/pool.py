"""The persistent, pre-warmed worker pool behind ``pmap``/``race``.

Forking a fresh ``ProcessPoolExecutor`` per call made ``jobs=2``
*slower* than serial on short mapping sweeps: every call paid pool
spin-up plus each worker's lazy mapper/solver imports (the registry
pulls in every mapper module and the scipy-backed ILP backend on first
``create()``).  This module keeps one pool alive for the whole
process instead:

* **Pre-warmed workers** — the parent imports the heavy modules once
  (:func:`prewarm`) *before* forking, so workers inherit a hot
  ``sys.modules`` and the shared read-only arch/kernel tables as
  copy-on-write fork-time snapshots; a worker's own pre-import pass is
  then a no-op.
* **Module-level lifecycle** — :func:`get_pool` creates or grows the
  singleton, :func:`warm_pool` additionally round-trips a no-op task
  through every worker (benchmarks call it so timing starts warm),
  :func:`pool_scope` pins a pool for a region, :func:`shutdown` tears
  it down (also registered with :mod:`atexit`).  The pool survives
  across ``run_matrix``/``explore``/portfolio calls in one process.
* **Chunked dispatch with backpressure** — the parent feeds each
  worker over its own pipe, at most :data:`INFLIGHT_PER_WORKER` tasks
  in flight per worker (one running, one prefetched), pulling the next
  task from the submission-ordered queue as results drain.  Results
  are reassembled in submission order regardless of completion order.
* **Per-batch ambient context** — workers fork once, but metrics
  registries and cache scopes come and go in the parent; each batch
  header ships the current state (metrics on/off, cache tier spec) so
  a worker forked before a ``metrics_scope`` still ships deltas and a
  worker forked before a ``cache_scope`` still shares the disk tier.
* **Crash detection + respawn** — a worker that dies mid-task fails
  that task with :class:`WorkerCrash` (its queued-but-unstarted tasks
  are re-dispatched), is replaced, and the batch continues; a worker
  whose *running* task exceeds ``timeout + BACKSTOP_SLACK`` (stuck
  outside the interpreter, where SIGALRM cannot unwind it) is killed
  the same way with a hard
  :class:`~repro.parallel.tasks.TaskTimeout`.  The backstop clock
  starts when a task reaches the head of its worker's queue, never
  while it is merely prefetched — queue wait behind a slow
  predecessor does not count against the budget.  The pool itself is
  never poisoned.
* **In-batch dedup** — when the caller supplies content-addressed
  ``keys``, identical in-flight tasks collapse onto one execution and
  the duplicates receive deep copies of the primary's result (marked
  ``deduped``, no metrics — they did no work).
* **Prompt loser cancellation** — ``race()`` batches stop the moment
  the submission-order winner is decided: pending tasks are dropped
  and workers still running losers are killed and respawned, instead
  of draining to completion on teardown.
"""

from __future__ import annotations

import atexit
import copy
import logging
import os
import time
from collections import deque
from contextlib import contextmanager
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import (
    POOL_DEDUP_TOTAL,
    POOL_RESPAWNS_TOTAL,
    get_metrics,
)
from repro.parallel.tasks import (
    BACKSTOP_SLACK,
    PMapResult,
    TaskTimeout,
    disarm_alarm,
    mark_worker,
    run_task,
)

__all__ = [
    "INFLIGHT_PER_WORKER",
    "WorkerCrash",
    "WorkerPool",
    "get_pool",
    "pool_scope",
    "prewarm",
    "shutdown",
    "warm_pool",
]

_log = logging.getLogger("repro.parallel.pool")

#: Maximum tasks queued on one worker's pipe at a time — the
#: backpressure window.  One running plus one prefetched keeps a fast
#: worker from idling while the parent distributes, without letting a
#: slow worker hoard the queue.
INFLIGHT_PER_WORKER = 2

#: Parent poll tick (seconds) while waiting on worker pipes: bounds
#: the latency of deadline and liveness checks without busy-waiting.
POLL_TICK = 0.05

#: Grace period (seconds) for a worker to exit on the shutdown
#: sentinel before it is terminated.
JOIN_TIMEOUT = 2.0


class WorkerCrash(Exception):
    """A pool worker died mid-task (segfault, ``os._exit``, oom-kill);
    the task's outcome is unknown.  Harnesses treat it like any other
    non-timeout task error: ``run_matrix`` re-raises it."""


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def prewarm() -> None:
    """Import the heavy modules once per process.

    ``repro.mappers`` registers every mapper and drags in the
    scipy-backed solver stack — over half a second cold, and exactly
    the cost that made fork-per-call pools lose to serial.  The parent
    runs this before the first fork so workers inherit the hot module
    table; the workers run it again defensively (a no-op after
    inheritance).
    """
    import repro.ir.kernels  # noqa: F401  (kernel library)
    import repro.mappers  # noqa: F401  (registry + scipy-backed solvers)


def _install_cache(spec: tuple | None) -> None:
    """Apply a batch header's cache spec in a worker.

    The worker's fork-time cache snapshot is stale the moment the
    parent enters or leaves a ``cache_scope``, so each batch installs
    fresh state: None forces caching off, ``("mem", None)`` a private
    memory tier, ``("disk", dir)`` a memory tier over the disk
    directory the parent (and every sibling worker) shares.
    """
    from repro.cache import MappingCache, set_cache

    if spec is None:
        set_cache(None)
    else:
        _kind, directory = spec
        set_cache(MappingCache(directory))


def _worker_main(conn) -> None:
    """A pool worker's life: pre-import, then loop batch/task messages.

    Message protocol (parent -> worker):
      ``None``                                    — exit
      ``("batch", fn, shared, use_shared,
         metrics_on, cache_spec)``                — start a batch
      ``("task", task_id, index, item, timeout)`` — run one task

    The wall-clock budget rides on each *task* message (not the batch
    header), so one batch can mix per-task deadlines — the serve
    daemon's per-request budgets.

    Worker -> parent: ``(task_id, PMapResult)`` per task.  Any leaked
    SIGALRM is disarmed before *and* after each task, so a timer armed
    for task k can never fire mid-task k+1 of the same long-lived
    worker.
    """
    mark_worker()
    # The fork snapshot may carry the parent's pool handle and ambient
    # tracer/metrics/cache objects from pool-creation time; ambient
    # context arrives per batch instead, so drop the stale state.
    global _POOL
    _POOL = None
    from repro.cache import set_cache
    from repro.obs.metrics import set_metrics
    from repro.obs.tracer import set_tracer

    set_tracer(None)
    set_metrics(None)
    set_cache(None)
    prewarm()

    fn: Callable[..., Any] | None = None
    shared: Any = None
    use_shared = False
    metrics_on = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        except Exception as ex:
            # Undecodable message (e.g. fn defined in a __main__ that
            # this worker's fork snapshot predates).  recv consumed the
            # whole message, so the stream is clean — report, then exit
            # rather than risk running later tasks against stale batch
            # state; the parent respawns and re-queues.
            try:
                conn.send(("decode_error", repr(ex)))
            except Exception:
                pass
            break
        if msg is None:
            break
        if msg[0] == "batch":
            _, fn, shared, use_shared, metrics_on, spec = msg
            _install_cache(spec)
            continue
        _, task_id, index, item, timeout = msg
        disarm_alarm()
        args = (shared, item) if use_shared else (item,)
        res = run_task(
            fn, args, index, timeout, collect_metrics=metrics_on
        )
        disarm_alarm()
        try:
            conn.send((task_id, res))
        except (BrokenPipeError, OSError):
            break  # parent is gone
        except Exception as ex:  # unpicklable value/error: degrade
            conn.send(
                (
                    task_id,
                    PMapResult(
                        index=index,
                        ok=res.ok,
                        value=None,
                        error=RuntimeError(
                            f"unpicklable task result: {ex!r}"
                        ),
                        timed_out=res.timed_out,
                        elapsed=res.elapsed,
                        metrics=res.metrics,
                    ),
                )
            )
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
class _Worker:
    __slots__ = ("proc", "conn", "tasks", "announced")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        #: task_id -> (item index, hard deadline, task budget);
        #: insertion order is dispatch order, which the worker also
        #: completes in.  The deadline stays ``None`` while the task is
        #: merely prefetched behind a predecessor — it is stamped only
        #: when the task becomes the worker's head-of-line (i.e.
        #: starts running), so queue wait never counts against the
        #: backstop budget.  The budget is the task's own wall-clock
        #: limit (batches may mix per-task budgets).
        self.tasks: dict[int, tuple[int, float | None, float | None]] = {}
        self.announced = False


class WorkerPool:
    """A set of long-lived forked workers plus the dispatch loop.

    Use the module-level :func:`get_pool`/:func:`pool_scope` rather
    than instantiating directly — the whole point is that one pool
    outlives many ``pmap``/``race`` calls.
    """

    def __init__(self, jobs: int) -> None:
        self._ctx = get_context("fork")
        self._workers: list[_Worker] = []
        self._seq = 0
        self.batches = 0
        self.tasks_run = 0
        #: workers replaced after a crash or hard timeout
        self.respawns = 0
        #: workers replaced to cancel race() losers promptly
        self.cancels = 0
        #: duplicate tasks collapsed onto an in-batch primary
        self.dedup_hits = 0
        self.ensure(jobs)

    # -- lifecycle -----------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    def pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers]

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name="repro-pool-worker",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def ensure(self, jobs: int) -> None:
        """Grow to at least ``jobs`` workers (the pool never shrinks)
        and replace any worker that died while idle."""
        for i, w in enumerate(self._workers):
            if not w.proc.is_alive():
                self._discard(w)
                self._workers[i] = self._spawn()
                self.respawns += 1
        while len(self._workers) < jobs:
            self._workers.append(self._spawn())

    def _discard(self, w: _Worker) -> None:
        try:
            w.conn.close()
        except OSError:
            pass
        if w.proc.is_alive():
            w.proc.terminate()
        w.proc.join(timeout=JOIN_TIMEOUT)
        if w.proc.is_alive():
            w.proc.kill()
            w.proc.join(timeout=JOIN_TIMEOUT)

    def _replace(self, w: _Worker, active: list[_Worker]) -> _Worker:
        """Swap a dead/condemned worker for a fresh one, in place."""
        fresh = self._spawn()
        self._workers[self._workers.index(w)] = fresh
        for k, cur in enumerate(active):
            if cur is w:
                active[k] = fresh
        self._discard(w)
        return fresh

    def close(self, grace: float | None = None) -> None:
        """Shut the workers down with a *bounded* total wait.

        Escalation ladder, each phase sharing one ``grace``-second
        deadline across every worker (default :data:`JOIN_TIMEOUT`):

        1. sentinel — a healthy worker reads ``None`` and exits;
        2. SIGTERM — catches workers idle-wedged outside the recv loop;
        3. SIGKILL — unconditional, for workers wedged mid-task with
           SIGTERM masked or ignored (a hung C extension, a runaway
           thread holding the process open).

        The old implementation waited ``JOIN_TIMEOUT`` per worker *per
        phase* sequentially, so one wedged worker stalled an atexit
        shutdown for many seconds per pool member; the ladder bounds
        the whole teardown at ~3 grace periods regardless of pool
        size, and never leaves a live worker behind.
        """
        grace = JOIN_TIMEOUT if grace is None else grace
        workers, self._workers = self._workers, []
        for w in workers:
            if w.proc.is_alive():
                try:
                    w.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass

        def _join_all(targets: list[_Worker]) -> list[_Worker]:
            deadline = time.monotonic() + grace
            for w in targets:
                w.proc.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            return [w for w in targets if w.proc.is_alive()]

        alive = _join_all([w for w in workers if w.proc.is_alive()])
        for w in alive:
            w.proc.terminate()
        alive = _join_all(alive)
        for w in alive:
            _log.warning(
                "pool: SIGKILL to wedged worker pid %s at shutdown",
                w.proc.pid,
            )
            w.proc.kill()
        _join_all(alive)
        for w in workers:
            try:
                w.conn.close()
            except OSError:
                pass

    # -- dispatch ------------------------------------------------------
    def run_batch(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        jobs: int,
        timeout: float | None = None,
        timeouts: Sequence[float | None] | None = None,
        shared: Any = None,
        keys: Sequence[Any] | None = None,
        accept: Callable[[PMapResult], bool] | None = None,
        on_result: Callable[[int, PMapResult], None] | None = None,
    ) -> list[PMapResult | None]:
        """Run one batch over the pool; see ``pmap``/``race`` for the
        caller-facing contracts.

        ``keys`` enables in-batch dedup: items with an equal, non-None
        key collapse onto the first occurrence.  ``accept`` switches
        race semantics on: the lowest-index accepted result wins, and
        everything past it is cancelled (``None`` in the output).
        The two are mutually exclusive.

        ``timeouts`` gives every item its own wall-clock budget
        (overriding the batch-wide ``timeout``); ``on_result`` is
        invoked as ``on_result(index, result)`` the moment each item
        settles — including deduped copies, which settle with their
        primary — so a caller can stream results out with no batch
        barrier.  The callback runs on the dispatching thread; keep it
        cheap and never let it raise (exceptions are logged and
        swallowed).
        """
        if accept is not None and keys is not None:
            raise ValueError("keys= dedup is not supported under race()")
        if accept is not None and on_result is not None:
            raise ValueError(
                "on_result= streaming is not supported under race()"
            )
        items = list(items)
        n = len(items)
        if timeouts is not None:
            timeouts = list(timeouts)
            if len(timeouts) != n:
                raise ValueError(
                    "timeouts must align one-to-one with items"
                )
        self.batches += 1

        def budget_of(i: int) -> float | None:
            return timeouts[i] if timeouts is not None else timeout

        # Dedup plan: the indices that actually run, and who copies whom.
        dup_of: dict[int, int] = {}
        order: list[int] = []
        if keys is not None:
            first: dict[Any, int] = {}
            for i in range(n):
                k = keys[i]
                if k is not None and k in first:
                    dup_of[i] = first[k]
                else:
                    if k is not None:
                        first[k] = i
                    order.append(i)
        else:
            order = list(range(n))

        # Grow only to what this batch can use — never fork workers
        # that len(order) tasks could not occupy (the pool does not
        # shrink, so overshoot would idle forever).
        self.ensure(max(1, min(jobs, len(order))))
        results: list[PMapResult | None] = [None] * n
        workers = self._workers[: max(1, min(jobs, len(order)))]
        for w in self._workers:
            w.tasks.clear()
            w.announced = False
        header = (
            "batch",
            fn,
            shared,
            shared is not None,
            get_metrics().enabled,
            _cache_spec(),
        )
        pending: deque[int] = deque(order)
        needed = len(order)
        done = 0
        winner: int | None = None

        # Reverse dedup map: primary index -> its duplicate indices,
        # so duplicates can settle (and stream) with their primary.
        dups_of: dict[int, list[int]] = {}
        for i, p in dup_of.items():
            dups_of.setdefault(p, []).append(i)

        def emit(i: int, res: PMapResult) -> None:
            if on_result is None:
                return
            try:
                on_result(i, res)
            except Exception:
                _log.exception("pool: on_result callback failed")

        def fill_dups(p: int) -> None:
            """Copy a settled primary's result onto its duplicates: a
            deep copy, so the caller can mutate results independently;
            no metrics (the duplicate did no work)."""
            src = results[p]
            if src is None:
                return
            for i in dups_of.get(p, ()):
                if results[i] is not None:
                    continue
                try:
                    value = copy.deepcopy(src.value)
                except Exception:
                    value = src.value
                results[i] = PMapResult(
                    index=i,
                    ok=src.ok,
                    value=value,
                    error=src.error,
                    timed_out=src.timed_out,
                    elapsed=0.0,
                    deduped=True,
                )
                self.dedup_hits += 1
                get_metrics().counter(POOL_DEDUP_TOTAL).inc()
                emit(i, results[i])

        def finish(i: int, res: PMapResult) -> None:
            """Record a real (non-duplicate) task's final result, then
            stream it and its duplicates out."""
            nonlocal done
            if results[i] is not None:
                return
            results[i] = res
            done += 1
            emit(i, res)
            fill_dups(i)

        def arm_head(w: _Worker) -> None:
            """Stamp the hard deadline on the worker's head-of-line
            task if it is still unarmed.

            Deadlines start when a task *starts running* (becomes the
            earliest in flight), not when it is queued: a task
            prefetched behind a slow predecessor must get its full
            ``timeout + BACKSTOP_SLACK`` budget of its own, or long
            tasks would spuriously hard-fail under ``jobs >= 2`` while
            succeeding under ``jobs=1``."""
            if not w.tasks:
                return
            head = next(iter(w.tasks))
            i, dl, budget = w.tasks[head]
            if dl is None and budget is not None:
                w.tasks[head] = (
                    i, time.monotonic() + budget + BACKSTOP_SLACK, budget
                )

        def head_overdue(w: _Worker, now: float) -> float | None:
            """If the worker's earliest in-flight task is past its hard
            deadline, return that task's budget (for the diagnostic);
            ``None`` otherwise.  Later entries are unarmed by
            construction."""
            if not w.tasks:
                return None
            _i, dl, budget = next(iter(w.tasks.values()))
            if dl is not None and now > dl:
                return budget if budget is not None else 0.0
            return None

        def settle(w: _Worker, task_id: int, res: PMapResult) -> None:
            entry = w.tasks.pop(task_id, None)
            if entry is None:
                return  # already accounted for (killed worker)
            arm_head(w)  # the next queued task is now running
            i = entry[0]
            if results[i] is None:
                self.tasks_run += 1
                finish(i, res)

        def decode_crash(detail: Any) -> WorkerCrash:
            return WorkerCrash(
                f"worker could not decode a task ({detail}); is"
                " fn a module-level (importable) function?"
            )

        def drain(w: _Worker) -> WorkerCrash | None:
            """Collect results the worker sent before dying/judgement.

            Returns the decode-error diagnostic if the worker queued
            its ``("decode_error", ...)`` sentinel, so the subsequent
            EOF is not misreported as a generic crash."""
            derr: WorkerCrash | None = None
            try:
                while w.conn.poll(0):
                    task_id, res = w.conn.recv()
                    if task_id == "decode_error":
                        derr = decode_crash(res)
                        continue
                    settle(w, task_id, res)
            except (EOFError, OSError):
                pass
            return derr

        def fail_worker(
            w: _Worker,
            error: BaseException | None,
            timed_out: bool = False,
        ) -> None:
            """A worker died or was condemned: salvage what it sent,
            fail its earliest in-flight task (the one it was running —
            dispatch order is completion order), re-queue the rest, and
            respawn."""
            derr = drain(w)
            if error is None:
                error = derr
            remaining = sorted(w.tasks.items())
            w.tasks.clear()
            if remaining:
                _tid, (i, _dl, _b) = remaining[0]
                err = error if error is not None else WorkerCrash(
                    f"pool worker died running task {i}"
                )
                finish(i, PMapResult(
                    index=i, ok=False, error=err, timed_out=timed_out
                ))
                for _tid, (j, _dl, _b) in reversed(remaining[1:]):
                    pending.appendleft(j)
            self.respawns += 1
            get_metrics().counter(POOL_RESPAWNS_TOTAL).inc()
            _log.warning(
                "pool: respawned a worker (%s)",
                error if error is not None else "crashed",
            )
            self._replace(w, workers)

        def dispatch() -> None:
            while pending:
                candidates = [
                    w for w in workers
                    if len(w.tasks) < INFLIGHT_PER_WORKER
                ]
                if not candidates:
                    return
                w = min(candidates, key=lambda c: len(c.tasks))
                i = pending.popleft()
                try:
                    if not w.announced:
                        w.conn.send(header)
                        w.announced = True
                    w.conn.send(
                        ("task", self._seq, i, items[i], budget_of(i))
                    )
                except (BrokenPipeError, OSError):
                    pending.appendleft(i)
                    fail_worker(w, None)
                    continue
                except Exception as ex:
                    # Unpicklable fn/shared/item: fail the task the
                    # way a fork-per-call pool would, keep the worker.
                    finish(i, PMapResult(index=i, ok=False, error=ex))
                    continue
                # Queued unarmed; arm_head stamps the deadline once the
                # task is actually running (immediately, if the worker
                # was idle).
                w.tasks[self._seq] = (i, None, budget_of(i))
                self._seq += 1
                arm_head(w)

        while True:
            if done >= needed and not pending:
                break
            dispatch()
            conns = {w.conn: w for w in workers if w.tasks}
            if not conns:
                if pending:
                    continue  # fresh workers exist; dispatch again
                break
            for conn in _conn_wait(list(conns), timeout=POLL_TICK):
                w = conns[conn]
                try:
                    task_id, res = conn.recv()
                except (EOFError, OSError):
                    fail_worker(w, None)
                    continue
                if task_id == "decode_error":
                    # The worker could not unpickle a message (typically
                    # an fn defined in __main__ after the fork) and is
                    # exiting; fail its current task with the real cause.
                    fail_worker(w, decode_crash(res))
                    continue
                settle(w, task_id, res)
            # Hard-timeout backstop: a worker whose *running* task is
            # past its deadline is wedged beyond the in-process alarm,
            # stuck outside the interpreter; kill just that worker,
            # not the pool.  Only the head-of-line task is armed, so
            # prefetched tasks cannot trip the backstop from queue
            # wait.
            now = time.monotonic()
            for w in list(workers):
                if head_overdue(w, now) is None:
                    continue
                derr = drain(w)  # the task may have finished this tick
                if derr is not None:
                    fail_worker(w, derr)
                    continue
                budget = head_overdue(w, now)
                if budget is not None:
                    fail_worker(
                        w,
                        TaskTimeout(
                            "hard timeout: worker unresponsive after"
                            f" {budget + BACKSTOP_SLACK:g}s"
                        ),
                        timed_out=True,
                    )
            if accept is not None and winner is None:
                for i in range(n):
                    r = results[i]
                    if r is None:
                        break  # an earlier entrant is still running
                    if accept(r):
                        winner = i
                        break
                if winner is not None:
                    # Prompt loser cancellation: drop the queue, kill
                    # workers still running losers, respawn them.
                    pending.clear()
                    for w in list(workers):
                        if w.tasks:
                            w.tasks.clear()
                            self.cancels += 1
                            self._replace(w, workers)
                    break

        # race contract: entries past the winner stay None, even those
        # that happened to finish before the decision.
        if winner is not None:
            for j in range(winner + 1, n):
                results[j] = None

        # Belt-and-braces: duplicates normally settle with their
        # primary inside ``finish``; sweep any stragglers (fill_dups
        # skips already-settled entries, so nothing double-counts).
        for p in dups_of:
            fill_dups(p)
        return results


def _cache_spec() -> tuple | None:
    """The active cache's tier spec, for a batch header.

    Workers rebuild an equivalent cache per batch: counters start at
    zero (their deltas merge back through the harnesses), the memory
    tier is private, and the disk tier — the only shared state — is
    named by path.
    """
    from repro.cache import get_cache

    active = get_cache()
    if active is None:
        return None
    disk = active.store.disk
    if disk is not None:
        return ("disk", str(disk.root))
    return ("mem", None)


# ---------------------------------------------------------------------------
# Module-level lifecycle
# ---------------------------------------------------------------------------
_POOL: WorkerPool | None = None
_PREWARMED = False


def _prewarm_parent() -> None:
    global _PREWARMED
    if not _PREWARMED:
        prewarm()
        _PREWARMED = True


def get_pool(jobs: int) -> WorkerPool:
    """The process-wide pool, created or grown to ``jobs`` workers.

    The parent pre-imports the heavy modules before the first fork, so
    every worker starts from a warm snapshot.
    """
    global _POOL
    _prewarm_parent()
    if _POOL is None:
        _POOL = WorkerPool(jobs)
    else:
        _POOL.ensure(jobs)
    return _POOL


def warm_pool(jobs: int) -> WorkerPool:
    """Create/grow the pool and round-trip a no-op through every
    worker, so subsequent batches pay no spin-up — benchmarks call
    this before timing."""
    pool = get_pool(jobs)
    pool.run_batch(_ping, list(range(pool.size)), jobs=pool.size)
    return pool


def _ping(_: int) -> int:
    return os.getpid()


def shutdown(grace: float | None = None) -> None:
    """Tear down the process-wide pool (idempotent; also at exit).

    ``grace`` bounds each rung of the close escalation ladder
    (sentinel -> SIGTERM -> SIGKILL); a wedged worker cannot hang the
    interpreter for more than ~3x that.  A second call — e.g. atexit
    after an explicit ``serve`` teardown — is a no-op."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.close(grace)


atexit.register(shutdown)


@contextmanager
def pool_scope(jobs: int | None = None) -> Iterator[WorkerPool]:
    """Pin a pool for a region.

    Tears the pool down on exit only if this scope created it — a
    nested scope, or a scope entered after :func:`warm_pool`, leaves
    the outer pool running.
    """
    n = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    created = _POOL is None
    pool = get_pool(n)
    try:
        yield pool
    finally:
        if created:
            shutdown()
