"""Task primitives shared by the serial path and the pool workers.

Everything here runs identically in-process and inside a persistent
worker: the :class:`PMapResult` envelope, the SIGALRM-based
:func:`time_limit`, and :func:`run_task`, which executes one task
under its budget and (in a worker) collects the task's metrics
snapshot so the parent can fold ``jobs=N`` totals to exactly the
``jobs=1`` numbers.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry, get_metrics, metrics_scope

__all__ = [
    "BACKSTOP_SLACK",
    "PMapResult",
    "TaskTimeout",
    "disarm_alarm",
    "in_worker",
    "mark_worker",
    "run_task",
    "time_limit",
]

#: Parent-side backstop slack (seconds) beyond the in-worker alarm —
#: only reached when a worker hangs outside the interpreter, where
#: SIGALRM cannot unwind it.
BACKSTOP_SLACK = 10.0

_IN_WORKER = False


class TaskTimeout(BaseException):
    """A task exceeded its wall-clock budget.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so an
    ``except Exception`` on the interrupted path — a logging handler's
    emit guard, an import hook, a library's defensive catch — cannot
    swallow the one-shot alarm and let the task run on unbounded.
    Catch it by name.
    """


def in_worker() -> bool:
    """True inside a :func:`repro.parallel.pmap` worker process."""
    return _IN_WORKER


def mark_worker() -> None:
    """Flag this process as a pool worker.

    Parallel entry points check :func:`in_worker` and degrade to their
    serial paths, so a ``portfolio`` mapper inside a parallel
    ``run_matrix`` sweep never forks a nested pool.
    """
    global _IN_WORKER
    _IN_WORKER = True


def disarm_alarm() -> None:
    """Clear any leaked SIGALRM before the next task of a reused worker.

    :func:`time_limit` unwinds its own timer, but a *task* that armed
    SIGALRM itself and failed to clean up would deliver the stale alarm
    mid-next-task.  The handler is parked on ``SIG_IGN`` first — not
    ``SIG_DFL``, whose disposition for SIGALRM kills the process — so
    even a signal already queued for delivery is discarded, then the
    timer is cancelled.
    """
    if threading.current_thread() is not threading.main_thread():
        return
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    signal.setitimer(signal.ITIMER_REAL, 0.0)


@contextmanager
def time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`TaskTimeout` in the block after ``seconds``.

    SIGALRM-based, so it interrupts pure-Python compute loops (the
    usual way a mapper hangs).  A no-op when ``seconds`` is None/0 or
    when not on the main thread (signals cannot be delivered there);
    pool workers run tasks on their main thread, so the limit is
    always live in parallel sweeps.  Do not nest: the inner limit
    replaces the outer timer.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _alarm(signum, frame):
        raise TaskTimeout(f"timeout after {seconds:g}s")

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


# ---------------------------------------------------------------------------
@dataclass
class PMapResult:
    """Outcome of one :func:`repro.parallel.pmap` task, in submission order.

    ``ok`` tasks carry their return value; failed ones carry the
    raised exception (``timed_out`` distinguishes budget overruns from
    genuine errors, so harnesses can turn the former into failure rows
    and re-raise the latter like their serial paths would).
    ``metrics`` is the worker's metrics-snapshot delta for this task
    (None when no registry was active or the task ran in-process);
    the parent folds it into its own registry.  ``deduped`` marks a
    result copied from an identical in-flight task in the same batch
    rather than computed — such a result did no work and therefore
    ships no metrics.
    """

    index: int
    ok: bool
    value: Any = None
    error: BaseException | None = None
    timed_out: bool = False
    elapsed: float = 0.0
    metrics: dict | None = None
    deduped: bool = False


def run_task(
    fn: Callable[..., Any],
    args: tuple,
    index: int,
    timeout: float | None,
    *,
    collect_metrics: bool = False,
) -> PMapResult:
    """Execute one task under its time budget.

    With ``collect_metrics`` (the persistent-pool workers, when the
    parent had a registry active at batch start) the task runs under a
    fresh registry whose snapshot *is* the task's delta — shipped on
    success and failure alike, since partial work counts.  In-process
    runs ship nothing: their metrics already landed in the live
    registry.
    """
    if not collect_metrics:
        return _execute(fn, args, index, timeout, None)
    registry = MetricsRegistry()
    with metrics_scope(registry):
        return _execute(fn, args, index, timeout, registry)


def _execute(
    fn: Callable[..., Any],
    args: tuple,
    index: int,
    timeout: float | None,
    registry: MetricsRegistry | None,
) -> PMapResult:
    def delta() -> dict | None:
        if registry is None:
            return None
        return registry.snapshot() or None

    t0 = time.perf_counter()
    try:
        with time_limit(timeout):
            value = fn(*args)
        return PMapResult(
            index=index, ok=True, value=value,
            elapsed=time.perf_counter() - t0, metrics=delta(),
        )
    except TaskTimeout as ex:
        return PMapResult(
            index=index, ok=False, error=ex, timed_out=True,
            elapsed=time.perf_counter() - t0, metrics=delta(),
        )
    except BaseException as ex:  # pickled back; parent decides
        return PMapResult(
            index=index, ok=False, error=ex,
            elapsed=time.perf_counter() - t0, metrics=delta(),
        )


def fold_worker_metrics(results: Sequence[PMapResult | None]) -> None:
    """Merge worker metric deltas into the parent registry, in
    submission order (deterministic regardless of completion order)."""
    registry = get_metrics()
    if not registry.enabled:
        return
    for res in results:
        if res is not None and res.metrics:
            registry.merge(res.metrics)
