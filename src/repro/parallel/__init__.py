"""Shared parallel-execution layer.

One *persistent* worker-pool abstraction serves every sweep in the
package: :func:`repro.bench.run_matrix` (mapper x kernel grids),
:func:`repro.dse.explore` (architecture sweeps), the ``portfolio``
mapper (racing several mappers on one kernel), and the perf ledger's
parallel slice.  The contract:

* **Determinism** — results come back in submission order regardless
  of completion order, and ``jobs=1`` callers keep their exact serial
  code path (they never enter the pool).
* **One pool per process** — workers are forked once, pre-warmed
  (heavy mapper/solver imports done before timing starts), and reused
  across calls (:mod:`repro.parallel.pool`); fork-per-call overhead no
  longer eats the parallel speedup of short mapping jobs.
* **Timeouts are data, not hangs** — every task runs under a
  SIGALRM-based :func:`time_limit` inside its worker, so a runaway
  mapper raises :class:`TaskTimeout` in-process and comes back as a
  failed :class:`PMapResult`; a worker wedged outside the interpreter
  is killed and respawned by a parent-side backstop, without
  poisoning the rest of the batch.
* **No nested pools** — workers are marked (:func:`in_worker`), and
  parallel entry points degrade to their serial paths inside one, so
  a ``portfolio`` mapper inside a parallel ``run_matrix`` sweep does
  not fork a second pool per cell.
* **Traces travel** — values are pickled back whole, including any
  :class:`repro.obs.Span` trees a task attached, so ``--profile``
  aggregates child work in the parent.
* **Metrics merge exactly** — when a metrics registry is active
  (:func:`repro.obs.metrics.metrics_scope`), each worker ships the
  snapshot *delta* it accrued back in its :class:`PMapResult` and the
  parent folds the deltas in, in submission order (the same pattern
  as the mapping cache's stats-delta merge), so a ``jobs=N`` sweep
  reports the same counter totals and histogram counts as the serial
  run.
* **Identical work runs once** — callers that can content-address
  their tasks (the harnesses pass the mapping cache's keys) get
  in-batch dedup: duplicate tasks collapse onto one execution and the
  copies are marked ``deduped``.

Workers are forked (POSIX), so an architecture or registry built in
the parent before pool creation is visible in the children without
re-imports; ambient state that changes *after* the fork (metrics
scopes, cache scopes) is shipped per batch.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.parallel.pool import (
    WorkerCrash,
    WorkerPool,
    get_pool,
    pool_scope,
    prewarm,
    shutdown,
    warm_pool,
)
from repro.parallel.tasks import (
    BACKSTOP_SLACK,
    PMapResult,
    TaskTimeout,
    fold_worker_metrics as _fold_worker_metrics,
    in_worker,
    run_task,
    time_limit,
)

__all__ = [
    "PMapResult",
    "TaskTimeout",
    "WorkerCrash",
    "WorkerPool",
    "get_pool",
    "in_worker",
    "pmap",
    "pool_scope",
    "race",
    "shutdown",
    "time_limit",
    "warm_pool",
]


def _task_args(shared: Any, item: Any) -> tuple:
    return (shared, item) if shared is not None else (item,)


def pmap(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    jobs: int,
    timeout: float | None = None,
    timeouts: Sequence[float | None] | None = None,
    shared: Any = None,
    keys: Sequence[Any] | None = None,
    on_result: Callable[[int, PMapResult], None] | None = None,
) -> list[PMapResult]:
    """Apply ``fn`` to every item over the persistent worker pool.

    Args:
        fn: a picklable (module-level) callable.  Called as
            ``fn(item)``, or ``fn(shared, item)`` when ``shared`` is
            given.
        items: the work list; results come back in this order.
        jobs: worker processes.  ``jobs <= 1`` (or a call from inside
            a worker) runs serially in-process — same semantics, no
            pool.
        timeout: per-task wall-clock budget in seconds (None = none).
        timeouts: per-item budgets overriding ``timeout`` — one entry
            per item, ``None`` meaning unlimited.  Lets one batch mix
            deadlines (the serve daemon's per-request budgets).
        shared: a batch-constant value (an architecture, a kernel
            suite) shipped to each participating worker once per batch
            instead of once per task.
        keys: optional per-item dedup keys (None entries never
            dedupe).  Items with equal keys run once; the duplicates
            receive deep copies of the primary's result, marked
            ``deduped``.  Only the pool path dedupes — the serial path
            is kept byte-for-byte serial.
        on_result: called as ``on_result(index, result)`` the moment
            each item settles (duplicates settle with their primary),
            letting a caller stream results with no batch barrier.  It
            runs on the dispatching thread; exceptions are logged and
            swallowed, never propagated into the batch.

    Returns:
        One :class:`PMapResult` per item, submission-ordered.  The
        call itself only raises for infrastructure failures; task
        exceptions are returned, not raised.
    """
    items = list(items)
    if keys is not None:
        keys = list(keys)
        if len(keys) != len(items):
            raise ValueError("keys must align one-to-one with items")
    if timeouts is not None:
        timeouts = list(timeouts)
        if len(timeouts) != len(items):
            raise ValueError("timeouts must align one-to-one with items")
    if jobs <= 1 or in_worker() or len(items) <= 1:
        out: list[PMapResult] = []
        for i, item in enumerate(items):
            budget = timeouts[i] if timeouts is not None else timeout
            res = run_task(fn, _task_args(shared, item), i, budget)
            out.append(res)
            if on_result is not None:
                try:
                    on_result(i, res)
                except Exception:
                    pass
        return out
    pool = get_pool(min(jobs, len(items)))
    results = pool.run_batch(
        fn, items, jobs=jobs, timeout=timeout, timeouts=timeouts,
        shared=shared, keys=keys, on_result=on_result,
    )
    _fold_worker_metrics(results)
    return results  # type: ignore[return-value]


def race(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    jobs: int,
    timeout: float | None = None,
    shared: Any = None,
    accept: Callable[[PMapResult], bool] | None = None,
) -> list[PMapResult | None]:
    """Run items concurrently; the lowest-index accepted result wins.

    Results are examined in submission order, so the winner is
    deterministic regardless of completion order: the first result
    ``accept`` approves (default: :attr:`PMapResult.ok`) stops the
    race.  Losers are cancelled *promptly* — pending entrants are
    dropped and workers still running losers are killed and respawned
    the moment the winner is decided, rather than drained on
    teardown.  Serially (``jobs <= 1``, inside a worker, or one item)
    losers past the winner are simply never started.

    Returns the submission-ordered result list with ``None`` for every
    task past the winner (losers whose outcome was discarded).
    """
    accept = accept if accept is not None else (lambda r: r.ok)
    items = list(items)
    results: list[PMapResult | None] = [None] * len(items)
    if jobs <= 1 or in_worker() or len(items) <= 1:
        for i, item in enumerate(items):
            results[i] = run_task(
                fn, _task_args(shared, item), i, timeout
            )
            if accept(results[i]):
                break
        return results
    pool = get_pool(min(jobs, len(items)))
    results = pool.run_batch(
        fn, items, jobs=jobs, timeout=timeout, shared=shared,
        accept=accept,
    )
    # Only examined entrants' metrics merge; cancelled losers' partial
    # work is discarded with them (deterministic either way — the
    # examined prefix is fixed by submission order).
    _fold_worker_metrics(results)
    return results
