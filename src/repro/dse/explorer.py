"""Sweep architecture parameters against a kernel suite.

Each design point instantiates a CGRA (size, topology, register-file
depth, memory-column policy, routing discipline), maps the whole suite
with a chosen mapper, and aggregates:

* **performance** — mean 1/II over the kernels that mapped (failed
  kernels are charged a sequential-execution fallback, so fragile
  architectures do not win by cherry-picking);
* **cost** — a gate-count proxy: cells weighted by their feature set
  (ALU, memory port, RF depth) plus links;
* **success rate** — the fraction of kernels mapped at all.

:func:`pareto_front` then yields the cost/performance frontier — the
artifact the cited exploration frameworks print.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from itertools import product
from os import PathLike
from typing import Sequence

from repro.arch import presets
from repro.arch.cgra import CGRA
from repro.cache import MappingCache, cache_scope, get_cache
from repro.core.exceptions import MapFailure
from repro.core.registry import create
from repro.ir import kernels as kernel_lib
from repro.parallel import TaskTimeout, pmap, time_limit

__all__ = ["DesignPoint", "default_space", "explore", "pareto_front"]

_log = logging.getLogger("repro.dse.explorer")

#: Gate-cost weights of the cost proxy (relative units).
COST_ALU = 10.0
COST_MEM_PORT = 6.0
COST_RF_ENTRY = 1.0
COST_LINK = 0.5
COST_BYPASS = 2.0


@dataclass(frozen=True)
class DesignPoint:
    """One explored architecture with its aggregate results."""

    size: int
    topology: str
    rf_size: int
    mem_cells: str
    performance: float
    cost: float
    success_rate: float

    def label(self) -> str:
        return (
            f"{self.size}x{self.size}/{self.topology}"
            f"/rf{self.rf_size}/mem-{self.mem_cells}"
        )


def architecture_cost(cgra: CGRA) -> float:
    """Gate-count proxy for one array."""
    total = 0.0
    for cell in cgra.cells:
        if cell.is_compute:
            total += COST_ALU
        if cell.has_memory_port:
            total += COST_MEM_PORT
        total += COST_RF_ENTRY * cell.rf_size
    total += COST_LINK * len(cgra.links)
    if not cgra.route_shares_fu:
        total += COST_BYPASS * cgra.n_cells
    return total


def default_space() -> list[dict]:
    """A compact sweep: 24 design points."""
    return [
        {
            "size": size,
            "topology": topo,
            "rf_size": rf,
            "mem_cells": mem,
        }
        for size, topo, rf, mem in product(
            (4, 6),
            ("mesh", "diagonal", "one_hop"),
            (2, 8),
            ("left", "all"),
        )
    ]


def _params_key(params: dict) -> tuple:
    return (
        params["size"], params["topology"],
        params["rf_size"], params["mem_cells"],
    )


#: Memoized :func:`architecture_cost` per design point — the cost is a
#: pure function of the parameters, so the fallback path never needs
#: to re-instantiate the preset array just to price it.
_COST_CACHE: dict[tuple, float] = {}


def _point_cost(params: dict) -> float:
    key = _params_key(params)
    cost = _COST_CACHE.get(key)
    if cost is None:
        cost = _COST_CACHE[key] = architecture_cost(
            presets.simple_cgra(
                params["size"],
                params["size"],
                topology=params["topology"],
                rf_size=params["rf_size"],
                mem_cells=params["mem_cells"],
            )
        )
    return cost


def evaluate_point(
    params: dict,
    suite: Sequence[str],
    *,
    mapper: str = "list_sched",
) -> DesignPoint:
    """Map the suite on one architecture; aggregate the outcome."""
    cgra = presets.simple_cgra(
        params["size"],
        params["size"],
        topology=params["topology"],
        rf_size=params["rf_size"],
        mem_cells=params["mem_cells"],
    )
    cost = _COST_CACHE.setdefault(
        _params_key(params), architecture_cost(cgra)
    )
    perfs: list[float] = []
    succeeded = 0
    for kname in suite:
        dfg = kernel_lib.kernel(kname)
        if dfg.memory_ops() and not cgra.memory_cells():
            perfs.append(1.0 / dfg.op_count())
            continue
        try:
            mapping = create(mapper).map(dfg, cgra)
            perfs.append(1.0 / mapping.ii)
            succeeded += 1
        except MapFailure as ex:
            _log.warning(
                "design point %sx%s/%s: %s failed on %s, charging the"
                " sequential fallback (%s)",
                params["size"], params["size"], params["topology"],
                mapper, kname, ex,
            )
            perfs.append(1.0 / dfg.op_count())  # host fallback
    return DesignPoint(
        size=params["size"],
        topology=params["topology"],
        rf_size=params["rf_size"],
        mem_cells=params["mem_cells"],
        performance=sum(perfs) / len(perfs),
        cost=cost,
        success_rate=succeeded / len(suite),
    )


def _fallback_point(params: dict, suite: Sequence[str]) -> DesignPoint:
    """The all-kernels-failed outcome: every kernel charged the host
    sequential fallback, success rate zero — what a design point that
    blew its time budget is worth to the sweep."""
    perfs = [
        1.0 / kernel_lib.kernel(kname).op_count() for kname in suite
    ]
    return DesignPoint(
        size=params["size"],
        topology=params["topology"],
        rf_size=params["rf_size"],
        mem_cells=params["mem_cells"],
        performance=sum(perfs) / len(perfs),
        cost=_point_cost(params),
        success_rate=0.0,
    )


def _point_task(
    suite: tuple, task: tuple
) -> tuple[DesignPoint, dict | None]:
    """pmap payload: one design point (module-level for pickling).

    The kernel suite is batch-constant and rides in as the ``shared``
    value.  Returns the point plus the cache-stats delta accrued while
    evaluating it, so the parent can fold worker hits/misses into its
    own totals.
    """
    params, mapper = task
    c = get_cache()
    before = c.stats.snapshot() if c is not None else None
    point = evaluate_point(params, suite, mapper=mapper)
    delta = c.stats.delta_since(before) if c is not None else None
    return point, delta


def explore(
    space: Sequence[dict] | None = None,
    suite: Sequence[str] | None = None,
    *,
    mapper: str = "list_sched",
    jobs: int = 1,
    timeout: float | None = None,
    cache: bool | str | PathLike | MappingCache | None = None,
) -> list[DesignPoint]:
    """Evaluate every design point in the space.

    ``jobs > 1`` evaluates points over a process pool; ``timeout``
    bounds one point's wall-clock in seconds, with overruns demoted to
    the sequential-fallback outcome rather than hanging the sweep.
    The returned list is identical for any ``jobs`` value.

    ``cache`` (see :func:`repro.cache.cache_scope`) enables the
    content-addressed mapping cache for the sweep.  Design points that
    share a feasibility-equivalent architecture and kernel re-use each
    other's mappings — across points, across repeated sweeps, and
    (with a path argument) across processes via the shared disk tier.

    In-batch dedup of identical ``(params, mapper)`` points preserves
    the returned points and the mapping-work totals exactly, but not
    the cache's hit/miss counters: a serial sweep's duplicate point
    performs one cache get per mapped kernel (and a miss per failed
    one), while the deduped copy touches the cache not at all — so a
    parallel sweep with duplicate points reads lower on
    ``stats.hits``/``stats.misses`` than its serial twin.
    """
    kernels = suite or ["dot_product", "fir4", "sobel_x", "if_select"]
    points = list(space if space is not None else default_space())
    tasks = [(params, mapper) for params in points]
    pts: list[DesignPoint] = []
    with cache_scope(cache) as active:
        if jobs <= 1:
            for task in tasks:
                try:
                    with time_limit(timeout):
                        pts.append(evaluate_point(
                            task[0], kernels, mapper=task[1]
                        ))
                except TaskTimeout as ex:
                    _log.warning(
                        "design point %sx%s/%s: %s; charging the"
                        " sequential fallback",
                        task[0]["size"], task[0]["size"],
                        task[0]["topology"], ex,
                    )
                    pts.append(_fallback_point(task[0], kernels))
        else:
            # Identical (params, mapper) points in one sweep do the
            # same work; with the cache on they dedupe in-batch (the
            # point key is the whole solver-visible identity).
            keys = (
                [f"pt-{_params_key(p)}-{m}" for p, m in tasks]
                if active is not None
                else None
            )
            for res, task in zip(
                pmap(
                    _point_task, tasks, jobs=jobs, timeout=timeout,
                    shared=tuple(kernels), keys=keys,
                ),
                tasks,
            ):
                if res.ok:
                    point, delta = res.value
                    if active is not None and not res.deduped:
                        active.stats.merge(delta)
                    pts.append(point)
                elif res.timed_out:
                    _log.warning(
                        "design point %sx%s/%s: %s; charging the"
                        " sequential fallback",
                        task[0]["size"], task[0]["size"],
                        task[0]["topology"], res.error,
                    )
                    pts.append(_fallback_point(task[0], kernels))
                else:
                    raise res.error
    return sorted(pts, key=lambda p: (p.cost, -p.performance))


def pareto_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Cost/performance non-dominated subset (lower cost, higher perf)."""
    front: list[DesignPoint] = []
    for p in sorted(points, key=lambda p: (p.cost, -p.performance)):
        if not front or p.performance > front[-1].performance + 1e-12:
            front.append(p)
    return front
