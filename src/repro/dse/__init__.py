"""Architecture design-space exploration.

The survey's §IV points at the open-source framework wave (CGRA-ME
[75], Aurora [76], the template-based explorer of Podobas et al. [77])
whose purpose is exactly this: sweep the architectural dimensions the
introduction lists — "processing elements and their homogeneity,
interconnection network, context frame…" — against a workload, and
report which architectures dominate.

:func:`repro.dse.explorer.explore` runs the sweep;
:func:`repro.dse.explorer.pareto_front` extracts the cost/performance
frontier.
"""

from repro.dse.explorer import (
    DesignPoint,
    default_space,
    explore,
    pareto_front,
)

__all__ = ["DesignPoint", "default_space", "explore", "pareto_front"]
