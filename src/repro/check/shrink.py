"""Delta-debugging shrinker for failing conformance cases.

Given a DFG on which some predicate holds ("this graph still makes
mapper X fail the oracle chain"), :func:`shrink_dfg` greedily applies
structure-reducing mutations and keeps each one that preserves the
failure, until no mutation applies or the evaluation budget runs out.
The mutations, tried smallest-first in deterministic (sorted node id)
order each round:

* **drop an OUTPUT** — when the graph observes more than one value,
  try observing fewer;
* **bypass a compute node** — rewire its consumers to its port-0
  operand's source and delete it (plus any nodes that become dead),
  shrinking both node and edge counts at once; loop-carried merge
  nodes disappear the same way, which is how recurrences get dropped;
* **shrink a constant** — move CONST values toward 0 through the
  candidate ladder ``0, 1, -1, v // 2``.

Every candidate is structurally re-checked (``DFG.check``) before the
predicate runs, so the predicate only ever sees well-formed graphs.
The result is deterministic for a deterministic predicate: no
randomness is involved anywhere.

:func:`shrink_inputs` then minimizes the input series the same way
(sample values toward 0), and :func:`shrink_iters` trims the number of
observed iterations.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.dfg import DFG, Op
from repro.obs.tracer import SHRINK_ROUNDS, get_tracer

__all__ = ["ShrinkBudget", "shrink_dfg", "shrink_inputs", "shrink_iters"]

Predicate = Callable[[DFG], bool]


class ShrinkBudget:
    """Caps predicate evaluations so shrinking stays interactive."""

    def __init__(self, max_checks: int = 400) -> None:
        self.max_checks = max_checks
        self.checks = 0

    def spent(self) -> bool:
        return self.checks >= self.max_checks

    def check(self, predicate: Predicate, dfg: DFG) -> bool:
        if self.spent():
            return False
        self.checks += 1
        try:
            return bool(predicate(dfg))
        except Exception:
            # A predicate crash means "not the failure we are chasing".
            return False


# ---------------------------------------------------------------------------
# Mutation builders: each returns a well-formed candidate or None.
# ---------------------------------------------------------------------------
def _gc_dead(g: DFG) -> None:
    """Drop non-OUTPUT nodes with no consumers, transitively."""
    changed = True
    while changed:
        changed = False
        for nid in sorted(g.node_ids()):
            node = g.node(nid)
            if node.op is Op.OUTPUT:
                continue
            if not g.out_edges(nid):
                g.remove_node(nid)
                changed = True


def _drop_output(dfg: DFG, nid: int) -> DFG | None:
    outputs = [n.nid for n in dfg.nodes() if n.op is Op.OUTPUT]
    if len(outputs) < 2 or nid not in outputs:
        return None
    g = dfg.copy()
    g.remove_node(nid)
    _gc_dead(g)
    try:
        g.check()
    except Exception:
        return None
    return g


def _bypass_node(dfg: DFG, nid: int) -> DFG | None:
    node = dfg.node(nid)
    if node.op in (Op.CONST, Op.INPUT, Op.OUTPUT):
        return None
    g = dfg.copy()
    e = g.operand(nid, 0)
    if e is None:
        return None
    replacement = e.src
    if replacement == nid:
        return None
    g.rewire(nid, replacement)
    g.remove_node(nid)
    _gc_dead(g)
    if not any(n.op is Op.OUTPUT for n in g.nodes()):
        return None
    try:
        g.check()
    except Exception:
        return None
    return g


def _shrink_const(dfg: DFG, nid: int, value: int) -> DFG | None:
    node = dfg.node(nid)
    if node.op is not Op.CONST or node.value == value:
        return None
    g = dfg.copy()
    g.node(nid).value = value
    try:
        g.check()
    except Exception:
        return None
    return g


def _simpler(a: int, b: int) -> bool:
    """Strict simplicity order: closer to 0 wins, positive breaks ties.

    The ladder must only ever propose strictly simpler values —
    otherwise the greedy fixpoint loop can oscillate (0 -> 1 -> 0 ...)
    and burn the whole budget without converging.
    """
    return (abs(a), a < 0) < (abs(b), b < 0)


def _const_ladder(value: int) -> list[int]:
    candidates = [0, 1, -1, value // 2]
    return [c for c in dict.fromkeys(candidates) if _simpler(c, value)]


# ---------------------------------------------------------------------------
def shrink_dfg(
    dfg: DFG,
    predicate: Predicate,
    *,
    budget: ShrinkBudget | None = None,
) -> DFG:
    """Greedy fixpoint shrink of a failing graph.

    ``predicate(dfg)`` must be True for the input graph; the returned
    graph is the smallest one reached for which it stayed True.
    """
    budget = budget or ShrinkBudget()
    tracer = get_tracer()
    current = dfg
    improved = True
    while improved and not budget.spent():
        improved = False
        # 1. Fewer observed values.
        for nid in sorted(current.node_ids()):
            if nid not in current:
                continue
            candidate = _drop_output(current, nid)
            if candidate is not None and budget.check(predicate, candidate):
                current = candidate
                tracer.count(SHRINK_ROUNDS)
                improved = True
        # 2. Fewer compute nodes.
        for nid in sorted(current.node_ids()):
            if nid not in current:
                continue
            candidate = _bypass_node(current, nid)
            if candidate is not None and budget.check(predicate, candidate):
                current = candidate
                tracer.count(SHRINK_ROUNDS)
                improved = True
        # 3. Smaller constants.
        for nid in sorted(current.node_ids()):
            if nid not in current:
                continue
            node = current.node(nid)
            if node.op is not Op.CONST:
                continue
            for value in _const_ladder(node.value or 0):
                candidate = _shrink_const(current, nid, value)
                if candidate is not None and budget.check(
                    predicate, candidate
                ):
                    current = candidate
                    tracer.count(SHRINK_ROUNDS)
                    improved = True
                    break
    return current


def shrink_inputs(
    dfg: DFG,
    inputs: dict[str, list[int]],
    predicate: Callable[[dict[str, list[int]]], bool],
    *,
    budget: ShrinkBudget | None = None,
) -> dict[str, list[int]]:
    """Move input samples toward 0 while the failure persists."""
    budget = budget or ShrinkBudget(max_checks=200)
    current = {k: list(v) for k, v in inputs.items()}
    improved = True
    while improved and not budget.spent():
        improved = False
        for name in sorted(current):
            for i, value in enumerate(current[name]):
                for cand in _const_ladder(value):
                    if budget.spent():
                        return current
                    trial = {k: list(v) for k, v in current.items()}
                    trial[name][i] = cand
                    budget.checks += 1
                    try:
                        keep = bool(predicate(trial))
                    except Exception:
                        keep = False
                    if keep:
                        current = trial
                        improved = True
                        break
    return current


def shrink_iters(
    n_iters: int,
    predicate: Callable[[int], bool],
) -> int:
    """Smallest iteration count (>= 1) that still reproduces."""
    current = n_iters
    for n in range(1, n_iters):
        try:
            if predicate(n):
                return n
        except Exception:
            continue
    return current
