"""The oracle chain: what a conforming mapper run must satisfy.

The survey defines a valid mapping as "a binding (and scheduling) of
operations of the application on the hardware resources while
guaranteeing the dependencies" (§II-B).  Operationally this package
holds every mapper to three oracles, in order:

1. **structure** — :meth:`Mapping.validate` returns no violations;
2. **semantics** — for modulo mappings, executing the mapping
   cycle-accurately (:func:`repro.sim.simulate_mapping`) on random
   input series yields exactly the sequential reference semantics
   (:class:`repro.ir.interp.DFGInterpreter`) of the *original* graph —
   mappers are free to rewrite the DFG (ROUTE splits) as long as the
   observable output series per name are untouched;
3. **purity** — replays through the mapping cache and fork workers are
   byte-identical to the in-process cold solve
   (:mod:`repro.check.metamorphic`).

Spatial mappings have no schedule to execute, so oracle 2 does not
apply; their conformance surface is oracle 1 plus the metamorphic
invariants.
"""

from __future__ import annotations

from typing import Any, Mapping as TMapping

from repro.core.mapping import Mapping
from repro.ir.dfg import DFG
from repro.ir.interp import evaluate
from repro.sim.machine import simulate_mapping

__all__ = ["mapping_violations", "reference_outputs", "sim_disagreement"]


def reference_outputs(
    dfg: DFG, n_iters: int, inputs: TMapping[str, Any]
) -> dict[str, list[int]]:
    """The ground truth: sequential interpretation of ``dfg``."""
    return evaluate(dfg, n_iters, inputs)


def mapping_violations(mapping: Mapping) -> list[str]:
    """Oracle 1: the validator's violation list (empty when conforming)."""
    return mapping.validate(raise_on_error=False)


def _first_mismatch(
    got: dict[str, list[int]], want: dict[str, list[int]]
) -> str | None:
    if set(got) != set(want):
        return (
            f"output names differ: mapped run has {sorted(got)},"
            f" reference has {sorted(want)}"
        )
    for name in sorted(want):
        if got[name] != want[name]:
            return (
                f"output {name!r} diverges: simulated {got[name]}"
                f" != reference {want[name]}"
            )
    return None


def sim_disagreement(
    mapping: Mapping,
    n_iters: int,
    inputs: TMapping[str, Any],
    reference: dict[str, list[int]],
) -> str | None:
    """Oracle 2: simulate the mapping, compare against the reference.

    Returns a human-readable description of the first disagreement, or
    None when the mapping computes exactly the reference series.  Only
    meaningful for modulo mappings (spatial ones have no schedule to
    replay); callers skip it for ``mapping.kind == "spatial"``.
    """
    sim = simulate_mapping(mapping, n_iters, inputs)
    return _first_mismatch(sim.outputs, reference)
