"""Failure records, JSONL logging, and pytest reproducer emission.

A :class:`Divergence` is one oracle-chain failure, carrying everything
needed to regenerate it: the case coordinates (seed / generator family
/ arch / mapper), the phase that failed, the shrunk graph, and a
ready-to-paste pytest module source (:func:`emit_pytest`) that
rebuilds the graph node by node — independent of the generators, so
the reproducer stays valid even if :mod:`repro.ir.randdfg` changes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.ir.dfg import DFG, Op

__all__ = [
    "Divergence",
    "dfg_builder_source",
    "emit_pytest",
    "renumber",
    "write_failure_log",
]


@dataclass
class Divergence:
    """One conformance failure (possibly already shrunk)."""

    seed: int
    family: str
    arch: str
    mapper: str
    cache_mode: str
    phase: str  # validate | sim | map-crash | sim-crash | relabel | ...
    detail: str
    dfg_pretty: str = ""
    shrunk_pretty: str = ""
    reproducer: str = ""
    n_iters: int = 4
    inputs: dict = field(default_factory=dict)
    pinned: bool = False  # documented xfail, not an unexplained failure

    def headline(self) -> str:
        tag = " [pinned]" if self.pinned else ""
        return (
            f"{self.phase}{tag}: seed={self.seed} {self.family} on"
            f" {self.arch} via {self.mapper}: {self.detail}"
        )

    def to_record(self) -> dict:
        return asdict(self)


def write_failure_log(path: str, divergences: list[Divergence]) -> int:
    """Append one JSON object per divergence to ``path``; return count."""
    with open(path, "a", encoding="utf-8") as fh:
        for d in divergences:
            fh.write(json.dumps(d.to_record(), sort_keys=True) + "\n")
    return len(divergences)


# ---------------------------------------------------------------------------
# Reproducer emission
# ---------------------------------------------------------------------------
def renumber(dfg: DFG) -> DFG:
    """Rebuild ``dfg`` with dense sequential ids in topological order.

    Shrinking leaves holes in the id space; renumbering first means the
    reported graph and the emitted reproducer print identically.
    """
    out = DFG(dfg.name)
    ids: dict[int, int] = {}
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        ids[nid] = out.add(
            node.op, name=node.name, value=node.value, array=node.array
        )
    for e in sorted(dfg.edges(), key=lambda e: (e.dst, e.port, e.src)):
        out.connect(ids[e.src], ids[e.dst], port=e.port, dist=e.dist)
    out.check()
    return out


def dfg_builder_source(dfg: DFG, var: str = "g") -> str:
    """Python source that rebuilds ``dfg`` node by node.

    Nodes are emitted in topological order with no operands, then every
    edge is connected explicitly — that way carried (dist>0) edges that
    point backwards need no special casing. Ids in the emitted source
    are the fresh ids ``DFG.add`` assigns; pass the graph through
    :func:`renumber` first if the printed ids must match.
    """
    lines = [f"{var} = DFG({dfg.name!r})"]
    names: dict[int, str] = {}
    for nid in dfg.topo_order():
        node = dfg.node(nid)
        names[nid] = f"n{nid}"
        kwargs = []
        if node.name is not None:
            kwargs.append(f"name={node.name!r}")
        if node.value is not None:
            kwargs.append(f"value={node.value!r}")
        if node.array is not None:
            kwargs.append(f"array={node.array!r}")
        kw = (", " if kwargs else "") + ", ".join(kwargs)
        lines.append(f"n{nid} = {var}.add(Op.{node.op.name}{kw})")
    for e in sorted(dfg.edges(), key=lambda e: (e.dst, e.port, e.src)):
        lines.append(
            f"{var}.connect({names[e.src]}, {names[e.dst]},"
            f" port={e.port}, dist={e.dist})"
        )
    lines.append(f"{var}.check()")
    return "\n".join(lines)


def emit_pytest(d: Divergence, dfg: DFG) -> str:
    """A self-contained pytest module reproducing the divergence.

    The generated test drives the full oracle chain: reference
    interpretation, mapping, validation, and (for modulo mappings)
    cycle-accurate simulation against the reference.
    """
    builder = "\n    ".join(dfg_builder_source(dfg).splitlines())
    inputs = json.dumps(d.inputs, sort_keys=True)
    test_name = f"test_seed{d.seed}_{d.mapper}_{d.phase.replace('-', '_')}"
    return f'''"""Shrunk reproducer: {d.phase} divergence.

Found by `repro fuzz` — seed {d.seed}, generator family {d.family!r},
arch {d.arch!r}, mapper {d.mapper!r}, cache {d.cache_mode}.
Failure: {d.detail}
"""

from repro.api import map_dfg
from repro.arch import presets
from repro.ir.dfg import DFG, Op
from repro.ir.interp import evaluate
from repro.sim.machine import simulate_mapping


def build_dfg() -> DFG:
    {builder}
    return g


def {test_name}():
    g = build_dfg()
    cgra = presets.by_name({d.arch!r})
    inputs = {inputs}
    n_iters = {d.n_iters}
    reference = evaluate(g, n_iters, inputs)
    mapping = map_dfg(g, cgra, mapper={d.mapper!r}, seed={d.seed!r})
    assert mapping.validate(raise_on_error=False) == []
    if mapping.kind == "modulo":
        sim = simulate_mapping(mapping, n_iters, inputs)
        assert sim.outputs == reference
'''
