"""Differential conformance harness (``repro fuzz``).

The package's credibility rests on all registered mappers agreeing
with the single semantic oracle, :class:`repro.ir.interp
.DFGInterpreter` — a mapping can pass :meth:`Mapping.validate` yet
compute the wrong values, and only differential execution catches
that.  This subsystem fuzzes every mapper against the oracle chain:

* :mod:`repro.check.problems` — deterministic random cases (generator
  family x arch preset x mapper x cache mode), regenerable from a seed;
* :mod:`repro.check.oracles` — validate + simulate-vs-interpret;
* :mod:`repro.check.metamorphic` — relabeling, pass-pipeline, cache
  and fork replay invariants;
* :mod:`repro.check.shrink` — delta-debugging minimizer;
* :mod:`repro.check.report` — JSONL failure log and ready-to-paste
  pytest reproducers;
* :mod:`repro.check.driver` — the sweep (`repro fuzz` CLI, CI smoke).

See DESIGN.md §9 for the conformance contract.
"""

from repro.check.driver import PINNED, FuzzReport, run_case, run_fuzz
from repro.check.metamorphic import (
    cached_replay_difference,
    fork_replay_difference,
    pipeline_difference,
    relabel,
    relabel_difference,
)
from repro.check.oracles import (
    mapping_violations,
    reference_outputs,
    sim_disagreement,
)
from repro.check.problems import (
    DEFAULT_ARCHS,
    GENERATOR_FAMILIES,
    Case,
    case_dfg,
    case_inputs,
    generate_case,
)
from repro.check.report import (
    Divergence,
    dfg_builder_source,
    emit_pytest,
    write_failure_log,
)
from repro.check.shrink import (
    ShrinkBudget,
    shrink_dfg,
    shrink_inputs,
    shrink_iters,
)

__all__ = [
    "Case",
    "DEFAULT_ARCHS",
    "Divergence",
    "FuzzReport",
    "GENERATOR_FAMILIES",
    "PINNED",
    "ShrinkBudget",
    "cached_replay_difference",
    "case_dfg",
    "case_inputs",
    "dfg_builder_source",
    "emit_pytest",
    "fork_replay_difference",
    "generate_case",
    "mapping_violations",
    "pipeline_difference",
    "reference_outputs",
    "relabel",
    "relabel_difference",
    "run_case",
    "run_fuzz",
    "shrink_dfg",
    "shrink_inputs",
    "shrink_iters",
    "sim_disagreement",
    "write_failure_log",
]
