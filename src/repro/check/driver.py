"""The conformance fuzz driver.

:func:`run_case` pushes one generated problem through the full oracle
chain; :func:`run_fuzz` sweeps a seed range (optionally over a process
pool) and aggregates a :class:`FuzzReport`.  Per case:

1. build the random DFG, input series, and target fabric;
2. interpret the DFG for the reference output series (a reference
   ``ZeroDivisionError`` aborts the case as *skipped* — the program
   itself faults, there is nothing to map against);
3. metamorphic invariants on the problem: isomorphic relabeling and
   the standard pass pipeline must preserve the interpreted semantics;
4. map with the case's mapper (``MapFailure`` is a legitimate outcome
   — *unmapped* — and a wall-clock overrun is *timeout*; any other
   exception is a ``map-crash`` divergence);
5. oracle chain on the result: ``Mapping.validate`` must be clean and,
   for modulo mappings, cycle-accurate simulation must equal the
   reference series;
6. mode invariants: on even seeds the relabeled twin is mapped and
   checked too; cases with ``cache_mode == "on"`` assert cached replay
   is byte-identical to a cold solve; every 16th seed asserts fork
   workers return the in-process bytes;
7. every divergence is delta-debugged by :mod:`repro.check.shrink`
   down to a small reproducer and emitted as a pytest module.

Known, documented failures are pinned in :data:`PINNED`: they are
reported (and land in the JSONL log) but do not fail the sweep.  The
policy is the issue's: a divergence is either fixed or pinned with a
tracking note — never silently tolerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check import oracles
from repro.check.metamorphic import (
    cached_replay_difference,
    fork_replay_difference,
    pipeline_difference,
    relabel,
    relabel_difference,
)
from repro.check.problems import (
    DEFAULT_ARCHS,
    Case,
    case_cgra,
    case_dfg,
    case_inputs,
    generate_case,
    restrict_inputs,
)
from repro.check.report import (
    Divergence,
    emit_pytest,
    renumber,
    write_failure_log,
)
from repro.check.shrink import ShrinkBudget, shrink_dfg
from repro.core.exceptions import MapFailure
from repro.ir.dfg import DFG
from repro.obs.tracer import (
    CHECK_CASES,
    CHECK_DIVERGENCES,
    get_tracer,
)
from repro.parallel import TaskTimeout, time_limit

__all__ = ["FuzzReport", "PINNED", "run_case", "run_fuzz"]

#: Documented known failures: (mapper, phase) -> tracking note.  A
#: divergence matching an entry is reported as *pinned* instead of
#: failing the sweep.  Keep this empty unless a fix genuinely cannot
#: land in the same change; every entry must name an issue.
PINNED: dict[tuple[str, str], str] = {}


@dataclass
class FuzzReport:
    """Aggregate outcome of a seed sweep."""

    cases: int = 0
    mapped: int = 0
    unmapped: int = 0
    timeouts: int = 0
    skipped: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def unexplained(self) -> list[Divergence]:
        return [d for d in self.divergences if not d.pinned]

    @property
    def ok(self) -> bool:
        return not self.unexplained

    def merge(self, other: "FuzzReport") -> None:
        self.cases += other.cases
        self.mapped += other.mapped
        self.unmapped += other.unmapped
        self.timeouts += other.timeouts
        self.skipped += other.skipped
        self.divergences.extend(other.divergences)

    def summary(self) -> str:
        pinned = len(self.divergences) - len(self.unexplained)
        return (
            f"{self.cases} cases: {self.mapped} mapped,"
            f" {self.unmapped} unmapped, {self.timeouts} timeouts,"
            f" {self.skipped} skipped,"
            f" {len(self.unexplained)} divergences"
            f" ({pinned} pinned)"
        )


def _divergence(case: Case, phase: str, detail: str, **kw) -> Divergence:
    return Divergence(
        seed=case.seed,
        family=case.family,
        arch=case.arch,
        mapper=case.mapper,
        cache_mode=case.cache_mode,
        phase=phase,
        detail=detail,
        n_iters=case.n_iters,
        pinned=(case.mapper, phase) in PINNED,
        **kw,
    )


def _map_case(case: Case, dfg: DFG, cgra, timeout: float | None):
    """Run the case's mapper; returns (mapping | None, outcome)."""
    from repro.core.registry import create

    mapper = create(case.mapper, seed=case.seed)
    try:
        with time_limit(timeout):
            return mapper.map(dfg, cgra), "mapped"
    except MapFailure:
        return None, "unmapped"
    except TaskTimeout:
        return None, "timeout"
    except Exception as ex:
        return None, f"crash: {type(ex).__name__}: {ex}"


def _oracle_failure(
    case: Case, dfg: DFG, inputs, cgra, timeout: float | None
) -> tuple[str, str] | None:
    """(phase, detail) of the first oracle-chain failure, else None.

    This is the *re-check* the shrinker drives: any failure counts, so
    a divergence may legally morph into a related one while shrinking
    (standard delta-debugging behaviour).
    """
    try:
        reference = oracles.reference_outputs(dfg, case.n_iters, inputs)
    except Exception:
        return None  # graph no longer interprets: not a mapper failure
    mapping, outcome = _map_case(case, dfg, cgra, timeout)
    if mapping is None:
        if outcome.startswith("crash"):
            return "map-crash", outcome
        return None
    violations = oracles.mapping_violations(mapping)
    if violations:
        return "validate", "; ".join(violations[:4])
    if mapping.kind == "modulo":
        try:
            delta = oracles.sim_disagreement(
                mapping, case.n_iters, inputs, reference
            )
        except Exception as ex:
            return "sim-crash", f"{type(ex).__name__}: {ex}"
        if delta:
            return "sim", delta
    return None


def _shrunk(case: Case, dfg: DFG, inputs, cgra, timeout) -> DFG:
    def still_fails(candidate: DFG) -> bool:
        sub = restrict_inputs(inputs, candidate)
        return (
            _oracle_failure(case, candidate, sub, cgra, timeout)
            is not None
        )

    return shrink_dfg(dfg, still_fails, budget=ShrinkBudget())


def run_case(
    case: Case,
    *,
    shrink: bool = True,
    timeout: float | None = None,
    metamorphic: bool = True,
) -> FuzzReport:
    """Push one case through the oracle chain; report its outcome."""
    tracer = get_tracer()
    report = FuzzReport(cases=1)
    with tracer.span(
        "check_case", seed=case.seed, mapper=case.mapper, arch=case.arch
    ):
        tracer.count(CHECK_CASES)
        dfg = case_dfg(case)
        inputs = case_inputs(case, dfg)
        cgra = case_cgra(case)

        def diverge(phase: str, detail: str, graph: DFG | None = None):
            tracer.count(CHECK_DIVERGENCES)
            d = _divergence(
                case, phase, detail,
                dfg_pretty=dfg.pretty(),
                inputs=dict(inputs),
            )
            if graph is not None:
                graph = renumber(graph)
                d.shrunk_pretty = graph.pretty()
                d.reproducer = emit_pytest(d, graph)
            report.divergences.append(d)

        # 2. Reference semantics.
        try:
            reference = oracles.reference_outputs(
                dfg, case.n_iters, inputs
            )
        except ZeroDivisionError:
            report.skipped += 1
            return report
        except Exception as ex:
            diverge("interp-crash", f"{type(ex).__name__}: {ex}")
            return report

        # 3. Problem-level metamorphic invariants.
        if metamorphic:
            delta = relabel_difference(
                dfg, case.n_iters, inputs, seed=case.seed
            )
            if delta:
                diverge("relabel", delta)
            delta = pipeline_difference(dfg, case.n_iters, inputs)
            if delta:
                diverge("passes", delta)

        # 4. Map.
        with tracer.span("map_attempt"):
            mapping, outcome = _map_case(case, dfg, cgra, timeout)
        if mapping is None:
            if outcome == "unmapped":
                report.unmapped += 1
            elif outcome == "timeout":
                report.timeouts += 1
            else:
                graph = (
                    _shrunk(case, dfg, inputs, cgra, timeout)
                    if shrink else None
                )
                diverge("map-crash", outcome, graph)
            return report
        report.mapped += 1

        # 5. Oracle chain on the result.
        violations = oracles.mapping_violations(mapping)
        if violations:
            graph = (
                _shrunk(case, dfg, inputs, cgra, timeout)
                if shrink else None
            )
            diverge("validate", "; ".join(violations[:4]), graph)
            return report
        if mapping.kind == "modulo":
            try:
                delta = oracles.sim_disagreement(
                    mapping, case.n_iters, inputs, reference
                )
            except Exception as ex:
                delta = None
                graph = (
                    _shrunk(case, dfg, inputs, cgra, timeout)
                    if shrink else None
                )
                diverge(
                    "sim-crash", f"{type(ex).__name__}: {ex}", graph
                )
                return report
            if delta:
                graph = (
                    _shrunk(case, dfg, inputs, cgra, timeout)
                    if shrink else None
                )
                diverge("sim", delta, graph)
                return report

        # 6. Mode invariants.
        if metamorphic and case.seed % 2 == 0:
            twin, _ = relabel(dfg, case.seed)
            t_mapping, t_outcome = _map_case(case, twin, cgra, timeout)
            if t_mapping is not None:
                t_viol = oracles.mapping_violations(t_mapping)
                if t_viol:
                    diverge(
                        "relabel-map",
                        "relabeled twin fails validation: "
                        + "; ".join(t_viol[:4]),
                    )
                elif t_mapping.kind == "modulo":
                    t_delta = oracles.sim_disagreement(
                        t_mapping, case.n_iters, inputs, reference
                    )
                    if t_delta:
                        diverge(
                            "relabel-map",
                            f"relabeled twin diverges: {t_delta}",
                        )
            elif t_outcome.startswith("crash"):
                diverge(
                    "relabel-map", f"relabeled twin: {t_outcome}"
                )
        if case.cache_mode == "on":
            try:
                with time_limit(timeout):
                    delta = cached_replay_difference(
                        dfg, cgra, case.mapper, seed=case.seed
                    )
            except TaskTimeout:
                delta = None
            if delta:
                diverge("cache-replay", delta)
        if metamorphic and case.seed % 16 == 3:
            delta = fork_replay_difference(
                dfg, cgra, case.mapper, seed=case.seed, timeout=timeout
            )
            if delta:
                diverge("fork-replay", delta)
    return report


# ---------------------------------------------------------------------------
def _case_worker(payload) -> FuzzReport:
    """Module-level pmap body: run one case in a fork worker."""
    case, shrink, timeout, metamorphic = payload
    return run_case(
        case, shrink=shrink, timeout=timeout, metamorphic=metamorphic
    )


def run_fuzz(
    seeds,
    mappers: list[str] | None = None,
    archs: list[str] | None = None,
    *,
    n_iters: int = 4,
    shrink: bool = True,
    timeout: float | None = None,
    log: str | None = None,
    fail_fast: bool = False,
    jobs: int = 1,
    metamorphic: bool = True,
) -> FuzzReport:
    """Sweep ``seeds``; return the aggregated :class:`FuzzReport`.

    Args:
        seeds: iterable of integer seeds (e.g. ``range(0, 200)``).
        mappers: registry names to rotate through (default: all).
        archs: preset names to rotate through (default:
            :data:`repro.check.problems.DEFAULT_ARCHS`).
        n_iters: iterations the semantic oracle observes per case.
        shrink: delta-debug failures down to small reproducers.
        timeout: per-map wall-clock budget in seconds (SIGALRM-based,
            like the bench harness; None = unbounded).
        log: append divergences to this JSONL file.
        fail_fast: stop at the first unexplained divergence.
        jobs: fork workers for the sweep itself (1 = serial).
        metamorphic: also check relabel / pass-pipeline / fork-replay
            invariants (on by default; the CLI's ``--oracle-only``
            switches them off for bisecting).
    """
    from repro.core.registry import names

    mappers = list(mappers or names())
    archs = list(archs or DEFAULT_ARCHS)
    cases = [
        generate_case(s, mappers, archs, n_iters=n_iters) for s in seeds
    ]
    total = FuzzReport()
    if jobs > 1 and not fail_fast:
        from repro.parallel import pmap

        payloads = [(c, shrink, timeout, metamorphic) for c in cases]
        # The per-map timeout is enforced inside the worker; give the
        # whole case a generous multiple before the pool declares it
        # wedged (shrinking re-runs the mapper many times).
        case_budget = None if timeout is None else timeout * 40
        for r in pmap(_case_worker, payloads, jobs=jobs,
                      timeout=case_budget):
            if r.ok:
                total.merge(r.value)
            else:
                total.cases += 1
                total.timeouts += 1
    else:
        for case in cases:
            total.merge(
                run_case(
                    case, shrink=shrink, timeout=timeout,
                    metamorphic=metamorphic,
                )
            )
            if fail_fast and not total.ok:
                break
    if log and total.divergences:
        write_failure_log(log, total.divergences)
    return total
