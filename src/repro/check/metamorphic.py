"""Metamorphic invariants: symmetries a conforming toolchain preserves.

Three families, each a transformation of the *problem* whose effect on
the *answer* is known in advance:

* **relabel** — renumbering DFG nodes by a random permutation is pure
  bookkeeping: the interpreter must produce identical output series,
  and mapping the renumbered graph must still pass the oracle chain
  (nothing in a mapper may depend on node-id arithmetic);
* **pass pipeline** — the standard middle-end pipeline (fold /
  simplify / CSE / DCE) is semantics-preserving by contract, so the
  optimized graph must interpret to the same series as the original;
* **replay purity** — a mapping obtained through the cache (warm hit)
  or in a forked worker serializes to exactly the bytes of the
  in-process cold solve; caching and parallelism are pure plumbing.
"""

from __future__ import annotations

import random
from typing import Any, Mapping as TMapping

from repro.ir.dfg import DFG, Node, Op
from repro.ir.interp import evaluate

__all__ = [
    "cached_replay_difference",
    "fork_replay_difference",
    "pipeline_difference",
    "relabel",
    "relabel_difference",
]


# ---------------------------------------------------------------------------
# Isomorphic relabeling
# ---------------------------------------------------------------------------
def relabel(dfg: DFG, seed: int = 0) -> tuple[DFG, dict[int, int]]:
    """An isomorphic copy with node ids shuffled by ``seed``.

    Returns the new graph and the old-id -> new-id permutation.  INPUT
    and OUTPUT names are preserved, so interpreter output dicts stay
    comparable across the relabeling.
    """
    rng = random.Random(seed)
    ids = dfg.node_ids()
    shuffled = list(ids)
    rng.shuffle(shuffled)
    perm = dict(zip(ids, shuffled))

    inverse = {new: old for old, new in perm.items()}
    out = DFG(f"{dfg.name}_perm{seed}")
    out._next_id = max(shuffled, default=-1) + 1
    # Insert in ascending new-id order so the twin's iteration order is
    # exactly what a freshly built graph would have.
    for nid in sorted(inverse):
        node = dfg.node(inverse[nid])
        out._nodes[nid] = Node(
            nid, node.op, name=node.name, value=node.value,
            array=node.array, pred=node.pred,
        )
        out._out[nid] = []
        out._in[nid] = []
    for e in dfg.edges():
        out.connect(perm[e.src], perm[e.dst], port=e.port, dist=e.dist)
    out.check()
    return out, perm


def relabel_difference(
    dfg: DFG,
    n_iters: int,
    inputs: TMapping[str, Any],
    *,
    seed: int = 0,
) -> str | None:
    """Interpret the graph and its relabeled twin; describe any delta."""
    twin, _ = relabel(dfg, seed)
    want = evaluate(dfg, n_iters, inputs)
    got = evaluate(twin, n_iters, inputs)
    if got != want:
        return (
            f"relabeled graph interprets differently:"
            f" {got} != {want} (perm seed {seed})"
        )
    return None


# ---------------------------------------------------------------------------
# Pass-pipeline equivalence
# ---------------------------------------------------------------------------
def pipeline_difference(
    dfg: DFG, n_iters: int, inputs: TMapping[str, Any]
) -> str | None:
    """Optimize with the standard pipeline; describe any semantic delta."""
    from repro.passes import standard_pipeline

    try:
        opt = standard_pipeline(dfg)
    except Exception as ex:  # a crash in a pass is itself a finding
        return f"standard_pipeline crashed: {type(ex).__name__}: {ex}"
    want = evaluate(dfg, n_iters, inputs)
    try:
        got = evaluate(opt, n_iters, inputs)
    except Exception as ex:
        return (
            f"optimized graph no longer interprets:"
            f" {type(ex).__name__}: {ex}"
        )
    if got != want:
        return f"pass pipeline changed semantics: {got} != {want}"
    return None


# ---------------------------------------------------------------------------
# Replay purity (cache, fork workers)
# ---------------------------------------------------------------------------
def _mapping_bytes(mapping) -> str:
    from repro.core.serialize import mapping_to_json

    return mapping_to_json(mapping)


def cached_replay_difference(
    dfg: DFG, cgra, mapper: str, *, seed: int = 0, ii: int | None = None
) -> str | None:
    """Cold solve vs cache-mediated store+hit: must be byte-identical."""
    from repro.api import map_dfg
    from repro.cache import cache_disabled, mapping_cache

    with cache_disabled():
        cold = _mapping_bytes(map_dfg(dfg, cgra, mapper=mapper, seed=seed, ii=ii))
    with mapping_cache() as cache:
        first = _mapping_bytes(map_dfg(dfg, cgra, mapper=mapper, seed=seed, ii=ii))
        warm = _mapping_bytes(map_dfg(dfg, cgra, mapper=mapper, seed=seed, ii=ii))
        hits, stores = cache.stats.hits, cache.stats.stores
    if first != cold:
        return "solve under an (empty) cache differs from the cold solve"
    if warm != cold:
        return "cached replay is not byte-identical to the cold solve"
    if stores >= 1 and hits < 1:
        # A hit is only owed when the first solve actually stored.  The
        # cache declines (by contract) to store mappings over a
        # ROUTE-split rewrite of the caller's graph, and then both
        # solves legitimately run cold — byte-identity above is the
        # invariant that still holds.
        return "stored mapping was not returned on an identical re-solve"
    return None


def _fork_map(payload):
    """Module-level worker body so pmap can pickle it."""
    dfg, cgra, mapper, seed, ii = payload
    from repro.api import map_dfg
    from repro.core.serialize import mapping_to_json

    return mapping_to_json(map_dfg(dfg, cgra, mapper=mapper, seed=seed, ii=ii))


def fork_replay_difference(
    dfg: DFG, cgra, mapper: str, *, seed: int = 0, ii: int | None = None,
    timeout: float | None = None,
) -> str | None:
    """In-process solve vs two fork workers: must be byte-identical."""
    from repro.parallel import pmap

    reference = _fork_map((dfg, cgra, mapper, seed, ii))
    results = pmap(
        _fork_map,
        [(dfg, cgra, mapper, seed, ii)] * 2,
        jobs=2,
        timeout=timeout,
    )
    for r in results:
        if not r.ok:
            return f"fork worker failed: {r.error!r}"
        if r.value != reference:
            return (
                "fork worker produced different mapping bytes than the"
                " in-process solve"
            )
    return None
