"""Deterministic case generation for the conformance fuzzer.

A :class:`Case` is one cell of the differential test matrix: a random
application (drawn from the :mod:`repro.ir.randdfg` families), an
architecture preset, one registered mapper, and an execution mode
(cache on/off).  Everything is a pure function of the case's ``seed``
and the mapper/arch lists the sweep was launched with, so any failure
the driver reports can be regenerated from its seed alone.

The mapper rotates with the seed (``mappers[seed % len(mappers)]``),
so a contiguous seed range covers every registered mapper evenly —
``repro fuzz --seeds 0:200`` exercises all 24 mappers ~8 times each
without paying for the full 200 x 24 product.  Graph sizes scale with
the selected mapper's technique family *and* the fabric: exact
methods get the small instances their solvers can settle quickly,
heuristics get wider and deeper graphs, and fabrics beyond the
default 4x4s raise the op ceiling so big arrays still see contention
(:func:`_size_budget`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.arch import presets
from repro.arch.cgra import CGRA
from repro.ir import randdfg
from repro.ir.dfg import DFG, Op

__all__ = [
    "Case",
    "DEFAULT_ARCHS",
    "GENERATOR_FAMILIES",
    "case_cgra",
    "case_dfg",
    "case_inputs",
    "generate_case",
    "restrict_inputs",
    "with_mapper",
]

GENERATOR_FAMILIES = ("layered", "layered_alu", "series_parallel", "recurrent")

#: Presets the sweep rotates through by default.  ``hetero4x4`` is
#: deliberately absent: its route-only checkerboard makes most mappers
#: fail legitimately, which drowns the signal; pass ``--arch`` to
#: include it.
DEFAULT_ARCHS = ("simple4x4", "adres4x4", "hycube4x4")

# Graph-size budget per technique family: (min_ops, max_ops), before
# the generators' own bookkeeping nodes (layered() may append up to
# width-1 XOR combiners so every sink stays live).  Calibrated for the
# default 4x4 fabrics (16 compute cells); see :func:`_size_budget` for
# how larger fabrics scale the ceiling.
_SIZE_BUDGET = {
    "exact": (3, 6),
    "metaheuristic": (3, 8),
    "heuristic": (4, 12),
}

#: Compute-cell count the ``_SIZE_BUDGET`` tables assume.  Budgets for
#: fabrics at or below this stay exactly as tabulated, so the historic
#: 4x4 sweep corpus regenerates byte-identically.
_BASELINE_CELLS = 16


def _size_budget(family: str, n_compute: int) -> tuple[int, int]:
    """Op-count budget for a technique family on an ``n_compute`` fabric.

    A 12-op graph that stresses a 4x4 array rattles around inside a
    16x16 one — spatial mappers would never see contention and temporal
    mappers never see II pressure.  Heuristic and metaheuristic budgets
    therefore scale with the fabric (to ~40% occupancy at the ceiling,
    capped so cases stay sub-second); exact solvers keep their small
    instances regardless — their cost explodes with ops, not cells.
    """
    lo, hi = _SIZE_BUDGET[family]
    if n_compute <= _BASELINE_CELLS or family == "exact":
        return lo, hi
    scaled = hi * n_compute // (_BASELINE_CELLS * 2)
    return lo, min(max(hi, scaled), 96)


@dataclass(frozen=True)
class Case:
    """One conformance case, fully determined by its fields."""

    seed: int
    family: str
    arch: str
    mapper: str
    cache_mode: str = "off"  # "off" | "on"
    n_iters: int = 4

    def label(self) -> str:
        tag = "+cache" if self.cache_mode == "on" else ""
        return (
            f"seed={self.seed} {self.family} on {self.arch}"
            f" via {self.mapper}{tag}"
        )


def _mapper_family(mapper: str) -> str:
    from repro.core.registry import catalog

    return catalog().get(mapper, {}).get("family", "heuristic")


def generate_case(
    seed: int,
    mappers: list[str],
    archs: list[str] | None = None,
    *,
    n_iters: int = 4,
) -> Case:
    """Derive the case for ``seed`` from the sweep's mapper/arch lists."""
    if not mappers:
        raise ValueError("generate_case needs at least one mapper")
    archs = list(archs or DEFAULT_ARCHS)
    rng = random.Random(0xC0FFEE ^ seed)
    mapper = mappers[seed % len(mappers)]
    return Case(
        seed=seed,
        family=GENERATOR_FAMILIES[rng.randrange(len(GENERATOR_FAMILIES))],
        arch=archs[rng.randrange(len(archs))],
        mapper=mapper,
        cache_mode="on" if seed % 5 == 4 else "off",
        n_iters=n_iters,
    )


def case_cgra(case: Case) -> CGRA:
    return presets.by_name(case.arch)


def case_dfg(case: Case) -> DFG:
    """Build the case's application graph (deterministic in the seed)."""
    rng = random.Random(0xD1F6 ^ case.seed)
    n_compute = len(case_cgra(case).compute_cells())
    lo, hi = _size_budget(_mapper_family(case.mapper), n_compute)
    n_ops = rng.randint(lo, hi)
    if case.family == "layered":
        return randdfg.layered(
            n_ops,
            width=rng.randint(2, 4),
            max_skip=rng.randint(1, 2),
            n_inputs=rng.randint(1, 3),
            seed=case.seed,
        )
    if case.family == "layered_alu":
        # Same shape, full single-cycle ALU vocabulary (shifts,
        # comparisons, SELECT) — the ops the historical mix never hits.
        return randdfg.layered(
            n_ops,
            width=rng.randint(2, 4),
            max_skip=rng.randint(1, 2),
            n_inputs=rng.randint(1, 3),
            seed=case.seed,
            ops=randdfg.ALU_POOL,
        )
    if case.family == "series_parallel":
        # Depth d composes at most 2**(d+1)-1 ops, so clamp depth to
        # keep exact/metaheuristic solvers inside their op budget.
        depth = rng.randint(1, 2 if hi <= 8 else 3)
        return randdfg.series_parallel(depth, seed=case.seed)
    if case.family == "recurrent":
        base = randdfg.layered(
            max(2, n_ops - 1),
            width=rng.randint(2, 4),
            n_inputs=rng.randint(1, 2),
            seed=case.seed,
        )
        return randdfg.with_recurrences(
            base,
            count=rng.randint(1, 2),
            max_dist=rng.randint(1, 2),
            seed=case.seed,
        )
    raise ValueError(f"unknown generator family {case.family!r}")


def case_inputs(case: Case, dfg: DFG) -> dict[str, list[int]]:
    """Random input series for every INPUT node of ``dfg``.

    Mostly small signed values so recurrences stay legible, with an
    occasional large-magnitude sample (beyond 2**53) to flush out any
    evaluation path that silently round-trips through floats.
    """
    rng = random.Random(0x1A7 ^ case.seed)

    def sample() -> int:
        r = rng.random()
        if r < 0.8:
            return rng.randint(-8, 8)
        if r < 0.95:
            return rng.randint(-(1 << 15), 1 << 15)
        magnitude = rng.randint(1 << 54, 1 << 62)
        return -magnitude if rng.random() < 0.5 else magnitude

    return {
        node.name: [sample() for _ in range(case.n_iters)]
        for node in dfg.nodes()
        if node.op is Op.INPUT and node.name is not None
    }


def restrict_inputs(
    inputs: dict[str, list[int]], dfg: DFG
) -> dict[str, list[int]]:
    """Drop series for INPUT nodes a shrink step removed."""
    names = {
        n.name for n in dfg.nodes() if n.op is Op.INPUT and n.name
    }
    return {k: v for k, v in inputs.items() if k in names}


def with_mapper(case: Case, mapper: str) -> Case:
    """The same problem instance checked through a different mapper."""
    return replace(case, mapper=mapper)
