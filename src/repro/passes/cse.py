"""Common subexpression elimination."""

from __future__ import annotations

from repro.ir.dfg import DFG, Op

__all__ = ["common_subexpression_elimination"]


def _key(g: DFG, nid: int):
    """Structural identity of a node, or None if not CSE-able.

    Memory ops are never merged (two loads may see different stores
    between them); predicated ops only merge with identical predicates
    (conservatively skipped here).  Commutative ops sort operands.
    """
    node = g.node(nid)
    if node.op.is_pseudo or node.op.is_memory or node.pred is not None:
        return None
    if node.op is Op.PHI:
        return None

    def src_key(src: int):
        s = g.node(src)
        if s.op is Op.CONST:
            return ("const", s.value)
        if s.op is Op.INPUT:
            return ("input", s.name)
        return src

    ins = tuple(
        (e.port, src_key(e.src), e.dist)
        for e in sorted(g.in_edges(nid), key=lambda e: e.port)
    )
    if node.op.commutative:
        ins = tuple(
            sorted(((src, dist) for _, src, dist in ins), key=repr)
        )
    return (node.op, ins)


def common_subexpression_elimination(dfg: DFG) -> DFG:
    """Merge structurally identical nodes, iterating to a fixed point."""
    g = dfg.copy()
    changed = True
    while changed:
        changed = False
        seen: dict = {}
        for nid in g.topo_order():
            if nid not in g:
                continue
            key = _key(g, nid)
            if key is None:
                continue
            if key in seen:
                keep = seen[key]
                g.rewire(nid, keep)
                g.remove_node(nid)
                changed = True
            else:
                seen[key] = nid
    return g
