"""Algebraic simplification (strength-reduction identities)."""

from __future__ import annotations

from repro.ir.dfg import DFG, Op

__all__ = ["algebraic_simplify"]


def _const_operand(g: DFG, nid: int, port: int) -> int | None:
    e = g.operand(nid, port)
    if e is None or e.dist != 0:
        return None
    src = g.node(e.src)
    return src.value if src.op is Op.CONST else None


def _passthrough(g: DFG, nid: int, port: int) -> int | None:
    """Operand source usable as a replacement (dist-0 edges only)."""
    e = g.operand(nid, port)
    if e is None or e.dist != 0:
        return None
    return e.src


def algebraic_simplify(dfg: DFG) -> DFG:
    """Apply identity rewrites until none fires.

    Rules: ``x+0 -> x``, ``x-0 -> x``, ``x*1 -> x``, ``x*0 -> 0``,
    ``x/1 -> x``, ``x<<0 / x>>0 -> x``, ``x&0 -> 0``, ``x|0 -> x``,
    ``x^0 -> x``, ``x-x -> 0``, ``x^x -> 0`` (the last two only for
    dist-0 same-source operands).
    """
    g = dfg.copy()
    changed = True
    while changed:
        changed = False
        for nid in list(g.node_ids()):
            if nid not in g:
                continue
            node = g.node(nid)
            if node.pred is not None:
                continue
            repl: int | None = None
            const_repl: int | None = None
            c0 = _const_operand(g, nid, 0)
            c1 = _const_operand(g, nid, 1)
            e0 = g.operand(nid, 0)
            e1 = g.operand(nid, 1)

            if node.op is Op.ADD:
                if c1 == 0:
                    repl = _passthrough(g, nid, 0)
                elif c0 == 0:
                    repl = _passthrough(g, nid, 1)
            elif node.op is Op.SUB:
                if c1 == 0:
                    repl = _passthrough(g, nid, 0)
                elif (
                    e0 is not None
                    and e1 is not None
                    and e0.src == e1.src
                    and e0.dist == e1.dist == 0
                ):
                    const_repl = 0
            elif node.op is Op.MUL:
                if c1 == 1:
                    repl = _passthrough(g, nid, 0)
                elif c0 == 1:
                    repl = _passthrough(g, nid, 1)
                elif c1 == 0 or c0 == 0:
                    const_repl = 0
            elif node.op is Op.DIV:
                if c1 == 1:
                    repl = _passthrough(g, nid, 0)
            elif node.op in (Op.SHL, Op.SHR):
                if c1 == 0:
                    repl = _passthrough(g, nid, 0)
            elif node.op is Op.AND:
                if c1 == 0 or c0 == 0:
                    const_repl = 0
            elif node.op in (Op.OR, Op.XOR):
                if c1 == 0:
                    repl = _passthrough(g, nid, 0)
                elif c0 == 0:
                    repl = _passthrough(g, nid, 1)
                if (
                    node.op is Op.XOR
                    and e0 is not None
                    and e1 is not None
                    and e0.src == e1.src
                    and e0.dist == e1.dist == 0
                ):
                    const_repl = 0

            if const_repl is not None:
                repl = g.const(const_repl)
            if repl is not None:
                g.rewire(nid, repl)
                g.remove_node(nid)
                changed = True
    return g
