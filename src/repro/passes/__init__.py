"""Middle-end optimisation passes.

Fig. 3's "middle-end: transformations, optimisations" stage.  Each
pass takes a DFG and returns a new (or the same) DFG; all are
semantics-preserving, which the test suite checks by interpreting
before/after on random inputs.

* :func:`constant_fold` — evaluate ops whose operands are constants;
* :func:`algebraic_simplify` — identities (x+0, x*1, x*0, x<<0, …);
* :func:`common_subexpression_elimination` — merge structurally equal
  nodes;
* :func:`dead_code_elimination` — drop nodes no OUTPUT/STORE needs;
* :func:`unroll` — loop unrolling by a factor (carried edges rewired
  across copies; the classic ILP-raising transform of Fig. 4's
  timeline);
* :func:`standard_pipeline` — fold → simplify → CSE → DCE, iterated to
  a fixed point.
"""

from repro.passes.constfold import constant_fold
from repro.passes.algebraic import algebraic_simplify
from repro.passes.cse import common_subexpression_elimination
from repro.passes.dce import dead_code_elimination
from repro.passes.unroll import unroll
from repro.passes.manager import standard_pipeline

__all__ = [
    "algebraic_simplify",
    "common_subexpression_elimination",
    "constant_fold",
    "dead_code_elimination",
    "standard_pipeline",
    "unroll",
]
