"""Dead code elimination."""

from __future__ import annotations

from repro.ir.dfg import DFG, Op

__all__ = ["dead_code_elimination"]


def dead_code_elimination(dfg: DFG) -> DFG:
    """Remove nodes that no OUTPUT or STORE transitively needs.

    STOREs are side effects and therefore roots; INPUT nodes are kept
    even when dead so the kernel's live-in signature is stable (a
    mapper ignores them anyway — they are pseudo ops).
    """
    g = dfg.copy()
    live: set[int] = set()
    stack = [
        n.nid
        for n in g.nodes()
        if n.op in (Op.OUTPUT, Op.STORE)
    ]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for e in g.in_edges(nid):
            if e.src not in live:
                stack.append(e.src)
    for nid in list(g.node_ids()):
        if nid not in live and g.node(nid).op is not Op.INPUT:
            g.remove_node(nid)
    return g
