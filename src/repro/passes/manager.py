"""Pass pipeline management."""

from __future__ import annotations

from typing import Callable

from repro.ir.dfg import DFG
from repro.obs.tracer import get_tracer
from repro.passes.algebraic import algebraic_simplify
from repro.passes.constfold import constant_fold
from repro.passes.cse import common_subexpression_elimination
from repro.passes.dce import dead_code_elimination

__all__ = ["run_pipeline", "standard_pipeline"]

Pass = Callable[[DFG], DFG]

_STANDARD: list[Pass] = [
    constant_fold,
    algebraic_simplify,
    common_subexpression_elimination,
    dead_code_elimination,
]


def run_pipeline(
    dfg: DFG, passes: list[Pass], *, max_rounds: int = 8
) -> DFG:
    """Run ``passes`` in order, repeating until the DFG stops changing.

    Convergence is detected on the pretty-printed form (ids are stable
    across non-mutating passes because every pass copies).  With
    tracing enabled the pipeline runs under a ``passes`` span with one
    ``pass:<name>`` child span per pass application.
    """
    tracer = get_tracer()
    cur = dfg
    with tracer.span("passes", dfg=dfg.name) as pipeline_span:
        rounds = 0
        for rnd in range(max_rounds):
            rounds = rnd + 1
            before = cur.pretty()
            for p in passes:
                name = getattr(p, "__name__", repr(p))
                with tracer.span(f"pass:{name}", round=rnd) as span:
                    ops_before = cur.op_count()
                    cur = p(cur)
                    span.tag(ops_in=ops_before, ops_out=cur.op_count())
            if cur.pretty() == before:
                break
        pipeline_span.tag(rounds=rounds)
    cur.check()
    return cur


def standard_pipeline(dfg: DFG) -> DFG:
    """Fold -> simplify -> CSE -> DCE, to a fixed point."""
    return run_pipeline(dfg, _STANDARD)
