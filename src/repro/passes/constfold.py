"""Constant folding."""

from __future__ import annotations

from repro.ir.dfg import DFG, Op
from repro.ir.interp import apply_op

__all__ = ["constant_fold"]

_FOLDABLE = {
    op
    for op in Op
    if not op.is_pseudo
    and not op.is_memory
    and op not in (Op.PHI, Op.ROUTE)
}


def constant_fold(dfg: DFG) -> DFG:
    """Replace ops whose dist-0 operands are all CONST with a CONST.

    ``ROUTE`` of a constant is folded too.  Ops with loop-carried
    operands are left alone (their value varies across iterations
    during warm-up), as are predicated ops (their result depends on
    the predicate).
    """
    g = dfg.copy()
    changed = True
    while changed:
        changed = False
        for nid in list(g.node_ids()):
            node = g.node(nid)
            if node.pred is not None:
                continue
            if node.op is Op.ROUTE:
                e = g.operand(nid, 0)
                if e.dist == 0 and g.node(e.src).op is Op.CONST:
                    val = g.node(e.src).value
                else:
                    continue
            elif node.op in _FOLDABLE:
                srcs = []
                ok = True
                for p in range(node.op.arity):
                    e = g.operand(nid, p)
                    if e.dist != 0 or g.node(e.src).op is not Op.CONST:
                        ok = False
                        break
                    srcs.append(g.node(e.src).value)
                if not ok:
                    continue
                try:
                    val = apply_op(node.op, srcs)
                except ZeroDivisionError:
                    continue  # preserve the runtime fault
            else:
                continue
            c = g.const(val)
            g.rewire(nid, c)
            g.remove_node(nid)
            changed = True
    return g
