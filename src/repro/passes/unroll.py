"""Loop unrolling.

Replicates the loop body ``factor`` times inside one iteration of the
unrolled loop — the classic ILP-raising transform on Fig. 4's timeline
("Loop unrolling", early 2000s).

Index arithmetic: consumer copy ``i`` of an edge with distance ``d``
reads flat iteration ``i - d`` relative to its own; writing
``i - d = -k * factor + c`` with ``0 <= c < factor`` gives producer
copy ``c`` at unrolled distance ``k`` (``divmod(i - d, factor)`` in
Python, whose floor semantics produce exactly this decomposition).

INPUT/OUTPUT nodes are replicated with ``_<copy>`` name suffixes: each
copy consumes/produces its own element of the stream.
"""

from __future__ import annotations

from repro.ir.dfg import DFG, Op

__all__ = ["unroll"]


def unroll(dfg: DFG, factor: int) -> DFG:
    """Unroll the loop body ``factor`` times."""
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return dfg.copy()
    out = DFG(f"{dfg.name}_x{factor}")
    clone: list[dict[int, int]] = []
    for i in range(factor):
        m: dict[int, int] = {}
        for nid in dfg.topo_order():
            node = dfg.node(nid)
            name = node.name
            if node.op in (Op.INPUT, Op.OUTPUT) and name is not None:
                name = f"{name}_{i}"
            new = out.add(
                node.op, name=name, value=node.value, array=node.array
            )
            out.node(new).pred = node.pred
            m[nid] = new
        clone.append(m)
    for e in dfg.edges():
        for i in range(factor):
            k, c = divmod(i - e.dist, factor)
            out.connect(
                clone[c][e.src],
                clone[i][e.dst],
                port=e.port,
                dist=-k,
            )
    out.check()
    return out
