"""AST -> CDFG lowering.

Straight-line kernels become a single basic block; a top-level
``if``/``else`` becomes the classic diamond that the §III-B1
predication transforms consume.  Loop-carried semantics follow the
language rule: reading a variable the kernel assigns (before that
assignment has happened this iteration) yields the previous
iteration's value — lowered as a distance-1 edge from the final
definition; ``x@k`` generalises to distance ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse
from repro.ir.cdfg import CDFG
from repro.ir.dfg import DFG, Op

__all__ = ["compile_to_cdfg", "compile_to_dfg", "LowerError"]


class LowerError(ValueError):
    pass


_BINOPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.AND,
    "|": Op.OR,
    "^": Op.XOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
    "==": Op.EQ,
    "!=": Op.NE,
}

_CALLS = {"abs": Op.ABS, "min": Op.MIN, "max": Op.MAX, "select": Op.SELECT}


@dataclass
class _Builder:
    """One basic block under construction."""

    g: DFG
    env: dict[str, int] = field(default_factory=dict)
    inputs: dict[str, int] = field(default_factory=dict)
    consts: dict[int, int] = field(default_factory=dict)
    #: deferred loop-carried reads: (node, port, name, dist)
    holes: list[tuple[int, int, str, int]] = field(default_factory=list)
    #: names the whole kernel assigns (drives carried-read detection)
    assigned: frozenset[str] = frozenset()
    #: names that may not be read before assignment in this block
    #: (cross-if recurrences are unsupported and must be diagnosed)
    forbidden: frozenset[str] = frozenset()

    def const(self, value: int) -> int:
        if value not in self.consts:
            self.consts[value] = self.g.const(value)
        return self.consts[value]

    def live_in(self, name: str) -> int:
        if name not in self.inputs:
            self.inputs[name] = self.g.input(name)
        return self.inputs[name]

    def read(self, name: str) -> int | tuple[str, int]:
        """A variable read: node id, or a carried-read marker."""
        if name in self.env:
            return self.env[name]
        if name in self.assigned:
            return (name, 1)  # previous iteration's value
        if name in self.forbidden:
            raise LowerError(
                f"{name!r} is read before its assignment in another"
                " region: loop-carried reads may not cross an if"
            )
        return self.live_in(name)

    # ------------------------------------------------------------------
    def expr(self, e: A.Expr) -> int | tuple[str, int]:
        if isinstance(e, A.Num):
            return self.const(e.value)
        if isinstance(e, A.Var):
            return self.read(e.name)
        if isinstance(e, A.Delayed):
            if e.name in self.assigned or e.name in self.env:
                return (e.name, e.dist)
            # Delayed read of a pure live-in stream.
            node = self.g.add(Op.ROUTE)
            self.g.connect(
                self.live_in(e.name), node, port=0, dist=e.dist
            )
            return node
        if isinstance(e, A.BinOp):
            if e.op in ("&&", "||"):
                lhs = self._bool(self.expr(e.lhs))
                rhs = self._bool(self.expr(e.rhs))
                return self._node(
                    Op.AND if e.op == "&&" else Op.OR, lhs, rhs
                )
            return self._node(
                _BINOPS[e.op], self.expr(e.lhs), self.expr(e.rhs)
            )
        if isinstance(e, A.UnOp):
            v = self.expr(e.operand)
            if e.op == "-":
                return self._node(Op.NEG, v)
            if e.op == "~":
                return self._node(Op.NOT, v)
            return self._node(Op.EQ, v, self.const(0))  # logical !
        if isinstance(e, A.Call):
            return self._node(
                _CALLS[e.fn], *(self.expr(a) for a in e.args)
            )
        if isinstance(e, A.ArrayRef):
            idx = self.expr(e.index)
            node = self.g.add(Op.LOAD, array=e.array)
            self._wire(node, 0, idx)
            return node
        raise LowerError(f"cannot lower expression {e!r}")

    def _bool(self, v) -> int:
        return self._node(Op.NE, v, self.const(0))

    def _node(self, op: Op, *operands) -> int:
        node = self.g.add(op)
        for port, v in enumerate(operands):
            self._wire(node, port, v)
        return node

    def _wire(self, node: int, port: int, v) -> None:
        if isinstance(v, tuple):
            self.holes.append((node, port, v[0], v[1]))
        else:
            self.g.connect(v, node, port=port)

    # ------------------------------------------------------------------
    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Assign):
            v = self.expr(s.value)
            if isinstance(v, tuple):
                # `x = y` where y is a carried read: pass through ROUTE.
                node = self.g.add(Op.ROUTE)
                self.holes.append((node, 0, v[0], v[1]))
                v = node
            self.env[s.name] = v
            return
        if isinstance(s, A.ArrayStore):
            node = self.g.add(Op.STORE, array=s.array)
            self._wire(node, 0, self.expr(s.index))
            self._wire(node, 1, self.expr(s.value))
            self.env[f"__store_{node}"] = node
            return
        if isinstance(s, A.Out):
            v = self.expr(s.value)
            if isinstance(v, tuple):
                node = self.g.add(Op.ROUTE)
                self.holes.append((node, 0, v[0], v[1]))
                v = node
            self.g.output(v, s.name)
            return
        raise LowerError(f"cannot lower statement {s!r}")

    def fill_holes(self) -> None:
        for node, port, name, dist in self.holes:
            if name not in self.env:
                raise LowerError(
                    f"loop-carried read of {name!r} but the block never"
                    " assigns it (recurrences may not cross an if)"
                )
            self.g.connect(self.env[name], node, port=port, dist=dist)
        self.holes.clear()


def _assigned_names(stmts) -> set[str]:
    names: set[str] = set()
    for s in stmts:
        if isinstance(s, A.Assign):
            names.add(s.name)
        elif isinstance(s, A.If):
            names |= _assigned_names(s.then_body)
            names |= _assigned_names(s.else_body)
    return names


def _split_at_if(body):
    """(pre, if_stmt|None, post); enforces single top-level if."""
    pre, post = [], []
    if_stmt = None
    for s in body:
        if isinstance(s, A.If):
            if if_stmt is not None:
                raise LowerError("at most one top-level if is supported")
            if_stmt = s
        elif if_stmt is None:
            pre.append(s)
        else:
            post.append(s)
    return pre, if_stmt, post


def compile_to_cdfg(source: str) -> CDFG:
    """Front end entry point: source text -> checked CDFG."""
    kernel = parse(source)
    pre, if_stmt, post = _split_at_if(kernel.body)
    cdfg = CDFG(kernel.name)

    if if_stmt is None:
        bid = cdfg.add_block(label=kernel.name)
        b = _Builder(cdfg.block(bid).body,
                     assigned=frozenset(_assigned_names(kernel.body)))
        for s in kernel.body:
            b.stmt(s)
        b.fill_holes()
        cdfg.set_exit(bid)
        cdfg.check()
        return cdfg

    for s in pre:
        if isinstance(s, A.Out):
            raise LowerError("out statements must follow the if")
    carried = frozenset(_assigned_names(pre))

    # Entry: pre statements + the condition.
    entry = cdfg.add_block(label="entry")
    eb = _Builder(cdfg.block(entry).body, assigned=carried)
    for s in pre:
        eb.stmt(s)
    cond = eb.expr(if_stmt.cond)
    if isinstance(cond, tuple):
        node = eb.g.add(Op.ROUTE)
        eb.holes.append((node, 0, cond[0], cond[1]))
        cond = node
    eb.fill_holes()
    eb.g.output(cond, "__cond")
    # Export every entry definition the arms or tail might read.
    needed = set()
    for region in (if_stmt.then_body, if_stmt.else_body, post):
        needed |= _read_names(region)
    for name, nid in eb.env.items():
        if name in needed and not name.startswith("__store_"):
            eb.g.output(nid, name)

    entry_defined = frozenset(eb.env)
    all_assigned = frozenset(_assigned_names(kernel.body))

    def arm_block(stmts, label):
        bid = cdfg.add_block(label=label)
        ab = _Builder(
            cdfg.block(bid).body,
            assigned=frozenset(),
            forbidden=all_assigned - entry_defined,
        )
        for s in stmts:
            if isinstance(s, (A.If,)):
                raise LowerError("nested ifs are not supported")
            if isinstance(s, A.Out):
                raise LowerError("out statements must follow the if")
            ab.stmt(s)
        ab.fill_holes()
        for name, nid in ab.env.items():
            if not name.startswith("__store_"):
                ab.g.output(nid, name)
        return bid

    then_b = arm_block(if_stmt.then_body, "then")
    else_b = arm_block(if_stmt.else_body, "else")

    arm_defined = frozenset(_assigned_names(if_stmt.then_body)) | frozenset(
        _assigned_names(if_stmt.else_body)
    )
    join = cdfg.add_block(label="join")
    jb = _Builder(
        cdfg.block(join).body,
        assigned=frozenset(),
        forbidden=all_assigned - entry_defined - arm_defined,
    )
    for s in post:
        jb.stmt(s)
    jb.fill_holes()

    cdfg.set_branch(entry, "__cond", then_b, else_b)
    cdfg.set_jump(then_b, join)
    cdfg.set_jump(else_b, join)
    cdfg.set_exit(join)
    cdfg.check()
    return cdfg


def _read_names(stmts) -> set[str]:
    """Variable names read anywhere in a statement list."""
    out: set[str] = set()

    def expr(e) -> None:
        if isinstance(e, A.Var):
            out.add(e.name)
        elif isinstance(e, A.Delayed):
            out.add(e.name)
        elif isinstance(e, A.BinOp):
            expr(e.lhs)
            expr(e.rhs)
        elif isinstance(e, A.UnOp):
            expr(e.operand)
        elif isinstance(e, A.Call):
            for a in e.args:
                expr(a)
        elif isinstance(e, A.ArrayRef):
            expr(e.index)

    for s in stmts:
        if isinstance(s, A.Assign):
            expr(s.value)
        elif isinstance(s, A.ArrayStore):
            expr(s.index)
            expr(s.value)
        elif isinstance(s, A.Out):
            expr(s.value)
        elif isinstance(s, A.If):
            expr(s.cond)
            out.update(_read_names(s.then_body))
            out.update(_read_names(s.else_body))
    return out


def compile_to_dfg(source: str) -> DFG:
    """Source text -> single if-converted DFG (the full front half)."""
    from repro.controlflow import flatten_cdfg

    return flatten_cdfg(compile_to_cdfg(source))
