"""Tokenizer for the kernel language."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "LexError"]


class LexError(ValueError):
    """Raised on an unrecognised character."""


KEYWORDS = {"kernel", "if", "else", "out", "as"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+)
  | (?P<id>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=(){}\[\];,@])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str   #: "num", "id", "kw", or the operator text itself
    text: str
    pos: int    #: character offset (for error messages)
    line: int


def tokenize(source: str) -> list[Token]:
    """Token stream for ``source``; raises :class:`LexError` on junk."""
    out: list[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        text = m.group(0)
        if m.lastgroup == "ws":
            line += text.count("\n")
        elif m.lastgroup == "num":
            out.append(Token("num", text, pos, line))
        elif m.lastgroup == "id":
            kind = "kw" if text in KEYWORDS else "id"
            out.append(Token(kind, text, pos, line))
        else:
            out.append(Token(text, text, pos, line))
        pos = m.end()
    out.append(Token("eof", "", pos, line))
    return out
