"""Recursive-descent parser for the kernel language.

Grammar (precedence climbing for expressions)::

    kernel   := "kernel" id "{" stmt* "}"
    stmt     := assign | arrstore | ifstmt | outstmt
    assign   := id "=" expr ";"
    arrstore := id "[" expr "]" "=" expr ";"
    ifstmt   := "if" "(" expr ")" block ["else" block]
    outstmt  := "out" expr ["as" id] ";"
    block    := "{" stmt* "}"
    expr     := binary expression over: || && | ^ & == != < <= > >=
                << >> + - * / %   (C precedence), unary - ! ~,
                atoms: num, id, id "@" num, id "[" expr "]",
                fn "(" args ")", "(" expr ")"
"""

from __future__ import annotations

from repro.frontend.ast_nodes import (
    ArrayRef,
    ArrayStore,
    Assign,
    BinOp,
    Call,
    Delayed,
    If,
    Kernel,
    Num,
    Out,
    Stmt,
    UnOp,
    Var,
)
from repro.frontend.lexer import Token, tokenize

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    pass


_BUILTINS = {"abs": 1, "min": 2, "max": 2, "select": 3}

# Binary operator precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.toks = tokens
        self.i = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.toks[self.i]

    def next(self) -> Token:
        t = self.toks[self.i]
        self.i += 1
        return t

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.next()
        if t.kind != kind or (text is not None and t.text != text):
            want = text or kind
            raise ParseError(
                f"line {t.line}: expected {want!r}, got {t.text!r}"
            )
        return t

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        t = self.peek()
        if t.kind == kind and (text is None or t.text == text):
            return self.next()
        return None

    # ------------------------------------------------------------------
    def kernel(self) -> Kernel:
        self.expect("kw", "kernel")
        name = self.expect("id").text
        self.expect("{")
        body = self.stmts_until("}")
        self.expect("}")
        self.expect("eof")
        return Kernel(name, tuple(body))

    def stmts_until(self, closer: str) -> list[Stmt]:
        out: list[Stmt] = []
        while self.peek().text != closer:
            if self.peek().kind == "eof":
                raise ParseError(f"unexpected end of input, missing {closer!r}")
            out.append(self.stmt())
        return out

    def stmt(self) -> Stmt:
        t = self.peek()
        if t.kind == "kw" and t.text == "if":
            return self.if_stmt()
        if t.kind == "kw" and t.text == "out":
            return self.out_stmt()
        if t.kind == "id":
            name = self.next().text
            if self.accept("["):
                idx = self.expr()
                self.expect("]")
                self.expect("=")
                val = self.expr()
                self.expect(";")
                return ArrayStore(name, idx, val)
            self.expect("=")
            val = self.expr()
            self.expect(";")
            return Assign(name, val)
        raise ParseError(f"line {t.line}: unexpected token {t.text!r}")

    def if_stmt(self) -> If:
        self.expect("kw", "if")
        self.expect("(")
        cond = self.expr()
        self.expect(")")
        self.expect("{")
        then_body = self.stmts_until("}")
        self.expect("}")
        else_body: list[Stmt] = []
        if self.accept("kw", "else"):
            self.expect("{")
            else_body = self.stmts_until("}")
            self.expect("}")
        return If(cond, tuple(then_body), tuple(else_body))

    def out_stmt(self) -> Out:
        self.expect("kw", "out")
        value = self.expr()
        if self.accept("kw", "as"):
            name = self.expect("id").text
        elif isinstance(value, Var):
            name = value.name
        else:
            raise ParseError(
                "out <expr> needs 'as <name>' unless it is a variable"
            )
        self.expect(";")
        return Out(value, name)

    # ------------------------------------------------------------------
    def expr(self, level: int = 0):
        if level == len(_PRECEDENCE):
            return self.unary()
        lhs = self.expr(level + 1)
        while self.peek().text in _PRECEDENCE[level]:
            op = self.next().text
            rhs = self.expr(level + 1)
            lhs = BinOp(op, lhs, rhs)
        return lhs

    def unary(self):
        t = self.peek()
        if t.text in ("-", "!", "~"):
            self.next()
            return UnOp(t.text, self.unary())
        return self.atom()

    def atom(self):
        t = self.next()
        if t.kind == "num":
            return Num(int(t.text))
        if t.text == "(":
            e = self.expr()
            self.expect(")")
            return e
        if t.kind == "id":
            name = t.text
            if name in _BUILTINS and self.peek().text == "(":
                self.next()
                args = [self.expr()]
                while self.accept(","):
                    args.append(self.expr())
                self.expect(")")
                if len(args) != _BUILTINS[name]:
                    raise ParseError(
                        f"line {t.line}: {name}() takes"
                        f" {_BUILTINS[name]} argument(s)"
                    )
                return Call(name, tuple(args))
            if self.accept("@"):
                dist = int(self.expect("num").text)
                if dist < 1:
                    raise ParseError(
                        f"line {t.line}: delay must be >= 1"
                    )
                return Delayed(name, dist)
            if self.accept("["):
                idx = self.expr()
                self.expect("]")
                return ArrayRef(name, idx)
            return Var(name)
        raise ParseError(f"line {t.line}: unexpected token {t.text!r}")


def parse(source: str) -> Kernel:
    """Parse kernel source text into an AST."""
    return _Parser(tokenize(source)).kernel()
