"""Abstract syntax tree for the kernel language."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Assign",
    "ArrayRef",
    "ArrayStore",
    "BinOp",
    "Call",
    "Delayed",
    "If",
    "Kernel",
    "Num",
    "Out",
    "Stmt",
    "UnOp",
    "Var",
]


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class Delayed(Expr):
    """``name@k`` — the variable's value ``k`` iterations ago."""

    name: str
    dist: int


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Builtin calls: abs(x), min(a,b), max(a,b), select(c,a,b)."""

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class ArrayRef(Expr):
    array: str
    index: Expr


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class ArrayStore(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Out(Stmt):
    value: Expr
    name: str


@dataclass(frozen=True)
class Kernel:
    name: str
    body: tuple[Stmt, ...]
