"""The front end: a small C-like kernel language -> CDFG.

Fig. 3's flow starts at source code; this package supplies the parsing
stage ("front-end: parsing, abstract syntax tree") for a language just
big enough to express the loop bodies CGRAs accelerate::

    kernel dot {
        sum = sum + a * b;   # reading `sum` before assigning it
        out sum;             # reads last iteration's value
    }

    kernel clamp {
        if (x > hi) { y = hi; } else { y = x; }
        out y;
    }

Semantics:

* the body is one loop iteration; free identifiers are streaming
  live-ins (one element per iteration);
* reading a variable that the body assigns *later or on this line*
  yields its value from the previous iteration (a loop-carried
  dependence of distance 1) — `x@k` reads `k` iterations back;
* ``A[i]`` loads from array ``A``; ``A[i] = v;`` stores;
* one top-level ``if/else`` is allowed and becomes a CDFG diamond
  (the §III-B1 transforms take it from there);
* ``out expr;`` / ``out expr as name;`` defines a live-out.
"""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse
from repro.frontend.lower import compile_to_cdfg, compile_to_dfg

__all__ = [
    "Token",
    "compile_to_cdfg",
    "compile_to_dfg",
    "parse",
    "tokenize",
]
