"""SPR-style architecture-adaptive mapping (SA + PathFinder).

Friedman et al.'s SPR [49] combines VPR-style simulated-annealing
placement with PathFinder negotiated-congestion routing: routes may
*overuse* resources at first; overused slots accumulate history cost,
rerouting is iterated, and congestion melts away (or the placement is
perturbed).  This mapper uses :meth:`Router.find_negotiated` for the
inner loop and perturbs the placement when negotiation stalls.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.arch.cgra import CGRA
from repro.arch.tec import HOLD, Step
from repro.core.mapper import Mapper, MapperInfo
from repro.core.mapping import Mapping
from repro.core.registry import register
from repro.core.resources import Occupancy
from repro.ir.dfg import DFG, Edge
from repro.mappers.routing import RouteRequest, Router
from repro.mappers.schedule import asap, priority_order

__all__ = ["SPRMapper"]


@register
class SPRMapper(Mapper):
    """SA placement + negotiated-congestion routing (SPR-style)."""

    info = MapperInfo(
        name="spr",
        family="metaheuristic",
        subfamily="SA + PathFinder",
        kinds=("temporal",),
        solves="binding",
        modeled_after="[49]",
        year=2009,
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        negotiation_rounds: int = 12,
        perturbations: int = 6,
    ) -> None:
        super().__init__(seed)
        self.negotiation_rounds = negotiation_rounds
        self.perturbations = perturbations

    # ------------------------------------------------------------------
    def _placement(
        self, dfg: DFG, cgra: CGRA, ii: int, rng: random.Random
    ) -> tuple[dict[int, int], dict[int, int]] | None:
        """An FU-feasible placement (ignoring routing)."""
        occ = Occupancy(cgra, ii)
        binding: dict[int, int] = {}
        schedule: dict[int, int] = {}
        t0 = asap(dfg, ii)
        for nid in priority_order(dfg, by="height"):
            op = dfg.node(nid).op
            anchors = [
                binding[e.src]
                for e in dfg.in_edges(nid)
                if e.src in binding
            ] + [
                binding[e.dst]
                for e in dfg.out_edges(nid)
                if e.dst in binding and e.dst != nid
            ]
            cells = list(cgra.supporting_cells(op))
            rng.shuffle(cells)
            dist = cgra.distance_table()
            cells.sort(
                key=lambda c: sum(dist[a][c] for a in anchors)
            )
            lb = t0[nid]
            ub = None
            for e in dfg.in_edges(nid):
                if e.src in schedule and not dfg.node(e.src).op.is_pseudo:
                    lb = max(lb, schedule[e.src] + 1 - e.dist * ii)
            for e in dfg.out_edges(nid):
                if (
                    e.dst in schedule
                    and e.dst != nid
                    and not dfg.node(e.dst).op.is_pseudo
                ):
                    cap = schedule[e.dst] + e.dist * ii - 1
                    ub = cap if ub is None else min(ub, cap)
            hi = lb + 4 * ii if ub is None else min(ub, lb + 4 * ii)
            done = False
            for t in range(lb, hi + 1):
                for cell in cells:
                    if occ.can_place_op(cell, t):
                        occ.place_op(nid, cell, t)
                        binding[nid] = cell
                        schedule[nid] = t
                        done = True
                        break
                if done:
                    break
            if not done:
                return None
        return binding, schedule

    def _negotiate(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        binding: dict[int, int],
        schedule: dict[int, int],
    ) -> dict[Edge, list[Step]] | None:
        """Iterated negotiated routing; None when congestion persists."""
        router = Router(cgra)
        edges = [
            e
            for e in dfg.edges()
            if not dfg.node(e.src).op.is_pseudo
            and not dfg.node(e.dst).op.is_pseudo
        ]
        history: dict[tuple, float] = {}
        for rnd in range(self.negotiation_rounds):
            occ = Occupancy(cgra, ii)
            for nid, cell in binding.items():
                occ.place_op(nid, cell, schedule[nid])
            routes: dict[Edge, list[Step]] = {}
            overused: Counter = Counter()
            ok = True
            for e in edges:
                req = RouteRequest(
                    value=e.src,
                    src_cell=binding[e.src],
                    t_emit=schedule[e.src],
                    dst_cell=binding[e.dst],
                    t_consume=schedule[e.dst] + e.dist * ii,
                )
                if req.t_consume <= req.t_emit:
                    return None  # timing bug: unfixable by routing
                found = router.find_negotiated(
                    occ, req, history=history, penalty=8.0 * (rnd + 1)
                )
                if found is None:
                    return None
                steps, _cost = found
                # Commit, tracking overuse for the history update.
                prev_cell = req.src_cell
                for step in steps:
                    key = (step.cell, occ.slot(step.time), step.kind)
                    if step.kind == HOLD:
                        if not occ.can_hold(req.value, step.cell, step.time):
                            overused[key] += 1
                            ok = False
                        occ.add_hold(req.value, step.cell, step.time)
                    else:
                        if not occ.can_route(req.value, step.cell, step.time):
                            overused[key] += 1
                            ok = False
                        if step.cell != prev_cell:
                            occ.add_link(
                                req.value, prev_cell, step.cell, step.time
                            )
                        occ.add_route(req.value, step.cell, step.time)
                    prev_cell = step.cell
                last_kind = steps[-1].kind if steps else "route"
                if last_kind != HOLD and prev_cell != req.dst_cell:
                    occ.add_link(
                        req.value, prev_cell, req.dst_cell, req.t_consume
                    )
                routes[e] = steps
            if ok:
                return routes
            for key, n in overused.items():
                history[key] = history.get(key, 0.0) + float(n)
        return None

    # ------------------------------------------------------------------
    def _map(self, dfg: DFG, cgra: CGRA, ii: int | None) -> Mapping:
        rng = random.Random(self.seed)
        attempts = 0
        for ii_try in self.ii_range(dfg, cgra, ii):
            for _ in range(self.perturbations):
                attempts += 1
                placed = self._placement(dfg, cgra, ii_try, rng)
                if placed is None:
                    break  # FU capacity: only more II helps
                binding, schedule = placed
                routes = self._negotiate(
                    dfg, cgra, ii_try, binding, schedule
                )
                if routes is None:
                    continue
                mapping = Mapping(
                    dfg, cgra, kind="modulo",
                    binding=binding, schedule=schedule,
                    routes=routes, ii=ii_try, mapper=self.info.name,
                )
                if not mapping.validate(raise_on_error=False):
                    return mapping
        raise self.fail(
            f"negotiation never converged on {cgra.name}",
            attempts=attempts,
        )
