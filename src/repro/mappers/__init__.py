"""Mapper implementations — one module per surveyed technique family.

Importing this package registers every mapper with
:mod:`repro.core.registry`; the registry's metadata is the executable
form of the survey's Table I.  See DESIGN.md §2.3 for the full
mapper-to-citation table.
"""

from repro.mappers import (  # noqa: F401
    bnb_mapper,
    cluster,
    crimson,
    csp_mapper,
    dresc,
    edge_centric,
    epimap,
    genmap,
    graph_drawing,
    graph_minor,
    himap,
    ilp_spatial,
    ilp_temporal,
    list_sched,
    portfolio,
    qea,
    ramp,
    regimap,
    rl_mapper,
    sa_spatial,
    sat_mapper,
    smt_mapper,
    spr,
    ultrafast,
)
from repro.mappers.construct import PlacementState, greedy_construct
from repro.mappers.routing import Router, RouteRequest
from repro.mappers.schedule import alap, asap, heights, priority_order

__all__ = [
    "PlacementState",
    "RouteRequest",
    "Router",
    "alap",
    "asap",
    "greedy_construct",
    "heights",
    "priority_order",
]
